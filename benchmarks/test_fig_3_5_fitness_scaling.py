"""E3 — Fig 3.5: fitness scores when scheduling more experiments.

Sweeps the number of experiments (5, 15, 40) across the three required
sample-size bands.  Expected shape (the paper's central scheduling
result): all algorithms are close on small instances, but with >= 20
experiments and high sample sizes the genetic algorithm keeps finding
valid schedules at clearly higher fitness (paper: GA 62% vs LS/SA
42–43% at 40 experiments / high sample sizes).
"""

from _util import emit, format_rows

from repro.fenrir import (
    Fenrir,
    GeneticAlgorithm,
    LocalSearch,
    RandomSampling,
    SampleSizeBand,
    SimulatedAnnealing,
    random_experiments,
)
from repro.traffic.profile import diurnal_profile

COUNTS = (5, 15, 40)
BANDS = (SampleSizeBand.LOW, SampleSizeBand.MEDIUM, SampleSizeBand.HIGH)
BUDGET = 1000


def run_sweep():
    profile = diurnal_profile(days=7, seed=3)
    algorithms = [
        GeneticAlgorithm(population_size=20),
        RandomSampling(),
        LocalSearch(),
        SimulatedAnnealing(),
    ]
    rows = []
    for band in BANDS:
        for count in COUNTS:
            experiments = random_experiments(profile, count, band, seed=4)
            row = {"band": band.name, "experiments": count}
            for algorithm in algorithms:
                result = Fenrir(algorithm).schedule(
                    profile, experiments, budget=BUDGET, seed=1
                )
                row[algorithm.name] = result.fitness
            rows.append(row)
    return rows


def test_fig_3_5(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("Fig 3.5 fitness vs number of experiments per band", format_rows(rows))

    hard = next(
        row for row in rows
        if row["band"] == "HIGH" and row["experiments"] == 40
    )
    # The GA keeps producing good valid schedules on the hardest instance
    # and beats local search and annealing there (who-wins shape).
    assert hard["genetic"] > 0.45
    assert hard["genetic"] >= hard["local-search"]
    assert hard["genetic"] >= hard["annealing"]

    easy = next(
        row for row in rows
        if row["band"] == "LOW" and row["experiments"] == 5
    )
    # On easy instances everyone does well and the spread is small.
    algos = ("genetic", "random", "local-search", "annealing")
    assert all(easy[name] > 0.6 for name in algos)
