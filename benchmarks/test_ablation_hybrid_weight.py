"""Ablation — the hybrid heuristic's structure/behaviour balance.

The hybrid heuristic mixes subtree complexity (structure) and
response-time analysis (behaviour) with a weight.  Sweeping that weight
over all four evaluation sub-scenarios shows *why* the dissertation's
combination wins: pure structure (weight 1.0) misses breaking changes,
pure behaviour (weight 0.0) misses risky-but-not-yet-degraded changes;
the interior mixes dominate both extremes on average.
"""

import statistics

from _util import emit, format_rows

from repro.topology.heuristics import HybridHeuristic
from repro.topology.ranking import evaluate_ranking, rank_changes
from repro.topology.scenarios import scenario1, scenario2

WEIGHTS = (0.0, 0.25, 0.5, 0.75, 1.0)


def run_sweep():
    scenarios = [
        scenario1(degraded=False),
        scenario1(degraded=True),
        scenario2(degraded=False),
        scenario2(degraded=True),
    ]
    diffs = [(s, s.diff()) for s in scenarios]
    rows = []
    for weight in WEIGHTS:
        heuristic = HybridHeuristic(relative=True, structure_weight=weight)
        scores = [
            evaluate_ranking(rank_changes(diff, heuristic), s.relevance, k=5)
            for s, diff in diffs
        ]
        rows.append(
            {
                "structure_weight": weight,
                "mean_ndcg5": statistics.mean(scores),
                "min_ndcg5": min(scores),
                **{s.name: score for (s, _), score in zip(diffs, scores)},
            }
        )
    return rows


def test_ablation_hybrid_weight(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("Ablation: hybrid structure weight sweep", format_rows(rows))

    by_weight = {row["structure_weight"]: row["mean_ndcg5"] for row in rows}
    interior_best = max(by_weight[w] for w in (0.25, 0.5, 0.75))
    # The interior mixes beat the pure-structure extreme and at least
    # match the pure-behaviour extreme on average.
    assert interior_best > by_weight[1.0]
    assert interior_best >= by_weight[0.0] - 1e-9
