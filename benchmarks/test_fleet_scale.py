"""Fleet-scale benchmark: 100+ supervised strategies under one orchestrator.

Extends the engine scaling study of Figs 4.7–4.10 by a layer: instead of
N bare strategies on one engine, N *fleets* of bulkheaded engines run a
Fenrir schedule end to end — admission control, supervision, watchdog,
and the fleet WAL all on the measured path.  Each sweep point injects a
fixed fault mix (one crash-looper, a wave of crashing versions, one
genuinely bad version) so the supervision machinery is exercised, not
idle.  Reported per fleet size: wall-clock, slots, outcomes, restarts,
sheds, and the aggregated engine-executor CPU/delay numbers that the
dissertation tracks ("more than a hundred experiments in parallel
without ... significant performance degradation").

``FLEET_SMOKE=1`` switches to a reduced configuration for CI: fewer and
smaller fleets, same fault mix, same invariants.
"""

import json
import os
import time

from _util import OUTPUT_DIR, emit, format_rows

from repro.errors import SimulationError
from repro.fenrir.model import ExperimentSpec, SchedulingProblem
from repro.fenrir.schedule import Gene, Schedule
from repro.fleet import (
    OUTCOME_PROMOTED,
    OUTCOME_SHED,
    ExperimentFaults,
    FleetConfig,
    FleetOrchestrator,
    usage_within_budget,
)
from repro.traffic.profile import TrafficProfile, UserGroup

SMOKE = os.environ.get("FLEET_SMOKE") == "1"
FLEET_SIZES = (10, 25, 50) if SMOKE else (25, 50, 100, 200)
WAVE = 10
DURATION = 2
FRACTION = 0.05
LOOPER_DURATION = 6
MAX_WALL_SECONDS = 30.0 if SMOKE else 120.0


def build_schedule(n: int) -> Schedule:
    """Back-to-back waves of WAVE experiments, one group, fixed volume."""
    waves = (n + WAVE - 1) // WAVE
    horizon = waves * DURATION + LOOPER_DURATION + 2
    profile = TrafficProfile([40_000.0] * horizon, [UserGroup("all", 1.0)])
    specs = [
        ExperimentSpec(
            name=f"exp{i:03d}",
            required_samples=100.0,
            min_traffic_fraction=0.01,
            max_traffic_fraction=1.0,
            max_duration_slots=horizon,
        )
        for i in range(n)
    ]
    genes = [
        Gene(
            start=(i // WAVE) * DURATION,
            duration=LOOPER_DURATION if i == 0 else DURATION,
            fraction=FRACTION,
            groups=frozenset({"all"}),
        )
        for i in range(n)
    ]
    return Schedule(SchedulingProblem(profile, specs), genes)


def build_faults(n: int) -> dict[str, ExperimentFaults]:
    """One crash-looper, one crasher per wave, errors on a mid-fleet wave."""
    faults: dict[str, ExperimentFaults] = {
        "exp000": ExperimentFaults(crash_loop=True)
    }
    for i in range(5, n, WAVE):  # one mid-wave crasher per wave
        faults[f"exp{i:03d}"] = ExperimentFaults(
            crash_slots=((i // WAVE) * DURATION,)
        )
    for i in range(1, min(4, n)):
        faults[f"exp{i:03d}"] = ExperimentFaults(
            check_error_slots=tuple(range(16))
        )
    return faults


def measure(n: int) -> dict[str, float]:
    schedule = build_schedule(n)
    faults = build_faults(n)
    world = {f"exp{n - 1:03d}": 0.4}  # one genuinely bad version
    orchestrator = FleetOrchestrator(
        schedule,
        world=world,
        faults=faults,
        config=FleetConfig(
            slot_seconds=30.0,
            check_interval_seconds=10.0,
            restart_max=2,
            seed=3,
        ),
    )
    started = time.perf_counter()
    result = orchestrator.run()
    wall = time.perf_counter() - started

    # Invariants ride along with the measurement: a fast fleet that
    # over-admits or loses outcomes is not a result worth reporting.
    assert not result.aborted
    assert len(result.outcomes) == n
    for row in result.ledger:
        assert usage_within_budget(dict(row.usage))
    assert result.sheds.get("exp000") is not None  # looper gave up
    assert result.outcomes[f"exp{n - 1:03d}"] != OUTCOME_PROMOTED

    # Aggregate the per-bulkhead executor reports into fleet-wide
    # CPU/delay numbers, weighting means by task count.
    tasks = 0
    busy_weighted = 0.0
    delay_weighted = 0.0
    p95 = 0.0
    worst = 0.0
    for bulkhead in orchestrator.bulkheads.values():
        try:
            report = bulkhead.engine.executor.report()
        except SimulationError:  # engine never ran a task (shed early)
            continue
        tasks += report.tasks
        busy_weighted += report.utilization * report.tasks
        delay_weighted += report.delay_stats.mean * report.tasks
        p95 = max(p95, report.delay_stats.p95)
        worst = max(worst, report.delay_stats.maximum)
    return {
        "experiments": n,
        "slots": result.slots_run,
        "promoted": sum(
            1 for o in result.outcomes.values() if o == OUTCOME_PROMOTED
        ),
        "shed": sum(1 for o in result.outcomes.values() if o == OUTCOME_SHED),
        "restarts": sum(result.restarts.values()),
        "engine_tasks": tasks,
        "cpu_utilization": busy_weighted / tasks if tasks else 0.0,
        "mean_delay_ms": (delay_weighted / tasks if tasks else 0.0) * 1000.0,
        "p95_delay_ms": p95 * 1000.0,
        "max_delay_ms": worst * 1000.0,
        "wall_s": wall,
    }


def test_fleet_scaling_curve():
    """Sweep fleet sizes; degradation must stay sub-linear and bounded."""
    rows = [measure(n) for n in FLEET_SIZES]

    # The dissertation's claim, one layer up: scaling the fleet by an
    # order of magnitude must not blow up per-check delay or wall-clock.
    total_wall = sum(row["wall_s"] for row in rows)
    assert total_wall <= MAX_WALL_SECONDS, (
        f"fleet sweep took {total_wall:.1f}s, over the "
        f"{MAX_WALL_SECONDS:.0f}s budget"
    )
    if not SMOKE:
        assert rows[-1]["experiments"] >= 100
    smallest, largest = rows[0], rows[-1]
    growth = largest["experiments"] / smallest["experiments"]
    if smallest["wall_s"] > 0.05:  # below that, timer noise dominates
        assert largest["wall_s"] <= smallest["wall_s"] * growth * 4.0, (
            "fleet wall-clock grew super-linearly: "
            f"{smallest['wall_s']:.2f}s @ {smallest['experiments']} vs "
            f"{largest['wall_s']:.2f}s @ {largest['experiments']}"
        )

    artifact = "BENCH fleet scale (Figs 4.7-4.10, fleet layer)"
    emit(artifact, format_rows(rows))
    report = {
        "smoke": SMOKE,
        "fleet_sizes": list(FLEET_SIZES),
        "rows": rows,
    }
    with open(os.path.join(OUTPUT_DIR, "BENCH_fleet_scale.json"), "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
