"""E10 — Fig 5.8: scenario 2 (breaking changes) nDCG@5 scores.

A pricing update fails a large share of requests, cascading errors into
its callers, next to benign changes.  Expected shape: the response-time
analysis and hybrid heuristics identify the breaking change (scores near
1.0), clearly beating pure structure; averaged over all sub-scenarios of
both scenarios the hybrid family is the best overall — the paper reports
a mean nDCG5 of ~0.94 for its best hybrid.
"""

import statistics

from _util import emit, format_rows

from repro.topology import all_heuristic_variants, evaluate_ranking, rank_changes
from repro.topology.scenarios import scenario1, scenario2


def run_scenario():
    rows = []
    all_scores: dict[str, list[float]] = {}
    for degraded in (False, True):
        scenario = scenario2(degraded=degraded)
        diff = scenario.diff()
        row = {"sub_scenario": "degraded" if degraded else "errors-only",
               "changes": len(diff.changes)}
        for name, heuristic in all_heuristic_variants().items():
            ranking = rank_changes(diff, heuristic)
            score = evaluate_ranking(ranking, scenario.relevance, k=5)
            row[name] = score
            all_scores.setdefault(name, []).append(score)
        rows.append(row)
    # Cross-scenario means (the paper's headline comparison).
    for maker, degraded in ((scenario1, False), (scenario1, True)):
        scenario = maker(degraded=degraded)
        diff = scenario.diff()
        for name, heuristic in all_heuristic_variants().items():
            ranking = rank_changes(diff, heuristic)
            all_scores[name].append(
                evaluate_ranking(ranking, scenario.relevance, k=5)
            )
    means = {name: statistics.mean(values) for name, values in all_scores.items()}
    return rows, means


def test_fig_5_8(benchmark):
    rows, means = benchmark.pedantic(run_scenario, rounds=1, iterations=1)
    emit("Fig 5.8 scenario 2 nDCG5 per heuristic", format_rows(rows))
    emit(
        "Combined mean nDCG5 across all four sub-scenarios",
        format_rows([{"heuristic": n, "mean_ndcg5": m} for n, m in means.items()]),
    )

    # RT/HY spot the breaking change nearly perfectly in scenario 2.
    for row in rows:
        assert row["RT-abs"] >= 0.9
        assert row["HY-abs"] >= 0.9
    # Overall winner shape: a hybrid scores best on average, at a level
    # comparable to the paper's 0.94.
    best = max(means, key=means.get)
    assert best in ("HY-abs", "HY-rel")
    assert means[best] >= 0.88
    # Structure-only is the weakest family on breaking changes.
    assert means["HY-rel"] > means["SC-plain"]
