"""Benchmark-suite configuration.

Benches are macro-benchmarks: each reproduces one table/figure of the
paper in a single measured round (``benchmark.pedantic`` with one
iteration) — re-running a multi-second evaluation dozens of times would
add nothing but wall-clock.
"""

import sys
from pathlib import Path

# Make the sibling helper importable regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).parent))
