"""Ablation — the uncertainty model behind the SC heuristic.

Chapter 5 assigns each change type a scalar uncertainty (new service >
new call to an existing endpoint > removed call, ...).  This ablation
compares the calibrated weights against a uniform model (every change
type alike — the SC-plain variant) and an *inverted* model (riskiest
types weighted lowest) across all four evaluation sub-scenarios.
Expected: calibrated > uniform > inverted — the ordering itself carries
the information.
"""

import statistics

from _util import emit, format_rows

from repro.topology.change_types import ChangeType
from repro.topology.heuristics import SubtreeComplexityHeuristic
from repro.topology.ranking import evaluate_ranking, rank_changes
from repro.topology.scenarios import scenario1, scenario2
from repro.topology.uncertainty import UncertaintyModel, uniform_uncertainty


def inverted_model() -> UncertaintyModel:
    default = UncertaintyModel()
    peak = max(default.weights.values())
    return UncertaintyModel(
        {ct: peak + 0.05 - w for ct, w in default.weights.items()}
    )


def run_ablation():
    scenarios = [
        scenario1(degraded=False),
        scenario1(degraded=True),
        scenario2(degraded=False),
        scenario2(degraded=True),
    ]
    diffs = [(s, s.diff()) for s in scenarios]
    models = {
        "calibrated": UncertaintyModel(),
        "uniform": uniform_uncertainty(),
        "inverted": inverted_model(),
    }
    rows = []
    for label, model in models.items():
        heuristic = SubtreeComplexityHeuristic(
            use_uncertainty=True, uncertainty=model
        )
        scores = [
            evaluate_ranking(rank_changes(diff, heuristic), s.relevance, k=5)
            for s, diff in diffs
        ]
        rows.append(
            {
                "uncertainty_model": label,
                "mean_ndcg5": statistics.mean(scores),
                **{s.name: score for (s, _), score in zip(diffs, scores)},
            }
        )
    return rows


def test_ablation_uncertainty(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit("Ablation: SC uncertainty weights", format_rows(rows))

    by_model = {row["uncertainty_model"]: row["mean_ndcg5"] for row in rows}
    assert by_model["calibrated"] > by_model["uniform"]
    assert by_model["calibrated"] > by_model["inverted"]
    # Sanity: the calibrated ordering matches the chapter's rationale.
    model = UncertaintyModel()
    assert (
        model.weight(ChangeType.CALLING_NEW_ENDPOINT)
        > model.weight(ChangeType.UPDATED_VERSION)
        > model.weight(ChangeType.UPDATED_CALLEE_VERSION)
        > model.weight(ChangeType.CALLING_EXISTING_ENDPOINT)
        > model.weight(ChangeType.UPDATED_CALLER_VERSION)
        > model.weight(ChangeType.REMOVING_SERVICE_CALL)
    )
