"""Ablation — feature toggles vs. runtime traffic routing.

Chapter 2 contrasts the two implementation techniques: toggles decide
in-process (no network overhead) but accumulate technical debt and tie
experiments to deployments; traffic routing treats services as black
boxes at the price of a proxy hop per routed call.  This ablation runs
the *same* canary experiment both ways and measures both sides of the
trade-off.
"""

from _util import emit, format_rows

from repro.microservices.runtime import Runtime
from repro.microservices.service import EndpointSpec, ServiceVersion
from repro.routing.proxy import VersionRouter
from repro.routing.rules import ExperimentRoute
from repro.routing.splitter import canary_split
from repro.simulation.latency import LogNormalLatency
from repro.stats.descriptive import mean
from repro.toggles.debt import assess_toggle_debt
from repro.toggles.router import ToggleRouter
from repro.topology.scenarios import sample_application
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

RATE = 50.0
DURATION = 120.0


def build_app():
    app = sample_application()
    stable = app.resolve("catalog")
    app.deploy(
        ServiceVersion(
            "catalog",
            "2.0.0",
            {
                "list": EndpointSpec(
                    "list",
                    LogNormalLatency(20.0, 0.25),
                    calls=stable.endpoint("list").calls,
                )
            },
            capacity_rps=stable.capacity_rps,
        )
    )
    return app


def run_variant(technique: str):
    app = build_app()
    if technique == "routing":
        router = VersionRouter()
        router.install(
            ExperimentRoute("canary", "catalog", canary_split("1.0.0", "2.0.0", 0.1))
        )
    elif technique == "toggles":
        router = ToggleRouter()
        router.start_experiment("catalog", "2.0.0", fraction=0.1)
    else:  # baseline: no experiment at all
        router = None
    runtime = Runtime(app, router=router, seed=31, proxy_overhead_ms=6.0)
    population = UserPopulation(600, DEFAULT_GROUPS, seed=32)
    workload = WorkloadGenerator(population, entry="frontend.index", seed=33)
    outcomes = [runtime.execute(r) for r in workload.poisson(RATE, DURATION)]
    canary_hits = sum(
        1 for o in outcomes if ("catalog", "2.0.0") in o.version_path
    )
    return {
        "technique": technique,
        "requests": len(outcomes),
        "mean_rt_ms": mean(o.duration_ms for o in outcomes),
        "canary_share": canary_hits / len(outcomes),
        "router": router,
    }


def run_experiment():
    return [run_variant(t) for t in ("baseline", "routing", "toggles")]


def test_ablation_toggles_vs_routing(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    by_name = {row["technique"]: row for row in results}
    rows = [
        {k: v for k, v in row.items() if k != "router"} for row in results
    ]
    emit("Ablation: toggles vs traffic routing (same canary)", format_rows(rows))

    baseline = by_name["baseline"]["mean_rt_ms"]
    routing = by_name["routing"]["mean_rt_ms"]
    toggles = by_name["toggles"]["mean_rt_ms"]
    # Both techniques enact the same canary share...
    assert by_name["routing"]["canary_share"] > 0.03
    assert by_name["toggles"]["canary_share"] > 0.03
    # ...but routing pays a visible proxy-hop overhead while the
    # toggle-based variant stays at baseline latency.
    assert routing - baseline > 2.0
    assert abs(toggles - baseline) < routing - baseline

    # The flip side: the toggle experiment left debt behind; the routed
    # experiment left the code and config surface untouched.
    toggle_router = by_name["toggles"]["router"]
    debt = assess_toggle_debt(toggle_router.store)
    assert debt.active == 1
    assert toggle_router.store.evaluations > 0
    emit(
        "Ablation: toggle debt after the experiment",
        format_rows(
            [
                {
                    "active_toggles": debt.active,
                    "toggle_evaluations": toggle_router.store.evaluations,
                    "state_space": debt.state_space,
                }
            ]
        ),
    )
