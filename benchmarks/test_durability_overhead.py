"""Durability sweep: journal + snapshot overhead and recovery cost.

Reproduces the crash-safety claim of the durability layer as a table:
the same catalog canary is run (a) without durability, (b) with the
write-ahead journal, (c) with journal + periodic snapshots/compaction,
and (d) with snapshots plus two mid-phase engine crashes.  Expected
shape: journaling adds modest wall-clock overhead over the bare engine,
snapshots bound the journal's length, and the crashed run still
completes with the same promoted version as every other regime.
"""

import time

from _util import emit, format_rows

from repro.bifrost import Bifrost, SnapshotPolicy
from repro.bifrost.model import Check, Phase, PhaseType, Strategy, StrategyOutcome
from repro.microservices.application import Application
from repro.microservices.faults import EngineCrash, FaultCampaign, FaultInjector
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.simulation.latency import LogNormalLatency
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

SEED = 41


def build_app() -> Application:
    """Frontend -> catalog shop with a catalog 2.0.0 canary candidate."""
    app = Application("shop")
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {
                "index": EndpointSpec(
                    "index",
                    LogNormalLatency(8.0, 0.2),
                    calls=(DownstreamCall("catalog", "list"),),
                )
            },
            capacity_rps=300.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "1.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(18.0, 0.25))},
            capacity_rps=300.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "2.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(16.0, 0.25))},
            capacity_rps=300.0,
        )
    )
    return app


def canary_strategy() -> Strategy:
    """A 120 s canary on catalog guarded by a user-facing error check."""
    return Strategy(
        "catalog-canary",
        (
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="catalog",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.3,
                duration_seconds=120.0,
                check_interval_seconds=10.0,
                deadline_seconds=500.0,
                checks=(
                    Check(
                        name="user-errors",
                        service="frontend",
                        version="1.0.0",
                        metric="error",
                        threshold=0.10,
                        window_seconds=25.0,
                    ),
                ),
            ),
        ),
    )


def run_regime(label: str, durable: bool, snapshot_policy=None, crashes=()):
    """One seeded canary run; returns its benchmark row."""
    app = build_app()
    kwargs = {"seed": SEED}
    if durable:
        kwargs["durable"] = True
        kwargs["snapshot_policy"] = snapshot_policy
    bifrost = Bifrost(app, **kwargs)
    if crashes:
        campaign = FaultCampaign(FaultInjector(app))
        for start, end in crashes:
            campaign.add(EngineCrash(start, end))
        bifrost.install_campaign(campaign)
    bifrost.submit(canary_strategy(), at=1.0)
    population = UserPopulation(300, DEFAULT_GROUPS, seed=SEED + 1)
    workload = WorkloadGenerator(population, entry="frontend.index", seed=SEED + 2)
    started = time.perf_counter()
    bifrost.run(workload.poisson(15.0, 160.0), until=260.0)
    elapsed = time.perf_counter() - started
    execution = bifrost.engine.executions[0]
    return {
        "regime": label,
        "wall_s": elapsed,
        "outcome": execution.outcome.value,
        "stable": app.stable_version("catalog"),
        "journal_records": len(bifrost.journal.records()) if durable else 0,
        "snapshots": bifrost.snapshots.taken if durable else 0,
        "restarts": bifrost.supervisor.restarts if durable else 0,
    }


def run_sweep():
    return [
        run_regime("bare engine", durable=False),
        run_regime("journal", durable=True),
        run_regime(
            "journal+snapshots",
            durable=True,
            snapshot_policy=SnapshotPolicy(every_records=5, compact=True),
        ),
        run_regime(
            "snapshots+2 crashes",
            durable=True,
            snapshot_policy=SnapshotPolicy(every_records=5, compact=True),
            crashes=((30.0, 45.0), (70.0, 85.0)),
        ),
    ]


def test_durability_overhead(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("Durability: journal/snapshot overhead and recovery", format_rows(rows))

    by_regime = {row["regime"]: row for row in rows}
    # Every regime promotes the same version with the same outcome.
    for row in rows:
        assert row["outcome"] == StrategyOutcome.COMPLETED.value
        assert row["stable"] == "2.0.0"
    # Compaction bounds the journal: the compacted log is shorter than
    # the full one.
    assert (
        by_regime["journal+snapshots"]["journal_records"]
        < by_regime["journal"]["journal_records"]
    )
    # The crashed run actually crashed and recovered, twice.
    assert by_regime["snapshots+2 crashes"]["restarts"] == 2
    # Journaling is not free, but stays within an order of magnitude of
    # the bare engine on this workload.
    assert by_regime["journal"]["wall_s"] < by_regime["bare engine"]["wall_s"] * 10
