"""Glass-box observability overhead: instrumented vs dark canary runs.

The observability layer promises a near-zero-cost no-op path: with no
observer attached every emission site short-circuits on a single
attribute check, and with one attached the per-event cost is a dataclass
append plus a couple of dict updates on engine *decisions* (ticks,
transitions, journal records) — never on the per-request hot path.
This bench pins that promise: the same durable canary is run dark and
instrumented — the instrumented config carrying the *full* glass-box
surface, including the decision-provenance fold and a ticking burn-rate
alert rule — the minimum wall-clock of several repetitions is compared,
and the relative overhead must stay within the budget.

Wall-clock on a shared box is noisy (identical runs spread by more than
the budget), so the estimator is noise-robust: dark/instrumented runs
alternate in order-balanced pairs, each config's floor is its minimum
over all repetitions (the quietest moment the machine offered), and
further batches of pairs are added until the floor ratio settles within
the budget or the batch allowance is exhausted.

``OBS_SMOKE=1`` switches to a reduced configuration for CI: fewer
repetitions and a shorter workload; the correctness assertions (equal
outcomes, equal routed version paths, events actually collected) always
hold, while the overhead bound is only enforced in the full run.
"""

import json
import os
import time

from _util import OUTPUT_DIR, emit, format_rows

from repro.bifrost import Bifrost, SnapshotPolicy
from repro.bifrost.model import Check, Phase, PhaseType, Strategy, StrategyOutcome
from repro.microservices.application import Application
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.obs import AlertRule, Observer
from repro.simulation.latency import LogNormalLatency
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

SMOKE = os.environ.get("OBS_SMOKE") == "1"
SEED = 23
PAIRS_PER_BATCH = 2 if SMOKE else 4
MAX_BATCHES = 1 if SMOKE else 4
RATE_RPS = 10.0 if SMOKE else 60.0
WORKLOAD_SECONDS = 160.0
RUN_UNTIL = 260.0
MAX_OVERHEAD = 0.05


def build_app() -> Application:
    """Frontend -> catalog shop with a catalog 2.0.0 canary candidate."""
    app = Application("shop")
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {
                "index": EndpointSpec(
                    "index",
                    LogNormalLatency(8.0, 0.2),
                    calls=(DownstreamCall("catalog", "list"),),
                )
            },
            capacity_rps=500.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "1.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(18.0, 0.25))},
            capacity_rps=500.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "2.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(16.0, 0.25))},
            capacity_rps=500.0,
        )
    )
    return app


def canary_strategy() -> Strategy:
    """A 120 s canary on catalog guarded by a user-facing error check."""
    return Strategy(
        "catalog-canary",
        (
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="catalog",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.3,
                duration_seconds=120.0,
                check_interval_seconds=10.0,
                deadline_seconds=500.0,
                checks=(
                    Check(
                        name="user-errors",
                        service="frontend",
                        version="1.0.0",
                        metric="error",
                        threshold=0.10,
                        window_seconds=25.0,
                    ),
                ),
            ),
        ),
    )


def run_once(observer: Observer | None):
    """One seeded durable canary; returns (wall_s, outcome, paths, events)."""
    app = build_app()
    bifrost = Bifrost(
        app,
        seed=SEED,
        durable=True,
        snapshot_policy=SnapshotPolicy(every_records=5, compact=True),
        observer=observer,
    )
    if observer is not None:
        # The instrumented config carries the full PR-10 surface: the
        # provenance fold rides on the observer, and a burn-rate rule
        # over the canary ticks every 10 s of logical time.
        bifrost.enable_alerts(
            [
                AlertRule(
                    name="catalog-slo",
                    service="catalog",
                    version="2.0.0",
                    objective=0.99,
                    fast_window=30.0,
                    slow_window=120.0,
                )
            ],
            interval=10.0,
        )
    bifrost.submit(canary_strategy(), at=1.0)
    population = UserPopulation(300, DEFAULT_GROUPS, seed=SEED + 1)
    workload = WorkloadGenerator(population, entry="frontend.index", seed=SEED + 2)
    started = time.perf_counter()
    outcomes = bifrost.run(
        workload.poisson(RATE_RPS, WORKLOAD_SECONDS), until=RUN_UNTIL
    )
    wall = time.perf_counter() - started
    execution = bifrost.engine.executions[0]
    paths = [o.version_path for o in outcomes]
    events = len(observer.events) if observer is not None else 0
    stats = {"evidence": 0, "decisions": 0, "alert_evaluations": 0}
    if observer is not None:
        graph = observer.provenance.graph()
        stats = {
            "evidence": sum(
                len(s.evidence) for s in graph.strategies.values()
            ),
            "decisions": sum(
                len(s.decisions) for s in graph.strategies.values()
            ),
            "alert_evaluations": bifrost.alert_engine.evaluations,
        }
    return wall, execution.outcome, paths, events, stats


def test_observer_overhead_within_budget():
    """Instrumentation stays within the wall-clock overhead budget."""
    dark_walls: list[float] = []
    lit_walls: list[float] = []
    dark_outcome = lit_outcome = None
    dark_paths = lit_paths = None
    events = 0
    stats = {}
    run_once(None)  # warmup: imports, allocator, branch caches
    pair = 0
    for batch in range(MAX_BATCHES):
        for _ in range(PAIRS_PER_BATCH):
            configs = [("dark", None), ("lit", Observer(enabled=True))]
            if pair % 2:  # order-balanced: drift hits both configs alike
                configs.reverse()
            pair += 1
            for tag, observer in configs:
                wall, outcome, paths, collected, run_stats = run_once(observer)
                if tag == "dark":
                    dark_walls.append(wall)
                    dark_outcome, dark_paths = outcome, paths
                else:
                    lit_walls.append(wall)
                    lit_outcome, lit_paths, events = outcome, paths, collected
                    stats = run_stats
        if min(lit_walls) / min(dark_walls) - 1.0 <= MAX_OVERHEAD:
            break  # the floors already agree within budget

    dark = min(dark_walls)
    lit = min(lit_walls)
    overhead = lit / dark - 1.0

    # Correctness must be untouched by instrumentation, always.
    assert dark_outcome == StrategyOutcome.COMPLETED
    assert lit_outcome == dark_outcome
    assert lit_paths == dark_paths
    assert events > 0
    # The instrumented run really carried the PR-10 surface: the
    # provenance fold saw evidence and a terminal decision, and the
    # burn-rate engine actually ticked.
    assert stats["evidence"] > 0
    assert stats["decisions"] > 0
    assert stats["alert_evaluations"] > 0

    rows = [
        {"config": "dark (no observer)", "wall_s": dark, "events": 0},
        {"config": "instrumented", "wall_s": lit, "events": events},
        {
            "config": "overhead",
            "wall_s": lit - dark,
            "events": f"{overhead * 100.0:+.2f}%",
        },
    ]
    emit("Glass-box observability overhead", format_rows(rows))
    report = {
        "smoke": SMOKE,
        "pairs": pair,
        "dark_wall_s": dark,
        "instrumented_wall_s": lit,
        "overhead_fraction": overhead,
        "events_collected": events,
        "budget_fraction": MAX_OVERHEAD,
        "provenance_evidence": stats["evidence"],
        "provenance_decisions": stats["decisions"],
        "alert_evaluations": stats["alert_evaluations"],
    }
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, "BENCH_obs_overhead.json"), "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    if not SMOKE:
        assert overhead <= MAX_OVERHEAD, (
            f"observability overhead {overhead * 100.0:.2f}% exceeds "
            f"{MAX_OVERHEAD * 100.0:.0f}% budget"
        )
