"""Shared helpers for the benchmark harness.

Every bench reproduces one table or figure of the dissertation: it runs
the workload, prints the reproduced rows/series (visible with ``-s``),
and persists them under ``benchmarks/output/`` so the artifacts survive
the run.
"""

from __future__ import annotations

import os
from typing import Iterable, Mapping

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def emit(artifact: str, text: str) -> None:
    """Print a reproduced artifact and persist it to disk."""
    banner = f"\n===== {artifact} ====="
    print(banner)
    print(text)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    safe = artifact.replace(" ", "_").replace("/", "-")
    with open(os.path.join(OUTPUT_DIR, f"{safe}.txt"), "w") as handle:
        handle.write(text + "\n")


def format_rows(rows: Iterable[Mapping[str, object]]) -> str:
    """Render dict rows as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    columns = list(rows[0])
    widths = {
        column: max(len(str(column)), *(len(_fmt(row[column])) for row in rows))
        for column in columns
    }
    lines = ["  ".join(str(c).ljust(widths[c]) for c in columns)]
    for row in rows:
        lines.append("  ".join(_fmt(row[c]).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_series(series: Iterable[tuple[object, object]], header: str) -> str:
    """Render an (x, y) series as two aligned columns."""
    lines = [header]
    for x, y in series:
        lines.append(f"{_fmt(x):>12s}  {_fmt(y)}")
    return "\n".join(lines)
