"""Ablation — analysis granularity: endpoint level vs service level.

Section 1.5.1 frames granularity as a core trade-off of taming
uncertainty: "should changes be considered on the level of individual
service endpoints, or is it better to treat them in an aggregated way on
the service level?".  This ablation runs the same diff + ranking at both
granularities on large synthetic graphs and quantifies the trade:
service-level graphs are an order of magnitude smaller and faster while
reporting fewer, coarser changes.
"""

import time

from _util import emit, format_rows

from repro.topology import (
    aggregate_to_service_level,
    all_heuristic_variants,
    diff_graphs,
    mutate_graph,
    random_interaction_graph,
    rank_changes,
)

SIZES = (2000, 10000)


def measure(base, variant, label, size):
    started = time.perf_counter()
    diff = diff_graphs(base, variant)
    heuristic = all_heuristic_variants()["HY-abs"]
    rank_changes(diff, heuristic)
    elapsed = time.perf_counter() - started
    return {
        "endpoints": size,
        "granularity": label,
        "nodes": base.node_count,
        "changes_found": len(diff.changes),
        "analysis_s": elapsed,
    }


def run_ablation():
    rows = []
    for size in SIZES:
        base = random_interaction_graph(
            size, branching=3, seed=1, endpoints_per_service=10
        )
        variant = mutate_graph(base, changes=size // 100, seed=2)
        rows.append(measure(base, variant, "endpoint", size))
        rows.append(
            measure(
                aggregate_to_service_level(base),
                aggregate_to_service_level(variant),
                "service",
                size,
            )
        )
    return rows


def test_ablation_granularity(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit("Ablation: endpoint vs service granularity", format_rows(rows))

    for size in SIZES:
        fine = next(
            r for r in rows
            if r["endpoints"] == size and r["granularity"] == "endpoint"
        )
        coarse = next(
            r for r in rows
            if r["endpoints"] == size and r["granularity"] == "service"
        )
        # Aggregation shrinks the graph by the endpoints-per-service
        # factor and never reports more changes.
        assert coarse["nodes"] * 5 <= fine["nodes"]
        assert coarse["changes_found"] <= fine["changes_found"]
        assert coarse["changes_found"] > 0  # mutations stay visible
        # The coarse analysis is not slower.
        assert coarse["analysis_s"] <= fine["analysis_s"] + 0.05
