"""E11 — Figs 5.9 + 5.10: heuristic execution times on growing graphs.

Measures diff construction and heuristic ranking on synthetic
interaction graphs of up to 10,000 endpoints, for deep and broad shapes
and two change frequencies.  Expected shape (Section 5.8): all variants
analyze 4,000-endpoint graphs within one second and 10,000-endpoint
graphs within five seconds, and the change frequency does not materially
affect execution time.
"""

import time

from _util import emit, format_rows

from repro.topology import (
    all_heuristic_variants,
    diff_graphs,
    mutate_graph,
    random_interaction_graph,
    rank_changes,
)

SIZES = (1000, 4000, 10000)
SHAPES = {"deep": 2, "broad": 8}


def run_measurements():
    rows = []
    for size in SIZES:
        for shape, branching in SHAPES.items():
            for frequency_label, changes in (("low", 10), ("high", size // 50)):
                base = random_interaction_graph(size, branching=branching, seed=1)
                variant = mutate_graph(base, changes=changes, seed=2)
                started = time.perf_counter()
                diff = diff_graphs(base, variant)
                diff_seconds = time.perf_counter() - started
                row = {
                    "endpoints": size,
                    "shape": shape,
                    "change_freq": frequency_label,
                    "changes_found": len(diff.changes),
                    "diff_s": diff_seconds,
                }
                for name, heuristic in all_heuristic_variants().items():
                    started = time.perf_counter()
                    rank_changes(diff, heuristic)
                    row[name + "_s"] = time.perf_counter() - started
                rows.append(row)
    return rows


def test_fig_5_9_5_10(benchmark):
    rows = benchmark.pedantic(run_measurements, rounds=1, iterations=1)
    emit("Figs 5.9/5.10 heuristic execution times", format_rows(rows))

    variant_columns = [name + "_s" for name in all_heuristic_variants()]
    for row in rows:
        total = row["diff_s"] + max(row[c] for c in variant_columns)
        if row["endpoints"] <= 4000:
            assert total <= 1.0, f"4k-endpoint analysis exceeded 1 s: {row}"
        else:
            assert total <= 5.0, f"10k-endpoint analysis exceeded 5 s: {row}"

    # Change frequency does not materially change heuristic runtimes.
    for size in SIZES:
        for shape in SHAPES:
            low = next(
                r for r in rows
                if r["endpoints"] == size and r["shape"] == shape
                and r["change_freq"] == "low"
            )
            high = next(
                r for r in rows
                if r["endpoints"] == size and r["shape"] == shape
                and r["change_freq"] == "high"
            )
            for column in variant_columns:
                assert high[column] <= low[column] + 1.0
