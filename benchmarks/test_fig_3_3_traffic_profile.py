"""E1 — Fig 3.3: example traffic profile and traffic consumption.

Reproduces the figure's two series: the available traffic volume per
hourly slot (diurnal/weekly shape) and the volume consumed by a small
set of scheduled experiments.
"""

from _util import emit, format_rows

from repro.fenrir import Fenrir, GeneticAlgorithm, SampleSizeBand, random_experiments
from repro.traffic.profile import consumption_series, diurnal_profile


def run_experiment():
    profile = diurnal_profile(days=7, peak_volume=60_000, seed=7)
    experiments = random_experiments(
        profile, count=3, band=SampleSizeBand.MEDIUM, seed=11
    )
    result = Fenrir(GeneticAlgorithm(population_size=16)).schedule(
        profile, experiments, budget=600, seed=1
    )
    series = consumption_series(profile, result.schedule.consumption_per_slot())
    return profile, result, series


def test_fig_3_3(benchmark):
    profile, result, series = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    assert result.valid, "the 3-experiment schedule must be valid"
    consumed_total = sum(consumed for _, consumed in series)
    available_total = sum(available for available, _ in series)
    # Consumption must stay within availability — in every slot.
    assert all(consumed <= available + 1e-6 for available, consumed in series)
    assert 0 < consumed_total < available_total

    rows = [
        {
            "slot": slot,
            "available": available,
            "consumed": consumed,
            "utilisation_pct": 100.0 * consumed / available if available else 0.0,
        }
        for slot, (available, consumed) in enumerate(series)
        if slot < 48  # first two days, matching the figure's granularity
    ]
    emit(
        "Fig 3.3 traffic profile and consumption (first 48 hourly slots)",
        format_rows(rows),
    )
