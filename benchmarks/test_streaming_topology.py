"""P4 — Live health: streaming topology updates vs. batch rebuilds.

The batch pipeline answers "how healthy is the rollout right now" by
rebuilding the interaction graph from every collected trace and diffing
it against the baseline from scratch.  The streaming pipeline folds each
completed trace into the live graph incrementally and refreshes the diff
through pinned baseline indexes.  Both produce identical graphs and
identical diffs over the same trace stream — this bench measures the
cost gap at a 2k-endpoint topology and asserts the streaming path is at
least 5× faster end to end.

``STREAMING_SMOKE=1`` switches to a reduced configuration for CI: the
exactness assertions stay, the timing assertion is skipped (shared
runners make wall-clock ratios meaningless).
"""

from __future__ import annotations

import json
import os
import random
import time

from _util import OUTPUT_DIR, emit, format_rows

from repro.topology.builder import build_interaction_graph
from repro.topology.diff import diff_graphs
from repro.topology.streaming import (
    LiveTopologyDiff,
    StreamingGraphBuilder,
    graphs_equal,
)
from repro.tracing.span import Span
from repro.tracing.trace import Trace

SMOKE = os.environ.get("STREAMING_SMOKE") == "1"
SERVICES = 20 if SMOKE else 100
ENDPOINTS_PER_SERVICE = 20          # SERVICES * 20 endpoints total
BASELINE_TRACES = 60 if SMOKE else 300
STREAM_TRACES = 40 if SMOKE else 320
SPANS_PER_TRACE = 15
PUBLISH_EVERY = 10                  # diff refresh cadence (traces)
MIN_SPEEDUP = 5.0


def endpoint_pool() -> list[tuple[str, str]]:
    return [
        (f"svc{s:03d}", f"ep{e:02d}")
        for s in range(SERVICES)
        for e in range(ENDPOINTS_PER_SERVICE)
    ]


def make_trace(
    trace_id: str,
    rng: random.Random,
    pool: list[tuple[str, str]],
    start: float,
    version: str = "1.0.0",
    first: tuple[str, str] | None = None,
) -> Trace:
    """A random tree trace whose spans draw node keys from *pool*."""
    spans = [
        Span(
            span_id=f"{trace_id}-s0",
            trace_id=trace_id,
            parent_id=None,
            service="gateway",
            version="1.0.0",
            endpoint="entry",
            start=start,
            duration_ms=rng.uniform(1.0, 5.0),
        )
    ]
    for i in range(1, SPANS_PER_TRACE):
        service, endpoint = (
            first if first is not None and i == 1 else rng.choice(pool)
        )
        spans.append(
            Span(
                span_id=f"{trace_id}-s{i}",
                trace_id=trace_id,
                parent_id=f"{trace_id}-s{rng.randint(0, i - 1)}",
                service=service,
                version=version,
                endpoint=endpoint,
                start=start + i * 0.001,
                duration_ms=rng.uniform(1.0, 40.0),
                error=rng.random() < 0.02,
            )
        )
    return Trace(trace_id, spans)


def build_corpus():
    pool = endpoint_pool()
    rng = random.Random(7)
    # Baseline covers every endpoint at least once (cycled through the
    # `first` slot), so the pinned graph really has 2k endpoints.
    baseline_traces = [
        make_trace(
            f"b{i}", rng, pool, start=float(i), first=pool[i % len(pool)]
        )
        for i in range(max(BASELINE_TRACES, len(pool) // (SPANS_PER_TRACE - 1)))
    ]
    stream = [
        make_trace(
            f"x{i}",
            rng,
            pool,
            start=1000.0 + i,
            version="2.0.0" if i % 3 == 0 else "1.0.0",
        )
        for i in range(STREAM_TRACES)
    ]
    baseline = build_interaction_graph(baseline_traces, name="baseline")
    return baseline, stream


def run_comparison():
    baseline, stream = build_corpus()

    def streaming_pipeline():
        builder = StreamingGraphBuilder()
        live = LiveTopologyDiff(baseline, builder)
        for i, trace in enumerate(stream):
            builder.on_trace(trace)
            if (i + 1) % PUBLISH_EVERY == 0:
                live.current()
        return builder.graph, live.current()

    def batch_pipeline():
        seen = []
        graph = None
        diff = None
        for i, trace in enumerate(stream):
            seen.append(trace)
            graph = build_interaction_graph(seen, name="rebuilt")
            if (i + 1) % PUBLISH_EVERY == 0:
                diff = diff_graphs(baseline, graph)
        return graph, diff_graphs(baseline, graph) if diff is None else diff

    t0 = time.perf_counter()
    stream_graph, stream_diff = streaming_pipeline()
    t_stream = time.perf_counter() - t0

    t0 = time.perf_counter()
    batch_graph, batch_diff = batch_pipeline()
    t_batch = time.perf_counter() - t0

    # Exactness: same graph, same diff, regardless of which path ran.
    assert graphs_equal(stream_graph, batch_graph), (
        "streaming graph diverged from batch rebuild"
    )
    assert [c.identity for c in stream_diff.changes] == [
        c.identity for c in batch_diff.changes
    ], "live diff diverged from batch diff"

    return {
        "endpoints": SERVICES * ENDPOINTS_PER_SERVICE,
        "baseline_nodes": baseline.node_count,
        "stream_traces": len(stream),
        "publish_every": PUBLISH_EVERY,
        "stream_wall_s": t_stream,
        "batch_wall_s": t_batch,
        "speedup": t_batch / t_stream,
        "changes_detected": len(stream_diff.changes),
        "smoke": SMOKE,
    }


def test_streaming_vs_rebuild(benchmark):
    report = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = [
        {"metric": "endpoints", "value": report["endpoints"]},
        {"metric": "stream traces", "value": report["stream_traces"]},
        {"metric": "streaming wall s", "value": report["stream_wall_s"]},
        {"metric": "batch rebuild wall s", "value": report["batch_wall_s"]},
        {"metric": "speedup", "value": report["speedup"]},
        {"metric": "changes detected", "value": report["changes_detected"]},
    ]
    emit("Streaming topology vs batch rebuild", format_rows(rows))
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(
        os.path.join(OUTPUT_DIR, "BENCH_streaming_topology.json"), "w"
    ) as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    assert report["changes_detected"] > 0
    if not SMOKE:
        assert report["speedup"] >= MIN_SPEEDUP, (
            f"streaming speedup {report['speedup']:.2f}x below {MIN_SPEEDUP}x"
        )
