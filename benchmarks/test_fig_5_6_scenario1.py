"""E9 — Fig 5.6: scenario 1 nDCG@5 scores for all heuristic variants.

The sample-application release scenario (the recommendation feature) is
evaluated with and without introduced performance degradation.  Expected
shape: for the no-degradation case the structure-driven SC heuristic is
the strongest single variant; with degradation the hybrids move ahead —
no variant wins everywhere, which is exactly the paper's argument for
letting engineers toggle heuristics.
"""

from _util import emit, format_rows

from repro.topology import all_heuristic_variants, evaluate_ranking, rank_changes
from repro.topology.scenarios import scenario1


def run_scenario():
    rows = []
    scores = {}
    for degraded in (False, True):
        scenario = scenario1(degraded=degraded)
        diff = scenario.diff()
        row = {"sub_scenario": "degraded" if degraded else "healthy",
               "changes": len(diff.changes)}
        for name, heuristic in all_heuristic_variants().items():
            ranking = rank_changes(diff, heuristic)
            score = evaluate_ranking(ranking, scenario.relevance, k=5)
            row[name] = score
            scores[(degraded, name)] = score
        rows.append(row)
    return rows, scores


def test_fig_5_6(benchmark):
    rows, scores = benchmark.pedantic(run_scenario, rounds=1, iterations=1)
    emit("Fig 5.6 scenario 1 nDCG5 per heuristic", format_rows(rows))

    variant_names = list(all_heuristic_variants())
    # All rankings are meaningful (well above random shuffling).
    assert all(scores[(d, n)] > 0.4 for d in (False, True) for n in variant_names)
    # Without degradation, the uncertainty-weighted SC heuristic is the
    # best single variant (the paper's "no hybrid wins the healthy case").
    healthy_best = max(variant_names, key=lambda n: scores[(False, n)])
    assert healthy_best == "SC"
    # With degradation, behavioural evidence helps: some RT/HY variant
    # beats plain structure.
    assert max(
        scores[(True, n)] for n in ("RT-abs", "RT-rel", "HY-abs", "HY-rel")
    ) > scores[(True, "SC-plain")]
