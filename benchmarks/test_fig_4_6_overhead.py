"""E6 — Fig 4.6 + Table 4.1: end-user overhead of Bifrost.

Runs the dissertation's four-phase strategy (canary → dark launch → A/B
test → gradual rollout) on the simulated case-study application, once
with and once without Bifrost's routing deployed, and compares end-user
response times per phase.

Expected shape (Section 4.5.1): a small constant overhead overall
(paper: ~8 ms on their testbed); the *lowest* overhead during the A/B
phase (traffic splitting load-balances the experimental service; paper:
~4 ms), and a visibly *higher* impact during the dark launch (traffic
duplication raises load on the downstream services the experimental
version calls — the cascading effect the paper cautions about).
"""

from _util import emit, format_rows, format_series

from repro.bifrost import Bifrost
from repro.microservices.application import Application
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.simulation.latency import LoadSensitiveLatency, LogNormalLatency
from repro.stats.descriptive import mean, summarize
from repro.stats.timeseries import TimeSeries
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

STRATEGY = """
strategy four-phase
  phase canary
    type canary
    service recommend
    stable 1.0.0
    experimental 2.0.0
    fraction 0.05
    duration 100
    interval 10
    on_success dark
    on_failure rollback
  phase dark
    type dark_launch
    service recommend
    stable 1.0.0
    experimental 2.0.0
    duration 100
    interval 10
    on_success ab
    on_failure rollback
  phase ab
    type ab_test
    service recommend
    stable 1.0.0
    experimental 2.0.0
    second 2.1.0
    fraction 0.5
    duration 100
    interval 10
    on_success rollout
    on_failure rollback
  phase rollout
    type gradual_rollout
    service recommend
    stable 1.0.0
    experimental 2.0.0
    steps 0.25, 0.5, 1.0
    duration 100
    interval 10
    on_success complete
    on_failure rollback
"""

RATE = 60.0
DURATION = 420.0
PHASES = [
    ("canary", 5.0, 105.0),
    ("dark", 105.0, 205.0),
    ("ab", 205.0, 305.0),
    ("rollout", 305.0, 405.0),
]


def build_application() -> Application:
    """The case-study app: recommend runs near nominal capacity."""
    app = Application("case-study")

    def endpoint(name, median, calls=(), pressure=0.6):
        return EndpointSpec(
            name,
            LoadSensitiveLatency(LogNormalLatency(median, 0.2), pressure),
            0.0,
            calls,
        )

    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {
                "index": endpoint(
                    "index",
                    10,
                    (
                        DownstreamCall("catalog", "list"),
                        DownstreamCall("recommend", "suggest"),
                    ),
                )
            },
            capacity_rps=300,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "1.0.0",
            {"list": endpoint("list", 15, pressure=2.5)},
            capacity_rps=100,
        ),
        stable=True,
    )
    for version in ("1.0.0", "2.0.0", "2.1.0"):
        app.deploy(
            ServiceVersion(
                "recommend",
                version,
                {
                    "suggest": endpoint(
                        "suggest",
                        20.0,
                        (DownstreamCall("catalog", "list", probability=0.5),),
                        pressure=2.5,
                    )
                },
                capacity_rps=55,
            ),
            stable=(version == "1.0.0"),
        )
    return app


def run_once(with_bifrost: bool):
    app = build_application()
    bifrost = Bifrost(app, seed=5, proxy_overhead_ms=6.0)
    execution = bifrost.submit(STRATEGY, at=5.0) if with_bifrost else None
    population = UserPopulation(800, DEFAULT_GROUPS, seed=6)
    workload = WorkloadGenerator(population, entry="frontend.index", seed=7)
    outcomes = bifrost.run(workload.poisson(RATE, DURATION), until=DURATION + 10)
    return outcomes, execution


def run_experiment():
    baseline, _ = run_once(with_bifrost=False)
    experimental, execution = run_once(with_bifrost=True)
    return baseline, experimental, execution


def _phase_mean(outcomes, start, end):
    return mean(
        o.duration_ms for o in outcomes if start <= o.request.timestamp < end
    )


def test_fig_4_6_table_4_1(benchmark):
    baseline, experimental, execution = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    assert execution is not None
    assert execution.outcome.value == "completed"

    rows = []
    overheads = {}
    for name, start, end in PHASES:
        base_mean = _phase_mean(baseline, start, end)
        exp_mean = _phase_mean(experimental, start, end)
        overheads[name] = exp_mean - base_mean
        rows.append(
            {
                "phase": name,
                "baseline_ms": base_mean,
                "bifrost_ms": exp_mean,
                "overhead_ms": exp_mean - base_mean,
            }
        )
    overall = _phase_mean(experimental, 5, 405) - _phase_mean(baseline, 5, 405)
    rows.append(
        {
            "phase": "overall",
            "baseline_ms": _phase_mean(baseline, 5, 405),
            "bifrost_ms": _phase_mean(experimental, 5, 405),
            "overhead_ms": overall,
        }
    )
    emit("Fig 4.6 per-phase end-user overhead", format_rows(rows))

    # Table 4.1: response-time summary statistics of both runs.
    stats_rows = []
    for label, outcomes in (("baseline", baseline), ("bifrost", experimental)):
        stats = summarize([o.duration_ms for o in outcomes]).as_row()
        stats["run"] = label
        stats_rows.append(stats)
    emit("Table 4.1 response time statistics (ms)", format_rows(stats_rows))

    # Fig 4.6's moving-average series (3-second buckets).
    series = TimeSeries("bifrost-rt")
    for outcome in experimental:
        series.append(outcome.request.timestamp, outcome.duration_ms)
    emit(
        "Fig 4.6 3s moving average of monitored response times (Bifrost run)",
        format_series(series.resample(3.0)[:60], "bucket_start_s  mean_rt_ms"),
    )

    # Shape assertions.
    assert 3.0 <= overall <= 15.0, "small constant overall overhead"
    assert overheads["ab"] < overheads["canary"], "A/B load-balancing effect"
    assert overheads["dark"] > overheads["canary"], "dark-launch duplication cost"
    assert overheads["dark"] == max(overheads.values())
