"""E2 — Fig 3.4 + Table 3.2: fitness scores for scheduling 15 experiments.

Runs all four algorithms on the same 15-experiment instance across
several seeds under an equal fitness-evaluation budget and reports the
fitness statistics the paper tabulates.  Expected shape: the genetic
algorithm scores highest; random sampling trails.
"""

import statistics

from _util import emit, format_rows

from repro.fenrir import (
    Fenrir,
    GeneticAlgorithm,
    LocalSearch,
    RandomSampling,
    SampleSizeBand,
    SimulatedAnnealing,
    random_experiments,
)
from repro.traffic.profile import diurnal_profile

SEEDS = (1, 2, 3, 4, 5)
BUDGET = 1200


def run_comparison():
    profile = diurnal_profile(days=7, seed=3)
    experiments = random_experiments(
        profile, count=15, band=SampleSizeBand.MEDIUM, seed=4
    )
    algorithms = [
        GeneticAlgorithm(population_size=20),
        RandomSampling(),
        LocalSearch(),
        SimulatedAnnealing(),
    ]
    results = {}
    for algorithm in algorithms:
        fits, times = [], []
        for seed in SEEDS:
            result = Fenrir(algorithm).schedule(
                profile, experiments, budget=BUDGET, seed=seed
            )
            fits.append(result.fitness)
            times.append(result.search.time_to_best_s)
        results[algorithm.name] = (fits, times)
    return results


def test_fig_3_4_table_3_2(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = []
    for name, (fits, times) in results.items():
        rows.append(
            {
                "algorithm": name,
                "mean_fitness": statistics.mean(fits),
                "min_fitness": min(fits),
                "max_fitness": max(fits),
                "stdev": statistics.stdev(fits),
                "mean_time_to_best_s": statistics.mean(times),
            }
        )
    emit("Table 3.2 / Fig 3.4 fitness for 15 experiments", format_rows(rows))

    means = {name: statistics.mean(fits) for name, (fits, _) in results.items()}
    # Shape check: the GA dominates random sampling and annealing, and
    # every algorithm finds reasonable schedules on this mid-size instance.
    assert means["genetic"] >= means["random"]
    assert means["genetic"] >= means["annealing"]
    assert all(mean > 0.5 for mean in means.values())
