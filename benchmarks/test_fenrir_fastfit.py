"""P1 — Fast Fenrir: evaluation throughput of the fastfit layer.

Measures fitness evaluations per second on the 15-experiment instance of
Fig 3.4 under the seed evaluator (full recomputation per candidate) and
under the fastfit delta path, on the workload search algorithms actually
generate: single-gene neighborhood proposals around an evolving
incumbent.  The delta path must be **bit-identical** to full evaluation
at every step and at least 3× faster; memo-cache behaviour and the GA's
end-to-end wall time are reported alongside.

``FASTFIT_SMOKE=1`` switches to a reduced configuration for CI: the
exactness assertions stay, the timing assertion is skipped (shared
runners make throughput ratios meaningless).
"""

from __future__ import annotations

import json
import os
import time

from _util import OUTPUT_DIR, emit, format_rows

from repro.fenrir import (
    DeltaEvaluator,
    GeneticAlgorithm,
    SEED_OPTIONS,
    SampleSizeBand,
    evaluate,
    random_experiments,
)
from repro.fenrir.model import SchedulingProblem
from repro.fenrir.operators import mutate_gene, random_schedule
from repro.simulation.rng import SeededRng
from repro.traffic.profile import diurnal_profile

SMOKE = os.environ.get("FASTFIT_SMOKE") == "1"
STEPS = 300 if SMOKE else 2000
REPEATS = 2 if SMOKE else 5
GA_BUDGET = 300 if SMOKE else 1200
MIN_SPEEDUP = 3.0


def build_problem() -> SchedulingProblem:
    profile = diurnal_profile(days=7, seed=3)
    experiments = random_experiments(
        profile, count=15, band=SampleSizeBand.MEDIUM, seed=4
    )
    return SchedulingProblem(profile, experiments)


def build_workload(problem: SchedulingProblem, steps: int):
    """Hill-climbing proposal sequence: (parent, child, changed) per step.

    Deterministic, and precomputed so the timed loops only evaluate.
    """
    rng = SeededRng(11)
    current = random_schedule(problem, rng)
    current_eval = evaluate(current)
    out = []
    while len(out) < steps:
        index = rng.randint(0, len(current.genes) - 1)
        mutated = mutate_gene(
            problem, problem.experiments[index], current.genes[index], rng
        )
        if mutated == current.genes[index]:  # repair produced a no-op
            continue
        child = current.replaced(index, mutated)
        out.append((current, child, frozenset({index})))
        child_eval = evaluate(child)
        if child_eval.penalized >= current_eval.penalized:
            current, current_eval = child, child_eval
    return out


def best_time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_throughput():
    problem = build_problem()
    steps = build_workload(problem, STEPS)

    # Exactness first: every delta evaluation must equal the full one.
    # Priming with the starting schedule puts its state in the store, so
    # every subsequent proposal has a known parent.
    delta = DeltaEvaluator(problem)
    delta.evaluate(steps[0][0])
    delta_used = 0
    for parent, child, changed in steps:
        got, used_delta = delta.evaluate(child, parent=parent, changed=changed)
        delta_used += used_delta
        assert got == evaluate(child), "delta evaluation diverged from full"

    def seed_loop():
        for _, child, _ in steps:
            evaluate(child)

    def fastfit_loop():
        evaluator = DeltaEvaluator(problem)
        evaluator.evaluate(steps[0][0])
        for parent, child, changed in steps:
            evaluator.evaluate(child, parent=parent, changed=changed)

    t_seed = best_time(seed_loop, REPEATS)
    t_fast = best_time(fastfit_loop, REPEATS)

    # Memoization: replaying the identical proposals through the GA's
    # evaluator layer answers repeats from cache.
    ga = GeneticAlgorithm(population_size=20)
    t0 = time.perf_counter()
    default_run = ga.optimize(problem, budget=GA_BUDGET, seed=1)
    t_ga_default = time.perf_counter() - t0
    t0 = time.perf_counter()
    ga.optimize(problem, budget=GA_BUDGET, seed=1, options=SEED_OPTIONS)
    t_ga_seed = time.perf_counter() - t0
    stats = default_run.eval_stats

    return {
        "steps": len(steps),
        "delta_evals": delta_used,
        "seed_evals_per_s": len(steps) / t_seed,
        "fastfit_evals_per_s": len(steps) / t_fast,
        "speedup": t_seed / t_fast,
        "ga_default_wall_s": t_ga_default,
        "ga_seed_options_wall_s": t_ga_seed,
        "ga_stats": stats.as_dict(),
        "ga_cache_hit_rate": stats.cache_hits
        / max(1, stats.cache_hits + stats.computed_evals),
    }


def test_fastfit_throughput(benchmark):
    report = benchmark.pedantic(run_throughput, rounds=1, iterations=1)
    rows = [
        {"metric": "seed evals/s", "value": report["seed_evals_per_s"]},
        {"metric": "fastfit evals/s", "value": report["fastfit_evals_per_s"]},
        {"metric": "speedup", "value": report["speedup"]},
        {"metric": "delta share", "value": report["delta_evals"] / report["steps"]},
        {"metric": "GA wall s (default)", "value": report["ga_default_wall_s"]},
        {"metric": "GA wall s (seed opts)", "value": report["ga_seed_options_wall_s"]},
        {"metric": "GA cache hit rate", "value": report["ga_cache_hit_rate"]},
    ]
    emit("Fastfit evaluation throughput (15 experiments)", format_rows(rows))
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, "BENCH_fenrir_fastfit.json"), "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    # Every proposal differs from its parent in one gene, so all of them
    # should flow through the delta path.
    assert report["delta_evals"] == report["steps"]
    if not SMOKE:
        assert report["speedup"] >= MIN_SPEEDUP, (
            f"fastfit speedup {report['speedup']:.2f}x below {MIN_SPEEDUP}x"
        )
