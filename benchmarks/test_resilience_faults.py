"""Resilience sweep: one canary strategy, three fault regimes.

Reproduces the robustness claim of the resilience layer as a table: the
same catalog canary with per-call retries and circuit breakers is run
with (a) no faults, (b) a 30 s transient error burst, and (c) a
sustained version crash.  Expected shape: the healthy and burst runs
complete (retries absorb the burst below the health-check threshold)
while the crash run rolls back with the breaker open, and the
user-visible error rate stays low in all three regimes.
"""

from _util import emit, format_rows

from repro.bifrost import Bifrost
from repro.bifrost.model import Check, Phase, PhaseType, Strategy
from repro.microservices.application import Application
from repro.microservices.faults import (
    ErrorBurst,
    FaultCampaign,
    FaultInjector,
    VersionCrash,
)
from repro.microservices.resilience import BreakerConfig, CallPolicy, ResilienceLayer
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.simulation.latency import LogNormalLatency
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

SEED = 11


def build_app() -> Application:
    app = Application("shop")
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {
                "index": EndpointSpec(
                    "index",
                    LogNormalLatency(8.0, 0.2),
                    calls=(DownstreamCall("catalog", "list"),),
                )
            },
            capacity_rps=300.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "1.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(18.0, 0.25))},
            capacity_rps=300.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "2.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(16.0, 0.25))},
            capacity_rps=300.0,
        )
    )
    return app


def canary_strategy() -> Strategy:
    return Strategy(
        "catalog-canary",
        (
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="catalog",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.3,
                duration_seconds=120.0,
                check_interval_seconds=10.0,
                deadline_seconds=240.0,
                checks=(
                    Check(
                        name="user-errors",
                        service="frontend",
                        version="1.0.0",
                        metric="error",
                        threshold=0.10,
                        window_seconds=25.0,
                    ),
                ),
            ),
        ),
    )


def run_regime(regime: str) -> dict:
    """One full canary run under *regime*; returns a result row."""
    app = build_app()
    layer = ResilienceLayer(
        breaker_config=BreakerConfig(
            failure_threshold=0.9, window_size=40, min_calls=20, open_seconds=20.0
        )
    )
    layer.set_policy(
        CallPolicy(max_retries=2, backoff_base_ms=5.0, jitter_ms=3.0),
        service="catalog",
    )
    bifrost = Bifrost(app, seed=SEED, resilience=layer)
    campaign = FaultCampaign(FaultInjector(app))
    if regime == "transient-burst":
        campaign.add(ErrorBurst("catalog", "2.0.0", "list", 0.5, 30.0, 60.0))
    elif regime == "sustained-crash":
        campaign.add(VersionCrash("catalog", "2.0.0", 30.0, 400.0))
    bifrost.install_campaign(campaign)
    execution = bifrost.submit(canary_strategy(), at=1.0)

    population = UserPopulation(400, DEFAULT_GROUPS, seed=SEED + 1)
    workload = WorkloadGenerator(population, entry="frontend.index", seed=SEED + 2)
    outcomes = bifrost.run(workload.poisson(30.0, 150.0), until=260.0)

    counters = layer.counters()
    return {
        "regime": regime,
        "outcome": execution.outcome.value,
        "finished_at_s": execution.finished_at,
        "retries": counters.get("retry", 0),
        "breaker_rejects": counters.get("breaker_reject", 0),
        "breaker_opens": counters.get("breaker_open", 0),
        "user_error_rate": sum(o.error for o in outcomes) / len(outcomes),
        "stable_catalog": app.stable_version("catalog"),
    }


def run_sweep():
    return [
        run_regime(regime)
        for regime in ("healthy", "transient-burst", "sustained-crash")
    ]


def test_resilience_fault_regimes(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("Resilience canary under fault regimes", format_rows(rows))

    healthy, burst, crash = rows
    # Healthy and burst runs both promote the canary...
    assert healthy["outcome"] == "completed"
    assert burst["outcome"] == "completed"
    assert burst["retries"] > 0
    assert burst["breaker_opens"] == 0
    # ...the sustained crash rolls back with the breaker open.
    assert crash["outcome"] == "rolled_back"
    assert crash["breaker_opens"] > 0
    assert crash["stable_catalog"] == "1.0.0"
    # Retries keep the user-visible error rate modest even under faults.
    assert burst["user_error_rate"] < 0.05
    assert crash["user_error_rate"] < 0.20
