"""E4 — Table 3.3: comparison of execution times.

The paper reports that the GA not only finds better schedules but does
so in far less time than local search and simulated annealing (110 vs
~280 minutes on their testbed at 40 experiments / high sample sizes).
Absolute numbers shrink to seconds on a laptop-scale substrate; the
reproduced *shape* is relative: under one evaluation budget, the GA
reaches a fitness the other algorithms never reach at all — and reaches
their best level earlier than they do.
"""

from _util import emit, format_rows

from repro.fenrir import (
    Fenrir,
    GeneticAlgorithm,
    LocalSearch,
    RandomSampling,
    SampleSizeBand,
    SimulatedAnnealing,
    random_experiments,
)
from repro.traffic.profile import diurnal_profile

BUDGET = 1000


def run_timings():
    profile = diurnal_profile(days=7, seed=3)
    rows = []
    searches = {}
    for count, band in ((15, SampleSizeBand.MEDIUM), (40, SampleSizeBand.HIGH)):
        experiments = random_experiments(profile, count, band, seed=4)
        for algorithm in (
            GeneticAlgorithm(population_size=20),
            RandomSampling(),
            LocalSearch(),
            SimulatedAnnealing(),
        ):
            result = Fenrir(algorithm).schedule(
                profile, experiments, budget=BUDGET, seed=1
            )
            rows.append(
                {
                    "experiments": count,
                    "band": band.name,
                    "algorithm": algorithm.name,
                    "fitness": result.fitness,
                    "wall_time_s": result.search.wall_time_s,
                    "time_to_best_s": result.search.time_to_best_s,
                    "evaluations": result.search.evaluations_used,
                }
            )
            searches[(count, algorithm.name)] = result.search
    return rows, searches


def _time_to_reach(search, target_fitness: float) -> float | None:
    """Budget share spent until the search first reached *target*."""
    for evaluations, fitness in search.history:
        if fitness >= target_fitness:
            return evaluations
    return None


def test_table_3_3(benchmark):
    rows, searches = benchmark.pedantic(run_timings, rounds=1, iterations=1)
    # Derived comparison: evaluations the GA needed to reach the final
    # fitness of each competitor on the hard instance.
    derived = []
    ga = searches[(40, "genetic")]
    for competitor in ("random", "local-search", "annealing"):
        other = searches[(40, competitor)]
        reached = _time_to_reach(ga, other.best_evaluation.fitness)
        derived.append(
            {
                "competitor": competitor,
                "competitor_fitness": other.best_evaluation.fitness,
                "competitor_evaluations": other.evaluations_used,
                "ga_evaluations_to_match": reached if reached is not None else "never",
            }
        )
    emit("Table 3.3 execution times", format_rows(rows))
    emit("Table 3.3 (derived) GA budget to match competitors at n=40", format_rows(derived))

    # Shape: the GA matches or exceeds every competitor's final quality
    # within the same budget, and needs at most that budget to do so.
    ga_final = ga.best_evaluation.fitness
    for competitor in ("random", "local-search", "annealing"):
        other = searches[(40, competitor)]
        if other.best_evaluation.fitness <= ga_final:
            reached = _time_to_reach(ga, other.best_evaluation.fitness)
            assert reached is not None and reached <= BUDGET
