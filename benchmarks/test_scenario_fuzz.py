"""Bounded adversarial fuzz campaign: the scenario layer as a gate.

A seeded all-archetype ``ScenarioFuzzer`` campaign runs against the
current tree and the outcome is pinned: the seeded known-bad region
(loose gates that promote ground-truth-regressing variants) must be
rediscovered, every violation's shrunk spec must still reproduce, and
the whole campaign must finish inside a hard wall-clock budget so it is
cheap enough to run on every commit.

``SCENARIO_FUZZ_SMOKE=1`` switches to the reduced CI configuration
(fewer iterations, same fixed seed); the full run covers every archetype
at least twice.
"""

import json
import os
import time

from _util import OUTPUT_DIR, emit, format_rows

from repro.scenarios import ScenarioFuzzer, check_invariant

SMOKE = os.environ.get("SCENARIO_FUZZ_SMOKE") == "1"
SEED = 2026
ITERATIONS = 8 if SMOKE else 16
MAX_WALL_SECONDS = 60.0


def test_fuzz_campaign_rediscovers_known_bads_within_budget():
    """Fixed-seed campaign: finds seeded known-bads, stays within budget."""
    fuzzer = ScenarioFuzzer(seed=SEED)
    started = time.perf_counter()
    report = fuzzer.run(ITERATIONS)
    wall = time.perf_counter() - started

    # The seeded known-bad region must be rediscovered every time.
    by_invariant = report.by_invariant()
    assert by_invariant.get("promotion_truth", 0) >= 1, (
        f"campaign found no promotion_truth violation: {by_invariant}"
    )
    # Every reported violation carries an already-shrunk spec that must
    # still reproduce — the same contract the regression corpus replays.
    for violation in report.violations:
        replayed = check_invariant(violation.invariant, violation.spec)
        assert replayed is not None, (
            f"shrunk spec for {violation.invariant} no longer reproduces"
        )
    assert wall <= MAX_WALL_SECONDS, (
        f"fuzz campaign took {wall:.1f}s, over the {MAX_WALL_SECONDS:.0f}s "
        f"budget — the per-commit gate must stay cheap"
    )

    rows = [
        {"metric": "iterations", "value": report.iterations},
        {"metric": "invariant checks", "value": report.checks},
        {"metric": "violations", "value": len(report.violations)},
        {"metric": "wall_s", "value": wall},
    ]
    for name, count in sorted(by_invariant.items()):
        rows.append({"metric": f"violations[{name}]", "value": count})
    emit("Adversarial scenario fuzz campaign", format_rows(rows))
    result = {
        "smoke": SMOKE,
        "seed": SEED,
        "iterations": report.iterations,
        "checks": report.checks,
        "violations": len(report.violations),
        "by_invariant": by_invariant,
        "wall_s": wall,
        "budget_s": MAX_WALL_SECONDS,
    }
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, "BENCH_scenario_fuzz.json"), "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
