"""Ablation — the genetic algorithm's design choices.

The paper notes its GA configuration (population sizes, crossover
strategy) was calibrated and that "our rather simple strategy of
combining individuals leads to many invalid schedules" — motivating the
repair operator.  This ablation quantifies the two central choices on
the hard instance (40 experiments, high sample sizes): the greedy
overlap repair applied to offspring, and the population size.
"""

import statistics

from _util import emit, format_rows

from repro.fenrir import Fenrir, GeneticAlgorithm, SampleSizeBand, random_experiments
from repro.traffic.profile import diurnal_profile

BUDGET = 1000
SEEDS = (1, 2, 3)


def run_ablation():
    profile = diurnal_profile(days=7, seed=3)
    experiments = random_experiments(profile, 40, SampleSizeBand.HIGH, seed=4)
    configs = {
        "pop20-repair0.35": GeneticAlgorithm(population_size=20, repair_rate=0.35),
        "pop20-no-repair": GeneticAlgorithm(population_size=20, repair_rate=0.0),
        "pop8-repair0.35": GeneticAlgorithm(population_size=8, repair_rate=0.35),
        "pop48-repair0.35": GeneticAlgorithm(population_size=48, repair_rate=0.35),
        "no-crossover": GeneticAlgorithm(population_size=20, crossover_rate=0.0),
    }
    rows = []
    for label, algorithm in configs.items():
        fits, valids = [], 0
        for seed in SEEDS:
            result = Fenrir(algorithm).schedule(
                profile, experiments, budget=BUDGET, seed=seed
            )
            fits.append(result.fitness)
            valids += int(result.valid)
        rows.append(
            {
                "config": label,
                "mean_fitness": statistics.mean(fits),
                "min_fitness": min(fits),
                "valid_runs": f"{valids}/{len(SEEDS)}",
            }
        )
    return rows


def test_ablation_ga_parameters(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit("Ablation: GA parameters at 40 experiments / HIGH", format_rows(rows))

    by_config = {row["config"]: row["mean_fitness"] for row in rows}
    # Offspring repair is the load-bearing design choice on dense
    # instances: without it the GA's crossover children overlap.
    assert by_config["pop20-repair0.35"] > by_config["pop20-no-repair"]
    # The default configuration is competitive with both smaller and
    # larger populations under the same budget.
    assert by_config["pop20-repair0.35"] >= by_config["pop8-repair0.35"] - 0.05
    assert by_config["pop20-repair0.35"] >= by_config["pop48-repair0.35"] - 0.05
