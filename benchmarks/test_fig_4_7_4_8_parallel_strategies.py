"""E7 — Figs 4.7 + 4.8: engine CPU utilization and check-evaluation delay
as the number of parallel strategies grows.

Reproduces the scaling study of Section 4.5.2: N strategies (each with a
handful of checks, one-second evaluation interval) run concurrently on
the single-threaded engine.  Expected shape: CPU utilization grows
roughly linearly with N; the delay between a check falling due and the
engine evaluating it stays small — "more than a hundred experiments in
parallel without introducing a significant performance degradation".
"""

from _util import emit, format_rows

from repro.bifrost.engine import BifrostEngine, EngineCosts
from repro.bifrost.model import Check, Phase, PhaseType, Strategy
from repro.microservices.application import Application
from repro.microservices.service import EndpointSpec, ServiceVersion
from repro.routing.proxy import VersionRouter
from repro.simulation.engine import SimulationEngine
from repro.simulation.latency import ConstantLatency
from repro.telemetry.store import MetricStore

STRATEGY_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)
CHECKS_PER_STRATEGY = 4
MEASURE_SECONDS = 120.0


def build_engine(num_services: int) -> tuple[BifrostEngine, Application]:
    app = Application("load-test")
    for index in range(num_services):
        for version in ("1.0.0", "2.0.0"):
            app.deploy(
                ServiceVersion(
                    f"svc{index:03d}",
                    version,
                    {"ep": EndpointSpec("ep", ConstantLatency(10.0))},
                )
            )
    engine = BifrostEngine(
        simulation=SimulationEngine(),
        application=app,
        router=VersionRouter(),
        store=MetricStore(),
        costs=EngineCosts(),
    )
    return engine, app


def make_strategy(index: int, checks: int) -> Strategy:
    service = f"svc{index:03d}"
    check_tuple = tuple(
        Check(
            name=f"check{i}",
            service=service,
            version="2.0.0",
            metric="response_time",
            threshold=100.0,
            window_seconds=30.0,
        )
        for i in range(checks)
    )
    phase = Phase(
        name="canary",
        type=PhaseType.CANARY,
        service=service,
        stable_version="1.0.0",
        experimental_version="2.0.0",
        fraction=0.1,
        duration_seconds=10_000.0,  # stays in-phase for the whole window
        check_interval_seconds=1.0,
        checks=check_tuple,
    )
    return Strategy(f"strategy{index:03d}", (phase,))


def measure(num_strategies: int, checks: int) -> dict[str, float]:
    engine, _ = build_engine(num_strategies)
    for index in range(num_strategies):
        engine.submit(make_strategy(index, checks), at=0.0)
    engine.simulation.run_until(MEASURE_SECONDS)
    report = engine.executor.report()
    return {
        "strategies": num_strategies,
        "checks_each": checks,
        "engine_tasks": report.tasks,
        "cpu_utilization": report.utilization,
        "mean_delay_ms": report.delay_stats.mean * 1000.0,
        "p95_delay_ms": report.delay_stats.p95 * 1000.0,
        "max_delay_ms": report.delay_stats.maximum * 1000.0,
    }


def run_sweep():
    return [measure(n, CHECKS_PER_STRATEGY) for n in STRATEGY_COUNTS]


def test_fig_4_7_4_8(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("Figs 4.7/4.8 engine CPU and delay vs parallel strategies", format_rows(rows))

    utilization = [row["cpu_utilization"] for row in rows]
    # CPU grows monotonically (roughly linearly) with the strategy count.
    assert all(b >= a - 1e-6 for a, b in zip(utilization, utilization[1:]))
    top = rows[-1]
    assert top["strategies"] == 128
    # Over a hundred parallel strategies without significant degradation:
    # the engine is not saturated and checks run well within one interval.
    assert top["cpu_utilization"] < 0.9
    assert top["mean_delay_ms"] < 1000.0
    # A single strategy is essentially free.
    assert rows[0]["cpu_utilization"] < 0.01
