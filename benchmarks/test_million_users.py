"""Million-user benchmark: the batch execution kernel vs the scalar path.

The ROADMAP's north-star scenario: a seven-day canary on a million-user
population, replayed in minutes.  This bench drives >=1M requests from a
1M-user population through a catalog canary strategy via
``Bifrost.run_batches`` (the vectorized batch kernel of
``repro.simulation.batch``), measures end-to-end requests/s including
workload generation, and compares against the scalar
``WorkloadGenerator`` + ``Bifrost.run`` path on an identical scenario.

The kernel's contract is bit-identical behaviour, so the speedup is pure
bookkeeping elimination: no per-request ``Request``/``Span``/``Trace``
objects, columnar metric flushes, memoized variant assignment.  The
bench asserts the ratio floor (>=10x full, >=3x smoke), that the canary
actually promoted, and internal consistency of the result counters.

``MILLION_USERS_SMOKE=1`` switches to a reduced configuration for CI:
~120k requests from a 100k-user population, same assertions at the
smoke floor.
"""

import json
import os
import time

from _util import OUTPUT_DIR, emit, format_rows

from repro.bifrost import Bifrost
from repro.bifrost.model import Check, Phase, PhaseType, Strategy
from repro.microservices.application import Application
from repro.microservices.service import (
    DownstreamCall,
    EndpointSpec,
    ServiceVersion,
)
from repro.simulation.latency import (
    ConstantLatency,
    LoadSensitiveLatency,
    LogNormalLatency,
)
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator
from repro.traffic.batch import BatchWorkloadGenerator

SMOKE = os.environ.get("MILLION_USERS_SMOKE") == "1"

POPULATION = 100_000 if SMOKE else 1_000_000
RATE_PER_SECOND = 2_000.0 if SMOKE else 10_000.0
DURATION_SECONDS = 60.0 if SMOKE else 120.0
SCALAR_SAMPLE_SECONDS = 3.0 if SMOKE else 6.0
MIN_REQUESTS = 100_000 if SMOKE else 1_000_000
MIN_SPEEDUP = 3.0 if SMOKE else 10.0


def build_app() -> Application:
    """Three-service chain: frontend -> catalog (canaried) -> inventory."""
    app = Application()
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {
                "index": EndpointSpec(
                    "index",
                    LoadSensitiveLatency(LogNormalLatency(20.0, 0.3)),
                    calls=(DownstreamCall("catalog", "search"),),
                )
            },
            capacity_rps=2.0 * RATE_PER_SECOND,
        )
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "1.0.0",
            {
                "search": EndpointSpec(
                    "search",
                    LogNormalLatency(15.0, 0.25),
                    calls=(DownstreamCall("inventory", "check"),),
                )
            },
            capacity_rps=2.0 * RATE_PER_SECOND,
        )
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "2.0.0",
            {
                "search": EndpointSpec(
                    "search",
                    LogNormalLatency(13.0, 0.25),
                    calls=(DownstreamCall("inventory", "check"),),
                )
            },
            capacity_rps=2.0 * RATE_PER_SECOND,
        )
    )
    app.deploy(
        ServiceVersion(
            "inventory",
            "1.0.0",
            {"check": EndpointSpec("check", ConstantLatency(4.0))},
            capacity_rps=4.0 * RATE_PER_SECOND,
        )
    )
    return app


def build_strategy() -> Strategy:
    return Strategy(
        name="catalog-canary",
        description="catalog 2.0.0 canary at 10% of traffic",
        phases=(
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="catalog",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.10,
                duration_seconds=DURATION_SECONDS - 10.0,
                check_interval_seconds=5.0,
                checks=(
                    Check(
                        name="error-rate",
                        service="catalog",
                        version="2.0.0",
                        metric="error",
                        aggregation="mean",
                        operator="<=",
                        threshold=0.05,
                        window_seconds=30.0,
                    ),
                    Check(
                        name="latency-vs-stable",
                        service="catalog",
                        version="2.0.0",
                        metric="response_time",
                        aggregation="mean",
                        operator="<=",
                        baseline_version="1.0.0",
                        tolerance=1.25,
                        window_seconds=30.0,
                    ),
                ),
            ),
        ),
    )


def test_million_users_batch_kernel() -> None:
    population = UserPopulation(POPULATION, DEFAULT_GROUPS, seed=1)

    # -- batch path: the full replay ------------------------------------
    bifrost = Bifrost(build_app(), seed=7)
    execution = bifrost.submit(build_strategy(), at=1.0)
    generator = BatchWorkloadGenerator(
        population, entry="frontend.index", seed=2
    )
    batch_start = time.perf_counter()
    result = bifrost.run_batches(
        generator.poisson(RATE_PER_SECOND, DURATION_SECONDS),
        until=DURATION_SECONDS + 10.0,
    )
    batch_elapsed = time.perf_counter() - batch_start
    batch_rps = result.requests / batch_elapsed

    # -- scalar baseline: identical scenario, shorter sample ------------
    scalar_bifrost = Bifrost(build_app(), seed=7)
    scalar_bifrost.submit(build_strategy(), at=1.0)
    scalar_population = UserPopulation(POPULATION, DEFAULT_GROUPS, seed=1)
    scalar_generator = WorkloadGenerator(
        scalar_population, entry="frontend.index", seed=2
    )
    scalar_start = time.perf_counter()
    outcomes = scalar_bifrost.run(
        scalar_generator.poisson(RATE_PER_SECOND, SCALAR_SAMPLE_SECONDS)
    )
    scalar_elapsed = time.perf_counter() - scalar_start
    scalar_rps = len(outcomes) / scalar_elapsed

    speedup = batch_rps / scalar_rps

    # -- invariants ------------------------------------------------------
    assert result.requests >= MIN_REQUESTS, (
        f"expected >= {MIN_REQUESTS} requests, got {result.requests}"
    )
    assert result.requests == result.fast_requests + result.fallback_requests
    assert result.fallback_requests == 0, dict(result.fallback_reasons)
    assert bifrost.runtime.requests_executed == result.requests
    # Per-service throughput: every request produced exactly one frontend
    # span, so the frontend throughput series must match the request count.
    frontend_samples = len(
        bifrost.store.series("frontend", "1.0.0", "throughput")
    )
    assert frontend_samples == result.requests
    assert 0.0 <= result.error_rate < 0.05
    assert result.mean_duration_ms > 0.0
    assert len(result.recent_durations) == min(
        result.requests, result.recent_durations.capacity
    )
    # The canary must have actually run and promoted on live telemetry.
    assert execution.outcome.value == "completed", execution.outcome
    assert bifrost.application.stable_version("catalog") == "2.0.0"
    canary_assigned = bifrost.router.assigner(
        "catalog-canary"
    ).total_distinct_users()
    assert canary_assigned > 0

    rows = [
        {
            "path": "batch",
            "requests": result.requests,
            "wall_s": batch_elapsed,
            "us_per_req": batch_elapsed / result.requests * 1e6,
            "req_per_s": batch_rps,
        },
        {
            "path": "scalar",
            "requests": len(outcomes),
            "wall_s": scalar_elapsed,
            "us_per_req": scalar_elapsed / len(outcomes) * 1e6,
            "req_per_s": scalar_rps,
        },
    ]
    emit(
        "Million-user batch kernel vs scalar path",
        format_rows(rows)
        + f"\n\nspeedup: {speedup:.2f}x (floor {MIN_SPEEDUP:.0f}x, "
        f"{'smoke' if SMOKE else 'full'} mode)\n"
        f"canary outcome: {execution.outcome.value}; "
        f"distinct canary-assigned users: {canary_assigned:,}\n"
        f"fast slices: {result.fast_slices}; "
        f"fallback slices: {result.fallback_slices}",
    )
    payload = {
        "mode": "smoke" if SMOKE else "full",
        "population": POPULATION,
        "rate_per_second": RATE_PER_SECOND,
        "duration_seconds": DURATION_SECONDS,
        "batch": rows[0],
        "scalar": rows[1],
        "speedup": speedup,
        "speedup_floor": MIN_SPEEDUP,
        "error_rate": result.error_rate,
        "mean_duration_ms": result.mean_duration_ms,
        "fast_slices": result.fast_slices,
        "fallback_slices": result.fallback_slices,
        "canary_outcome": execution.outcome.value,
        "canary_distinct_users": canary_assigned,
    }
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(
        os.path.join(OUTPUT_DIR, "BENCH_million_users.json"), "w"
    ) as handle:
        json.dump(payload, handle, indent=2)

    assert speedup >= MIN_SPEEDUP, (
        f"batch path only {speedup:.2f}x faster than scalar "
        f"(floor {MIN_SPEEDUP}x): batch {batch_rps:,.0f} rps "
        f"vs scalar {scalar_rps:,.0f} rps"
    )
