"""E5 — Fig 3.6: fitness scores after reevaluating an existing schedule.

A GA-produced schedule executes until mid-horizon; some experiments have
finished, some are canceled, and new ones arrive.  Each algorithm
reevaluates the remainder.  Expected shape: the gap between algorithms
narrows compared to from-scratch scheduling, because LS/SA start from
the highly optimized GA schedule.
"""


from _util import emit, format_rows

from repro.fenrir import (
    Fenrir,
    GeneticAlgorithm,
    LocalSearch,
    RandomSampling,
    SampleSizeBand,
    SimulatedAnnealing,
    random_experiments,
    reevaluate,
)
from repro.traffic.profile import diurnal_profile

BUDGET = 1000
NOW_SLOT = 48  # two days in


def run_reevaluation():
    profile = diurnal_profile(days=7, seed=3)
    experiments = random_experiments(
        profile, count=15, band=SampleSizeBand.MEDIUM, seed=4
    )
    base = Fenrir(GeneticAlgorithm(population_size=20)).schedule(
        profile, experiments, budget=BUDGET, seed=1
    )
    arrivals = random_experiments(profile, 5, SampleSizeBand.LOW, seed=77)
    arrivals = [
        type(spec)(**{**spec.__dict__, "name": f"new-{spec.name}"})
        for spec in arrivals
    ]
    canceled = {"exp004", "exp009"}
    scratch_gap_rows = []
    rows = []
    for algorithm in (
        GeneticAlgorithm(population_size=20),
        RandomSampling(),
        LocalSearch(),
        SimulatedAnnealing(),
    ):
        plan, result = reevaluate(
            base.schedule,
            now_slot=NOW_SLOT,
            algorithm=algorithm,
            canceled=canceled,
            new_experiments=arrivals,
            budget=BUDGET,
            seed=2,
        )
        rows.append(
            {
                "algorithm": algorithm.name,
                "fitness": result.fitness,
                "valid": result.best_evaluation.valid,
                "locked": len(plan.locked),
                "finished": len(plan.finished),
                "added": len(plan.added),
            }
        )
        # From-scratch counterpart for the gap comparison.
        scratch = algorithm.optimize(plan.problem, budget=BUDGET, seed=2)
        scratch_gap_rows.append(
            {"algorithm": algorithm.name, "from_scratch_fitness": scratch.fitness}
        )
    return base, rows, scratch_gap_rows


def test_fig_3_6(benchmark):
    base, rows, scratch_rows = benchmark.pedantic(
        run_reevaluation, rounds=1, iterations=1
    )
    emit("Fig 3.6 fitness after reevaluation", format_rows(rows))
    emit("Fig 3.6 (reference) from-scratch on the same remainder", format_rows(scratch_rows))

    assert base.valid
    fits = [row["fitness"] for row in rows]
    assert all(row["valid"] for row in rows)
    # The gap between algorithms narrows: with the GA schedule as the
    # warm start everyone lands close together.
    reeval_gap = max(fits) - min(fits)
    scratch_fits = [row["from_scratch_fitness"] for row in scratch_rows]
    scratch_gap = max(scratch_fits) - min(scratch_fits)
    assert reeval_gap <= scratch_gap + 0.05
    assert reeval_gap < 0.25
