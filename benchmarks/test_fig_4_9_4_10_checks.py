"""E8 — Figs 4.9 + 4.10: engine CPU utilization and delay as the number
of continuously evaluated checks per strategy grows.

Sixteen parallel strategies each evaluate C checks every second.
Expected shape: CPU utilization grows linearly with C; the evaluation
delay stays negligible until the combined per-tick work approaches the
evaluation interval, then queueing sets in.
"""

from _util import emit, format_rows

from test_fig_4_7_4_8_parallel_strategies import measure

CHECK_COUNTS = (1, 4, 16, 64, 128, 256)
STRATEGIES = 16


def run_sweep():
    return [measure(STRATEGIES, checks) for checks in CHECK_COUNTS]


def test_fig_4_9_4_10(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("Figs 4.9/4.10 engine CPU and delay vs checks per strategy", format_rows(rows))

    utilization = [row["cpu_utilization"] for row in rows]
    assert all(b >= a - 1e-6 for a, b in zip(utilization, utilization[1:]))

    light = rows[1]   # 4 checks each
    heavy = rows[-1]  # 256 checks each
    # Moderate check counts are essentially free...
    assert light["mean_delay_ms"] < 50.0
    # ...while hundreds of checks per strategy saturate the engine and
    # queueing delay becomes visible (the figure's knee).
    assert heavy["cpu_utilization"] > 0.8
    assert heavy["mean_delay_ms"] > light["mean_delay_ms"]
