"""E12 — Tables 2.2–2.8 + Fig 2.3: the empirical study's survey tables.

The raw study data is unavailable, so a synthetic respondent dataset is
generated whose quota-enforced marginals match the published
percentages; every table is then *recomputed from micro-data* and
compared against the published values.  Expected shape: recomputed
percentages match within rounding tolerance on the enforced columns.
"""

from _util import emit, format_rows

from repro.study.data import DEMOGRAPHICS, PUBLISHED_TABLES
from repro.study.respondents import assign_table, generate_respondents
from repro.study.tables import format_table, recompute_table, table_deviation


def run_recomputation():
    respondents = generate_respondents()
    outputs = {}
    deviations = []
    for table_id, table in sorted(PUBLISHED_TABLES.items()):
        participants = assign_table(respondents, table)
        recomputed = recompute_table(table, participants)
        outputs[table_id] = (table, recomputed, len(participants))
        deviations.append(
            {
                "table": table_id,
                "participants": len(participants),
                "max_abs_deviation_pp": table_deviation(table, recomputed),
            }
        )
    return respondents, outputs, deviations


def test_tables_2_x(benchmark):
    respondents, outputs, deviations = benchmark.pedantic(
        run_recomputation, rounds=1, iterations=1
    )

    demo_rows = [
        {"subgroup": "total", "count": len(respondents)},
        {"subgroup": "web", "count": sum(r.app_type == "web" for r in respondents)},
        {"subgroup": "other", "count": sum(r.app_type == "other" for r in respondents)},
        {"subgroup": "startup", "count": sum(r.company_size == "startup" for r in respondents)},
        {"subgroup": "sme", "count": sum(r.company_size == "sme" for r in respondents)},
        {"subgroup": "corp", "count": sum(r.company_size == "corp" for r in respondents)},
    ]
    emit("Fig 2.3 survey demographics (recomputed)", format_rows(demo_rows))
    for table_id, (table, recomputed, _) in outputs.items():
        emit(f"Table {table_id} published vs recomputed", format_table(table, recomputed))
    emit("Study reproduction deviations", format_rows(deviations))

    # Demographics must match Fig 2.3 exactly.
    assert len(respondents) == DEMOGRAPHICS["total"]
    assert demo_rows[1]["count"] == DEMOGRAPHICS["web"]
    assert demo_rows[4]["count"] == DEMOGRAPHICS["sme"]
    # Every table reproduces within rounding on the enforced columns.
    for row in deviations:
        assert row["max_abs_deviation_pp"] <= 1.0, row
