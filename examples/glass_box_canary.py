"""Glass-box observability over a crashing canary and a schedule search.

Every other example treats the experimentation machinery as a black box
and inspects its *outputs*.  This one attaches a
:class:`~repro.obs.observer.Observer` and watches the machinery itself:
the engine emits events for phase entries, check evaluations, and
transitions; the journal and supervisor emit durability events across
two injected engine crashes; Fenrir emits per-generation search
progress.  From the event log alone the experiment timeline is
reconstructed and verified — field by field — against the engine's own
execution record, then rendered as ASCII, exported as JSONL, and
summarized as Prometheus-style exposition text.

Run with::

    python examples/glass_box_canary.py
"""

import io

from repro.bifrost import Bifrost, SnapshotPolicy
from repro.bifrost.model import Check, Phase, PhaseType, Strategy
from repro.fenrir import Fenrir
from repro.fenrir.model import ExperimentSpec
from repro.microservices.application import Application
from repro.microservices.faults import EngineCrash, FaultCampaign, FaultInjector
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.obs import (
    JsonlEventSink,
    Observer,
    diff_timeline_execution,
    glass_box_panel,
    load_jsonl,
    reconstruct_timelines,
    render_ascii,
    render_prometheus,
)
from repro.simulation.latency import LogNormalLatency
from repro.traffic.profile import DEFAULT_GROUPS, UserGroup, flat_profile
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

SEED = 37


def build_app() -> Application:
    """Frontend -> catalog shop with a catalog 2.0.0 canary candidate."""
    app = Application("shop")
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {
                "index": EndpointSpec(
                    "index",
                    LogNormalLatency(8.0, 0.2),
                    calls=(DownstreamCall("catalog", "list"),),
                )
            },
            capacity_rps=300.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "1.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(18.0, 0.25))},
            capacity_rps=300.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "2.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(16.0, 0.25))},
            capacity_rps=300.0,
        )
    )
    return app


def canary_strategy() -> Strategy:
    """A 120 s canary on catalog guarded by a user-facing error check."""
    return Strategy(
        "catalog-canary",
        (
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="catalog",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.3,
                duration_seconds=120.0,
                check_interval_seconds=10.0,
                deadline_seconds=500.0,
                checks=(
                    Check(
                        name="user-errors",
                        service="frontend",
                        version="1.0.0",
                        metric="error",
                        threshold=0.10,
                        window_seconds=25.0,
                    ),
                ),
            ),
        ),
    )


def run_canary(observer: Observer) -> Bifrost:
    """The durable canary under two engine crashes, fully instrumented."""
    app = build_app()
    bifrost = Bifrost(
        app,
        seed=SEED,
        durable=True,
        snapshot_policy=SnapshotPolicy(every_records=5, compact=True),
        observer=observer,
    )
    campaign = FaultCampaign(FaultInjector(app))
    campaign.add(EngineCrash(30.0, 45.0))
    campaign.add(EngineCrash(70.0, 85.0))
    bifrost.install_campaign(campaign)
    bifrost.submit(canary_strategy(), at=1.0)
    population = UserPopulation(300, DEFAULT_GROUPS, seed=SEED + 1)
    workload = WorkloadGenerator(population, entry="frontend.index", seed=SEED + 2)
    bifrost.run(workload.poisson(15.0, 160.0), until=260.0)
    return bifrost


def run_search(observer: Observer) -> None:
    """A small Fenrir search sharing the same observer."""
    profile = flat_profile(
        48, 1000.0, (UserGroup("eu", 0.6), UserGroup("na", 0.4))
    )
    specs = [
        ExperimentSpec(
            name=f"exp{i}",
            required_samples=600.0,
            min_duration_slots=2,
            max_duration_slots=10,
            min_traffic_fraction=0.01,
            max_traffic_fraction=0.5,
        )
        for i in range(4)
    ]
    Fenrir(observer=observer).schedule(profile, specs, budget=400, seed=3)


def main() -> None:
    """Run both subsystems under one observer and inspect the glass box."""
    observer = Observer(enabled=True)
    bifrost = run_canary(observer)
    run_search(observer)

    execution = bifrost.engine.executions[0]
    timelines = reconstruct_timelines(observer.events)
    timeline = timelines["catalog-canary"]

    print("--- glass-box canary (two engine crashes) ---")
    print(f"strategy outcome: {execution.outcome.value}")
    print(f"engine restarts: {bifrost.supervisor.restarts}")
    print()
    print("--- timeline reconstructed from events alone ---")
    print(render_ascii(timeline))
    mismatches = diff_timeline_execution(timeline, execution)
    print(f"timeline matches engine record: {not mismatches}")
    print()

    buffer = io.StringIO()
    with JsonlEventSink(buffer) as sink:
        sink.attach(observer.events)
    exported = load_jsonl(buffer.getvalue().splitlines())
    print(f"events exported to JSONL: {len(exported)}")
    print()

    exposition = render_prometheus(observer.metrics, bifrost.store)
    prom_lines = [
        line
        for line in exposition.splitlines()
        if line.startswith(("repro_bifrost_checks_total", "repro_fenrir"))
    ]
    print("--- prometheus exposition (excerpt) ---")
    print("\n".join(prom_lines[:8]))
    print()
    print(glass_box_panel(observer, bifrost.store))


if __name__ == "__main__":
    main()
