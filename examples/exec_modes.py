"""One DSL strategy, three execution substrates.

The execution router (``repro.exec``) runs the *same unmodified*
strategy artifact against three backends:

- **SIM** — the in-process simulator (with ``record=True`` it also
  captures a replayable :class:`Recording` of everything it observed);
- **REPLAY** — the recording re-driven from its JSONL artifact at the
  original logical timestamps and diffed outcome-by-outcome against the
  recorded run (digest equality certifies a faithful replay);
- **LIVE** — real asyncio HTTP servers on loopback sockets, one per
  deployed service version, with the canary split enforced by a
  client-side router and the engine's checks fed by latencies and
  errors measured over actual connections.

Run with::

    python examples/exec_modes.py
"""

import tempfile

from repro.bifrost.dsl import parse_strategy
from repro.exec import ExecutionRouter, LiveOptions, Recording
from repro.microservices.application import Application
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.simulation.latency import LogNormalLatency
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

SEED = 31

STRATEGY = """\
strategy catalog-canary
  description "catalog 2.0.0 canary, portable across substrates"
  phase canary
    type canary
    service catalog
    stable 1.0.0
    experimental 2.0.0
    fraction 0.3
    duration 120
    interval 10
    check user-errors
      service frontend
      version 1.0.0
      metric error
      aggregation mean
      operator <=
      threshold 0.10
      window 25
"""


def build_app() -> Application:
    """Frontend -> catalog shop with a faster catalog 2.0.0 candidate."""
    app = Application("shop")
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {
                "index": EndpointSpec(
                    "index",
                    LogNormalLatency(8.0, 0.2),
                    calls=(DownstreamCall("catalog", "list"),),
                )
            },
            capacity_rps=300.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "1.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(18.0, 0.25))},
            capacity_rps=300.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "2.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(16.0, 0.25))},
            capacity_rps=300.0,
        )
    )
    return app


def workload():
    population = UserPopulation(200, DEFAULT_GROUPS, seed=SEED + 1)
    generator = WorkloadGenerator(
        population, entry="frontend.index", seed=SEED + 2
    )
    return generator.poisson(12.0, 150.0)


def main() -> None:
    strategy = parse_strategy(STRATEGY)
    router = ExecutionRouter(
        build_app,
        seed=SEED,
        live_options=LiveOptions(time_scale=0.02, max_wall_s=55.0),
    )

    print("== SIM (recording) ==")
    sim_report = router.run(
        strategy, workload=workload(), until=260.0, submit_at=1.0, record=True
    )
    print(sim_report.describe())
    print(f"stable after: {sim_report.stable_after}")

    with tempfile.NamedTemporaryFile("w", suffix=".jsonl", delete=False) as handle:
        lines = sim_report.recording.save(handle)
    print(f"recording: {lines} JSONL lines "
          f"({len(sim_report.recording.requests)} requests, "
          f"{len(sim_report.recording.events)} events)")

    print("\n== REPLAY (from the JSONL artifact) ==")
    recording = Recording.load(handle.name)
    replay_report = router.run(recording=recording)
    print(replay_report.describe())
    print(replay_report.replay.describe())

    print("\n== LIVE (real loopback sockets) ==")
    live_report = router.run(
        strategy, workload=workload(), until=260.0, submit_at=1.0, mode="live"
    )
    print(live_report.describe())
    print(f"stable after: {live_report.stable_after}")
    print(f"server ports: {live_report.details.ports}")

    agree = (
        sim_report.outcome is replay_report.outcome is live_report.outcome
    )
    print(f"\nall three substrates agree: {agree}")


if __name__ == "__main__":
    main()
