"""Quickstart: run one canary experiment end to end.

Deploys a canary of the catalog service on the sample e-commerce
application, executes a single-phase Bifrost strategy with health checks
against live telemetry, and prints what happened.

Run with::

    python examples/quickstart.py
"""

from repro.bifrost import Bifrost
from repro.bifrost.model import Check, Phase, PhaseType, Strategy
from repro.microservices.service import EndpointSpec, DownstreamCall, ServiceVersion
from repro.simulation.latency import LoadSensitiveLatency, LogNormalLatency
from repro.topology.scenarios import sample_application
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator


def main() -> None:
    app = sample_application()

    # Deploy catalog 2.0.0 as the canary candidate: same interface,
    # slightly faster implementation.
    stable = app.resolve("catalog")
    app.deploy(
        ServiceVersion(
            "catalog",
            "2.0.0",
            {
                "list": EndpointSpec(
                    "list",
                    LoadSensitiveLatency(LogNormalLatency(16.0, 0.25)),
                    calls=(
                        DownstreamCall("inventory", "stock"),
                        DownstreamCall("pricing", "quote"),
                    ),
                )
            },
            capacity_rps=stable.capacity_rps,
        )
    )

    strategy = Strategy(
        name="catalog-canary",
        description="Canary release of catalog 2.0.0 at 10% of traffic",
        phases=(
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="catalog",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.10,
                duration_seconds=120.0,
                check_interval_seconds=5.0,
                checks=(
                    Check(
                        name="error-rate",
                        service="catalog",
                        version="2.0.0",
                        metric="error",
                        aggregation="mean",
                        operator="<=",
                        threshold=0.02,
                        window_seconds=30.0,
                    ),
                    Check(
                        name="latency-vs-stable",
                        service="catalog",
                        version="2.0.0",
                        metric="response_time",
                        aggregation="mean",
                        operator="<=",
                        baseline_version="1.0.0",
                        tolerance=1.25,
                        window_seconds=30.0,
                    ),
                ),
            ),
        ),
    )

    bifrost = Bifrost(app, seed=7)
    execution = bifrost.submit(strategy, at=1.0)

    population = UserPopulation(500, DEFAULT_GROUPS, seed=1)
    workload = WorkloadGenerator(population, entry="frontend.index", seed=2)
    outcomes = bifrost.run(workload.poisson(50.0, 150.0), until=160.0)

    print(f"requests served:      {len(outcomes)}")
    print(f"mean response time:   "
          f"{sum(o.duration_ms for o in outcomes) / len(outcomes):.1f} ms")
    print(f"strategy outcome:     {execution.outcome.value}")
    print(f"stable catalog now:   {app.stable_version('catalog')}")
    print("transitions:")
    for record in execution.transitions:
        print(
            f"  {record.time:7.1f}s  {record.source} -> {record.target} "
            f"[{record.trigger}] action={record.action.value}"
        )
    print("last check evaluations:")
    for result in execution.check_log[-2:]:
        print(f"  {result.describe()}")


if __name__ == "__main__":
    main()
