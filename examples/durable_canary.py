"""A canary that completes across two engine crashes.

The durability layer separates the control plane from the data plane:
every engine decision is journaled before it takes effect, periodic
snapshots fold the journal into checkpoints, and a supervisor restarts
the crashed engine from snapshot + replay.  The routes installed by the
dead engine keep serving in the meantime, so users never notice — the
recovered run promotes the same version over the same ``version_path``
as a run that never crashed.

Run with::

    python examples/durable_canary.py
"""

from repro.bifrost import Bifrost, SnapshotPolicy
from repro.bifrost.model import Check, Phase, PhaseType, Strategy
from repro.microservices.application import Application
from repro.microservices.faults import EngineCrash, FaultCampaign, FaultInjector
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.simulation.latency import LogNormalLatency
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

SEED = 37


def build_app() -> Application:
    """Frontend -> catalog shop with a catalog 2.0.0 canary candidate."""
    app = Application("shop")
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {
                "index": EndpointSpec(
                    "index",
                    LogNormalLatency(8.0, 0.2),
                    calls=(DownstreamCall("catalog", "list"),),
                )
            },
            capacity_rps=300.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "1.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(18.0, 0.25))},
            capacity_rps=300.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "2.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(16.0, 0.25))},
            capacity_rps=300.0,
        )
    )
    return app


def canary_strategy() -> Strategy:
    """A 120 s canary on catalog guarded by a user-facing error check."""
    return Strategy(
        "catalog-canary",
        (
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="catalog",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.3,
                duration_seconds=120.0,
                check_interval_seconds=10.0,
                deadline_seconds=500.0,
                checks=(
                    Check(
                        name="user-errors",
                        service="frontend",
                        version="1.0.0",
                        metric="error",
                        threshold=0.10,
                        window_seconds=25.0,
                    ),
                ),
            ),
        ),
    )


def run(crash_windows):
    """One seeded run; returns (bifrost, app, per-request version paths)."""
    app = build_app()
    bifrost = Bifrost(
        app,
        seed=SEED,
        durable=True,
        snapshot_policy=SnapshotPolicy(every_records=5, compact=True),
    )
    if crash_windows:
        campaign = FaultCampaign(FaultInjector(app))
        for start, end in crash_windows:
            campaign.add(EngineCrash(start, end))
        bifrost.install_campaign(campaign)
    bifrost.submit(canary_strategy(), at=1.0)
    population = UserPopulation(300, DEFAULT_GROUPS, seed=SEED + 1)
    workload = WorkloadGenerator(population, entry="frontend.index", seed=SEED + 2)
    outcomes = bifrost.run(workload.poisson(15.0, 160.0), until=260.0)
    return bifrost, app, [o.version_path for o in outcomes]


def main() -> None:
    """Compare a crash-free baseline against a twice-crashed run."""
    _, app_base, paths_base = run([])
    crashed, app_crash, paths_crash = run([(30.0, 45.0), (70.0, 85.0)])

    execution = crashed.engine.executions[0]
    print("--- durable canary under two engine crashes ---")
    print(f"strategy outcome: {execution.outcome.value}")
    print(f"stable catalog version: {app_crash.stable_version('catalog')}")
    print(f"engine restarts: {crashed.supervisor.restarts}")
    for index, report in enumerate(crashed.supervisor.reports, start=1):
        print(
            f"recovery {index}: snapshot={report.snapshot_restored} "
            f"replayed={report.records_replayed} "
            f"dropped={report.records_dropped}"
        )
    print(f"snapshots taken: {crashed.snapshots.taken}")
    match = paths_crash == paths_base
    print(f"version_path identical to crash-free run: {match}")
    baseline_stable = app_base.stable_version("catalog")
    print(f"baseline promoted the same version: "
          f"{baseline_stable == app_crash.stable_version('catalog')}")


if __name__ == "__main__":
    main()
