"""The dissertation's motivating example, end to end.

AB Inc hosts an e-commerce platform and wants to ship a recommendation
feature.  The release engineer runs a *multi-phase* experiment —
a canary release, then a dark launch probing scalability, then an A/B
test between two recommendation variants, then a gradual rollout of the
winner — written in the Bifrost DSL ("experimentation-as-code").
Afterwards the topology-aware health assessment diffs the interaction
graphs from before and during the experiment and ranks the identified
changes.

Run with::

    python examples/ab_inc_recommendation.py
"""

from repro.bifrost import Bifrost
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.simulation.latency import LoadSensitiveLatency, LogNormalLatency
from repro.topology import (
    all_heuristic_variants,
    build_interaction_graph,
    diff_graphs,
    rank_changes,
)
from repro.topology.ranking import ranking_table
from repro.topology.scenarios import sample_application
from repro.tracing.query import TraceQuery
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

STRATEGY_DSL = """
strategy recommendation-feature
  description "AB Inc recommendation feature: canary, dark launch, A/B, rollout"
  phase canary
    type canary
    service recommend
    stable 1.0.0
    experimental 2.0.0
    fraction 0.05
    duration 60
    interval 5
    check errors
      metric error
      aggregation mean
      operator <=
      threshold 0.05
      window 30
    on_success scale-probe
    on_failure rollback
  phase scale-probe
    type dark_launch
    service recommend
    stable 1.0.0
    experimental 2.0.0
    duration 60
    interval 5
    check latency
      metric response_time
      aggregation p95
      operator <=
      threshold 120
      window 30
    on_success compare
    on_failure rollback
  phase compare
    type ab_test
    service recommend
    stable 1.0.0
    experimental 2.0.0
    second 2.1.0
    fraction 0.5
    duration 120
    interval 10
    winner_metric response_time
    winner_aggregation mean
    on_success rollout
    on_failure rollback
  phase rollout
    type gradual_rollout
    service recommend
    stable 1.0.0
    experimental 2.0.0
    steps 0.2, 0.5, 1.0
    duration 90
    interval 5
    check errors
      metric error
      aggregation mean
      operator <=
      threshold 0.05
      window 30
    on_success complete
    on_failure rollback
"""


def build_application():
    """The sample app plus the recommendation service and its variants."""
    app = sample_application()
    # Frontend 1.1.0 consults the recommendation service.
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.1.0",
            {
                "index": EndpointSpec(
                    "index",
                    LoadSensitiveLatency(LogNormalLatency(12.0, 0.25)),
                    calls=(
                        DownstreamCall("catalog", "list"),
                        DownstreamCall("cart", "view", probability=0.6),
                        DownstreamCall("recommend", "suggest"),
                    ),
                )
            },
            capacity_rps=500.0,
        ),
        stable=True,
    )
    for version, median in (("1.0.0", 14.0), ("2.0.0", 18.0), ("2.1.0", 11.0)):
        app.deploy(
            ServiceVersion(
                "recommend",
                version,
                {
                    "suggest": EndpointSpec(
                        "suggest",
                        LoadSensitiveLatency(LogNormalLatency(median, 0.25)),
                        calls=(DownstreamCall("catalog", "list", probability=0.5),),
                    )
                },
                capacity_rps=400.0,
            ),
            stable=(version == "1.0.0"),
        )
    return app


def main() -> None:
    app = build_application()
    bifrost = Bifrost(app, seed=11)
    population = UserPopulation(1200, DEFAULT_GROUPS, seed=5)
    workload = WorkloadGenerator(population, entry="frontend.index", seed=6)

    # Phase 0: collect baseline traffic before the experiment starts.
    bifrost.run(workload.poisson(60.0, 60.0), until=60.0)
    execution = bifrost.submit(STRATEGY_DSL, at=61.0)
    bifrost.run(workload.poisson(60.0, 520.0, start=60.0), until=600.0)

    print(f"strategy outcome: {execution.outcome.value}")
    print(f"A/B winner:       {execution.winner}")
    print(f"stable recommend: {app.stable_version('recommend')}")
    print("transitions:")
    for record in execution.transitions:
        print(
            f"  {record.time:7.1f}s  {record.source:12s} -> "
            f"{record.target:12s} [{record.trigger}]"
        )

    # Analysis: diff interaction graphs from before vs during the A/B.
    collector = bifrost.collector
    baseline_traces = TraceQuery(collector).in_window(0.0, 60.0).run()
    experimental_traces = TraceQuery(collector).in_window(61.0, 600.0).run()
    diff = diff_graphs(
        build_interaction_graph(baseline_traces, "baseline"),
        build_interaction_graph(experimental_traces, "experimental"),
    )
    print(f"\ntopological difference: {diff.summary()}")
    heuristic = all_heuristic_variants()["HY-rel"]
    ranking = rank_changes(diff, heuristic)
    print(f"change ranking ({heuristic.name}):")
    print(ranking_table(ranking, limit=8))


if __name__ == "__main__":
    main()
