"""A canary that survives a transient burst but not a sustained crash.

The resilience layer changes what a release experiment *sees*: bounded
retries absorb a short error burst, so the canary's user-visible health
checks stay green and the rollout completes.  Against a sustained crash
the same retries are exhausted, the circuit breaker opens on the broken
version, and Bifrost rolls the canary back.

Run with::

    python examples/resilience_canary.py
"""

from repro.bifrost import Bifrost
from repro.bifrost.model import Check, Phase, PhaseType, Strategy
from repro.microservices.application import Application
from repro.microservices.faults import (
    ErrorBurst,
    FaultCampaign,
    FaultInjector,
    VersionCrash,
)
from repro.microservices.resilience import (
    BreakerConfig,
    CallPolicy,
    ResilienceLayer,
    ResilienceSummary,
)
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.simulation.latency import LogNormalLatency
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

SEED = 11


def build_app() -> Application:
    """Frontend -> catalog shop with a catalog 2.0.0 canary candidate."""
    app = Application("shop")
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {
                "index": EndpointSpec(
                    "index",
                    LogNormalLatency(8.0, 0.2),
                    calls=(DownstreamCall("catalog", "list"),),
                )
            },
            capacity_rps=300.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "1.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(18.0, 0.25))},
            capacity_rps=300.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "2.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(16.0, 0.25))},
            capacity_rps=300.0,
        )
    )
    return app


def canary_strategy() -> Strategy:
    """30% canary on catalog, watched through the user's eyes."""
    return Strategy(
        "catalog-canary",
        (
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="catalog",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.3,
                duration_seconds=120.0,
                check_interval_seconds=10.0,
                deadline_seconds=240.0,
                checks=(
                    Check(
                        name="user-errors",
                        service="frontend",
                        version="1.0.0",
                        metric="error",
                        threshold=0.10,
                        window_seconds=25.0,
                    ),
                ),
            ),
        ),
    )


def resilience_layer() -> ResilienceLayer:
    """Retries on catalog calls, breakers everywhere."""
    layer = ResilienceLayer(
        breaker_config=BreakerConfig(
            failure_threshold=0.9,
            window_size=40,
            min_calls=20,
            open_seconds=20.0,
        )
    )
    layer.set_policy(
        CallPolicy(
            max_retries=2,
            backoff_base_ms=5.0,
            backoff_multiplier=2.0,
            jitter_ms=3.0,
        ),
        service="catalog",
    )
    return layer


def run(fault_name: str) -> None:
    """Run the same canary under one of the two fault scenarios."""
    app = build_app()
    layer = resilience_layer()
    bifrost = Bifrost(app, seed=SEED, resilience=layer)
    campaign = FaultCampaign(FaultInjector(app))
    if fault_name == "transient burst":
        campaign.add(ErrorBurst("catalog", "2.0.0", "list", 0.5, 30.0, 60.0))
    else:
        campaign.add(VersionCrash("catalog", "2.0.0", 30.0, 400.0))
    bifrost.install_campaign(campaign)
    execution = bifrost.submit(canary_strategy(), at=1.0)

    population = UserPopulation(400, DEFAULT_GROUPS, seed=SEED + 1)
    workload = WorkloadGenerator(population, entry="frontend.index", seed=SEED + 2)
    bifrost.run(workload.poisson(30.0, 150.0), until=260.0)

    print(f"--- {fault_name} ---")
    print(f"strategy outcome: {execution.outcome.value}")
    print(f"stable catalog version: {app.stable_version('catalog')}")
    print(ResilienceSummary.of(layer).describe())
    print()


def main() -> None:
    run("transient burst")
    run("sustained crash")


if __name__ == "__main__":
    main()
