"""A release engineer's full workflow with the extension features.

Shows the pieces the dissertation sketches as future work, implemented
here: the implementation-technique advisor (smart experimentation
platforms), static experiment verification before execution, and
mid-flight cancellation with the diff visualization for the post-mortem.

Run with::

    python examples/release_workflow.py
"""

from repro.bifrost import Bifrost, parse_strategy
from repro.core.advisor import PlatformContext, advise_technique
from repro.core.experiment import Experiment, ExperimentPractice
from repro.microservices.service import EndpointSpec, ServiceVersion
from repro.simulation.latency import LogNormalLatency
from repro.topology import build_interaction_graph, diff_graphs, rank_changes
from repro.topology.heuristics import HybridHeuristic
from repro.topology.scenarios import sample_application
from repro.topology.visualize import diff_report
from repro.tracing.query import TraceQuery
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator
from repro.verification import verify_strategy

STRATEGY = """
strategy search-canary
  description "Canary for the reworked search service"
  phase canary
    type canary
    service search
    stable 1.0.0
    experimental 2.0.0
    fraction 0.15
    duration 240
    interval 5
    check errors
      metric error
      aggregation mean
      operator <=
      threshold 0.05
      window 30
    check latency
      metric response_time
      aggregation mean
      operator <=
      baseline 1.0.0
      tolerance 1.4
      window 30
"""


def main() -> None:
    app = sample_application()
    app.deploy(
        ServiceVersion(
            "search",
            "2.0.0",
            {
                "query": EndpointSpec(
                    "query",
                    LogNormalLatency(22.0, 0.25),
                    calls=app.resolve("search").endpoint("query").calls,
                )
            },
            capacity_rps=500.0,
        )
    )

    # 1. Which implementation technique fits this experiment?
    experiment = Experiment(
        "search-canary", "search", ExperimentPractice.CANARY_RELEASE
    )
    advice = advise_technique(
        experiment,
        PlatformContext(expected_rps=30.0, instance_capacity_rps=500.0,
                        active_toggles_on_service=12),
    )
    print(f"advisor: {advice.describe()}\n")

    # 2. Verify the strategy before touching production.
    strategy = parse_strategy(STRATEGY)
    bifrost = Bifrost(app, seed=71)
    report = verify_strategy(strategy, app, bifrost.router)
    print(report.describe())
    if not report.ok:
        raise SystemExit("verification failed — not executing")

    # 3. Execute — and cancel mid-flight (business priorities changed).
    population = UserPopulation(800, DEFAULT_GROUPS, seed=72)
    workload = WorkloadGenerator(population, entry="frontend.index", seed=73)
    bifrost.run(workload.poisson(50.0, 40.0), until=40.0)  # baseline window
    execution = bifrost.submit(strategy, at=41.0)
    bifrost.run(workload.poisson(50.0, 80.0, start=40.0), until=120.0)
    bifrost.engine.cancel("search-canary")
    print(f"\ncanceled at t=120s; outcome: {execution.outcome.value}")
    print(f"stable search version is still: {app.stable_version('search')}")

    # 4. Post-mortem: what did the experiment change, topologically?
    baseline_traces = TraceQuery(bifrost.collector).in_window(0, 40).run()
    exp_traces = TraceQuery(bifrost.collector).in_window(41, 120).run()
    diff = diff_graphs(
        build_interaction_graph(baseline_traces, "baseline"),
        build_interaction_graph(exp_traces, "experimental"),
    )
    ranking = rank_changes(diff, HybridHeuristic(relative=True))
    print()
    print(diff_report(diff, ranking, top=3))


if __name__ == "__main__":
    main()
