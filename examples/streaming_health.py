"""Live health: a canary gated on the streaming topology pipeline.

Instead of batch-analyzing traces after an experiment ends, the
streaming pipeline folds every completed trace into a live interaction
graph, diffs it against a baseline pinned before the rollout, scores
per-service health, and publishes ``health.score`` metrics — which a
Bifrost ``kind health`` check gates on while the canary is still
running.  The same strategy is run twice: against a faulty 2.0.0 (60 %
errors, rolled back by the health gate) and against a healthy 2.0.0
(promoted).

Run with::

    python examples/streaming_health.py
"""

from repro.bifrost import Bifrost
from repro.microservices.service import EndpointSpec, ServiceVersion
from repro.simulation.latency import LoadSensitiveLatency, LogNormalLatency
from repro.topology.scenarios import sample_application
from repro.topology.streaming import HEALTH_METRIC, HEALTH_VERSION
from repro.topology.visualize import topology_health_panel
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

STRATEGY = """
strategy health-gated-canary
  phase canary
    type canary
    service recommend
    stable 1.0.0
    experimental 2.0.0
    fraction 0.3
    duration 45
    interval 5
    check live-health
      kind health
      threshold 0.8
      window 20
    on_success complete
    on_failure rollback
"""


def deploy_recommend(app, error_rate: float) -> None:
    for version, median, err in (("1.0.0", 14.0, 0.0), ("2.0.0", 15.0, error_rate)):
        app.deploy(
            ServiceVersion(
                "recommend",
                version,
                {
                    "suggest": EndpointSpec(
                        "suggest",
                        LoadSensitiveLatency(LogNormalLatency(median, 0.25)),
                        error_rate=err,
                    )
                },
                capacity_rps=400.0,
            ),
            stable=(version == "1.0.0"),
        )


def run_canary(label: str, error_rate: float, seed: int) -> None:
    app = sample_application()
    deploy_recommend(app, error_rate)
    bifrost = Bifrost(app, seed=seed)
    population = UserPopulation(600, DEFAULT_GROUPS, seed=seed + 1)
    workload = WorkloadGenerator(population, entry="recommend.suggest", seed=seed + 2)

    # Warmup traffic on the stable version becomes the pinned baseline.
    bifrost.run(workload.poisson(40.0, 30.0), until=30.0)
    monitor = bifrost.enable_live_health(publish_interval=2.0)
    execution = bifrost.submit(STRATEGY, at=31.0)
    bifrost.run(workload.poisson(40.0, 60.0, start=31.0), until=100.0)

    print(f"\n=== {label} (experimental error rate {error_rate:.0%})")
    print(f"strategy outcome: {execution.outcome.value}")
    print(f"stable version now: {bifrost.application.stable_version('recommend')}")
    print(
        f"traces folded: {bifrost.streaming_builder.trace_count}, "
        f"health publications: {monitor.publishes}"
    )

    scores = bifrost.store.values_in_window(
        "recommend", HEALTH_VERSION, HEALTH_METRIC, 0.0, 1e9
    )
    print(
        f"recommend health over the run: min={min(scores):.3f} "
        f"max={max(scores):.3f} last={scores[-1]:.3f}"
    )

    print("\nlive dashboard:")
    print(topology_health_panel(monitor.last_report, diff=monitor.live.current()))


def main() -> None:
    run_canary("faulty rollout", error_rate=0.6, seed=101)
    run_canary("healthy rollout", error_rate=0.0, seed=202)


if __name__ == "__main__":
    main()
