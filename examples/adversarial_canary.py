"""Adversarial scenario fuzzing: hunting configs that betray their users.

The scenario layer turns the whole stack into a test subject.  This
example runs a short seeded fuzz campaign over the adversarial
archetypes (loose gates, cascading failures, heavy-tail traffic, flash
crowds, multi-region chains, mid-experiment deploys, engine crashes),
prints what falsified which cross-layer invariant, and shows one
counterexample shrunk to its essence — the same pipeline that feeds
``tests/regression_corpus/``.

Run with::

    python examples/adversarial_canary.py
"""

from repro.obs.observer import Observer
from repro.scenarios import ScenarioFuzzer, run_scenario
from repro.scenarios.fuzzer import ARCHETYPES_BY_NAME

SEED = 2026


def fuzz_campaign() -> None:
    """A small all-archetype campaign with live observability."""
    observer = Observer()
    fuzzer = ScenarioFuzzer(seed=SEED, observer=observer)
    report = fuzzer.run(8)

    print("=== fuzz campaign ===")
    print(report.describe())
    print()
    print("events by kind:")
    for kind, count in sorted(observer.events.counts_by_kind().items()):
        print(f"  {kind:28s} {count}")
    print()


def shrink_showcase() -> None:
    """Find one loose-gate counterexample and show its shrunk form."""
    fuzzer = ScenarioFuzzer(seed=SEED, archetypes=["loose_gate"])
    report = fuzzer.run(2)
    if not report.violations:
        print("no violation found (unexpected for this seed)")
        return
    violation = report.violations[0]
    spec = violation.spec
    print("=== shrunk counterexample ===")
    print(f"invariant : {violation.invariant}")
    print(f"detail    : {violation.detail}")
    print(f"services  : {[s.name for s in spec.services]}")
    print(
        f"gate      : threshold={spec.experiment.check_threshold:.3f} vs "
        f"true error delta={spec.experiment.true_error_delta:.3f}"
    )
    result = run_scenario(spec)
    print(
        f"replay    : outcome={result.outcome.value}, "
        f"stable={result.stable_version}, "
        f"observed error rate={result.observed_error_rate:.3f}"
    )
    print()
    print("A gate looser than the damage it guards against promotes a")
    print("regressing variant every time — and the scenario above is now")
    print("small enough to read in one sitting.")


def main() -> None:
    fuzz_campaign()
    shrink_showcase()


if __name__ == "__main__":
    main()
