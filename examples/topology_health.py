"""Topology-aware health assessment of a breaking release.

Reenacts the Chapter 5 workflow on the breaking-changes scenario: both
application variants are exercised through the simulated runtime, traces
are collected, interaction graphs are built and diffed, the identified
changes are classified into the change-type taxonomy, and every
heuristic variant ranks them — with nDCG@5 against the scenario's ground
truth, like Fig 5.8.

Run with::

    python examples/topology_health.py
"""

from repro.topology import all_heuristic_variants, evaluate_ranking, rank_changes
from repro.topology.ranking import ranking_table
from repro.topology.scenarios import scenario2


def main() -> None:
    scenario = scenario2(degraded=True)
    diff = scenario.diff()

    print("=== topological difference")
    print(f"summary: {diff.summary()}")
    for entry in sorted(
        diff.changed_entries(), key=lambda e: (e.service, e.endpoint)
    ):
        print(
            f"  {entry.status.value:9s} {entry.service}/{entry.endpoint} "
            f"(baseline={sorted(entry.baseline_versions)}, "
            f"experimental={sorted(entry.experimental_versions)})"
        )

    print("\n=== identified changes")
    for change in diff.changes:
        print(f"  {change.describe()}")

    print("\n=== heuristic rankings (nDCG@5 against ground truth)")
    for name, heuristic in all_heuristic_variants().items():
        ranking = rank_changes(diff, heuristic)
        score = evaluate_ranking(ranking, scenario.relevance, k=5)
        print(f"\n--- {name} (nDCG5 = {score:.3f})")
        print(ranking_table(ranking, limit=5))


if __name__ == "__main__":
    main()
