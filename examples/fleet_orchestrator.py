"""A supervised fleet: Fenrir's plan runs through Bifrost and survives.

The fleet orchestrator closes the dissertation's loop: a Fenrir
schedule of overlapping experiments executes as a fleet of bulkheaded
Bifrost engines under per-slot admission control.  This example runs an
eight-experiment fleet through a hostile slate — one experiment
crash-loops until its restart budget is spent, one version crashes once
mid-flight and is restarted, one version is genuinely bad and rolls
back — then kills the orchestrator mid-slot and recovers it from the
fleet WAL, finishing with a result identical to the run that never
crashed.  The outcomes finally feed Fenrir reevaluation, which revives
the shed experiment in a fresh plan.

Run with::

    python examples/fleet_orchestrator.py
"""

from repro.bifrost.journal import Journal, MemoryJournalStorage
from repro.fenrir.model import ExperimentSpec, SchedulingProblem
from repro.fenrir.reevaluation import build_reevaluation_from_fleet
from repro.fenrir.schedule import Gene, Schedule
from repro.fleet import (
    ExperimentFaults,
    FleetConfig,
    FleetOrchestrator,
    OrchestratorKilled,
    fleet_outcomes_for_reevaluation,
    recover_fleet,
)
from repro.traffic.profile import TrafficProfile, UserGroup

WAVE = 4
DURATION = 2
LOOPER_DURATION = 6

FAULTS = {
    "checkout": ExperimentFaults(crash_loop=True),
    "search": ExperimentFaults(crash_slots=(0,)),
}
WORLD = {"payments": 0.4}  # the one genuinely bad candidate version

NAMES = (
    "checkout", "search", "catalog", "payments",
    "reviews", "shipping", "profile", "billing",
)


def build_schedule() -> Schedule:
    """Two waves of four experiments on one shared user group."""
    horizon = 2 * DURATION + LOOPER_DURATION + 2
    profile = TrafficProfile([40_000.0] * horizon, [UserGroup("all", 1.0)])
    specs = [
        ExperimentSpec(
            name=name,
            required_samples=100.0,
            min_traffic_fraction=0.01,
            max_traffic_fraction=1.0,
            max_duration_slots=horizon,
        )
        for name in NAMES
    ]
    genes = [
        Gene(
            start=(i // WAVE) * DURATION,
            duration=LOOPER_DURATION if i == 0 else DURATION,
            fraction=0.1,
            groups=frozenset({"all"}),
        )
        for i in range(len(NAMES))
    ]
    return Schedule(SchedulingProblem(profile, specs), genes)


def config() -> FleetConfig:
    return FleetConfig(
        slot_seconds=30.0,
        check_interval_seconds=10.0,
        base_error=0.0,
        restart_max=2,
        seed=3,
    )


def main() -> None:
    schedule = build_schedule()

    print("== fleet run under faults ==")
    result = FleetOrchestrator(
        schedule, world=WORLD, faults=FAULTS, config=config()
    ).run()
    print(f"slots run: {result.slots_run}, aborted: {result.aborted}")
    for name in NAMES:
        note = ""
        if name in result.sheds:
            note = f" (shed: {result.sheds[name]})"
        elif result.restarts.get(name):
            note = f" (restarts: {result.restarts[name]})"
        print(f"  {name:<9} -> {result.outcomes[name]}{note}")

    print("\n== kill mid-slot, recover from the fleet WAL ==")
    fleet_storage = MemoryJournalStorage()
    exp_storages: dict[str, MemoryJournalStorage] = {}

    def journal_factory(name: str) -> Journal:
        return Journal(exp_storages.setdefault(name, MemoryJournalStorage()))

    try:
        FleetOrchestrator(
            schedule,
            world=WORLD,
            faults=FAULTS,
            config=config(),
            fleet_journal=Journal(fleet_storage),
            journal_factory=journal_factory,
            crash_after_appends=8,
        ).run()
    except OrchestratorKilled:
        print("orchestrator killed before fleet-WAL append 9")
    recovered = recover_fleet(Journal(fleet_storage), journal_factory).run()
    print(f"recovered run matches uncrashed run: "
          f"{recovered.digest() == result.digest()}")

    print("\n== outcomes feed Fenrir reevaluation ==")
    plan = build_reevaluation_from_fleet(
        schedule,
        now_slot=result.slots_run - 1,
        outcomes=fleet_outcomes_for_reevaluation(result),
    )
    print(f"finished, dropped from the plan: {', '.join(sorted(plan.finished))}")
    print(f"revived for a fresh attempt: {', '.join(sorted(plan.revived))}")


if __name__ == "__main__":
    main()
