"""Scheduling a release pipeline's worth of experiments with Fenrir.

Fifteen experiments with mixed sample-size requirements compete for a
week of diurnal traffic.  The example compares the genetic algorithm
against the three baselines, prints the winning schedule as a plan
table, then exercises *reevaluation*: two experiments get canceled and
three new ones arrive at mid-week, and the schedule is rebuilt without
touching the experiments already running.

Run with::

    python examples/experiment_scheduling.py
"""

from repro.fenrir import (
    Fenrir,
    GeneticAlgorithm,
    LocalSearch,
    RandomSampling,
    SampleSizeBand,
    SimulatedAnnealing,
    random_experiments,
    reevaluate,
    schedule_gantt,
    utilization_sparkline,
)
from repro.traffic.profile import diurnal_profile


def main() -> None:
    profile = diurnal_profile(days=7, peak_volume=60_000)
    experiments = random_experiments(
        profile, count=15, band=SampleSizeBand.MEDIUM, seed=4
    )

    print("=== algorithm comparison (equal evaluation budget)")
    results = {}
    for algorithm in (
        GeneticAlgorithm(),
        RandomSampling(),
        LocalSearch(),
        SimulatedAnnealing(),
    ):
        result = Fenrir(algorithm).schedule(
            profile, experiments, budget=1200, seed=1
        )
        results[algorithm.name] = result
        print(
            f"  {algorithm.name:13s} fitness={result.fitness:.3f} "
            f"valid={result.valid} "
            f"time_to_best={result.search.time_to_best_s:.2f}s"
        )

    best = results["genetic"]
    print("\n=== winning schedule (genetic algorithm)")
    header = (
        f"{'experiment':10s} {'start':>5s} {'end':>5s} {'frac':>6s} "
        f"{'samples':>9s} {'required':>9s}  groups"
    )
    print(header)
    for row in best.plan_table():
        print(
            f"{row['experiment']:10s} {row['start_slot']:5d} "
            f"{row['end_slot']:5d} {row['traffic_fraction']:6.3f} "
            f"{row['expected_samples']:9.0f} {row['required_samples']:9.0f}  "
            f"{','.join(row['groups'])}"
        )

    print("\n=== schedule as a Gantt strip")
    print(schedule_gantt(best.schedule))
    print("utilization: " + utilization_sparkline(best.schedule))

    print("\n=== reevaluation at slot 36 (day 2)")
    new_arrivals = random_experiments(
        profile, count=3, band=SampleSizeBand.LOW, seed=99
    )
    renamed = [
        type(spec)(**{**spec.__dict__, "name": f"new-{spec.name}"})
        for spec in new_arrivals
    ]
    plan, result = reevaluate(
        best.schedule,
        now_slot=36,
        algorithm=GeneticAlgorithm(),
        canceled={"exp002", "exp007"},
        new_experiments=renamed,
        budget=1200,
        seed=2,
    )
    print(f"  finished: {plan.finished}")
    print(f"  canceled: {plan.canceled}")
    print(f"  added:    {plan.added}")
    print(f"  locked (running) experiments: {len(plan.locked)}")
    print(f"  reevaluated fitness: {result.fitness:.3f} "
          f"(valid={result.best_evaluation.valid})")


if __name__ == "__main__":
    main()
