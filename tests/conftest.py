"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.microservices.application import Application
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.simulation.latency import ConstantLatency, LogNormalLatency
from repro.traffic.profile import UserGroup, diurnal_profile, flat_profile
from repro.traffic.users import UserPopulation


@pytest.fixture
def groups() -> tuple[UserGroup, ...]:
    """A small two-group population split."""
    return (UserGroup("eu", 0.6), UserGroup("na", 0.4))


@pytest.fixture
def profile(groups):
    """A 48-slot flat traffic profile (1000 requests/slot)."""
    return flat_profile(48, 1000.0, groups)


@pytest.fixture
def week_profile():
    """A realistic 7-day diurnal profile with the default groups."""
    return diurnal_profile(days=7, seed=3)


@pytest.fixture
def population(groups) -> UserPopulation:
    """200 users over the two test groups."""
    return UserPopulation(200, groups, seed=5)


def constant_endpoint(name: str, latency_ms: float = 10.0, calls=(), error_rate=0.0):
    """An endpoint with deterministic latency — precise assertions."""
    return EndpointSpec(name, ConstantLatency(latency_ms), error_rate, calls)


@pytest.fixture
def tiny_app() -> Application:
    """frontend -> backend, both deterministic, one version each."""
    app = Application("tiny")
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {"home": constant_endpoint("home", 10.0, (DownstreamCall("backend", "api"),))},
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion("backend", "1.0.0", {"api": constant_endpoint("api", 20.0)}),
        stable=True,
    )
    return app


@pytest.fixture
def canary_app(tiny_app) -> Application:
    """tiny_app plus a slower backend 2.0.0 canary candidate."""
    tiny_app.deploy(
        ServiceVersion("backend", "2.0.0", {"api": constant_endpoint("api", 30.0)})
    )
    return tiny_app


def make_stochastic_app() -> Application:
    """A three-service app with log-normal latencies (integration tests)."""
    app = Application("stochastic")
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {
                "home": EndpointSpec(
                    "home",
                    LogNormalLatency(10.0, 0.2),
                    calls=(
                        DownstreamCall("auth", "check"),
                        DownstreamCall("backend", "api", probability=0.8),
                    ),
                )
            },
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "auth", "1.0.0", {"check": EndpointSpec("check", LogNormalLatency(5.0, 0.2))}
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "backend", "1.0.0", {"api": EndpointSpec("api", LogNormalLatency(20.0, 0.2))}
        ),
        stable=True,
    )
    return app
