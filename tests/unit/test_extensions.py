"""Unit tests for the extension features: live preview, service-level
aggregation, and objective breakdowns."""

import pytest

from repro.bifrost.preview import LivePreview
from repro.errors import ConfigurationError
from repro.fenrir.fitness import FitnessWeights, evaluate, objective_breakdown
from repro.fenrir.model import SchedulingProblem
from repro.fenrir.schedule import Gene, Schedule
from repro.microservices.runtime import Runtime
from repro.microservices.service import ServiceVersion
from repro.routing.proxy import VersionRouter
from repro.topology.aggregate import SERVICE_LEVEL_ENDPOINT, aggregate_to_service_level
from repro.topology.diff import diff_graphs
from repro.topology.generator import mutate_graph, random_interaction_graph
from repro.topology.graph import InteractionGraph, NodeKey
from tests.conftest import constant_endpoint
from tests.unit.test_fenrir_model import make_spec
from tests.unit.test_microservices import make_request


class TestLivePreview:
    def make_preview(self, canary_app):
        router = VersionRouter()
        runtime = Runtime(canary_app, router=router, seed=3)
        preview = LivePreview(
            canary_app, router, runtime.monitor.store, "backend"
        )
        return runtime, preview

    def candidate(self, latency=25.0) -> ServiceVersion:
        return ServiceVersion(
            "backend", "3.0.0-preview", {"api": constant_endpoint("api", latency)}
        )

    def test_preview_reports_deltas(self, canary_app):
        runtime, preview = self.make_preview(canary_app)
        preview.start(self.candidate(latency=25.0), at=0.0)
        for i in range(40):
            runtime.execute(make_request(user=f"u{i}", t=float(i)))
        deltas = {
            (d.metric, d.aggregation): d for d in preview.deltas(now=50.0)
        }
        rt = deltas[("response_time", "mean")]
        # Stable backend is 20 ms plus the 2 ms proxy hop the dark-launch
        # route introduces; the shadowed candidate is 25 ms (duplicated
        # calls bypass the proxy).
        assert rt.stable == pytest.approx(22.0)
        assert rt.candidate == pytest.approx(25.0)
        assert rt.delta == pytest.approx(3.0)
        assert rt.relative == pytest.approx(3.0 / 22.0)

    def test_users_never_see_the_candidate(self, canary_app):
        runtime, preview = self.make_preview(canary_app)
        preview.start(self.candidate(latency=500.0), at=0.0)
        outcome = runtime.execute(make_request())
        # User latency: frontend 10 + backend 20 + one proxy hop (2 ms).
        # The candidate's 500 ms never reaches the user.
        assert outcome.duration_ms == pytest.approx(32.0)

    def test_stop_undeploys(self, canary_app):
        runtime, preview = self.make_preview(canary_app)
        preview.start(self.candidate(), at=0.0)
        preview.stop()
        assert not preview.active
        assert not canary_app.service("backend").has_version("3.0.0-preview")

    def test_double_start_rejected(self, canary_app):
        runtime, preview = self.make_preview(canary_app)
        preview.start(self.candidate(), at=0.0)
        with pytest.raises(ConfigurationError):
            preview.start(self.candidate(), at=1.0)

    def test_wrong_service_rejected(self, canary_app):
        _, preview = self.make_preview(canary_app)
        wrong = ServiceVersion(
            "frontend", "9.9.9", {"home": constant_endpoint("home", 1.0)}
        )
        with pytest.raises(ConfigurationError):
            preview.start(wrong, at=0.0)

    def test_deltas_before_start_rejected(self, canary_app):
        _, preview = self.make_preview(canary_app)
        with pytest.raises(ConfigurationError):
            preview.deltas(now=1.0)

    def test_describe_formats(self, canary_app):
        runtime, preview = self.make_preview(canary_app)
        preview.start(self.candidate(), at=0.0)
        for i in range(10):
            runtime.execute(make_request(user=f"u{i}", t=float(i)))
        lines = [d.describe() for d in preview.deltas(now=20.0)]
        assert any("mean(response_time)" in line for line in lines)


class TestServiceLevelAggregation:
    def make_graph(self) -> InteractionGraph:
        graph = InteractionGraph("g")
        a1 = NodeKey("a", "1.0", "ep0")
        a2 = NodeKey("a", "1.0", "ep1")
        b = NodeKey("b", "1.0", "ep0")
        graph.observe_call(None, a1, 10.0, False)
        graph.observe_call(None, a2, 30.0, True)
        graph.observe_call(a1, b, 5.0, False)
        graph.observe_call(a2, b, 15.0, False)
        graph.observe_call(a1, a2, 30.0, False)  # intra-service call
        return graph

    def test_nodes_collapse(self):
        aggregated = aggregate_to_service_level(self.make_graph())
        assert aggregated.node_count == 2
        assert all(
            key.endpoint == SERVICE_LEVEL_ENDPOINT for key in aggregated.nodes
        )

    def test_stats_sum_call_weighted(self):
        aggregated = aggregate_to_service_level(self.make_graph())
        stats = aggregated.node_stats(NodeKey("a", "1.0", "*"))
        assert stats.calls == 3  # a1 x1 + a2 x2 (entry + intra call)
        assert stats.errors == 1

    def test_parallel_edges_merge(self):
        aggregated = aggregate_to_service_level(self.make_graph())
        edge = aggregated.edge_stats(
            NodeKey("a", "1.0", "*"), NodeKey("b", "1.0", "*")
        )
        assert edge.calls == 2
        assert edge.mean_response_ms == pytest.approx(10.0)

    def test_self_edges_dropped(self):
        aggregated = aggregate_to_service_level(self.make_graph())
        a = NodeKey("a", "1.0", "*")
        assert not aggregated.has_edge(a, a)

    def test_diff_works_at_service_level(self):
        base = random_interaction_graph(200, branching=3, seed=1)
        variant = mutate_graph(base, changes=10, seed=2)
        fine = diff_graphs(base, variant)
        coarse = diff_graphs(
            aggregate_to_service_level(base),
            aggregate_to_service_level(variant),
        )
        # Coarser granularity yields at most as many changes.
        assert len(coarse.changes) <= len(fine.changes)
        assert coarse.changes  # but the mutations remain visible

    def test_aggregation_shrinks_graph(self):
        base = random_interaction_graph(300, branching=3, seed=3,
                                        endpoints_per_service=10)
        aggregated = aggregate_to_service_level(base)
        assert aggregated.node_count == 30


class TestObjectiveBreakdown:
    def test_components_bound_fitness(self, profile):
        problem = SchedulingProblem(profile, [make_spec(required_samples=100)])
        schedule = Schedule(problem, [Gene(0, 2, 0.3, frozenset({"eu"}))])
        breakdown = objective_breakdown(schedule)
        evaluation = evaluate(schedule)
        weights = FitnessWeights()
        combined = (
            weights.duration * breakdown.duration
            + weights.start * breakdown.start
            + weights.coverage * breakdown.coverage
        )
        assert combined == pytest.approx(evaluation.fitness)

    def test_late_start_hurts_start_only(self, profile):
        problem = SchedulingProblem(profile, [make_spec(required_samples=100)])
        early = objective_breakdown(
            Schedule(problem, [Gene(0, 2, 0.3, frozenset({"eu"}))])
        )
        late = objective_breakdown(
            Schedule(problem, [Gene(40, 2, 0.3, frozenset({"eu"}))])
        )
        assert late.start < early.start
        assert late.duration == early.duration

    def test_describe(self, profile):
        problem = SchedulingProblem(profile, [make_spec(required_samples=100)])
        schedule = Schedule(problem, [Gene(0, 2, 0.3, frozenset({"eu"}))])
        assert "duration=" in objective_breakdown(schedule).describe()