"""Unit tests for the simulated single-threaded executor."""

import pytest

from repro.errors import SimulationError
from repro.simulation.executor import SimulatedExecutor, replay


class TestSubmit:
    def test_idle_worker_starts_immediately(self):
        executor = SimulatedExecutor()
        record = executor.submit(1.0, 0.5)
        assert record.start == 1.0
        assert record.finish == 1.5
        assert record.delay == 0.0

    def test_busy_worker_queues(self):
        executor = SimulatedExecutor()
        executor.submit(0.0, 1.0)
        record = executor.submit(0.1, 1.0)
        assert record.start == 1.0
        assert record.delay == pytest.approx(0.9)

    def test_gap_resets_queue(self):
        executor = SimulatedExecutor()
        executor.submit(0.0, 0.5)
        record = executor.submit(10.0, 0.5)
        assert record.delay == 0.0

    def test_burst_delay_grows_linearly(self):
        executor = SimulatedExecutor()
        delays = [executor.submit(0.0, 0.1).delay for _ in range(5)]
        assert delays == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4])

    def test_rejects_negative_cost(self):
        with pytest.raises(SimulationError):
            SimulatedExecutor().submit(0.0, -1.0)

    def test_rejects_time_travel(self):
        executor = SimulatedExecutor()
        executor.submit(5.0, 0.1)
        with pytest.raises(SimulationError):
            executor.submit(4.0, 0.1)

    def test_backlog(self):
        executor = SimulatedExecutor()
        executor.submit(0.0, 2.0)
        assert executor.backlog(1.0) == pytest.approx(1.0)
        assert executor.backlog(5.0) == 0.0


class TestReporting:
    def test_report_counts(self):
        executor = SimulatedExecutor()
        for i in range(4):
            executor.submit(float(i), 0.25)
        report = executor.report()
        assert report.tasks == 4
        assert report.busy_time == pytest.approx(1.0)
        assert 0.0 < report.utilization <= 1.0

    def test_report_requires_tasks(self):
        with pytest.raises(SimulationError):
            SimulatedExecutor().report()

    def test_utilization_series_bounds(self):
        executor = SimulatedExecutor()
        for i in range(10):
            executor.submit(i * 0.5, 0.25)
        series = executor.utilization_series(1.0)
        assert series
        assert all(0.0 <= u <= 1.0 for _, u in series)

    def test_saturated_utilization_is_one(self):
        executor = SimulatedExecutor()
        for i in range(10):
            executor.submit(float(i), 1.0)
        report = executor.report()
        assert report.utilization == pytest.approx(1.0)

    def test_as_row_keys(self):
        executor = SimulatedExecutor()
        executor.submit(0.0, 0.1)
        row = executor.report().as_row()
        assert "cpu_utilization" in row
        assert "mean_delay_ms" in row

    def test_replay_sorts_arrivals(self):
        executor = replay([(1.0, 0.1, "b"), (0.0, 0.1, "a")])
        labels = [r.label for r in executor.records]
        assert labels == ["a", "b"]
