"""Unit tests for the simulation kernel: clock, engine, rng, latency."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.simulation.clock import SimulationClock
from repro.simulation.engine import SimulationEngine
from repro.simulation.latency import (
    CompositeLatency,
    ConstantLatency,
    LoadSensitiveLatency,
    LogNormalLatency,
)
from repro.simulation.rng import SeededRng


class TestClock:
    def test_starts_at_zero(self):
        assert SimulationClock().now == 0.0

    def test_advance(self):
        clock = SimulationClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_advance_to(self):
        clock = SimulationClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_no_backwards_travel(self):
        clock = SimulationClock(5.0)
        with pytest.raises(SimulationError):
            clock.advance(-1.0)
        with pytest.raises(SimulationError):
            clock.advance_to(1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimulationClock(-1.0)


class TestEngine:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(2.0, lambda: order.append("b"))
        engine.schedule_at(1.0, lambda: order.append("a"))
        engine.run()
        assert order == ["a", "b"]

    def test_same_time_fifo(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(1.0, lambda: order.append(1))
        engine.schedule_at(1.0, lambda: order.append(2))
        engine.run()
        assert order == [1, 2]

    def test_clock_advances_with_events(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_at(3.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [3.0]

    def test_run_until_stops_at_horizon(self):
        engine = SimulationEngine()
        ran = []
        engine.schedule_at(1.0, lambda: ran.append(1))
        engine.schedule_at(10.0, lambda: ran.append(10))
        engine.run_until(5.0)
        assert ran == [1]
        assert engine.now == 5.0

    def test_run_until_advances_clock_even_without_events(self):
        engine = SimulationEngine()
        engine.run_until(7.0)
        assert engine.now == 7.0

    def test_callbacks_can_reschedule(self):
        engine = SimulationEngine()
        ticks = []

        def tick():
            ticks.append(engine.now)
            if len(ticks) < 3:
                engine.schedule_in(1.0, tick)

        engine.schedule_at(0.0, tick)
        engine.run()
        assert ticks == [0.0, 1.0, 2.0]

    def test_cancelled_events_skipped(self):
        engine = SimulationEngine()
        ran = []
        event = engine.schedule_at(1.0, lambda: ran.append(1))
        event.cancel()
        engine.run()
        assert ran == []

    def test_no_scheduling_in_past(self):
        engine = SimulationEngine()
        engine.clock.advance(5.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule_in(-0.1, lambda: None)


class TestRng:
    def test_same_seed_same_stream(self):
        a, b = SeededRng(7), SeededRng(7)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert SeededRng(1).random() != SeededRng(2).random()

    def test_fork_is_deterministic(self):
        a = SeededRng(7).fork("traffic")
        b = SeededRng(7).fork("traffic")
        assert a.random() == b.random()

    def test_forks_with_different_labels_differ(self):
        root = SeededRng(7)
        assert root.fork("x").random() != root.fork("y").random()

    def test_weighted_choice_respects_weights(self):
        rng = SeededRng(3)
        picks = [rng.weighted_choice(["a", "b"], [0.99, 0.01]) for _ in range(200)]
        assert picks.count("a") > 150


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(5.0)
        assert model.sample(SeededRng(1)) == 5.0
        assert model.mean() == 5.0

    def test_constant_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ConstantLatency(-1.0)

    def test_lognormal_positive(self):
        model = LogNormalLatency(20.0, 0.3)
        rng = SeededRng(2)
        assert all(model.sample(rng) > 0 for _ in range(100))

    def test_lognormal_median_approx(self):
        model = LogNormalLatency(20.0, 0.3)
        rng = SeededRng(3)
        samples = sorted(model.sample(rng) for _ in range(4001))
        assert samples[2000] == pytest.approx(20.0, rel=0.1)

    def test_lognormal_zero_sigma_degenerate(self):
        model = LogNormalLatency(15.0, 0.0)
        assert model.sample(SeededRng(1)) == 15.0

    def test_lognormal_rejects_bad_median(self):
        with pytest.raises(ConfigurationError):
            LogNormalLatency(0.0)

    def test_load_sensitive_inflates_over_capacity(self):
        base = ConstantLatency(10.0)
        model = LoadSensitiveLatency(base, pressure=0.5)
        rng = SeededRng(1)
        assert model.sample(rng, load=1.0) == 10.0
        assert model.sample(rng, load=3.0) == pytest.approx(20.0)

    def test_load_sensitive_no_deflation_below_capacity(self):
        model = LoadSensitiveLatency(ConstantLatency(10.0))
        assert model.sample(SeededRng(1), load=0.1) == 10.0

    def test_composite_sums(self):
        model = CompositeLatency(ConstantLatency(3.0), ConstantLatency(4.0))
        assert model.sample(SeededRng(1)) == 7.0
        assert model.mean() == 7.0

    def test_composite_requires_components(self):
        with pytest.raises(ConfigurationError):
            CompositeLatency()
