"""Unit tests for the structured event log and JSONL round-trips."""

import io

import pytest

from repro.errors import ValidationError
from repro.obs.events import (
    ENGINE_CHECK,
    ENGINE_SUBMITTED,
    Event,
    EventLog,
    event_from_dict,
    load_jsonl,
)


class TestEvent:
    def test_as_dict_round_trip(self):
        event = Event(7, 12.5, ENGINE_CHECK, {"check": "errors", "outcome": "pass"})
        rebuilt = event_from_dict(event.as_dict())
        assert rebuilt == event

    def test_describe_mentions_seq_kind_and_payload(self):
        line = Event(3, 1.0, ENGINE_CHECK, {"check": "errors"}).describe()
        assert "#3" in line
        assert ENGINE_CHECK in line
        assert "check=errors" in line

    def test_malformed_document_raises(self):
        with pytest.raises(ValidationError):
            event_from_dict({"seq": 1, "kind": "x"})  # missing time/data

    def test_undecodable_jsonl_line_raises(self):
        with pytest.raises(ValidationError):
            load_jsonl(["{not json"])


class TestEventLog:
    def test_sequence_numbers_are_monotonic_from_one(self):
        log = EventLog()
        events = [log.append("k", float(i)) for i in range(5)]
        assert [e.seq for e in events] == [1, 2, 3, 4, 5]
        assert log.last_seq == 5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValidationError):
            EventLog(capacity=0)

    def test_ring_evicts_oldest_and_counts_drops(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.append("k", float(i))
        assert len(log) == 3
        assert log.appended == 5
        assert log.dropped == 2
        assert log.first_retained_seq == 3
        assert [e.seq for e in log] == [3, 4, 5]

    def test_counts_by_kind_survive_eviction(self):
        log = EventLog(capacity=2)
        for _ in range(4):
            log.append("a", 0.0)
        log.append("b", 0.0)
        assert log.counts_by_kind() == {"a": 4, "b": 1}

    def test_replay_filters_by_kind_and_seq(self):
        log = EventLog()
        log.append(ENGINE_SUBMITTED, 0.0)
        log.append(ENGINE_CHECK, 1.0)
        log.append(ENGINE_CHECK, 2.0)
        checks = log.events(kinds={ENGINE_CHECK})
        assert [e.time for e in checks] == [1.0, 2.0]
        later = log.events(since_seq=checks[0].seq)
        assert [e.seq for e in later] == [3]

    def test_tail_returns_most_recent(self):
        log = EventLog()
        for i in range(10):
            log.append("k", float(i))
        assert [e.time for e in log.tail(3)] == [7.0, 8.0, 9.0]
        assert log.tail(0) == []

    def test_subscriber_sees_every_event_despite_eviction(self):
        log = EventLog(capacity=2)
        seen = []
        log.subscribe(lambda e: seen.append(e.seq))
        for i in range(6):
            log.append("k", float(i))
        assert seen == [1, 2, 3, 4, 5, 6]
        assert len(log) == 2

    def test_export_jsonl_round_trips(self):
        log = EventLog()
        log.append("a", 1.0, {"x": 1})
        log.append("b", 2.0, {"y": "z"})
        buffer = io.StringIO()
        written = log.export_jsonl(buffer)
        assert written == 2
        events = load_jsonl(buffer.getvalue().splitlines())
        assert events == list(log)

    def test_clear_keeps_sequence_counter(self):
        log = EventLog()
        log.append("k", 0.0)
        log.clear()
        assert len(log) == 0
        assert log.append("k", 1.0).seq == 2
