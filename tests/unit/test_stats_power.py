"""Unit tests for repro.stats.power."""

import pytest

from repro.errors import StatisticsError
from repro.stats.power import (
    PowerAnalysis,
    required_sample_size_mean,
    required_sample_size_proportion,
)


class TestPowerAnalysis:
    def test_defaults(self):
        analysis = PowerAnalysis()
        assert analysis.alpha == 0.05
        assert analysis.power == 0.8

    def test_z_quantiles(self):
        analysis = PowerAnalysis(alpha=0.05, power=0.8)
        assert analysis.z_alpha == pytest.approx(1.959964, abs=1e-5)
        assert analysis.z_beta == pytest.approx(0.841621, abs=1e-5)

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.1, 2.0])
    def test_invalid_alpha(self, alpha):
        with pytest.raises(StatisticsError):
            PowerAnalysis(alpha=alpha)

    @pytest.mark.parametrize("power", [0.0, 1.0])
    def test_invalid_power(self, power):
        with pytest.raises(StatisticsError):
            PowerAnalysis(power=power)


class TestSampleSizeMean:
    def test_textbook_value(self):
        # d = effect/std = 0.5 -> n ~ 63 per group at alpha=.05, power=.8.
        n = required_sample_size_mean(effect_size=5.0, std=10.0)
        assert 60 <= n <= 66

    def test_smaller_effect_needs_more_samples(self):
        big = required_sample_size_mean(10.0, 10.0)
        small = required_sample_size_mean(1.0, 10.0)
        assert small > big

    def test_higher_power_needs_more_samples(self):
        low = required_sample_size_mean(5.0, 10.0, PowerAnalysis(power=0.8))
        high = required_sample_size_mean(5.0, 10.0, PowerAnalysis(power=0.95))
        assert high > low

    def test_invalid_effect(self):
        with pytest.raises(StatisticsError):
            required_sample_size_mean(0.0, 1.0)

    def test_invalid_std(self):
        with pytest.raises(StatisticsError):
            required_sample_size_mean(1.0, 0.0)


class TestSampleSizeProportion:
    def test_conversion_rate_case(self):
        # 10% baseline, detect +2pp: classic A/B sizing ~3,800 per group.
        n = required_sample_size_proportion(0.10, 0.02)
        assert 3000 <= n <= 4600

    def test_negative_effect_allowed(self):
        n = required_sample_size_proportion(0.5, -0.05)
        assert n > 100

    def test_rate_out_of_range(self):
        with pytest.raises(StatisticsError):
            required_sample_size_proportion(1.2, 0.05)

    def test_effect_pushing_out_of_range(self):
        with pytest.raises(StatisticsError):
            required_sample_size_proportion(0.97, 0.05)

    def test_zero_effect(self):
        with pytest.raises(StatisticsError):
            required_sample_size_proportion(0.5, 0.0)

    def test_monotonic_in_effect(self):
        n1 = required_sample_size_proportion(0.1, 0.01)
        n2 = required_sample_size_proportion(0.1, 0.05)
        assert n1 > n2
