"""Unit tests for Fenrir's search operators."""

import pytest

from repro.fenrir.fitness import evaluate
from repro.fenrir.model import SchedulingProblem
from repro.fenrir.operators import (
    crossover,
    mutate_gene,
    pack_repair,
    random_gene,
    random_schedule,
    repair_gene,
    required_fraction,
)
from repro.fenrir.schedule import Gene, Schedule
from repro.simulation.rng import SeededRng
from tests.unit.test_fenrir_model import make_spec


@pytest.fixture
def problem(profile):
    specs = [make_spec(f"e{i}", required_samples=800) for i in range(4)]
    return SchedulingProblem(profile, specs)


class TestRequiredFraction:
    def test_exact_value(self, problem):
        spec = problem.experiments[0]
        # 5 slots * 1000 * 0.6 = 3000 volume; 800 needed -> 0.2667.
        fraction = required_fraction(problem, spec, 0, 5, frozenset({"eu"}))
        assert fraction == pytest.approx(800 / 3000)

    def test_infinite_when_no_traffic(self, problem):
        spec = problem.experiments[0]
        assert required_fraction(problem, spec, 48, 5, frozenset({"eu"})) == float("inf")


class TestRandomGene:
    def test_gene_within_bounds(self, problem):
        rng = SeededRng(1)
        for spec in problem.experiments:
            gene = random_gene(problem, spec, rng)
            assert gene.start >= spec.earliest_start
            assert spec.min_duration_slots <= gene.duration

    def test_gene_usually_sample_feasible(self, problem):
        rng = SeededRng(2)
        spec = problem.experiments[0]
        feasible = 0
        for _ in range(20):
            gene = random_gene(problem, spec, rng)
            schedule = Schedule(
                problem,
                [gene] + [random_gene(problem, s, rng) for s in problem.experiments[1:]],
            )
            if schedule.samples_collected(0) >= spec.required_samples:
                feasible += 1
        assert feasible >= 18

    def test_preferred_groups_mostly_respected(self, profile):
        spec = make_spec(required_samples=100, preferred_groups=frozenset({"eu"}))
        problem = SchedulingProblem(profile, [spec])
        rng = SeededRng(3)
        hits = sum(
            "eu" in random_gene(problem, spec, rng).groups for _ in range(30)
        )
        assert hits == 30  # preferred groups always included


class TestRepairGene:
    def test_clamps_fields(self, problem):
        spec = problem.experiments[0]
        broken = Gene(100, 99, 1.0, frozenset({"eu"}))
        repaired = repair_gene(problem, spec, broken)
        assert repaired.end <= problem.horizon
        assert repaired.duration <= spec.max_duration_slots
        assert repaired.fraction <= spec.max_traffic_fraction

    def test_restores_sample_feasibility(self, problem):
        spec = problem.experiments[0]
        skimpy = Gene(0, 2, 0.01, frozenset({"eu"}))
        repaired = repair_gene(problem, spec, skimpy)
        schedule = Schedule(
            problem,
            [repaired]
            + [Gene(20, 5, 0.3, frozenset({"na"}))] * (len(problem.experiments) - 1),
        )
        assert schedule.samples_collected(0) >= spec.required_samples

    def test_widens_groups_as_last_resort(self, profile):
        # Samples impossible on 'na' alone even at max fraction/duration.
        spec = make_spec(
            required_samples=12_000,
            max_duration_slots=10,
            max_traffic_fraction=0.5,
        )
        problem = SchedulingProblem(profile, [spec])
        gene = Gene(0, 10, 0.5, frozenset({"na"}))
        repaired = repair_gene(problem, spec, gene)
        assert len(repaired.groups) > 1


class TestMutation:
    def test_produces_valid_gene(self, problem):
        rng = SeededRng(4)
        spec = problem.experiments[0]
        gene = random_gene(problem, spec, rng)
        for _ in range(50):
            gene = mutate_gene(problem, spec, gene, rng)
            assert 0 <= gene.start < problem.horizon
            assert gene.duration >= 1
            assert 0 < gene.fraction <= 1
            assert gene.groups

    def test_mutation_changes_something_eventually(self, problem):
        rng = SeededRng(5)
        spec = problem.experiments[0]
        gene = random_gene(problem, spec, rng)
        assert any(
            mutate_gene(problem, spec, gene, rng) != gene for _ in range(10)
        )


class TestCrossover:
    def test_children_mix_parents(self, problem):
        rng = SeededRng(6)
        a = random_schedule(problem, rng, packed=False)
        b = random_schedule(problem, rng, packed=False)
        child1, child2 = crossover(a, b, rng)
        for i in range(len(a.genes)):
            assert child1.genes[i] in (a.genes[i], b.genes[i])
            assert child2.genes[i] in (a.genes[i], b.genes[i])

    def test_children_complementary(self, problem):
        rng = SeededRng(7)
        a = random_schedule(problem, rng, packed=False)
        b = random_schedule(problem, rng, packed=False)
        child1, child2 = crossover(a, b, rng)
        for i in range(len(a.genes)):
            pair = {child1.genes[i], child2.genes[i]}
            assert pair == {a.genes[i], b.genes[i]}

    def test_single_gene_copies(self, profile):
        problem = SchedulingProblem(profile, [make_spec(required_samples=10)])
        rng = SeededRng(8)
        a = random_schedule(problem, rng, packed=False)
        b = random_schedule(problem, rng, packed=False)
        child1, child2 = crossover(a, b, rng)
        assert child1.genes == a.genes
        assert child2.genes == b.genes


class TestPackRepair:
    def test_removes_overlaps_when_room_exists(self, problem):
        genes = [Gene(0, 5, 0.5, frozenset({"eu"})) for _ in range(4)]
        schedule = Schedule(problem, genes)
        packed = pack_repair(schedule, SeededRng(9))
        usage = packed.group_usage()
        assert all(v <= 1.0 + 1e-9 for v in usage.values())

    def test_respects_locked_genes(self, problem):
        genes = [Gene(i, 5, 0.4, frozenset({"eu"})) for i in range(4)]
        schedule = Schedule(problem, genes)
        packed = pack_repair(schedule, SeededRng(10), locked=frozenset({0, 1}))
        assert packed.genes[0] == genes[0]
        assert packed.genes[1] == genes[1]

    def test_packed_random_schedules_usually_valid(self, problem):
        rng = SeededRng(11)
        valid = sum(
            evaluate(random_schedule(problem, rng)).valid for _ in range(20)
        )
        assert valid >= 15

    def test_preserves_gene_count(self, problem):
        rng = SeededRng(12)
        schedule = random_schedule(problem, rng, packed=False)
        packed = pack_repair(schedule, rng)
        assert len(packed.genes) == len(schedule.genes)
