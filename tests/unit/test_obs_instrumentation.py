"""Unit tests: the built-in instrumentation emits what the record shows.

Each subsystem's emissions are checked against its own ground truth —
the engine's execution record, the journal's record list, the search
result's statistics — so the glass box is verified to reflect reality
rather than merely produce output.
"""

from repro.bifrost.checks import CheckEvaluator, CheckResult
from repro.bifrost.model import CheckOutcome, Strategy, StrategyOutcome
from repro.fenrir import Fenrir
from repro.fenrir.model import ExperimentSpec
from repro.obs.events import (
    ENGINE_CHECK,
    ENGINE_FINALIZED,
    ENGINE_PHASE_ENTERED,
    ENGINE_TRANSITION,
    FENRIR_GENERATION,
    FENRIR_SCHEDULE,
    FENRIR_SEARCH_COMPLETED,
    JOURNAL_APPEND,
    TOPOLOGY_HEALTH,
)
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.telemetry.store import MetricStore
from repro.traffic.profile import UserGroup, flat_profile
from tests.unit.test_bifrost_engine import canary_phase, run_strategy


class TestEngineInstrumentation:
    def test_event_counts_match_execution_record(self, canary_app):
        observer = Observer(enabled=True)
        strategy = Strategy("s", (canary_phase(),))
        _, execution = run_strategy(canary_app, strategy, observer=observer)
        assert execution.outcome is StrategyOutcome.COMPLETED
        counts = observer.events.counts_by_kind()
        assert counts[ENGINE_CHECK] == len(execution.check_log)
        assert counts[ENGINE_TRANSITION] == len(execution.transitions)
        assert counts[ENGINE_PHASE_ENTERED] == execution.phase_entries
        assert counts[ENGINE_FINALIZED] == 1

    def test_metrics_mirror_event_counts(self, canary_app):
        observer = Observer(enabled=True)
        strategy = Strategy("s", (canary_phase(),))
        _, execution = run_strategy(canary_app, strategy, observer=observer)
        passes = sum(
            1 for r in execution.check_log if r.outcome is CheckOutcome.PASS
        )
        assert (
            observer.metrics.value("bifrost_checks_total", outcome="pass")
            == passes
        )
        assert (
            observer.metrics.value("bifrost_finalized_total", outcome="completed")
            == 1.0
        )

    def test_default_bifrost_runs_dark(self, canary_app):
        strategy = Strategy("s", (canary_phase(),))
        bifrost, execution = run_strategy(canary_app, strategy)
        assert bifrost.observer is NULL_OBSERVER
        assert execution.outcome is StrategyOutcome.COMPLETED

    def test_check_events_carry_duration(self, canary_app):
        observer = Observer(enabled=True)
        strategy = Strategy("s", (canary_phase(),))
        run_strategy(canary_app, strategy, observer=observer)
        checks = observer.events.events(kinds={ENGINE_CHECK})
        assert checks
        assert all(e.data["duration_s"] >= 0.0 for e in checks)

    def test_journal_appends_match_record_count(self, canary_app):
        from repro.bifrost.middleware import Bifrost
        from repro.traffic.users import UserPopulation
        from repro.traffic.workload import WorkloadGenerator

        observer = Observer(enabled=True)
        bifrost = Bifrost(canary_app, seed=3, durable=True, observer=observer)
        bifrost.submit(Strategy("s", (canary_phase(),)), at=1.0)
        population = UserPopulation(
            400, (UserGroup("eu", 0.6), UserGroup("na", 0.4)), seed=4
        )
        workload = WorkloadGenerator(population, entry="frontend.home", seed=5)
        bifrost.run(workload.poisson(40.0, 200.0), until=220.0)
        counts = observer.events.counts_by_kind()
        assert counts[JOURNAL_APPEND] == len(bifrost.journal.records())


class TestCheckDuration:
    def test_duration_recorded_but_not_compared(self):
        store = MetricStore()
        for t in (1.0, 2.0, 3.0):
            store.record("backend", "2.0.0", "error", t, 0.0)
        evaluator = CheckEvaluator(store)
        check = canary_phase().checks[0]
        first = evaluator.evaluate(check, now=10.0)
        second = evaluator.evaluate(check, now=10.0)
        assert isinstance(first, CheckResult)
        assert first.duration_s is not None and first.duration_s >= 0.0
        # Wall-clock durations differ between evaluations, yet results
        # compare equal — journal-rebuilt results must match originals.
        assert first == second


class TestFenrirInstrumentation:
    def make_inputs(self):
        profile = flat_profile(
            48, 1000.0, (UserGroup("eu", 0.6), UserGroup("na", 0.4))
        )
        specs = [
            ExperimentSpec(
                name=f"exp{i}",
                required_samples=600.0,
                min_duration_slots=2,
                max_duration_slots=10,
                min_traffic_fraction=0.01,
                max_traffic_fraction=0.5,
            )
            for i in range(3)
        ]
        return profile, specs

    def test_search_emits_generations_and_completion(self):
        observer = Observer(enabled=True)
        profile, specs = self.make_inputs()
        result = Fenrir(observer=observer).schedule(
            profile, specs, budget=300, seed=1
        )
        counts = observer.events.counts_by_kind()
        assert counts[FENRIR_GENERATION] >= 1
        assert counts[FENRIR_SEARCH_COMPLETED] == 1
        assert counts[FENRIR_SCHEDULE] == 1
        completed = observer.events.events(kinds={FENRIR_SEARCH_COMPLETED})[0]
        assert completed.data["fitness"] == result.fitness
        assert completed.data["evaluations_used"] == 300
        stats = result.search.eval_stats
        assert completed.data["stats"]["cache_hits"] == stats.cache_hits

    def test_generation_timestamps_are_evaluations_used(self):
        observer = Observer(enabled=True)
        profile, specs = self.make_inputs()
        Fenrir(observer=observer).schedule(profile, specs, budget=300, seed=1)
        generations = observer.events.events(kinds={FENRIR_GENERATION})
        times = [e.time for e in generations]
        assert times == sorted(times)
        assert times[-1] <= 300.0
        first = generations[0].data
        assert first["offspring"] >= first["accepted"] >= 0

    def test_observer_does_not_change_search_outcome(self):
        profile, specs = self.make_inputs()
        dark = Fenrir().schedule(profile, specs, budget=300, seed=1)
        lit = Fenrir(observer=Observer(enabled=True)).schedule(
            profile, specs, budget=300, seed=1
        )
        assert lit.fitness == dark.fitness
        assert lit.schedule.genes == dark.schedule.genes

    def test_cache_metrics_bridged_from_eval_stats(self):
        observer = Observer(enabled=True)
        profile, specs = self.make_inputs()
        result = Fenrir(observer=observer).schedule(
            profile, specs, budget=300, seed=1
        )
        stats = result.search.eval_stats
        metrics = observer.metrics
        assert (
            metrics.value("fenrir_cache_hits_total", algorithm="genetic")
            == stats.cache_hits
        )
        assert (
            metrics.value("fenrir_full_evals_total", algorithm="genetic")
            == stats.full_evals
        )
        rate = metrics.value("fenrir_cache_hit_rate", algorithm="genetic")
        assert 0.0 <= rate <= 1.0


class TestTopologyInstrumentation:
    def test_live_health_emits_events_and_timings(self, canary_app):
        from repro.bifrost.middleware import Bifrost
        from repro.traffic.users import UserPopulation
        from repro.traffic.workload import WorkloadGenerator

        observer = Observer(enabled=True)
        bifrost = Bifrost(canary_app, seed=3, observer=observer)
        population = UserPopulation(
            200, (UserGroup("eu", 0.6), UserGroup("na", 0.4)), seed=4
        )
        workload = WorkloadGenerator(population, entry="frontend.home", seed=5)
        bifrost.run(workload.poisson(30.0, 30.0), until=31.0)
        monitor = bifrost.enable_live_health(publish_interval=5.0)
        bifrost.run(workload.poisson(30.0, 30.0), until=70.0)
        monitor.publish(70.0)
        counts = observer.events.counts_by_kind()
        assert counts[TOPOLOGY_HEALTH] == monitor.publishes
        health = observer.events.events(kinds={TOPOLOGY_HEALTH})[-1]
        assert 0.0 <= health.data["overall"] <= 1.0
        samples = {s.name for s in observer.metrics.collect()}
        assert "topology_fold_seconds_count" in samples
        assert "topology_diff_seconds_count" in samples
        assert "topology_rank_seconds_count" in samples
        assert (
            observer.metrics.value("topology_health_overall")
            == monitor.last_report.overall
        )
