"""Unit tests for repro.stats.hypothesis."""

import pytest
from scipy import stats as scipy_stats

from repro.errors import StatisticsError
from repro.simulation.rng import SeededRng
from repro.stats.hypothesis import (
    chi_square_test,
    mann_whitney_u_test,
    proportions_z_test,
    welch_t_test,
)


def _normal_sample(rng: SeededRng, mu: float, sigma: float, n: int) -> list[float]:
    return [rng.gauss(mu, sigma) for _ in range(n)]


class TestWelchT:
    def test_matches_scipy(self):
        rng = SeededRng(1)
        a = _normal_sample(rng, 10, 2, 60)
        b = _normal_sample(rng, 11, 3, 80)
        ours = welch_t_test(a, b)
        ref = scipy_stats.ttest_ind(a, b, equal_var=False)
        assert ours.statistic == pytest.approx(ref.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-9)

    def test_detects_clear_difference(self):
        rng = SeededRng(2)
        a = _normal_sample(rng, 100, 5, 100)
        b = _normal_sample(rng, 110, 5, 100)
        result = welch_t_test(a, b)
        assert result.significant(0.001)
        assert result.effect == pytest.approx(-10, abs=2.5)

    def test_no_difference_not_significant(self):
        rng = SeededRng(3)
        a = _normal_sample(rng, 50, 5, 100)
        b = _normal_sample(rng, 50, 5, 100)
        assert not welch_t_test(a, b).significant(0.01)

    def test_identical_constant_samples(self):
        result = welch_t_test([5, 5, 5], [5, 5, 5])
        assert result.p_value == 1.0

    def test_distinct_constant_samples(self):
        result = welch_t_test([5, 5, 5], [6, 6, 6])
        assert result.p_value == 0.0
        assert result.effect == -1.0

    def test_requires_two_observations(self):
        with pytest.raises(StatisticsError):
            welch_t_test([1.0], [1.0, 2.0])


class TestMannWhitney:
    def test_matches_scipy(self):
        rng = SeededRng(4)
        a = [rng.expovariate(0.1) for _ in range(50)]
        b = [rng.expovariate(0.08) for _ in range(60)]
        ours = mann_whitney_u_test(a, b)
        # Our implementation uses the plain normal approximation without
        # the continuity correction, so compare against the same method.
        ref = scipy_stats.mannwhitneyu(
            a, b, alternative="two-sided", use_continuity=False,
            method="asymptotic",
        )
        assert ours.statistic == pytest.approx(ref.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-6)

    def test_handles_ties(self):
        a = [1, 2, 2, 3, 3, 3]
        b = [2, 3, 3, 4, 4, 4]
        result = mann_whitney_u_test(a, b)
        assert 0.0 <= result.p_value <= 1.0

    def test_effect_direction(self):
        result = mann_whitney_u_test([10, 11, 12], [1, 2, 3])
        assert result.effect == 1.0  # a stochastically dominates b

    def test_identical_samples_effect_zero(self):
        result = mann_whitney_u_test([1, 2, 3], [1, 2, 3])
        assert result.effect == pytest.approx(0.0)


class TestProportions:
    def test_clear_lift_significant(self):
        result = proportions_z_test(180, 1000, 120, 1000)
        assert result.significant(0.01)
        assert result.effect == pytest.approx(0.06)

    def test_no_lift_not_significant(self):
        result = proportions_z_test(100, 1000, 101, 1000)
        assert not result.significant(0.05)

    def test_invalid_trials(self):
        with pytest.raises(StatisticsError):
            proportions_z_test(1, 0, 1, 10)

    def test_successes_exceeding_trials(self):
        with pytest.raises(StatisticsError):
            proportions_z_test(11, 10, 1, 10)

    def test_all_zero_rates(self):
        result = proportions_z_test(0, 100, 0, 100)
        assert result.p_value == 1.0


class TestChiSquare:
    def test_matches_scipy(self):
        table = [[30, 10], [20, 40]]
        ours = chi_square_test(table)
        ref_stat, ref_p, _, _ = scipy_stats.chi2_contingency(table, correction=False)
        assert ours.statistic == pytest.approx(ref_stat, rel=1e-9)
        assert ours.p_value == pytest.approx(ref_p, rel=1e-9)

    def test_independent_table_not_significant(self):
        result = chi_square_test([[50, 50], [50, 50]])
        assert result.p_value == pytest.approx(1.0)
        assert result.effect == pytest.approx(0.0)

    def test_requires_rectangular(self):
        with pytest.raises(StatisticsError):
            chi_square_test([[1, 2], [3]])

    def test_rejects_zero_margin(self):
        with pytest.raises(StatisticsError):
            chi_square_test([[0, 0], [1, 2]])

    def test_requires_two_columns(self):
        with pytest.raises(StatisticsError):
            chi_square_test([[1], [2]])
