"""Unit tests for traffic profiles, users, and workloads."""

import pytest

from repro.errors import ConfigurationError
from repro.simulation.rng import SeededRng
from repro.traffic.profile import (
    TrafficProfile,
    UserGroup,
    consumption_series,
    diurnal_profile,
)
from repro.traffic.users import UserPopulation, bucket_user, in_rollout
from repro.traffic.workload import WorkloadGenerator


class TestUserGroup:
    def test_valid(self):
        assert UserGroup("eu", 0.5).share == 0.5

    @pytest.mark.parametrize("share", [0.0, 1.5, -0.2])
    def test_invalid_share(self, share):
        with pytest.raises(ConfigurationError):
            UserGroup("eu", share)


class TestTrafficProfile:
    def test_group_shares_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            TrafficProfile([1.0], [UserGroup("a", 0.5), UserGroup("b", 0.4)])

    def test_duplicate_groups_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficProfile([1.0], [UserGroup("a", 0.5), UserGroup("a", 0.5)])

    def test_group_volume_scales_by_share(self, profile):
        assert profile.group_volume(0, "eu") == pytest.approx(600.0)
        assert profile.group_volume(0, "na") == pytest.approx(400.0)

    def test_unknown_group(self, profile):
        with pytest.raises(ConfigurationError):
            profile.group_volume(0, "asia")

    def test_total_volume(self, profile):
        assert profile.total_volume() == pytest.approx(48_000.0)

    def test_rate_per_second(self, profile):
        assert profile.rate_per_second(0) == pytest.approx(1000.0 / 3600.0)

    def test_empty_slots_rejected(self, groups):
        with pytest.raises(ConfigurationError):
            TrafficProfile([], groups)

    def test_negative_volume_rejected(self, groups):
        with pytest.raises(ConfigurationError):
            TrafficProfile([-1.0], groups)


class TestDiurnalProfile:
    def test_shape_has_day_night_cycle(self):
        profile = diurnal_profile(days=1, noise=0.0)
        volumes = profile.volumes()
        night = volumes[4]   # 04:00
        evening = volumes[20]  # 20:00 peak
        assert evening > 3 * night

    def test_weekend_factor(self):
        profile = diurnal_profile(days=7, noise=0.0, weekend_factor=0.5)
        weekday_peak = profile.volume(20)       # Monday 20:00
        saturday_peak = profile.volume(5 * 24 + 20)
        assert saturday_peak == pytest.approx(weekday_peak * 0.5, rel=0.01)

    def test_deterministic_by_seed(self):
        a = diurnal_profile(seed=1).volumes()
        b = diurnal_profile(seed=1).volumes()
        assert a == b

    def test_hours_per_day(self):
        assert diurnal_profile(days=3).num_slots == 72

    def test_invalid_days(self):
        with pytest.raises(ConfigurationError):
            diurnal_profile(days=0)

    def test_consumption_series_pairs(self, profile):
        series = consumption_series(profile, {0: 100.0, 2: 50.0})
        assert len(series) == profile.num_slots
        assert series[0] == (1000.0, 100.0)
        assert series[1] == (1000.0, 0.0)


class TestBucketing:
    def test_deterministic(self):
        assert bucket_user("alice", "exp1") == bucket_user("alice", "exp1")

    def test_salt_changes_assignment(self):
        buckets_a = {bucket_user(f"u{i}", "exp1", 2) for i in range(50)}
        different = sum(
            bucket_user(f"u{i}", "exp1", 2) != bucket_user(f"u{i}", "exp2", 2)
            for i in range(50)
        )
        assert buckets_a == {0, 1}
        assert different > 10  # independent streams

    def test_uniformity(self):
        counts = [0, 0]
        for i in range(2000):
            counts[bucket_user(f"user{i}", "salt", 2)] += 1
        assert abs(counts[0] - counts[1]) < 200

    def test_invalid_buckets(self):
        with pytest.raises(ConfigurationError):
            bucket_user("u", "s", 0)

    def test_in_rollout_monotone(self):
        # A user inside a 10% rollout stays inside all larger rollouts.
        users = [f"u{i}" for i in range(500)]
        inside_small = [u for u in users if in_rollout(u, "exp", 0.1)]
        assert all(in_rollout(u, "exp", 0.5) for u in inside_small)

    def test_in_rollout_bounds(self):
        with pytest.raises(ConfigurationError):
            in_rollout("u", "s", 1.5)


class TestUserPopulation:
    def test_size(self, population):
        assert len(population) == 200

    def test_group_assignment_consistent(self, population):
        for user in population.user_ids[:20]:
            group = population.group_of(user)
            assert user in population.members(group)

    def test_shares_approximate(self, groups):
        population = UserPopulation(5000, groups, seed=1)
        eu_share = len(population.members("eu")) / 5000
        assert eu_share == pytest.approx(0.6, abs=0.05)

    def test_unknown_user(self, population):
        with pytest.raises(ConfigurationError):
            population.group_of("nobody")

    def test_sample_restricted_to_group(self, population):
        rng = SeededRng(1)
        for _ in range(10):
            user = population.sample(rng, groups=["na"])
            assert population.group_of(user) == "na"

    def test_invalid_size(self, groups):
        with pytest.raises(ConfigurationError):
            UserPopulation(0, groups)


class TestWorkloadGenerator:
    def test_poisson_count_approximates_rate(self, population):
        generator = WorkloadGenerator(population, seed=1)
        requests = list(generator.poisson(100.0, 10.0))
        assert 800 <= len(requests) <= 1200

    def test_poisson_timestamps_in_range(self, population):
        generator = WorkloadGenerator(population, seed=2)
        requests = list(generator.poisson(50.0, 5.0, start=100.0))
        assert all(100.0 <= r.timestamp < 105.0 for r in requests)

    def test_timestamps_monotone(self, population):
        generator = WorkloadGenerator(population, seed=3)
        times = [r.timestamp for r in generator.poisson(50.0, 5.0)]
        assert times == sorted(times)

    def test_constant_spacing(self, population):
        generator = WorkloadGenerator(population, seed=4)
        requests = list(generator.constant(0.5, 4))
        assert [r.timestamp for r in requests] == [0.0, 0.5, 1.0, 1.5]

    def test_request_carries_group_and_headers(self, population):
        generator = WorkloadGenerator(population, seed=5)
        request = next(iter(generator.constant(1.0, 1)))
        assert request.group == population.group_of(request.user_id)
        assert request.headers["user-id"] == request.user_id

    def test_entry_mix(self, population):
        generator = WorkloadGenerator(
            population, seed=6, entry_mix={"a.x": 0.5, "b.y": 0.5}
        )
        entries = {r.entry for r in generator.constant(1.0, 50)}
        assert entries == {"a.x", "b.y"}

    def test_unique_request_ids(self, population):
        generator = WorkloadGenerator(population, seed=7)
        ids = [r.request_id for r in generator.constant(1.0, 100)]
        assert len(set(ids)) == 100

    def test_invalid_rate(self, population):
        generator = WorkloadGenerator(population)
        with pytest.raises(ConfigurationError):
            list(generator.poisson(0.0, 1.0))
