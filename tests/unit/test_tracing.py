"""Unit tests for the distributed tracing substrate."""

import pytest

from repro.errors import ValidationError
from repro.tracing.collector import TraceCollector
from repro.tracing.query import TraceQuery
from repro.tracing.span import Span
from repro.tracing.trace import Trace


def make_span(
    span_id="s1",
    trace_id="t1",
    parent_id=None,
    service="frontend",
    version="1.0.0",
    endpoint="home",
    start=0.0,
    duration_ms=10.0,
    error=False,
    tags=None,
) -> Span:
    return Span(
        span_id=span_id,
        trace_id=trace_id,
        parent_id=parent_id,
        service=service,
        version=version,
        endpoint=endpoint,
        start=start,
        duration_ms=duration_ms,
        error=error,
        tags=tags or {},
    )


def make_trace() -> Trace:
    root = make_span("root")
    child_a = make_span("a", parent_id="root", service="auth", start=0.001)
    child_b = make_span("b", parent_id="root", service="backend", start=0.002)
    grandchild = make_span("c", parent_id="b", service="db", start=0.003)
    return Trace("t1", [root, child_a, child_b, grandchild])


class TestSpan:
    def test_node_key(self):
        span = make_span()
        assert span.node_key == ("frontend", "1.0.0", "home")

    def test_end_time(self):
        span = make_span(start=1.0, duration_ms=500.0)
        assert span.end == pytest.approx(1.5)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValidationError):
            make_span(duration_ms=-1.0)

    def test_empty_service_rejected(self):
        with pytest.raises(ValidationError):
            make_span(service="")


class TestTrace:
    def test_root_identified(self):
        trace = make_trace()
        assert trace.root.span_id == "root"

    def test_children_ordered_by_start(self):
        trace = make_trace()
        children = trace.children("root")
        assert [c.span_id for c in children] == ["a", "b"]

    def test_walk_visits_all_with_parents(self):
        trace = make_trace()
        visited = {span.span_id: parent for span, parent in trace.walk()}
        assert visited["root"] is None
        assert visited["c"].span_id == "b"
        assert len(visited) == 4

    def test_requires_single_root(self):
        with pytest.raises(ValidationError):
            Trace("t1", [make_span("r1"), make_span("r2")])

    def test_rejects_unknown_parent(self):
        with pytest.raises(ValidationError):
            Trace("t1", [make_span("root"), make_span("x", parent_id="ghost")])

    def test_rejects_foreign_spans(self):
        with pytest.raises(ValidationError):
            Trace("t1", [make_span("root", trace_id="other")])

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValidationError):
            Trace("t1", [make_span("root"), make_span("root", parent_id="root")])

    def test_has_error_propagates(self):
        root = make_span("root")
        bad = make_span("bad", parent_id="root", error=True)
        assert Trace("t1", [root, bad]).has_error

    def test_duration_is_root_duration(self):
        assert make_trace().duration_ms == 10.0


class TestCollector:
    def test_assembles_out_of_order_spans(self):
        collector = TraceCollector()
        collector.record(make_span("c", parent_id="b"))
        collector.record(make_span("b", parent_id="root"))
        collector.record(make_span("root"))
        trace = collector.trace("t1")
        assert len(trace) == 3

    def test_capacity_evicts_oldest(self):
        collector = TraceCollector(capacity=2)
        for i in range(3):
            collector.record(make_span("root", trace_id=f"t{i}"))
        assert len(collector) == 2
        assert "t0" not in collector.trace_ids

    def test_unknown_trace(self):
        with pytest.raises(ValidationError):
            TraceCollector().trace("nope")

    def test_clear(self):
        collector = TraceCollector()
        collector.record(make_span())
        collector.clear()
        assert len(collector) == 0


class TestCollectorEviction:
    def test_late_span_of_evicted_trace_is_dropped(self):
        """Regression: a late span used to resurrect an evicted trace as
        a rootless partial bucket, so a later traces() call blew up."""
        collector = TraceCollector(capacity=2)
        collector.record(make_span("r0", trace_id="t0"))
        collector.record(make_span("r1", trace_id="t1"))
        collector.record(make_span("r2", trace_id="t2"))  # evicts t0
        assert "t0" in collector.evicted_ids
        # Late child span of the evicted trace arrives.
        collector.record(make_span("late", trace_id="t0", parent_id="r0"))
        assert "t0" not in collector.trace_ids
        assert collector.late_spans_dropped.value == 1
        # The whole batch still assembles.
        assert len(collector.traces()) == 2

    def test_traces_skips_unassemblable_buckets_by_default(self):
        collector = TraceCollector()
        collector.record(make_span("root", trace_id="t1"))
        # A rootless bucket (its parent never arrives).
        collector.record(make_span("orphan", trace_id="t2", parent_id="ghost"))
        traces = collector.traces()
        assert [t.trace_id for t in traces] == ["t1"]

    def test_traces_strict_raises_on_unassemblable_bucket(self):
        collector = TraceCollector()
        collector.record(make_span("root", trace_id="t1"))
        collector.record(make_span("orphan", trace_id="t2", parent_id="ghost"))
        with pytest.raises(ValidationError):
            collector.traces(strict=True)

    def test_tombstone_set_is_bounded(self):
        collector = TraceCollector(capacity=1, tombstones=3)
        for i in range(6):
            collector.record(make_span("root", trace_id=f"t{i}"))
        assert len(collector.evicted_ids) == 3
        # Oldest tombstones fell off the bounded set.
        assert collector.evicted_ids == ["t2", "t3", "t4"]

    def test_tombstones_survive_clear(self):
        collector = TraceCollector(capacity=1)
        collector.record(make_span("r0", trace_id="t0"))
        collector.record(make_span("r1", trace_id="t1"))  # evicts t0
        collector.clear()
        collector.record(make_span("late", trace_id="t0", parent_id="r0"))
        assert len(collector) == 0
        assert collector.late_spans_dropped.value == 1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValidationError):
            TraceCollector(capacity=0)
        with pytest.raises(ValidationError):
            TraceCollector(tombstones=0)


class TestCollectorSubscriptions:
    def test_complete_trace_notifies_subscriber(self):
        collector = TraceCollector()
        seen = []
        collector.subscribe(lambda trace: seen.append(trace.trace_id))
        collector.record(make_span("child", parent_id="root"))
        assert seen == []  # incomplete: parent missing
        collector.record(make_span("root"))
        assert seen == ["t1"]

    def test_record_all_notifies_once_per_trace(self):
        collector = TraceCollector()
        seen = []
        collector.subscribe(lambda trace: seen.append(len(trace)))
        collector.record_all(
            [make_span("root"), make_span("a", parent_id="root")]
        )
        assert seen == [2]

    def test_regrown_trace_renotifies_with_cumulative_snapshot(self):
        collector = TraceCollector()
        sizes = []
        collector.subscribe(lambda trace: sizes.append(len(trace)))
        collector.record(make_span("root"))
        collector.record(make_span("late", parent_id="root"))
        assert sizes == [1, 2]

    def test_eviction_notifies_evict_subscriber(self):
        collector = TraceCollector(capacity=1)
        evicted = []
        collector.subscribe(lambda trace: None, evicted.append)
        collector.record(make_span("r0", trace_id="t0"))
        collector.record(make_span("r1", trace_id="t1"))
        assert evicted == ["t0"]


class TestQuery:
    @pytest.fixture
    def collector(self) -> TraceCollector:
        collector = TraceCollector()
        for i in range(5):
            root = make_span(
                f"root{i}",
                trace_id=f"t{i}",
                start=float(i),
                tags={"experiment": "exp1"} if i % 2 == 0 else {},
            )
            child = make_span(
                f"child{i}",
                trace_id=f"t{i}",
                parent_id=f"root{i}",
                service="backend",
                version="2.0.0" if i >= 3 else "1.0.0",
                endpoint="api",
                error=(i == 4),
            )
            collector.record_all([root, child])
        return collector

    def test_window_filter(self, collector):
        assert TraceQuery(collector).in_window(1.0, 3.0).count() == 2

    def test_tag_filter(self, collector):
        assert TraceQuery(collector).with_tag("experiment", "exp1").count() == 3

    def test_touching_version(self, collector):
        assert TraceQuery(collector).touching_version("backend", "2.0.0").count() == 2

    def test_errors_only(self, collector):
        assert TraceQuery(collector).errors_only().count() == 1

    def test_chained_filters(self, collector):
        count = (
            TraceQuery(collector)
            .in_window(0.0, 10.0)
            .touching_service("backend")
            .errors_only()
            .count()
        )
        assert count == 1

    def test_entry_filter(self, collector):
        assert TraceQuery(collector).entry("frontend", "home").count() == 5
        assert TraceQuery(collector).entry("backend").count() == 0

    def test_limit(self, collector):
        assert len(TraceQuery(collector).run(limit=2)) == 2

    def test_any_span_tag(self, collector):
        assert TraceQuery(collector).any_span_tag("experiment", "exp1").count() == 3
