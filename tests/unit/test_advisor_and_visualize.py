"""Unit tests for the technique advisor and the diff visualization."""

import pytest

from repro.core.advisor import (
    PlatformContext,
    Technique,
    TechniqueAdvice,
    advise_technique,
)
from repro.core.experiment import Experiment, ExperimentPractice
from repro.errors import ConfigurationError
from repro.topology.diff import diff_graphs
from repro.topology.graph import InteractionGraph, NodeKey
from repro.topology.heuristics import SubtreeComplexityHeuristic
from repro.topology.ranking import rank_changes
from repro.topology.visualize import diff_report, diff_to_dot


def make_experiment(practice=ExperimentPractice.CANARY_RELEASE) -> Experiment:
    return Experiment("e", "svc", practice)


class TestAdvisor:
    def test_dark_launch_forces_routing(self):
        advice = advise_technique(
            make_experiment(ExperimentPractice.DARK_LAUNCH),
            PlatformContext(expected_rps=1.0, instance_capacity_rps=100.0),
        )
        assert advice.technique is Technique.TRAFFIC_ROUTING
        assert "duplicate" in advice.describe()

    def test_low_load_prefers_toggle(self):
        advice = advise_technique(
            make_experiment(),
            PlatformContext(expected_rps=10.0, instance_capacity_rps=100.0),
        )
        assert advice.technique is Technique.FEATURE_TOGGLE

    def test_high_load_prefers_routing(self):
        advice = advise_technique(
            make_experiment(),
            PlatformContext(expected_rps=90.0, instance_capacity_rps=100.0),
        )
        assert advice.technique is Technique.TRAFFIC_ROUTING

    def test_high_load_without_isolation_falls_back(self):
        advice = advise_technique(
            make_experiment(),
            PlatformContext(
                expected_rps=90.0,
                instance_capacity_rps=100.0,
                isolated_deployment_available=False,
            ),
        )
        assert advice.technique is Technique.FEATURE_TOGGLE
        assert any("falling back" in r for r in advice.reasons)

    def test_toggle_budget_exhausted_prefers_routing(self):
        advice = advise_technique(
            make_experiment(),
            PlatformContext(
                expected_rps=10.0,
                instance_capacity_rps=100.0,
                active_toggles_on_service=10,
                max_toggles_per_service=10,
            ),
        )
        assert advice.technique is Technique.TRAFFIC_ROUTING
        assert any("debt" in r for r in advice.reasons)

    def test_gradual_rollout_prefers_routing(self):
        advice = advise_technique(
            make_experiment(ExperimentPractice.GRADUAL_ROLLOUT),
            PlatformContext(expected_rps=10.0, instance_capacity_rps=100.0),
        )
        assert advice.technique is Technique.TRAFFIC_ROUTING

    def test_ab_test_low_load_uses_toggle(self):
        advice = advise_technique(
            make_experiment(ExperimentPractice.AB_TEST),
            PlatformContext(expected_rps=5.0, instance_capacity_rps=100.0),
        )
        assert advice.technique is Technique.FEATURE_TOGGLE

    def test_invalid_context(self):
        with pytest.raises(ConfigurationError):
            PlatformContext(expected_rps=1.0, instance_capacity_rps=0.0)

    def test_advice_is_explainable(self):
        advice = advise_technique(
            make_experiment(),
            PlatformContext(expected_rps=10.0, instance_capacity_rps=100.0),
        )
        assert isinstance(advice, TechniqueAdvice)
        assert advice.reasons


def key(service, version="1.0.0", endpoint="ep") -> NodeKey:
    return NodeKey(service, version, endpoint)


def make_diff():
    base = InteractionGraph("base")
    base.observe_call(None, key("frontend"), 10.0, False)
    base.observe_call(key("frontend"), key("backend"), 20.0, False)
    base.observe_call(key("frontend"), key("legacy"), 5.0, False)
    experimental = InteractionGraph("exp")
    experimental.observe_call(None, key("frontend"), 10.0, False)
    experimental.observe_call(key("frontend"), key("backend", "2.0.0"), 20.0, False)
    experimental.observe_call(key("frontend"), key("newsvc"), 8.0, False)
    return diff_graphs(base, experimental)


class TestVisualization:
    def test_dot_contains_color_coding(self):
        dot = diff_to_dot(make_diff())
        assert "palegreen" in dot      # added: newsvc
        assert "lightcoral" in dot     # removed: legacy
        assert "khaki" in dot          # updated: backend
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_dot_edges_dashed_for_removed(self):
        dot = diff_to_dot(make_diff())
        assert '"frontend/ep" -> "legacy/ep" [style=dashed];' in dot

    def test_dot_solid_for_live_edges(self):
        dot = diff_to_dot(make_diff())
        assert '"frontend/ep" -> "newsvc/ep" [style=solid];' in dot

    def test_report_markers(self):
        report = diff_report(make_diff())
        assert "[+] newsvc/ep" in report
        assert "[-] legacy/ep" in report
        assert "[~] backend/ep" in report

    def test_report_with_ranking(self):
        diff = make_diff()
        ranking = rank_changes(diff, SubtreeComplexityHeuristic())
        report = diff_report(diff, ranking, top=3)
        assert "Top-ranked changes:" in report
        assert "#1" in report

    def test_report_counts_line(self):
        report = diff_report(make_diff())
        assert "1 added, 1 removed, 1 updated" in report
