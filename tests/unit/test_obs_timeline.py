"""Unit tests for timeline reconstruction, verification, and rendering."""

from repro.bifrost.model import Strategy, StrategyOutcome
from repro.obs.events import (
    ENGINE_CHECK,
    ENGINE_FINALIZED,
    ENGINE_PHASE_ENTERED,
    ENGINE_SUBMITTED,
    ENGINE_TRANSITION,
    ENGINE_WINNER,
    EventLog,
)
from repro.obs.observer import Observer
from repro.obs.timeline import (
    diff_timeline_execution,
    reconstruct_timelines,
    render_ascii,
    render_dot,
    timeline_matches_execution,
)
from tests.unit.test_bifrost_engine import canary_phase, run_strategy


def synthetic_log() -> EventLog:
    """A hand-written lifecycle: canary -> (repeat) -> complete."""
    log = EventLog()
    log.append(ENGINE_SUBMITTED, 1.0, {"strategy": "s", "start": 1.0})
    log.append(ENGINE_PHASE_ENTERED, 1.0, {"strategy": "s", "phase": "canary"})
    log.append(
        ENGINE_CHECK,
        6.0,
        {
            "strategy": "s",
            "phase": "canary",
            "check": "errors",
            "outcome": "pass",
            "observed": 0.01,
            "reference": 0.05,
        },
    )
    log.append(
        ENGINE_TRANSITION,
        11.0,
        {
            "strategy": "s",
            "source": "canary",
            "target": "canary",
            "trigger": "inconclusive",
            "action": "repeat",
        },
    )
    log.append(ENGINE_PHASE_ENTERED, 11.0, {"strategy": "s", "phase": "canary"})
    log.append(
        ENGINE_TRANSITION,
        21.0,
        {
            "strategy": "s",
            "source": "canary",
            "target": "complete",
            "trigger": "success",
            "action": "promote",
        },
    )
    log.append(ENGINE_WINNER, 21.0, {"strategy": "s", "version": "2.0.0"})
    log.append(
        ENGINE_FINALIZED,
        21.0,
        {
            "strategy": "s",
            "terminal": "complete",
            "outcome": "completed",
            "promoted": "2.0.0",
        },
    )
    return log


class TestReconstruction:
    def test_phase_spans_and_repeat_stays(self):
        timeline = reconstruct_timelines(synthetic_log())["s"]
        assert timeline.submitted_at == 1.0
        assert [span.name for span in timeline.phases] == ["canary", "canary"]
        assert timeline.phases[0].exited_at == 11.0
        assert timeline.phases[0].trigger == "inconclusive"
        assert timeline.phases[1].target == "complete"
        assert timeline.winner == "2.0.0"
        assert timeline.outcome == "completed"
        assert timeline.finished_at == 21.0
        assert timeline.open_phase is None

    def test_checks_attach_to_open_phase(self):
        timeline = reconstruct_timelines(synthetic_log())["s"]
        assert len(timeline.phases[0].checks) == 1
        assert timeline.phases[0].checks[0].observed == 0.01
        assert timeline.phases[0].outcome_counts() == {"pass": 1}
        assert len(timeline.check_points) == 1

    def test_unrelated_kinds_are_ignored(self):
        log = synthetic_log()
        log.append("journal.append", 5.0, {"record": "tick", "lsn": 3})
        log.append("fenrir.generation", 50.0, {"algorithm": "genetic"})
        timelines = reconstruct_timelines(log)
        assert set(timelines) == {"s"}

    def test_running_strategy_has_open_phase(self):
        log = EventLog()
        log.append(ENGINE_SUBMITTED, 0.0, {"strategy": "s", "start": 0.0})
        log.append(ENGINE_PHASE_ENTERED, 0.0, {"strategy": "s", "phase": "p"})
        timeline = reconstruct_timelines(log)["s"]
        assert timeline.open_phase is not None
        assert timeline.outcome is None


class TestVerificationAgainstEngine:
    def test_real_run_reconstruction_matches_engine_record(self, canary_app):
        observer = Observer(enabled=True)
        strategy = Strategy("s", (canary_phase(),))
        bifrost, execution = run_strategy(
            canary_app, strategy, observer=observer
        )
        assert execution.outcome is StrategyOutcome.COMPLETED
        timeline = reconstruct_timelines(observer.events)["s"]
        assert diff_timeline_execution(timeline, execution) == []
        assert timeline_matches_execution(timeline, execution)

    def test_tampered_timeline_is_detected(self, canary_app):
        observer = Observer(enabled=True)
        strategy = Strategy("s", (canary_phase(),))
        _, execution = run_strategy(canary_app, strategy, observer=observer)
        timeline = reconstruct_timelines(observer.events)["s"]
        timeline.phases[0].checks.pop()
        problems = diff_timeline_execution(timeline, execution)
        assert any("checks" in p for p in problems)

    def test_wrong_outcome_is_detected(self, canary_app):
        observer = Observer(enabled=True)
        strategy = Strategy("s", (canary_phase(),))
        _, execution = run_strategy(canary_app, strategy, observer=observer)
        timeline = reconstruct_timelines(observer.events)["s"]
        timeline.outcome = "rolled_back"
        problems = diff_timeline_execution(timeline, execution)
        assert any("outcome" in p for p in problems)


class TestRendering:
    def test_ascii_shows_phases_checks_and_verdict(self):
        timeline = reconstruct_timelines(synthetic_log())["s"]
        text = render_ascii(timeline)
        assert "strategy s — completed at 21.0s" in text
        assert "canary" in text
        assert "pass=1" in text
        assert "--success--> complete" in text
        assert "winner: 2.0.0" in text

    def test_dot_contains_traversed_edges_only(self):
        timeline = reconstruct_timelines(synthetic_log())["s"]
        dot = render_dot(timeline)
        assert '"canary" -> "canary"' in dot
        assert '"canary" -> "complete"' in dot
        assert "@21.0s" in dot
        assert "rollback" not in dot  # never traversed
