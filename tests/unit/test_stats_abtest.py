"""Unit tests for the A/B analysis workflow."""

import pytest

from repro.errors import StatisticsError
from repro.simulation.rng import SeededRng
from repro.stats.abtest import ABTestAnalysis, Verdict


def fill_conversions(analysis, variant, rate, n, rng):
    for _ in range(n):
        analysis.record_conversion(variant, rng.random() < rate)


class TestConversionReport:
    def test_clear_winner(self):
        rng = SeededRng(1)
        analysis = ABTestAnalysis()
        fill_conversions(analysis, "a", 0.20, 8000, rng)
        fill_conversions(analysis, "b", 0.10, 8000, rng)
        report = analysis.conversion_report(minimum_detectable_effect=0.02)
        assert report.verdict is Verdict.A_WINS
        assert report.test is not None and report.test.significant()

    def test_no_difference(self):
        rng = SeededRng(2)
        analysis = ABTestAnalysis()
        fill_conversions(analysis, "a", 0.15, 8000, rng)
        fill_conversions(analysis, "b", 0.15, 8000, rng)
        report = analysis.conversion_report(minimum_detectable_effect=0.02)
        assert report.verdict is Verdict.NO_DIFFERENCE

    def test_underpowered_guard(self):
        rng = SeededRng(3)
        analysis = ABTestAnalysis()
        fill_conversions(analysis, "a", 0.30, 50, rng)
        fill_conversions(analysis, "b", 0.10, 50, rng)
        report = analysis.conversion_report(minimum_detectable_effect=0.02)
        assert report.verdict is Verdict.UNDERPOWERED
        assert report.required_per_group is not None
        assert report.required_per_group > 50

    def test_requires_two_variants(self):
        analysis = ABTestAnalysis()
        analysis.record_conversion("only", True)
        with pytest.raises(StatisticsError):
            analysis.conversion_report()

    def test_b_wins(self):
        rng = SeededRng(4)
        analysis = ABTestAnalysis()
        fill_conversions(analysis, "a", 0.10, 6000, rng)
        fill_conversions(analysis, "b", 0.20, 6000, rng)
        report = analysis.conversion_report(minimum_detectable_effect=0.02)
        assert report.verdict is Verdict.B_WINS


class TestMetricReport:
    def test_lower_latency_wins(self):
        rng = SeededRng(5)
        analysis = ABTestAnalysis(lower_is_better=True)
        for _ in range(300):
            analysis.record_value("a", "response_time", rng.gauss(100, 10))
            analysis.record_value("b", "response_time", rng.gauss(120, 10))
        report = analysis.metric_report("response_time")
        assert report.verdict is Verdict.A_WINS

    def test_higher_is_better_mode(self):
        rng = SeededRng(6)
        analysis = ABTestAnalysis(lower_is_better=False)
        for _ in range(300):
            analysis.record_value("a", "revenue", rng.gauss(10, 2))
            analysis.record_value("b", "revenue", rng.gauss(12, 2))
        report = analysis.metric_report("revenue")
        assert report.verdict is Verdict.B_WINS

    def test_underpowered_with_single_sample(self):
        analysis = ABTestAnalysis()
        analysis.record_value("a", "m", 1.0)
        analysis.record_value("b", "m", 2.0)
        report = analysis.metric_report("m")
        assert report.verdict is Verdict.UNDERPOWERED

    def test_noise_is_no_difference(self):
        rng = SeededRng(7)
        analysis = ABTestAnalysis()
        for _ in range(200):
            analysis.record_value("a", "m", rng.gauss(50, 5))
            analysis.record_value("b", "m", rng.gauss(50, 5))
        report = analysis.metric_report("m")
        assert report.verdict is Verdict.NO_DIFFERENCE

    def test_describe_contains_verdict(self):
        rng = SeededRng(8)
        analysis = ABTestAnalysis()
        for _ in range(10):
            analysis.record_value("a", "m", rng.gauss(1, 0.1))
            analysis.record_value("b", "m", rng.gauss(1, 0.1))
        assert "m:" in analysis.metric_report("m").describe()


class TestIntegrationWithStore:
    def test_analysis_on_metric_store_windows(self, canary_app):
        """The analysis consumes Bifrost's telemetry directly."""
        from repro.bifrost import Bifrost
        from repro.bifrost.model import Phase, PhaseType, Strategy
        from repro.traffic.profile import UserGroup
        from repro.traffic.users import UserPopulation
        from repro.traffic.workload import WorkloadGenerator
        from repro.microservices.service import ServiceVersion
        from tests.conftest import constant_endpoint

        canary_app.deploy(
            ServiceVersion(
                "backend", "2.1.0", {"api": constant_endpoint("api", 10.0)}
            )
        )
        ab = Phase(
            name="ab",
            type=PhaseType.AB_TEST,
            service="backend",
            stable_version="1.0.0",
            experimental_version="2.0.0",
            second_version="2.1.0",
            fraction=0.5,
            duration_seconds=80.0,
            check_interval_seconds=10.0,
        )
        bifrost = Bifrost(canary_app, seed=61)
        bifrost.submit(Strategy("ab", (ab,)), at=1.0)
        groups = (UserGroup("eu", 0.6), UserGroup("na", 0.4))
        population = UserPopulation(400, groups, seed=62)
        workload = WorkloadGenerator(population, entry="frontend.home", seed=63)
        bifrost.run(workload.poisson(30.0, 90.0), until=100.0)

        analysis = ABTestAnalysis(lower_is_better=True)
        for version in ("2.0.0", "2.1.0"):
            for value in bifrost.store.values_in_window(
                "backend", version, "response_time", 0.0, 100.0
            ):
                analysis.record_value(version, "response_time", value)
        report = analysis.metric_report("response_time")
        # 2.1.0 (10ms) clearly beats 2.0.0 (30ms).
        assert report.verdict is Verdict.B_WINS
