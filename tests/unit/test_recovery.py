"""Unit tests for engine recovery: journal folding, supervisor, resume."""

import json

import pytest

from repro.bifrost.journal import TICK, Journal
from repro.bifrost.middleware import Bifrost
from repro.bifrost.model import (
    TERMINAL_COMPLETE,
    Check,
    CheckOutcome,
    Phase,
    PhaseType,
    Strategy,
    StrategyOutcome,
)
from repro.bifrost.recovery import RecoveryManager, RestartPolicy
from repro.errors import ExecutionError, ValidationError
from repro.traffic.profile import UserGroup
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator
from tests.conftest import constant_endpoint

GROUPS = (UserGroup("eu", 0.6), UserGroup("na", 0.4))


def canary_phase(**kwargs) -> Phase:
    defaults = dict(
        name="canary",
        type=PhaseType.CANARY,
        service="backend",
        stable_version="1.0.0",
        experimental_version="2.0.0",
        fraction=0.3,
        duration_seconds=60.0,
        check_interval_seconds=5.0,
        checks=(
            Check(
                name="errors",
                service="backend",
                version="2.0.0",
                metric="error",
                threshold=0.05,
                window_seconds=20.0,
            ),
        ),
    )
    defaults.update(kwargs)
    return Phase(**defaults)


def durable_run(app, strategy, crash_at=None, restart_at=None, **bifrost_kwargs):
    """Drive a durable Bifrost, optionally crashing the engine manually."""
    bifrost = Bifrost(app, seed=3, durable=True, **bifrost_kwargs)
    execution = bifrost.submit(strategy, at=1.0)
    population = UserPopulation(400, GROUPS, seed=4)
    workload = WorkloadGenerator(population, entry="frontend.home", seed=5)
    if crash_at is not None:
        bifrost.simulation.schedule_at(
            crash_at, lambda: bifrost.supervisor.crash(crash_at)
        )
    if restart_at is not None:
        bifrost.simulation.schedule_at(
            restart_at, lambda: bifrost.supervisor.restart(restart_at)
        )
    bifrost.run(workload.poisson(40.0, 200.0), until=220.0)
    return bifrost, execution


class TestSupervisor:
    def test_crash_then_restart_completes_strategy(self, canary_app):
        strategy = Strategy("s", (canary_phase(),))
        bifrost, _ = durable_run(canary_app, strategy, crash_at=20.0, restart_at=35.0)
        assert bifrost.outcome_of("s") is StrategyOutcome.COMPLETED
        assert bifrost.supervisor.restarts == 1
        assert len(bifrost.supervisor.reports) == 1
        assert bifrost.supervisor.reports[0].executions_recovered == 1

    def test_submitted_execution_object_goes_stale(self, canary_app):
        # The caller's handle belongs to the crashed engine; the current
        # engine's execution carries the recovered, completed state.
        strategy = Strategy("s", (canary_phase(),))
        bifrost, stale = durable_run(
            canary_app, strategy, crash_at=20.0, restart_at=35.0
        )
        current = bifrost.engine.executions[0]
        assert current is not stale
        assert current.outcome is StrategyOutcome.COMPLETED

    def test_crash_is_idempotent(self, canary_app):
        bifrost = Bifrost(canary_app, durable=True)
        bifrost.supervisor.crash(1.0)
        bifrost.supervisor.crash(2.0)
        assert bifrost.runtime.monitor.durability_count("crash", 0.0, 10.0) == 1.0

    def test_restart_while_alive_is_noop(self, canary_app):
        bifrost = Bifrost(canary_app, durable=True)
        bifrost.supervisor.restart(1.0)
        assert bifrost.supervisor.restarts == 0

    def test_restart_budget_exhausted(self, canary_app):
        bifrost = Bifrost(
            canary_app, durable=True, restart_policy=RestartPolicy(max_restarts=1)
        )
        supervisor = bifrost.supervisor
        supervisor.crash(1.0)
        supervisor.restart(2.0)
        supervisor.crash(3.0)
        supervisor.restart(4.0)
        assert supervisor.restarts == 1
        assert supervisor.gave_up
        assert not supervisor.engine.alive
        monitor = bifrost.runtime.monitor
        assert monitor.durability_count("restart_refused", 0.0, 10.0) == 1.0

    def test_dead_engine_rejects_submissions(self, canary_app):
        bifrost = Bifrost(canary_app, durable=True)
        bifrost.supervisor.crash(1.0)
        with pytest.raises(ExecutionError):
            bifrost.submit(Strategy("s", (canary_phase(),)))

    def test_durability_metrics_emitted(self, canary_app):
        strategy = Strategy("s", (canary_phase(),))
        bifrost, _ = durable_run(canary_app, strategy, crash_at=20.0, restart_at=35.0)
        monitor = bifrost.runtime.monitor
        assert monitor.durability_count("crash", 0.0, 300.0) == 1.0
        assert monitor.durability_count("restart", 0.0, 300.0) == 1.0
        assert monitor.durability_count("recovered", 0.0, 300.0) == 1.0


class TestRecoveryManager:
    def test_unknown_strategy_in_journal_rejected(self, canary_app):
        bifrost = Bifrost(canary_app, durable=True)
        bifrost.journal.append("tick", 1.0, {"strategy": "ghost", "checks": [], "errors": 0})
        manager = RecoveryManager(bifrost.journal, bifrost.snapshots)
        bifrost.supervisor.crash(1.0)
        engine = bifrost.supervisor.factory()
        with pytest.raises(ValidationError):
            manager.recover(engine)

    def test_recovered_marker_appended(self, canary_app):
        strategy = Strategy("s", (canary_phase(),))
        bifrost, _ = durable_run(canary_app, strategy, crash_at=20.0, restart_at=35.0)
        kinds = [r.kind for r in bifrost.journal.records()]
        assert "recovered" in kinds


class TestInFlightOutcome:
    def _truncate_after_decisive_tick(self, bifrost) -> None:
        """Cut the journal right after the first FAIL tick record,
        simulating a crash between a decisive check round and the
        transition it must have triggered."""
        lines = bifrost.journal.storage.lines
        for index, line in enumerate(lines):
            doc = json.loads(line)
            if doc["kind"] == TICK and any(
                c["outcome"] == CheckOutcome.FAIL.value
                for c in doc["data"]["checks"]
            ):
                del lines[index + 1 :]
                return
        raise AssertionError("no FAIL tick found in journal")

    def test_inflight_outcome_degraded_to_inconclusive(self, canary_app):
        broken = canary_app.resolve("backend", "2.0.0")
        broken.endpoints["api"] = constant_endpoint("api", 30.0, error_rate=1.0)
        strategy = Strategy("s", (canary_phase(),))
        bifrost, _ = durable_run(canary_app, strategy)
        assert bifrost.outcome_of("s") is StrategyOutcome.ROLLED_BACK

        self._truncate_after_decisive_tick(bifrost)
        bifrost.supervisor.crash(bifrost.simulation.now)
        bifrost.supervisor.restart(bifrost.simulation.now)
        report = bifrost.supervisor.reports[-1]
        assert report.inflight == ("s",)
        execution = bifrost.engine.executions[0]
        # The decisive FAIL round was degraded to inconclusive and the
        # phase repeated (conditional chaining), then failed again live.
        assert any(
            t.trigger == "inconclusive" and t.target == t.source
            for t in execution.transitions
        )
        bifrost.simulation.run_until(bifrost.simulation.now + 400.0)
        assert bifrost.outcome_of("s") is StrategyOutcome.ROLLED_BACK


class TestCatchupRouteReinstall:
    def _inconclusive_strategy(self) -> Strategy:
        # "saturation" is never recorded, so every check round is
        # inconclusive and the phase REPEATs once before giving up.
        phase = canary_phase(
            checks=(
                Check(
                    name="sat",
                    service="backend",
                    version="2.0.0",
                    metric="saturation",
                    threshold=0.5,
                    window_seconds=20.0,
                ),
            ),
            on_inconclusive="repeat",
            max_repeats=1,
        )
        return Strategy("s", (phase,))

    def _route_count(self, bifrost) -> int:
        return sum(1 for r in bifrost.journal.records() if r.kind == "route")

    def test_catchup_repeat_does_not_double_install_route(self, canary_app):
        # Regression (PR 9): when the outage window covers the phase end
        # of an all-inconclusive round, catch-up replays the REPEAT
        # re-entry — which installs and journals the phase route itself.
        # The recover-route step then fired *again* on the re-entered
        # phase, journaling a route update the crash-free run never made.
        baseline, _ = durable_run(canary_app, self._inconclusive_strategy())
        # Entry + one REPEAT re-entry: exactly two installs.
        assert self._route_count(baseline) == 2

        import copy

        crashed, _ = durable_run(
            copy.deepcopy(canary_app),
            self._inconclusive_strategy(),
            crash_at=30.0,
            restart_at=75.0,  # past the first round's end at t=61
        )
        assert crashed.supervisor.restarts == 1
        assert self._route_count(crashed) == self._route_count(baseline)
        assert crashed.outcome_of("s") is baseline.outcome_of("s")
        baseline_exec = baseline.engine.executions[0]
        crashed_exec = crashed.engine.executions[0]
        assert crashed_exec.phase_entries == baseline_exec.phase_entries
        assert [
            (t.time, t.source, t.target, t.trigger)
            for t in crashed_exec.transitions
        ] == [
            (t.time, t.source, t.target, t.trigger)
            for t in baseline_exec.transitions
        ]

    def test_recovery_without_reentry_still_reinstalls(self, canary_app):
        # The guard must not break the legitimate case: an outage window
        # that ends *inside* the same phase entry re-installs the route
        # exactly once on top of the baseline's single install.
        strategy = Strategy("s", (canary_phase(),))
        bifrost, _ = durable_run(
            canary_app, strategy, crash_at=20.0, restart_at=35.0
        )
        assert bifrost.outcome_of("s") is StrategyOutcome.COMPLETED
        assert self._route_count(bifrost) == 2  # entry + post-crash reinstall


class TestCorruptTail:
    def test_garbage_tail_dropped_and_resumed(self, canary_app):
        strategy = Strategy("s", (canary_phase(),))
        bifrost = Bifrost(canary_app, seed=3, durable=True)
        bifrost.submit(strategy, at=1.0)
        population = UserPopulation(400, GROUPS, seed=4)
        workload = WorkloadGenerator(population, entry="frontend.home", seed=5)
        bifrost.simulation.schedule_at(20.0, lambda: bifrost.supervisor.crash(20.0))

        def corrupt_and_restart():
            bifrost.journal.storage.lines[-1] = '{"v": 1, "lsn": torn'
            bifrost.supervisor.restart(30.0)

        bifrost.simulation.schedule_at(30.0, corrupt_and_restart)
        bifrost.run(workload.poisson(40.0, 200.0), until=220.0)
        report = bifrost.supervisor.reports[-1]
        assert report.records_dropped == 1
        assert bifrost.outcome_of("s") in (
            StrategyOutcome.COMPLETED,
            StrategyOutcome.ROLLED_BACK,
        )
        assert bifrost.engine.executions[0].state == TERMINAL_COMPLETE


class TestSnapshotRecovery:
    def test_recovery_from_snapshot_plus_suffix(self, canary_app):
        from repro.bifrost.journal import SnapshotPolicy

        strategy = Strategy("s", (canary_phase(),))
        bifrost, _ = durable_run(
            canary_app,
            strategy,
            crash_at=30.0,
            restart_at=40.0,
            snapshot_policy=SnapshotPolicy(every_records=4, compact=True),
        )
        assert bifrost.outcome_of("s") is StrategyOutcome.COMPLETED
        assert bifrost.snapshots.taken >= 1
        assert bifrost.supervisor.reports[0].snapshot_restored

    def test_restore_stores_from_snapshot(self, canary_app):
        from repro.bifrost.journal import SnapshotPolicy
        from repro.telemetry.store import MetricStore

        strategy = Strategy("s", (canary_phase(),))
        bifrost, _ = durable_run(
            canary_app,
            strategy,
            snapshot_policy=SnapshotPolicy(every_records=4),
        )
        snapshot = bifrost.snapshots.latest
        assert snapshot is not None and snapshot.metrics is not None
        fresh = MetricStore()
        fresh.restore(snapshot.metrics)
        assert fresh.keys() != []


class TestDeadlineAcrossRestart:
    def test_deadline_measured_from_first_entry_survives_crash(self, canary_app):
        # No traffic reaches the audience, so the phase repeats forever;
        # only the deadline (armed at first entry) can end it — and it
        # must still fire although the engine restarted in between.
        phase = canary_phase(
            audience_groups=frozenset({"ghost-group"}),
            duration_seconds=30.0,
            max_repeats=50,
            deadline_seconds=100.0,
        )
        strategy = Strategy("s", (phase,))
        bifrost, _ = durable_run(canary_app, strategy, crash_at=50.0, restart_at=70.0)
        execution = bifrost.engine.executions[0]
        assert execution.deadline_exceeded == "canary"
        assert execution.outcome is StrategyOutcome.ROLLED_BACK
        deadline_transitions = [
            t for t in execution.transitions if t.trigger == "deadline"
        ]
        assert deadline_transitions and deadline_transitions[0].time == pytest.approx(
            101.0
        )


class TestRestartPolicyWindow:
    """The sliding restart budget (PR 7): old crashes age out."""

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ValidationError):
            RestartPolicy(window_seconds=0.0)
        with pytest.raises(ValidationError):
            RestartPolicy(window_seconds=-5.0)

    def test_lifetime_budget_counts_all_history(self):
        policy = RestartPolicy(max_restarts=2)
        assert policy.charged([1.0, 2.0], now=1e9) == 2
        assert not policy.allows([1.0, 2.0], now=1e9)

    def test_window_expires_old_restarts(self):
        policy = RestartPolicy(max_restarts=2, window_seconds=10.0)
        times = [1.0, 2.0]
        assert policy.charged(times, now=5.0) == 2
        assert not policy.allows(times, now=5.0)
        # At now=12.0 the cutoff is 2.0: the restart *at* 2.0 has aged out.
        assert policy.charged(times, now=12.0) == 0
        assert policy.allows(times, now=12.0)

    def test_supervisor_budget_refills_after_window(self, canary_app):
        bifrost = Bifrost(
            canary_app,
            durable=True,
            restart_policy=RestartPolicy(max_restarts=1, window_seconds=10.0),
        )
        supervisor = bifrost.supervisor
        supervisor.crash(1.0)
        supervisor.restart(2.0)
        assert supervisor.restarts == 1
        supervisor.crash(3.0)
        supervisor.restart(4.0)  # still inside the window: refused
        assert supervisor.gave_up
        assert supervisor.restarts == 1
        assert supervisor.budget_remaining(4.0) == 0
        supervisor.restart(20.0)  # the 2.0 restart has aged out
        assert supervisor.restarts == 2
        assert supervisor.engine.alive

    def test_restore_counters_survives_supervisor_rebuild(self, canary_app):
        policy = RestartPolicy(max_restarts=3)
        bifrost = Bifrost(canary_app, durable=True, restart_policy=policy)
        supervisor = bifrost.supervisor
        supervisor.restore_counters(2, [5.0, 6.0])
        assert supervisor.restarts == 2
        assert supervisor.budget_remaining(7.0) == 1
        supervisor.crash(8.0)
        supervisor.restart(9.0)
        assert supervisor.restarts == 3
        supervisor.crash(10.0)
        supervisor.restart(11.0)
        assert supervisor.gave_up

    def test_factory_failure_consumes_attempt_and_leaves_engine_dead(self):
        from repro.bifrost.recovery import EngineSupervisor

        class _FakeSim:
            now = 0.0

        class _FakeEngine:
            def __init__(self):
                self.alive = True
                self.simulation = _FakeSim()

            def kill(self):
                self.alive = False

        calls = {"n": 0}

        def factory():
            calls["n"] += 1
            if calls["n"] > 1:
                raise RuntimeError("flaky infra")
            return _FakeEngine()

        supervisor = EngineSupervisor(
            factory, Journal(), policy=RestartPolicy(max_restarts=2)
        )
        supervisor.crash(1.0)
        supervisor.restart(2.0)
        assert supervisor.restart_failures == 1
        assert supervisor.restarts == 1  # the attempt was consumed
        assert not supervisor.engine.alive
        assert not supervisor.gave_up
        assert supervisor.budget_remaining(2.0) == 1
