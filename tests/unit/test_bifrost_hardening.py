"""Unit tests for the hardened Bifrost engine: deadlines, check failures."""

import pytest

from repro.bifrost import Bifrost
from repro.bifrost.dsl import parse_strategy, strategy_to_dsl
from repro.bifrost.model import (
    Check,
    Phase,
    PhaseType,
    Strategy,
    StrategyOutcome,
)
from repro.errors import ConfigurationError, ExecutionError


def inconclusive_strategy(deadline=None, duration=60.0, max_repeats=5) -> Strategy:
    """A canary whose check never sees data: every phase end is inconclusive."""
    return Strategy(
        "stuck-canary",
        (
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="backend",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.3,
                duration_seconds=duration,
                check_interval_seconds=10.0,
                deadline_seconds=deadline,
                max_repeats=max_repeats,
                checks=(
                    Check(
                        name="latency",
                        service="backend",
                        version="2.0.0",
                        metric="response_time",
                        threshold=100.0,
                        window_seconds=20.0,
                    ),
                ),
            ),
        ),
    )


class TestPhaseDeadline:
    def test_deadline_validation(self):
        with pytest.raises(ConfigurationError):
            inconclusive_strategy(deadline=0.0)
        with pytest.raises(ConfigurationError):
            inconclusive_strategy(deadline=-5.0)

    def test_watchdog_forces_rollback(self, canary_app):
        bifrost = Bifrost(canary_app, seed=1)
        execution = bifrost.submit(inconclusive_strategy(deadline=90.0), at=0.0)
        # No traffic: the phase stays inconclusive and would repeat for
        # 5 * 60 s; the watchdog cuts it off at 90 s.
        bifrost.simulation.run_until(400.0)
        assert execution.outcome is StrategyOutcome.ROLLED_BACK
        assert execution.deadline_exceeded == "canary"
        assert execution.finished_at == pytest.approx(90.0)
        last = execution.transitions[-1]
        assert last.trigger == "deadline"
        assert last.target == "rollback"

    def test_deadline_spans_repeats(self, canary_app):
        bifrost = Bifrost(canary_app, seed=1)
        execution = bifrost.submit(inconclusive_strategy(deadline=150.0), at=0.0)
        bifrost.simulation.run_until(400.0)
        # One repeat happened (at 60 s) before the watchdog hit at 150 s.
        repeats = [t for t in execution.transitions if t.trigger == "inconclusive"]
        assert repeats
        assert execution.finished_at == pytest.approx(150.0)

    def test_no_deadline_keeps_legacy_behavior(self, canary_app):
        bifrost = Bifrost(canary_app, seed=1)
        execution = bifrost.submit(
            inconclusive_strategy(deadline=None, max_repeats=1), at=0.0
        )
        bifrost.simulation.run_until(400.0)
        # Repeats exhaust, inconclusive degrades to failure -> rollback.
        assert execution.outcome is StrategyOutcome.ROLLED_BACK
        assert execution.deadline_exceeded is None
        assert execution.finished_at == pytest.approx(120.0)

    def test_stale_watchdog_ignored_after_completion(self, canary_app):
        # With traffic-free success impossible here, use a checkless
        # strategy: it completes at phase end, before the deadline.
        strategy = Strategy(
            "fast",
            (
                Phase(
                    name="canary",
                    type=PhaseType.CANARY,
                    service="backend",
                    stable_version="1.0.0",
                    experimental_version="2.0.0",
                    fraction=0.3,
                    duration_seconds=30.0,
                    check_interval_seconds=10.0,
                    deadline_seconds=300.0,
                ),
            ),
        )
        bifrost = Bifrost(canary_app, seed=1)
        execution = bifrost.submit(strategy, at=0.0)
        bifrost.simulation.run_until(400.0)
        assert execution.outcome is StrategyOutcome.COMPLETED
        assert execution.deadline_exceeded is None
        assert execution.finished_at == pytest.approx(30.0)


class TestCheckEvaluationErrors:
    def test_execution_error_counts_as_inconclusive(self, canary_app):
        bifrost = Bifrost(canary_app, seed=1)
        execution = bifrost.submit(
            inconclusive_strategy(duration=40.0, max_repeats=0), at=0.0
        )

        class Exploding:
            def evaluate(self, check, now):
                raise ExecutionError("metric backend exploded")

        bifrost.engine.evaluator = Exploding()
        bifrost.simulation.run_until(200.0)
        # No crash; the failing evaluations were counted and the phase
        # degraded to failure after its (zero) repeats ran out.
        assert execution.evaluation_errors > 0
        assert execution.outcome is StrategyOutcome.ROLLED_BACK
        from repro.bifrost.model import CheckOutcome

        assert all(
            r.outcome is CheckOutcome.INCONCLUSIVE for r in execution.check_log
        )


class TestDslDeadline:
    def test_deadline_round_trip(self):
        strategy = inconclusive_strategy(deadline=120.0)
        text = strategy_to_dsl(strategy)
        assert "deadline 120.0" in text
        parsed = parse_strategy(text)
        assert parsed.phases[0].deadline_seconds == 120.0

    def test_deadline_absent_when_unset(self):
        text = strategy_to_dsl(inconclusive_strategy())
        assert "deadline" not in text
        assert parse_strategy(text).phases[0].deadline_seconds is None
