"""Unit tests for columnar workload generation and traffic hashing.

Covers the :class:`BatchWorkloadGenerator` stream-for-stream equality
contract against the scalar :class:`WorkloadGenerator`, the memoized
``bucket_user`` salt-midstate cache (pinned against reference digests so
the cache can never drift), bulk sticky assignment, and the traffic
profile's prefix-sum volume queries.
"""

import hashlib

import pytest

from repro.errors import ConfigurationError
from repro.routing.assignment import StickyAssigner
from repro.routing.splitter import canary_split
from repro.traffic.batch import BatchWorkloadGenerator
from repro.traffic.profile import (
    DEFAULT_GROUPS,
    TrafficProfile,
    UserGroup,
    diurnal_profile,
)
from repro.traffic.users import UserPopulation, bucket_user, bucket_users
from repro.traffic.workload import WorkloadGenerator


def _pair(seed=5, entry_mix=None, batch_size=64):
    population = UserPopulation(120, DEFAULT_GROUPS, seed=1)
    scalar = WorkloadGenerator(
        population, entry="frontend.index", seed=seed, entry_mix=entry_mix
    )
    batch = BatchWorkloadGenerator(
        population,
        entry="frontend.index",
        seed=seed,
        entry_mix=entry_mix,
        batch_size=batch_size,
    )
    return scalar, batch


def _materialize(batches):
    return [request for batch in batches for request in batch.requests()]


class TestBatchGeneratorEquality:
    """Every stream builder must reproduce the scalar stream exactly:
    same ids, timestamps, users, groups, entries, headers."""

    def test_poisson(self):
        scalar, batch = _pair()
        assert _materialize(batch.poisson(40.0, 10.0)) == list(
            scalar.poisson(40.0, 10.0)
        )

    def test_heavy_tail(self):
        scalar, batch = _pair(seed=11)
        assert _materialize(batch.heavy_tail(40.0, 10.0, alpha=1.6)) == list(
            scalar.heavy_tail(40.0, 10.0, alpha=1.6)
        )

    def test_constant(self):
        scalar, batch = _pair(seed=2)
        assert _materialize(batch.constant(0.25, 100)) == list(
            scalar.constant(0.25, 100)
        )

    def test_from_profile(self):
        profile = diurnal_profile(days=1)
        scalar, batch = _pair(seed=3)
        assert _materialize(batch.from_profile(profile, scale=0.0004)) == list(
            scalar.from_profile(profile, scale=0.0004)
        )

    def test_entry_mix(self):
        mix = {"frontend.index": 0.7, "frontend.search": 0.3}
        scalar, batch = _pair(seed=9, entry_mix=mix)
        assert _materialize(batch.poisson(40.0, 8.0)) == list(
            scalar.poisson(40.0, 8.0)
        )

    def test_ids_continue_across_streams(self):
        scalar, batch = _pair(seed=4)
        assert _materialize(batch.constant(0.5, 10)) == list(
            scalar.constant(0.5, 10)
        )
        # A second stream from the same generator keeps numbering from
        # where the first left off, exactly like the scalar counter.
        assert _materialize(batch.constant(0.5, 10)) == list(
            scalar.constant(0.5, 10)
        )

    def test_batch_size_does_not_change_content(self):
        _, small = _pair(seed=8, batch_size=7)
        _, large = _pair(seed=8, batch_size=512)
        assert _materialize(small.poisson(40.0, 6.0)) == _materialize(
            large.poisson(40.0, 6.0)
        )

    def test_rejects_bad_batch_size(self):
        population = UserPopulation(10, DEFAULT_GROUPS, seed=1)
        with pytest.raises(ConfigurationError):
            BatchWorkloadGenerator(population, batch_size=0)

    def test_expected_requests_uses_prefix_sums(self):
        profile = diurnal_profile(days=1)
        expected = BatchWorkloadGenerator.expected_requests(profile, scale=0.5)
        assert expected == pytest.approx(profile.total_volume() * 0.5)
        partial = BatchWorkloadGenerator.expected_requests(
            profile, scale=1.0, start_slot=3, end_slot=9
        )
        assert partial == pytest.approx(sum(profile.volumes()[3:9]))


class TestBucketHashing:
    # Reference digests computed from first principles:
    # int.from_bytes(md5(f"{salt}:{user}").digest()[:8], "big") % buckets.
    # The memoized salt-midstate cache must reproduce these forever.
    PINNED = [
        (("user0", "catalog-canary", 1000), 343),
        (("user1", "catalog-canary", 1000), 381),
        (("u00042", "exp", 1000), 637),
        (("alice", "", 1000), 286),
        (("user7", "salt", 7), 6),
        (("", "catalog-canary", 1000), 157),
    ]

    def test_bucket_user_pinned_values(self):
        for (user_id, salt, buckets), expected in self.PINNED:
            assert bucket_user(user_id, salt, buckets) == expected

    def test_bucket_user_matches_unmemoized_md5(self):
        for i in range(50):
            user_id, salt = f"u{i:05d}", f"salt{i % 5}"
            digest = hashlib.md5(f"{salt}:{user_id}".encode()).digest()
            expected = int.from_bytes(digest[:8], "big") % 1000
            assert bucket_user(user_id, salt) == expected

    def test_bucket_users_matches_bucket_user(self):
        user_ids = [f"u{i:05d}" for i in range(200)]
        assert bucket_users(user_ids, "exp", 1000) == [
            bucket_user(user_id, "exp", 1000) for user_id in user_ids
        ]

    def test_rejects_non_positive_buckets(self):
        with pytest.raises(ConfigurationError):
            bucket_user("u", "s", 0)
        with pytest.raises(ConfigurationError):
            bucket_users(["u"], "s", -1)


class TestAssignMany:
    def test_matches_repeated_assign(self):
        variants = canary_split("1.0.0", "2.0.0", 0.2)
        user_ids = [f"u{i % 60:04d}" for i in range(200)]  # repeats included
        bulk = StickyAssigner("exp")
        scalar = StickyAssigner("exp")
        assert bulk.assign_many(user_ids, variants) == [
            scalar.assign(user_id, variants) for user_id in user_ids
        ]
        assert bulk._counts == scalar._counts
        assert bulk._seen == scalar._seen

    def test_bulk_then_scalar_stays_sticky(self):
        variants = canary_split("1.0.0", "2.0.0", 0.3)
        assigner = StickyAssigner("exp")
        bulk = assigner.assign_many([f"u{i}" for i in range(50)], variants)
        for i, version in enumerate(bulk):
            assert assigner.assign(f"u{i}", variants) == version
        assert assigner.total_distinct_users() == 50


class TestProfilePrefixSums:
    def _profile(self):
        return TrafficProfile(
            [10.0, 0.0, 30.0, 5.0],
            [UserGroup("all", 1.0)],
            slot_duration_hours=0.5,
        )

    def test_cumulative_volume_boundaries(self):
        profile = self._profile()
        assert profile.cumulative_volume(0) == 0.0
        assert profile.cumulative_volume(profile.num_slots) == pytest.approx(
            45.0
        )
        assert profile.total_volume() == pytest.approx(45.0)

    def test_cumulative_matches_running_sum_at_every_slot(self):
        profile = self._profile()
        running = 0.0
        for slot, volume in enumerate(profile.volumes()):
            assert profile.cumulative_volume(slot) == pytest.approx(running)
            running += volume

    def test_volume_between_is_half_open(self):
        profile = self._profile()
        assert profile.volume_between(0, 2) == pytest.approx(10.0)
        assert profile.volume_between(2, 3) == pytest.approx(30.0)
        assert profile.volume_between(1, 1) == 0.0
        assert profile.volume_between(0, profile.num_slots) == pytest.approx(
            45.0
        )

    def test_slot_edges_rejected(self):
        profile = self._profile()
        with pytest.raises(ConfigurationError):
            profile.cumulative_volume(-1)
        with pytest.raises(ConfigurationError):
            profile.cumulative_volume(profile.num_slots + 1)
        with pytest.raises(ConfigurationError):
            profile.volume_between(3, 1)
