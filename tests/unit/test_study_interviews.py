"""Unit tests for the transcribed interview-study data (Table 2.1)."""

import pytest

from repro.errors import ConfigurationError
from repro.study.interviews import (
    PARTICIPANTS,
    companies_by_type,
    distinct_companies,
    mean_experience,
    participants,
    participants_by_app_type,
)


class TestTable21:
    def test_31_participants(self):
        assert len(PARTICIPANTS) == 31

    def test_round_sizes(self):
        assert len(participants(1)) == 20
        assert len(participants(2)) == 11

    def test_invalid_round(self):
        with pytest.raises(ConfigurationError):
            participants(3)

    def test_27_distinct_companies(self):
        # 31 participants minus the shared companies (P9/P10/P11,
        # D4/D5, D6/D11) = 27, as stated in Section 2.4.
        assert len(distinct_companies()) == 27

    def test_company_size_demographics_match_fig_2_3(self):
        by_type = companies_by_type()
        assert by_type == {"corp": 7, "sme": 16, "startup": 4}

    def test_app_type_demographics_match_fig_2_3(self):
        by_app = participants_by_app_type()
        assert by_app["web"] == 25
        assert by_app["enterprise"] == 4
        assert by_app["desktop"] == 1
        assert by_app["embedded"] == 1

    def test_round1_mean_experience(self):
        # Chapter: "average 9 years" for the first interview round.
        assert mean_experience(1) == pytest.approx(9.0, abs=0.7)

    def test_round2_mean_experience(self):
        # Chapter: "participants of the second round ... 12 years".
        assert mean_experience(2) == pytest.approx(12.0, abs=0.8)

    def test_round2_all_web(self):
        # "All of the selected companies for the second round of
        # interviews develop Web-based applications."
        assert all(p.app_type == "web" for p in participants(2))

    def test_unique_ids(self):
        ids = [p.participant_id for p in PARTICIPANTS]
        assert len(set(ids)) == 31

    def test_team_sizes_sane(self):
        for participant in PARTICIPANTS:
            low, high = participant.team_size
            assert 1 <= low <= high

    def test_experience_in_company_bounded_by_total(self):
        for participant in PARTICIPANTS:
            assert participant.experience_company <= participant.experience_total
