"""Unit tests for repro.stats.ranking (DCG / nDCG)."""

import math

import pytest

from repro.errors import StatisticsError
from repro.stats.ranking import dcg, idcg, ndcg


class TestDcg:
    def test_first_item_undiscounted(self):
        assert dcg([3.0]) == 3.0

    def test_second_item_discounted(self):
        assert dcg([0.0, 2.0]) == pytest.approx(2.0 / math.log2(3))

    def test_k_truncates(self):
        assert dcg([1, 1, 1, 1], k=2) == pytest.approx(1.0 + 1.0 / math.log2(3))

    def test_negative_relevance_rejected(self):
        with pytest.raises(StatisticsError):
            dcg([1.0, -0.5])

    def test_invalid_k(self):
        with pytest.raises(StatisticsError):
            dcg([1.0], k=0)

    def test_empty_is_zero(self):
        assert dcg([]) == 0.0


class TestIdcg:
    def test_sorts_descending(self):
        assert idcg([1.0, 3.0]) == dcg([3.0, 1.0])

    def test_already_ideal(self):
        assert idcg([3.0, 1.0]) == dcg([3.0, 1.0])


class TestNdcg:
    def test_perfect_ranking(self):
        assert ndcg([3, 2, 1, 0]) == pytest.approx(1.0)

    def test_worst_ranking_below_one(self):
        assert ndcg([0, 1, 2, 3]) < 1.0

    def test_reversal_matches_manual(self):
        score = ndcg([0.0, 3.0])
        expected = (3.0 / math.log2(3)) / 3.0
        assert score == pytest.approx(expected)

    def test_all_zero_by_convention(self):
        assert ndcg([0, 0, 0]) == 1.0

    def test_bounded(self):
        assert 0.0 <= ndcg([1, 0, 2, 0, 3], k=3) <= 1.0

    def test_k_changes_score(self):
        ranking = [0, 0, 3]
        assert ndcg(ranking, k=2) < ndcg(ranking, k=3)
