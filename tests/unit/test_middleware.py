"""Unit tests for the Bifrost middleware facade."""


from repro.bifrost import Bifrost
from repro.bifrost.model import Phase, PhaseType, Strategy, StrategyOutcome
from repro.traffic.profile import UserGroup
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

GROUPS = (UserGroup("eu", 0.6), UserGroup("na", 0.4))


def short_canary(duration=40.0) -> Strategy:
    return Strategy(
        "s",
        (
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="backend",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.2,
                duration_seconds=duration,
                check_interval_seconds=5.0,
            ),
        ),
    )


class TestRun:
    def test_outcomes_accumulate(self, canary_app):
        bifrost = Bifrost(canary_app, seed=3)
        population = UserPopulation(100, GROUPS, seed=4)
        workload = WorkloadGenerator(population, entry="frontend.home", seed=5)
        first = bifrost.run(workload.poisson(10.0, 10.0))
        second = bifrost.run(workload.poisson(10.0, 10.0, start=10.0))
        assert len(bifrost.outcomes) == len(first) + len(second)

    def test_until_advances_clock(self, canary_app):
        bifrost = Bifrost(canary_app, seed=3)
        population = UserPopulation(100, GROUPS, seed=4)
        workload = WorkloadGenerator(population, entry="frontend.home", seed=5)
        bifrost.run(workload.poisson(10.0, 5.0), until=50.0)
        assert bifrost.simulation.now == 50.0

    def test_dsl_submission(self, canary_app):
        bifrost = Bifrost(canary_app, seed=3)
        execution = bifrost.submit(
            """
strategy text-strategy
  phase canary
    type canary
    service backend
    stable 1.0.0
    experimental 2.0.0
    fraction 0.2
    duration 10
    interval 5
"""
        )
        assert execution.strategy.name == "text-strategy"


class TestRunUntilSettled:
    def test_drives_until_strategy_finishes(self, canary_app):
        bifrost = Bifrost(canary_app, seed=6)
        execution = bifrost.submit(short_canary(duration=35.0), at=1.0)
        population = UserPopulation(100, GROUPS, seed=7)

        def factory(start, duration):
            workload = WorkloadGenerator(
                population, entry="frontend.home", seed=int(start) + 8
            )
            return workload.poisson(15.0, duration, start=start)

        outcomes = bifrost.run_until_settled(factory, chunk_seconds=20.0)
        assert execution.outcome is StrategyOutcome.COMPLETED
        assert outcomes

    def test_stops_at_max_seconds(self, canary_app):
        bifrost = Bifrost(canary_app, seed=9)
        bifrost.submit(short_canary(duration=1e9), at=1.0)
        population = UserPopulation(50, GROUPS, seed=10)

        def factory(start, duration):
            workload = WorkloadGenerator(
                population, entry="frontend.home", seed=int(start) + 11
            )
            return workload.poisson(5.0, duration, start=start)

        bifrost.run_until_settled(factory, chunk_seconds=30.0, max_seconds=120.0)
        assert bifrost.simulation.now >= 120.0
        assert bifrost.engine.running_count() == 1  # still running, bounded
