"""Unit tests for the microservice substrate."""

import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.microservices.application import Application
from repro.microservices.faults import FaultInjector
from repro.microservices.generator import random_application
from repro.microservices.runtime import LoadTracker, RoutingDecision, Runtime
from repro.microservices.service import (
    DownstreamCall,
    EndpointSpec,
    Service,
    ServiceVersion,
)
from repro.simulation.latency import ConstantLatency
from repro.traffic.workload import Request
from tests.conftest import constant_endpoint


def make_request(entry="frontend.home", user="u1", group="eu", t=0.0) -> Request:
    return Request(
        request_id="r1",
        timestamp=t,
        user_id=user,
        group=group,
        entry=entry,
        headers={"user-id": user},
    )


class TestServiceModel:
    def test_downstream_call_target(self):
        call = DownstreamCall("catalog", "list")
        assert call.target == "catalog.list"

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            DownstreamCall("a", "b", probability=0.0)

    def test_endpoint_error_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            EndpointSpec("e", error_rate=1.5)

    def test_version_requires_endpoints(self):
        with pytest.raises(ConfigurationError):
            ServiceVersion("svc", "1.0", {})

    def test_endpoint_key_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceVersion("svc", "1.0", {"x": constant_endpoint("y")})

    def test_total_capacity(self):
        version = ServiceVersion(
            "svc", "1.0", {"e": constant_endpoint("e")}, capacity_rps=100, instances=3
        )
        assert version.total_capacity_rps == 300

    def test_with_endpoint_replaces(self):
        version = ServiceVersion("svc", "1.0", {"e": constant_endpoint("e", 10)})
        updated = version.with_endpoint(constant_endpoint("e", 20))
        assert updated.endpoint("e").latency.value_ms == 20.0
        assert version.endpoint("e").latency.value_ms == 10.0


class TestService:
    def test_first_deploy_becomes_stable(self):
        service = Service("svc")
        service.deploy(ServiceVersion("svc", "1.0", {"e": constant_endpoint("e")}))
        assert service.stable_version == "1.0"

    def test_promote(self):
        service = Service("svc")
        service.deploy(ServiceVersion("svc", "1.0", {"e": constant_endpoint("e")}))
        service.deploy(ServiceVersion("svc", "2.0", {"e": constant_endpoint("e")}))
        service.promote("2.0")
        assert service.stable_version == "2.0"

    def test_promote_unknown_rejected(self):
        service = Service("svc")
        service.deploy(ServiceVersion("svc", "1.0", {"e": constant_endpoint("e")}))
        with pytest.raises(ConfigurationError):
            service.promote("9.9")

    def test_cannot_undeploy_stable(self):
        service = Service("svc")
        service.deploy(ServiceVersion("svc", "1.0", {"e": constant_endpoint("e")}))
        with pytest.raises(ConfigurationError):
            service.undeploy("1.0")

    def test_foreign_version_rejected(self):
        service = Service("svc")
        with pytest.raises(ConfigurationError):
            service.deploy(ServiceVersion("other", "1.0", {"e": constant_endpoint("e")}))


class TestApplication:
    def test_wiring_validation_passes(self, tiny_app):
        assert tiny_app.validate_wiring() == []

    def test_wiring_detects_missing_service(self):
        app = Application()
        app.deploy(
            ServiceVersion(
                "frontend",
                "1.0",
                {"home": constant_endpoint("home", 10, (DownstreamCall("ghost", "x"),))},
            )
        )
        problems = app.validate_wiring()
        assert len(problems) == 1
        assert "ghost" in problems[0]

    def test_wiring_detects_missing_endpoint(self, tiny_app):
        version = tiny_app.resolve("frontend")
        tiny_app.deploy(
            version.with_endpoint(
                constant_endpoint("bad", 1, (DownstreamCall("backend", "nope"),))
            )
        )
        assert any("nope" in p for p in tiny_app.validate_wiring())

    def test_resolve_defaults_to_stable(self, canary_app):
        assert canary_app.resolve("backend").version == "1.0.0"
        assert canary_app.resolve("backend", "2.0.0").version == "2.0.0"

    def test_unknown_service(self, tiny_app):
        with pytest.raises(ConfigurationError):
            tiny_app.service("nope")

    def test_endpoint_count(self, tiny_app):
        assert tiny_app.endpoint_count() == 2


class TestLoadTracker:
    def test_rate_computation(self):
        tracker = LoadTracker(window_seconds=10.0)
        for t in range(10):
            load = tracker.observe("svc", "1.0", float(t), capacity_rps=1.0)
        assert load == pytest.approx(1.0)

    def test_window_expiry(self):
        tracker = LoadTracker(window_seconds=1.0)
        tracker.observe("svc", "1.0", 0.0, 1.0)
        load = tracker.current_load("svc", "1.0", 100.0, 1.0)
        assert load == 0.0

    def test_versions_tracked_separately(self):
        tracker = LoadTracker(10.0)
        tracker.observe("svc", "1.0", 0.0, 1.0)
        assert tracker.current_load("svc", "2.0", 0.0, 1.0) == 0.0

    def test_invalid_window(self):
        with pytest.raises(ExecutionError):
            LoadTracker(0.0)


class TestRuntime:
    def test_deterministic_latency_sums(self, tiny_app):
        runtime = Runtime(tiny_app, seed=1)
        outcome = runtime.execute(make_request())
        # frontend 10ms + backend 20ms, no proxies.
        assert outcome.duration_ms == pytest.approx(30.0)

    def test_trace_structure(self, tiny_app):
        runtime = Runtime(tiny_app, seed=1)
        outcome = runtime.execute(make_request())
        trace = outcome.trace
        assert trace.root.service == "frontend"
        children = trace.children(trace.root.span_id)
        assert [c.service for c in children] == ["backend"]

    def test_metrics_recorded(self, tiny_app):
        runtime = Runtime(tiny_app, seed=1)
        runtime.execute(make_request())
        assert runtime.monitor.throughput("backend", "1.0.0", 0, 1) == 1.0

    def test_clock_advances_to_request_time(self, tiny_app):
        runtime = Runtime(tiny_app, seed=1)
        runtime.execute(make_request(t=42.0))
        assert runtime.clock.now == 42.0

    def test_bad_entry_format(self, tiny_app):
        runtime = Runtime(tiny_app, seed=1)
        with pytest.raises(ExecutionError):
            runtime.execute(make_request(entry="frontendhome"))

    def test_error_propagates_to_root(self, tiny_app):
        backend = tiny_app.resolve("backend")
        backend.endpoints["api"] = EndpointSpec(
            "api", ConstantLatency(20.0), error_rate=1.0
        )
        runtime = Runtime(tiny_app, seed=1)
        outcome = runtime.execute(make_request())
        assert outcome.error
        assert outcome.trace.root.error

    def test_forced_router_decision(self, canary_app):
        class ToCanary:
            def route(self, request, service):
                if service == "backend":
                    return RoutingDecision(version="2.0.0", proxy_hops=1)
                return RoutingDecision()

        runtime = Runtime(canary_app, router=ToCanary(), seed=1, proxy_overhead_ms=2.0)
        outcome = runtime.execute(make_request())
        # frontend 10 + backend-canary 30 + 1 proxy hop 2ms.
        assert outcome.duration_ms == pytest.approx(42.0)
        assert ("backend", "2.0.0") in outcome.version_path

    def test_shadow_versions_traced_but_not_timed(self, canary_app):
        class WithShadow:
            def route(self, request, service):
                if service == "backend":
                    return RoutingDecision(shadow_versions=("2.0.0",))
                return RoutingDecision()

        runtime = Runtime(canary_app, router=WithShadow(), seed=1)
        outcome = runtime.execute(make_request())
        assert outcome.duration_ms == pytest.approx(30.0)  # shadow free
        shadow_spans = [
            s for s in outcome.trace.spans if s.tags.get("shadow") == "true"
        ]
        assert len(shadow_spans) == 1
        assert shadow_spans[0].version == "2.0.0"

    def test_cycle_detection(self):
        app = Application()
        app.deploy(
            ServiceVersion(
                "a", "1.0",
                {"x": constant_endpoint("x", 1.0, (DownstreamCall("a", "x"),))},
            )
        )
        runtime = Runtime(app, seed=1)
        with pytest.raises(ExecutionError):
            runtime.execute(make_request(entry="a.x"))


class TestFaultInjector:
    def test_latency_degradation(self, tiny_app):
        injector = FaultInjector(tiny_app)
        injector.degrade("backend", "1.0.0", "api", latency_factor=3.0)
        runtime = Runtime(tiny_app, seed=1)
        outcome = runtime.execute(make_request())
        assert outcome.duration_ms == pytest.approx(10.0 + 60.0)

    def test_error_injection(self, tiny_app):
        injector = FaultInjector(tiny_app)
        injector.degrade("backend", "1.0.0", "api", added_error_rate=1.0)
        runtime = Runtime(tiny_app, seed=1)
        assert runtime.execute(make_request()).error

    def test_restore_all(self, tiny_app):
        injector = FaultInjector(tiny_app)
        injector.degrade("backend", "1.0.0", "api", latency_factor=3.0)
        assert injector.restore_all() == 1
        runtime = Runtime(tiny_app, seed=1)
        assert runtime.execute(make_request()).duration_ms == pytest.approx(30.0)

    def test_invalid_factor(self, tiny_app):
        with pytest.raises(ConfigurationError):
            FaultInjector(tiny_app).degrade("backend", "1.0.0", "api", latency_factor=0.0)


class TestGenerator:
    def test_wiring_is_closed(self):
        app = random_application(num_services=12, endpoints_per_service=3, seed=2)
        assert app.validate_wiring() == []

    def test_service_count(self):
        app = random_application(num_services=8, seed=3)
        assert len(app.service_names) == 8
        assert "frontend" in app.service_names

    def test_acyclic_execution(self):
        app = random_application(num_services=10, seed=4)
        runtime = Runtime(app, seed=5)
        outcome = runtime.execute(make_request(entry="frontend.ep0"))
        assert outcome.duration_ms > 0

    def test_deterministic(self):
        a = random_application(num_services=6, seed=7)
        b = random_application(num_services=6, seed=7)
        assert a.service_names == b.service_names

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            random_application(num_services=0)
