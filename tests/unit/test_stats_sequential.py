"""Unit tests for the sequential probability ratio test."""

import pytest

from repro.errors import StatisticsError
from repro.stats.sequential import SequentialProbabilityRatioTest, SprtDecision


def make_test(**kwargs) -> SequentialProbabilityRatioTest:
    defaults = dict(p0=0.01, p1=0.05, alpha=0.05, beta=0.1)
    defaults.update(kwargs)
    return SequentialProbabilityRatioTest(**defaults)


class TestConstruction:
    def test_valid(self):
        test = make_test()
        assert test.decision is SprtDecision.CONTINUE
        assert test.observations == 0

    def test_p1_must_exceed_p0(self):
        with pytest.raises(StatisticsError):
            make_test(p0=0.05, p1=0.05)

    @pytest.mark.parametrize("p", [0.0, 1.0])
    def test_probabilities_open_interval(self, p):
        with pytest.raises(StatisticsError):
            make_test(p0=p)

    def test_bounds_ordering(self):
        test = make_test()
        assert test.lower_bound < 0 < test.upper_bound


class TestDecisions:
    def test_rejects_on_many_failures(self):
        test = make_test()
        decision = test.observe_batch(failures=20, total=40)
        assert decision is SprtDecision.REJECT_NULL

    def test_accepts_on_long_healthy_run(self):
        test = make_test()
        decision = test.observe_batch(failures=0, total=500)
        assert decision is SprtDecision.ACCEPT_NULL

    def test_continues_on_ambiguous_evidence(self):
        test = make_test()
        test.observe(False)
        test.observe(True)
        assert test.decision is SprtDecision.CONTINUE

    def test_terminal_decision_sticks(self):
        test = make_test()
        test.observe_batch(failures=20, total=20)
        assert test.decision is SprtDecision.REJECT_NULL
        observations = test.observations
        test.observe(False)
        assert test.decision is SprtDecision.REJECT_NULL
        assert test.observations == observations  # ignored after terminal

    def test_failures_raise_llr(self):
        test = make_test()
        test.observe(True)
        assert test.log_likelihood_ratio > 0

    def test_successes_lower_llr(self):
        test = make_test()
        test.observe(False)
        assert test.log_likelihood_ratio < 0


class TestBatchAndReset:
    def test_batch_validates_counts(self):
        with pytest.raises(StatisticsError):
            make_test().observe_batch(failures=5, total=3)

    def test_reset_restores_initial_state(self):
        test = make_test()
        test.observe_batch(failures=20, total=20)
        test.reset()
        assert test.decision is SprtDecision.CONTINUE
        assert test.observations == 0
        assert test.log_likelihood_ratio == 0.0

    def test_expected_sample_size_smaller_when_effect_large(self):
        # With a blatant failure rate the test should decide quickly.
        fast = make_test(p0=0.01, p1=0.5)
        for _ in range(10):
            if fast.observe(True) is not SprtDecision.CONTINUE:
                break
        assert fast.decision is SprtDecision.REJECT_NULL
        assert fast.observations <= 5
