"""Unit tests for the Bifrost engine's phase lifecycle and actions."""

import pytest

from repro.bifrost.middleware import Bifrost
from repro.bifrost.model import (
    Check,
    Phase,
    PhaseType,
    Strategy,
    StrategyOutcome,
)
from repro.microservices.service import ServiceVersion
from repro.traffic.profile import UserGroup
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator
from tests.conftest import constant_endpoint

GROUPS = (UserGroup("eu", 0.6), UserGroup("na", 0.4))


def run_strategy(app, strategy, duration=200.0, rate=40.0, seed=3, observer=None):
    """Submit *strategy* at t=1 and drive a Poisson workload through it."""
    bifrost = Bifrost(app, seed=seed, observer=observer)
    execution = bifrost.submit(strategy, at=1.0)
    population = UserPopulation(400, GROUPS, seed=seed + 1)
    workload = WorkloadGenerator(population, entry="frontend.home", seed=seed + 2)
    bifrost.run(workload.poisson(rate, duration), until=duration + 20.0)
    return bifrost, execution


def error_check(threshold=0.05, window=20.0) -> Check:
    return Check(
        name="errors",
        service="backend",
        version="2.0.0",
        metric="error",
        aggregation="mean",
        operator="<=",
        threshold=threshold,
        window_seconds=window,
    )


def canary_phase(**kwargs) -> Phase:
    defaults = dict(
        name="canary",
        type=PhaseType.CANARY,
        service="backend",
        stable_version="1.0.0",
        experimental_version="2.0.0",
        fraction=0.3,
        duration_seconds=60.0,
        check_interval_seconds=5.0,
        checks=(error_check(),),
    )
    defaults.update(kwargs)
    return Phase(**defaults)


class TestHappyPath:
    def test_healthy_canary_completes_and_promotes(self, canary_app):
        strategy = Strategy("s", (canary_phase(),))
        bifrost, execution = run_strategy(canary_app, strategy)
        assert execution.outcome is StrategyOutcome.COMPLETED
        assert canary_app.stable_version("backend") == "2.0.0"

    def test_route_uninstalled_after_completion(self, canary_app):
        strategy = Strategy("s", (canary_phase(),))
        bifrost, execution = run_strategy(canary_app, strategy)
        assert bifrost.router.active_route("backend") is None

    def test_transitions_recorded(self, canary_app):
        strategy = Strategy("s", (canary_phase(),))
        _, execution = run_strategy(canary_app, strategy)
        assert execution.transitions[-1].target == "complete"
        assert execution.finished_at is not None

    def test_checks_logged(self, canary_app):
        strategy = Strategy("s", (canary_phase(),))
        _, execution = run_strategy(canary_app, strategy)
        assert len(execution.check_log) >= 5


class TestFailurePath:
    def test_broken_canary_rolls_back(self, canary_app):
        # Make the canary version fail every request.
        broken = canary_app.resolve("backend", "2.0.0")
        broken.endpoints["api"] = constant_endpoint("api", 30.0, error_rate=1.0)
        strategy = Strategy("s", (canary_phase(),))
        _, execution = run_strategy(canary_app, strategy)
        assert execution.outcome is StrategyOutcome.ROLLED_BACK
        assert canary_app.stable_version("backend") == "1.0.0"

    def test_rollback_happens_before_phase_end(self, canary_app):
        broken = canary_app.resolve("backend", "2.0.0")
        broken.endpoints["api"] = constant_endpoint("api", 30.0, error_rate=1.0)
        strategy = Strategy("s", (canary_phase(duration_seconds=500.0),))
        _, execution = run_strategy(canary_app, strategy)
        assert execution.outcome is StrategyOutcome.ROLLED_BACK
        assert execution.finished_at < 200.0

    def test_rollback_uninstalls_route(self, canary_app):
        broken = canary_app.resolve("backend", "2.0.0")
        broken.endpoints["api"] = constant_endpoint("api", 30.0, error_rate=1.0)
        strategy = Strategy("s", (canary_phase(),))
        bifrost, _ = run_strategy(canary_app, strategy)
        assert bifrost.router.active_route("backend") is None


class TestInconclusivePath:
    def test_no_data_repeats_then_fails(self, canary_app):
        # Audience restricted to a group that gets no traffic: checks on
        # the canary stay inconclusive forever.
        phase = canary_phase(
            audience_groups=frozenset({"ghost-group"}),
            duration_seconds=30.0,
            max_repeats=1,
        )
        strategy = Strategy("s", (phase,))
        _, execution = run_strategy(canary_app, strategy, duration=150.0)
        repeats = [t for t in execution.transitions if t.trigger == "inconclusive"]
        assert repeats
        assert execution.outcome is StrategyOutcome.ROLLED_BACK

    def test_min_samples_gate(self, canary_app):
        # Demand more samples than the short phase can collect.
        phase = canary_phase(duration_seconds=20.0, min_samples=100_000)
        strategy = Strategy("s", (phase,))
        _, execution = run_strategy(canary_app, strategy, duration=120.0)
        assert execution.outcome is not StrategyOutcome.COMPLETED


class TestMultiPhase:
    def test_chaining_to_second_phase(self, canary_app):
        first = canary_phase(name="one", on_success="two", duration_seconds=30.0)
        second = canary_phase(name="two", duration_seconds=30.0)
        strategy = Strategy("s", (first, second))
        _, execution = run_strategy(canary_app, strategy)
        sources = [t.source for t in execution.transitions]
        assert "one" in sources and "two" in sources
        assert execution.outcome is StrategyOutcome.COMPLETED

    def test_ab_picks_faster_winner(self, canary_app):
        # 2.1.0 is faster than 2.0.0; the A/B should pick it.
        canary_app.deploy(
            ServiceVersion(
                "backend", "2.1.0", {"api": constant_endpoint("api", 10.0)}
            )
        )
        ab = Phase(
            name="ab",
            type=PhaseType.AB_TEST,
            service="backend",
            stable_version="1.0.0",
            experimental_version="2.0.0",
            second_version="2.1.0",
            fraction=0.5,
            duration_seconds=60.0,
            check_interval_seconds=5.0,
        )
        strategy = Strategy("s", (ab,))
        _, execution = run_strategy(canary_app, strategy)
        assert execution.winner == "2.1.0"
        assert execution.outcome is StrategyOutcome.COMPLETED
        assert canary_app.stable_version("backend") == "2.1.0"

    def test_gradual_rollout_advances_steps(self, canary_app):
        rollout = Phase(
            name="rollout",
            type=PhaseType.GRADUAL_ROLLOUT,
            service="backend",
            stable_version="1.0.0",
            experimental_version="2.0.0",
            steps=(0.2, 0.6, 1.0),
            duration_seconds=60.0,
            check_interval_seconds=5.0,
        )
        strategy = Strategy("s", (rollout,))
        bifrost = Bifrost(canary_app, seed=5)
        execution = bifrost.submit(strategy, at=1.0)
        population = UserPopulation(400, GROUPS, seed=6)
        workload = WorkloadGenerator(population, entry="frontend.home", seed=7)

        fractions = []
        for request in workload.poisson(40.0, 80.0):
            bifrost.simulation.run_until(max(request.timestamp, bifrost.simulation.now))
            route = bifrost.router.active_route("backend")
            if route is not None and len(route.variants) == 2:
                fractions.append(route.variants[1].fraction)
            bifrost.runtime.execute(request)
        bifrost.simulation.run_until(100.0)
        assert 0.2 in fractions and 0.6 in fractions
        assert execution.outcome is StrategyOutcome.COMPLETED

    def test_dark_launch_duplicates_traffic(self, canary_app):
        dark = Phase(
            name="dark",
            type=PhaseType.DARK_LAUNCH,
            service="backend",
            stable_version="1.0.0",
            experimental_version="2.0.0",
            duration_seconds=40.0,
            check_interval_seconds=5.0,
        )
        strategy = Strategy("s", (dark,))
        bifrost, execution = run_strategy(canary_app, strategy, duration=100.0)
        store = bifrost.store
        shadow_calls = store.aggregate(
            "backend", "2.0.0", "throughput", "count", 0.0, 100.0
        )
        assert shadow_calls and shadow_calls > 0
        assert execution.outcome is StrategyOutcome.COMPLETED


class TestEngineAccounting:
    def test_executor_charged_per_tick(self, canary_app):
        strategy = Strategy("s", (canary_phase(),))
        bifrost, _ = run_strategy(canary_app, strategy)
        report = bifrost.engine.executor.report()
        assert report.tasks >= 10
        assert report.utilization < 0.05  # one strategy is nearly free

    def test_outcomes_summary(self, canary_app):
        strategy = Strategy("s", (canary_phase(),))
        bifrost, _ = run_strategy(canary_app, strategy)
        assert bifrost.engine.outcomes() == {"s": StrategyOutcome.COMPLETED}
        assert bifrost.engine.running_count() == 0

    def test_outcome_of_unknown_strategy(self, canary_app):
        bifrost = Bifrost(canary_app)
        with pytest.raises(KeyError):
            bifrost.outcome_of("ghost")


class TestPerCheckIntervals:
    def test_checks_evaluated_at_their_own_cadence(self, canary_app):
        """Fig 4.3: a check with a longer interval runs less often."""
        fast = error_check(window=20.0)
        slow = Check(
            name="slow-latency",
            service="backend",
            version="2.0.0",
            metric="response_time",
            aggregation="mean",
            operator="<=",
            threshold=10_000.0,
            window_seconds=60.0,
            interval_seconds=20.0,
        )
        phase = canary_phase(
            duration_seconds=60.0, check_interval_seconds=5.0,
            checks=(fast, slow),
        )
        strategy = Strategy("s", (phase,))
        _, execution = run_strategy(canary_app, strategy, duration=100.0)
        counts = {}
        for result in execution.check_log:
            counts[result.check.name] = counts.get(result.check.name, 0) + 1
        # The fast check runs every 5 s tick, the slow one every 20 s.
        assert counts["errors"] >= 3 * counts["slow-latency"]
        assert counts["slow-latency"] >= 2

    def test_phase_end_uses_latest_outcomes(self, canary_app):
        """A slow check that passed earlier doesn't block completion."""
        slow = Check(
            name="slow",
            service="backend",
            version="2.0.0",
            metric="response_time",
            aggregation="mean",
            operator="<=",
            threshold=10_000.0,
            window_seconds=120.0,
            interval_seconds=25.0,
        )
        phase = canary_phase(
            duration_seconds=60.0, check_interval_seconds=5.0,
            checks=(error_check(window=30.0), slow),
        )
        strategy = Strategy("s", (phase,))
        _, execution = run_strategy(canary_app, strategy, duration=100.0)
        assert execution.outcome is StrategyOutcome.COMPLETED


class TestCancellation:
    def test_cancel_running_strategy(self, canary_app):
        strategy = Strategy("s", (canary_phase(duration_seconds=10_000.0),))
        bifrost = Bifrost(canary_app, seed=9)
        execution = bifrost.submit(strategy, at=1.0)
        population = UserPopulation(200, GROUPS, seed=10)
        workload = WorkloadGenerator(population, entry="frontend.home", seed=11)
        bifrost.run(workload.poisson(20.0, 30.0), until=35.0)
        assert execution.running
        bifrost.engine.cancel("s")
        assert execution.outcome is StrategyOutcome.ABORTED
        # Traffic reverted: the route is gone and stable is unchanged.
        assert bifrost.router.active_route("backend") is None
        assert canary_app.stable_version("backend") == "1.0.0"
        assert execution.transitions[-1].trigger == "canceled"

    def test_cancel_finished_strategy_is_noop(self, canary_app):
        strategy = Strategy("s", (canary_phase(duration_seconds=20.0),))
        bifrost, execution = run_strategy(canary_app, strategy, duration=80.0)
        outcome_before = execution.outcome
        bifrost.engine.cancel("s")
        assert execution.outcome is outcome_before

    def test_cancel_unknown_strategy(self, canary_app):
        from repro.errors import ExecutionError

        bifrost = Bifrost(canary_app)
        with pytest.raises(ExecutionError):
            bifrost.engine.cancel("ghost")

    def test_no_further_ticks_after_cancel(self, canary_app):
        strategy = Strategy("s", (canary_phase(duration_seconds=10_000.0),))
        bifrost = Bifrost(canary_app, seed=12)
        execution = bifrost.submit(strategy, at=1.0)
        population = UserPopulation(200, GROUPS, seed=13)
        workload = WorkloadGenerator(population, entry="frontend.home", seed=14)
        bifrost.run(workload.poisson(20.0, 30.0), until=35.0)
        bifrost.engine.cancel("s")
        checks_at_cancel = len(execution.check_log)
        bifrost.simulation.run_until(200.0)
        assert len(execution.check_log) == checks_at_cancel
