"""Unit tests for check evaluation."""

import pytest

from repro.bifrost.checks import CheckEvaluator
from repro.bifrost.model import CheckOutcome
from repro.telemetry.store import MetricStore
from tests.unit.test_bifrost_model import make_check


@pytest.fixture
def store() -> MetricStore:
    store = MetricStore()
    # Experimental version: mean response time 120 over t in [0, 10).
    for t in range(10):
        store.record("svc", "2.0.0", "response_time", float(t), 120.0)
        store.record("svc", "1.0.0", "response_time", float(t), 100.0)
    return store


class TestThresholdChecks:
    def test_pass(self, store):
        check = make_check(threshold=150.0, window_seconds=10.0)
        result = CheckEvaluator(store).evaluate(check, now=10.0)
        assert result.outcome is CheckOutcome.PASS
        assert result.observed == pytest.approx(120.0)
        assert result.reference == pytest.approx(150.0)

    def test_fail(self, store):
        check = make_check(threshold=110.0, window_seconds=10.0)
        result = CheckEvaluator(store).evaluate(check, now=10.0)
        assert result.outcome is CheckOutcome.FAIL

    def test_inconclusive_when_no_data(self, store):
        check = make_check(threshold=110.0, window_seconds=5.0)
        result = CheckEvaluator(store).evaluate(check, now=100.0)
        assert result.outcome is CheckOutcome.INCONCLUSIVE
        assert result.observed is None

    def test_window_respected(self, store):
        store.record("svc", "2.0.0", "response_time", 20.0, 500.0)
        check = make_check(threshold=130.0, window_seconds=5.0)
        # Window [16, 21) only contains the 500ms outlier.
        result = CheckEvaluator(store).evaluate(check, now=21.0)
        assert result.outcome is CheckOutcome.FAIL
        assert result.observed == pytest.approx(500.0)

    def test_tolerance_scales_threshold(self, store):
        check = make_check(threshold=100.0, tolerance=1.5, window_seconds=10.0)
        result = CheckEvaluator(store).evaluate(check, now=10.0)
        assert result.reference == pytest.approx(150.0)
        assert result.outcome is CheckOutcome.PASS


class TestRelativeChecks:
    def test_pass_within_tolerance(self, store):
        check = make_check(
            threshold=None, baseline_version="1.0.0", tolerance=1.3,
            window_seconds=10.0,
        )
        result = CheckEvaluator(store).evaluate(check, now=10.0)
        assert result.outcome is CheckOutcome.PASS
        assert result.reference == pytest.approx(130.0)

    def test_fail_outside_tolerance(self, store):
        check = make_check(
            threshold=None, baseline_version="1.0.0", tolerance=1.1,
            window_seconds=10.0,
        )
        result = CheckEvaluator(store).evaluate(check, now=10.0)
        assert result.outcome is CheckOutcome.FAIL

    def test_inconclusive_without_baseline_data(self, store):
        check = make_check(
            threshold=None, baseline_version="9.9.9", window_seconds=10.0
        )
        result = CheckEvaluator(store).evaluate(check, now=10.0)
        assert result.outcome is CheckOutcome.INCONCLUSIVE
        assert result.observed is not None  # experimental data existed

    def test_p95_aggregation(self, store):
        check = make_check(
            aggregation="p95", threshold=125.0, window_seconds=10.0
        )
        result = CheckEvaluator(store).evaluate(check, now=10.0)
        assert result.outcome is CheckOutcome.PASS


class TestEvaluateAll:
    def test_all_results_returned(self, store):
        checks = (
            make_check("a", threshold=150.0, window_seconds=10.0),
            make_check("b", threshold=110.0, window_seconds=10.0),
        )
        results = CheckEvaluator(store).evaluate_all(checks, now=10.0)
        assert [r.outcome for r in results] == [CheckOutcome.PASS, CheckOutcome.FAIL]

    def test_describe_contains_outcome(self, store):
        check = make_check(threshold=150.0, window_seconds=10.0)
        result = CheckEvaluator(store).evaluate(check, now=10.0)
        assert "pass" in result.describe()
