"""Unit tests for scenario specs, the factory, and invariant helpers."""

import json

import pytest

from repro.errors import ConfigurationError, ValidationError
from repro.scenarios import (
    ArrivalSpec,
    ExperimentSpec,
    FaultSpec,
    FlashCrowdSpec,
    RegionSpec,
    ResilienceSpec,
    ScenarioSpec,
    ServiceSpec,
    cascade_cap_of,
)
from repro.scenarios import factory
from repro.simulation.latency import (
    CompositeLatency,
    LoadSensitiveLatency,
    ParetoLatency,
)


def chain_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="unit",
        seed=7,
        services=(
            ServiceSpec("frontend", depends_on=("backend",)),
            ServiceSpec("backend"),
        ),
        experiment=ExperimentSpec(service="frontend", true_error_delta=0.2),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestSpecValidation:
    def test_dependency_must_point_forward(self):
        with pytest.raises(ConfigurationError):
            chain_spec(
                services=(
                    ServiceSpec("frontend"),
                    ServiceSpec("backend", depends_on=("frontend",)),
                )
            )

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ConfigurationError):
            chain_spec(services=(ServiceSpec("frontend", depends_on=("ghost",)),))

    def test_duplicate_service_names_rejected(self):
        with pytest.raises(ConfigurationError):
            chain_spec(services=(ServiceSpec("a"), ServiceSpec("a")))

    def test_experiment_must_target_declared_service(self):
        with pytest.raises(ConfigurationError):
            chain_spec(experiment=ExperimentSpec(service="ghost"))

    def test_fault_must_target_declared_service(self):
        with pytest.raises(ConfigurationError):
            chain_spec(faults=(FaultSpec(kind="error_burst", service="ghost"),))

    def test_partition_needs_both_services_declared(self):
        with pytest.raises(ConfigurationError):
            chain_spec(
                faults=(
                    FaultSpec(kind="partition", service="frontend", service_b="ghost"),
                )
            )

    def test_region_must_be_declared(self):
        with pytest.raises(ConfigurationError):
            chain_spec(services=(ServiceSpec("frontend", region="mars"),))

    def test_fallback_must_be_declared(self):
        with pytest.raises(ConfigurationError):
            chain_spec(resilience=ResilienceSpec(fallback_service="ghost"))

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="meteor")

    def test_fault_window_ordering(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="error_burst", service="a", start=5.0, end=5.0)
        # Deploys fire once; end is ignored entirely.
        FaultSpec(kind="deploy", service="a", start=5.0, end=0.0)

    def test_check_metric_restricted(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(service="a", check_metric="vibes")

    def test_entry_and_index_helpers(self):
        spec = chain_spec()
        assert spec.entry == "frontend"
        assert spec.service_index("backend") == 1
        with pytest.raises(ConfigurationError):
            spec.service_index("ghost")

    def test_with_seed(self):
        spec = chain_spec()
        assert spec.with_seed(99).seed == 99
        assert spec.with_seed(99).services == spec.services


class TestSpecSerialization:
    def test_round_trip_through_json(self):
        spec = chain_spec(
            arrivals=ArrivalSpec(kind="pareto", alpha=1.3),
            flash_crowds=(FlashCrowdSpec(10.0, 5.0, 4.0),),
            regions=(RegionSpec("eu", 55.0),),
            services=(
                ServiceSpec("frontend", tail="pareto", depends_on=("backend",)),
                ServiceSpec("backend", region="eu", cpu_cap_rps=80.0),
            ),
            faults=(
                FaultSpec(kind="latency_spike", service="backend", magnitude=3.0),
                FaultSpec(kind="deploy", service="backend", version="3.0.0"),
            ),
            resilience=ResilienceSpec(retries=1, fallback_service="backend"),
        )
        data = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(data) == spec

    def test_unknown_fields_rejected(self):
        data = chain_spec().to_dict()
        data["services"][0]["flux_capacitor"] = True
        with pytest.raises(ValidationError):
            ScenarioSpec.from_dict(data)

    def test_unsupported_format_rejected(self):
        data = chain_spec().to_dict()
        data["format"] = 99
        with pytest.raises(ValidationError):
            ScenarioSpec.from_dict(data)

    def test_missing_field_rejected(self):
        data = chain_spec().to_dict()
        del data["experiment"]
        with pytest.raises(ValidationError):
            ScenarioSpec.from_dict(data)


class TestFactory:
    def test_application_shape(self):
        app = factory.build_application(chain_spec())
        assert app.stable_version("frontend") == "1.0.0"
        assert app.stable_version("backend") == "1.0.0"
        # The experimental version exists only on the experiment target.
        assert app.resolve("frontend", "2.0.0") is not None
        with pytest.raises(Exception):
            app.resolve("backend", "2.0.0")

    def test_experimental_version_carries_ground_truth(self):
        spec = chain_spec(
            experiment=ExperimentSpec(service="frontend", true_error_delta=0.25)
        )
        app = factory.build_application(spec)
        assert app.resolve("frontend", "2.0.0").endpoint("ep").error_rate == pytest.approx(0.25)
        assert app.resolve("frontend", "1.0.0").endpoint("ep").error_rate == 0.0

    def test_pareto_tail_selected(self):
        spec = chain_spec(
            services=(ServiceSpec("frontend", tail="pareto", tail_alpha=1.4),)
        )
        app = factory.build_application(spec)
        assert isinstance(
            app.resolve("frontend").endpoint("ep").latency, ParetoLatency
        )

    def test_cpu_cap_wraps_load_sensitivity(self):
        spec = chain_spec(services=(ServiceSpec("frontend", cpu_cap_rps=50.0),))
        app = factory.build_application(spec)
        version = app.resolve("frontend")
        assert isinstance(version.endpoint("ep").latency, LoadSensitiveLatency)
        assert version.capacity_rps == pytest.approx(50.0)

    def test_cross_region_latency_prepended(self):
        spec = chain_spec(
            regions=(RegionSpec("us", 0.0), RegionSpec("eu", 40.0)),
            services=(
                ServiceSpec("frontend", region="us", depends_on=("backend",)),
                ServiceSpec("backend", region="eu"),
            ),
        )
        app = factory.build_application(spec)
        assert isinstance(
            app.resolve("backend").endpoint("ep").latency, CompositeLatency
        )
        # The entry's own region never pays the penalty.
        assert not isinstance(
            app.resolve("frontend").endpoint("ep").latency, CompositeLatency
        )

    def test_strategy_gates_experimental_version(self):
        strategy = factory.build_strategy(chain_spec())
        [phase] = strategy.phases
        assert phase.experimental_version == "2.0.0"
        [check] = phase.checks
        assert check.version == "2.0.0"
        assert check.metric == "error"

    def test_resilience_none_when_unconfigured(self):
        assert factory.build_resilience(chain_spec()) is None

    def test_fallback_policy_scoped_to_service(self):
        spec = chain_spec(
            resilience=ResilienceSpec(retries=1, fallback_service="backend")
        )
        layer = factory.build_resilience(spec)
        policy = layer.policy_for("backend", "ep")
        assert policy.fallback and policy.max_retries == 1

    def test_deploy_plan_ordered_and_filtered(self):
        spec = chain_spec(
            faults=(
                FaultSpec(kind="deploy", service="backend", start=40.0),
                FaultSpec(kind="error_burst", service="backend", start=5.0, end=15.0),
                FaultSpec(kind="deploy", service="frontend", start=20.0),
            )
        )
        plan = factory.deploy_plan(spec)
        assert [(f.service, f.start) for f in plan] == [
            ("frontend", 20.0),
            ("backend", 40.0),
        ]

    def test_apply_deploy_promotes_new_stable(self):
        spec = chain_spec(
            faults=(
                FaultSpec(
                    kind="deploy", service="backend", version="3.0.0", magnitude=2.0
                ),
            )
        )
        app = factory.build_application(spec)
        factory.apply_deploy(spec, app, factory.deploy_plan(spec)[0])
        assert app.stable_version("backend") == "3.0.0"

    def test_workload_respects_flash_crowd_segments(self):
        spec = chain_spec(
            arrivals=ArrivalSpec(rate_per_second=6.0, duration_seconds=60.0),
            flash_crowds=(FlashCrowdSpec(start=20.0, duration=10.0, magnitude=6.0),),
        )
        requests = list(factory.build_workload(spec))
        inside = [r for r in requests if 20.0 <= r.timestamp < 30.0]
        outside = [r for r in requests if r.timestamp < 20.0 or r.timestamp >= 30.0]
        inside_rate = len(inside) / 10.0
        outside_rate = len(outside) / 50.0
        assert inside_rate > 3.0 * outside_rate

    def test_needs_flags(self):
        assert not factory.needs_network(chain_spec())
        assert factory.needs_network(
            chain_spec(
                faults=(
                    FaultSpec(
                        kind="partition", service="frontend", service_b="backend"
                    ),
                )
            )
        )
        assert factory.needs_durability(
            chain_spec(faults=(FaultSpec(kind="engine_crash"),))
        )


class TestCascadeCap:
    def test_no_sources_means_zero(self):
        spec = chain_spec(
            experiment=ExperimentSpec(service="frontend", true_error_delta=0.0)
        )
        assert cascade_cap_of(spec) == 0

    def test_unbounded_with_ambient_errors(self):
        spec = chain_spec(
            services=(ServiceSpec("frontend", error_rate=0.01),),
            experiment=ExperimentSpec(service="frontend"),
        )
        assert cascade_cap_of(spec) is None

    def test_fallback_absorbs_deep_source(self):
        spec = chain_spec(
            services=(
                ServiceSpec("a", depends_on=("b",)),
                ServiceSpec("b", depends_on=("c",)),
                ServiceSpec("c"),
            ),
            experiment=ExperimentSpec(service="a"),
            faults=(
                FaultSpec(kind="error_burst", service="c", version="1.0.0",
                          magnitude=1.0, start=5.0, end=20.0),
            ),
            resilience=ResilienceSpec(fallback_service="b"),
        )
        # Source at index 2, fallback at index 1: chain spans [1, 2].
        assert cascade_cap_of(spec) == 2

    def test_without_fallback_reaches_entry(self):
        spec = chain_spec(
            services=(
                ServiceSpec("a", depends_on=("b",)),
                ServiceSpec("b", depends_on=("c",)),
                ServiceSpec("c"),
            ),
            experiment=ExperimentSpec(service="a"),
            faults=(
                FaultSpec(kind="error_burst", service="c", version="1.0.0",
                          magnitude=1.0, start=5.0, end=20.0),
            ),
        )
        assert cascade_cap_of(spec) == 3
