"""Unit tests for the feature-toggle subsystem."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.microservices.runtime import Runtime
from repro.toggles.debt import assess_toggle_debt, estimate_test_effort
from repro.toggles.router import ToggleRouter
from repro.toggles.store import FeatureToggle, ToggleState, ToggleStore
from tests.unit.test_microservices import make_request


class TestFeatureToggle:
    def test_disabled_by_default_fraction_zero(self):
        toggle = FeatureToggle("f", "svc")
        assert not toggle.evaluate("user1")

    def test_full_rollout_enables_everyone(self):
        toggle = FeatureToggle("f", "svc", rollout_fraction=1.0)
        assert all(toggle.evaluate(f"u{i}") for i in range(50))

    def test_sticky_per_user(self):
        toggle = FeatureToggle("f", "svc", rollout_fraction=0.5)
        first = toggle.evaluate("alice")
        assert all(toggle.evaluate("alice") == first for _ in range(10))

    def test_fraction_approximated(self):
        toggle = FeatureToggle("f", "svc", rollout_fraction=0.3)
        share = sum(toggle.evaluate(f"u{i}") for i in range(2000)) / 2000
        assert share == pytest.approx(0.3, abs=0.05)

    def test_group_override(self):
        toggle = FeatureToggle(
            "f", "svc", rollout_fraction=0.0,
            enabled_groups=frozenset({"beta"}),
        )
        assert toggle.evaluate("u1", group="beta")
        assert not toggle.evaluate("u1", group="eu")

    def test_inactive_states_disable(self):
        for state in (ToggleState.DISABLED, ToggleState.RETIRED):
            toggle = FeatureToggle("f", "svc", rollout_fraction=1.0, state=state)
            assert not toggle.evaluate("u1")

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            FeatureToggle("f", "svc", rollout_fraction=1.5)


class TestToggleStore:
    def test_register_and_lookup(self):
        store = ToggleStore()
        store.register(FeatureToggle("f", "svc", rollout_fraction=1.0))
        assert store.is_enabled("f", "u1")
        assert store.evaluations == 1

    def test_duplicate_rejected(self):
        store = ToggleStore()
        store.register(FeatureToggle("f", "svc"))
        with pytest.raises(ConfigurationError):
            store.register(FeatureToggle("f", "svc"))

    def test_set_rollout(self):
        store = ToggleStore()
        store.register(FeatureToggle("f", "svc", rollout_fraction=0.0))
        store.set_rollout("f", 1.0)
        assert store.is_enabled("f", "u1")

    def test_disable_is_kill_switch(self):
        store = ToggleStore()
        store.register(FeatureToggle("f", "svc", rollout_fraction=1.0))
        store.disable("f")
        assert not store.is_enabled("f", "u1")
        assert store.get("f").state is ToggleState.DISABLED

    def test_retire(self):
        store = ToggleStore()
        store.register(FeatureToggle("f", "svc", rollout_fraction=1.0))
        store.retire("f")
        assert store.get("f").state is ToggleState.RETIRED
        assert store.active_toggles() == []

    def test_active_toggles_by_service(self):
        store = ToggleStore()
        store.register(FeatureToggle("a", "svc1"))
        store.register(FeatureToggle("b", "svc2"))
        assert len(store.active_toggles("svc1")) == 1

    def test_unknown_toggle(self):
        with pytest.raises(ConfigurationError):
            ToggleStore().get("ghost")


class TestToggleStoreErrorPaths:
    """Every mutation path raises ConfigurationError consistently."""

    def test_duplicate_register_message_names_toggle(self):
        store = ToggleStore()
        store.register(FeatureToggle("dup", "svc"))
        with pytest.raises(ConfigurationError, match="dup"):
            store.register(FeatureToggle("dup", "svc"))

    def test_duplicate_register_keeps_original(self):
        store = ToggleStore()
        store.register(FeatureToggle("f", "svc", rollout_fraction=0.4))
        with pytest.raises(ConfigurationError):
            store.register(FeatureToggle("f", "svc", rollout_fraction=0.9))
        assert store.get("f").rollout_fraction == 0.4

    @pytest.mark.parametrize("fraction", [-0.1, 1.1, 2.0, -5.0])
    def test_set_rollout_out_of_range(self, fraction):
        store = ToggleStore()
        store.register(FeatureToggle("f", "svc"))
        with pytest.raises(ConfigurationError):
            store.set_rollout("f", fraction)
        assert store.get("f").rollout_fraction == 0.0

    @pytest.mark.parametrize("fraction", [0.0, 0.5, 1.0])
    def test_set_rollout_boundaries_accepted(self, fraction):
        store = ToggleStore()
        store.register(FeatureToggle("f", "svc"))
        store.set_rollout("f", fraction)
        assert store.get("f").rollout_fraction == fraction

    def test_set_rollout_unknown_toggle(self):
        with pytest.raises(ConfigurationError):
            ToggleStore().set_rollout("ghost", 0.5)

    def test_disable_unknown_toggle(self):
        with pytest.raises(ConfigurationError):
            ToggleStore().disable("ghost")

    def test_retire_unknown_toggle(self):
        with pytest.raises(ConfigurationError):
            ToggleStore().retire("ghost")

    @pytest.mark.parametrize("fraction", [-0.01, 1.01])
    def test_constructor_out_of_range_fraction(self, fraction):
        with pytest.raises(ConfigurationError):
            FeatureToggle("f", "svc", rollout_fraction=fraction)

    def test_constructor_empty_name_or_service(self):
        with pytest.raises(ConfigurationError):
            FeatureToggle("", "svc")
        with pytest.raises(ConfigurationError):
            FeatureToggle("f", "")


class TestToggleStoreSnapshot:
    def make_store(self) -> ToggleStore:
        store = ToggleStore()
        store.register(
            FeatureToggle(
                "a", "svc1", rollout_fraction=0.3,
                enabled_groups=frozenset({"beta"}), created_at=7.0,
            )
        )
        store.register(FeatureToggle("b", "svc2", rollout_fraction=1.0))
        store.disable("b")
        store.is_enabled("a", "u1")
        return store

    def test_snapshot_restore_round_trip(self):
        store = self.make_store()
        restored = ToggleStore()
        restored.restore(store.snapshot())
        assert len(restored) == len(store)
        assert restored.evaluations == store.evaluations
        for toggle in store.all_toggles():
            twin = restored.get(toggle.name)
            assert twin == toggle

    def test_snapshot_is_json_compatible(self):
        import json

        dump = self.make_store().snapshot()
        assert json.loads(json.dumps(dump)) == dump

    def test_restore_replaces_existing_contents(self):
        store = self.make_store()
        restored = ToggleStore()
        restored.register(FeatureToggle("stale", "svc"))
        restored.restore(store.snapshot())
        with pytest.raises(ConfigurationError):
            restored.get("stale")

    def test_restore_rejects_malformed_document(self):
        with pytest.raises(ConfigurationError):
            ToggleStore().restore({"toggles": [{"name": "x"}], "evaluations": 0})

    def test_restore_rejects_invalid_fraction(self):
        dump = self.make_store().snapshot()
        dump["toggles"][0]["rollout_fraction"] = 3.0
        with pytest.raises(ConfigurationError):
            ToggleStore().restore(dump)


class TestToggleRouter:
    def test_routes_enabled_users_to_experimental(self, canary_app):
        router = ToggleRouter()
        router.start_experiment("backend", "2.0.0", fraction=1.0)
        decision = router.route(make_request(), "backend")
        assert decision.version == "2.0.0"
        assert decision.proxy_hops == 0  # in-process decision, no hop

    def test_disabled_users_stay_stable(self, canary_app):
        router = ToggleRouter()
        router.start_experiment("backend", "2.0.0", fraction=0.0)
        decision = router.route(make_request(), "backend")
        assert decision.version is None

    def test_untouched_service_passthrough(self):
        router = ToggleRouter()
        decision = router.route(make_request(), "frontend")
        assert decision.version is None
        assert router.store.evaluations == 0

    def test_runtime_integration(self, canary_app):
        router = ToggleRouter()
        router.start_experiment("backend", "2.0.0", fraction=1.0)
        runtime = Runtime(canary_app, router=router, seed=1)
        outcome = runtime.execute(make_request())
        # backend 2.0.0 is 30ms; no proxy overhead at all.
        assert outcome.duration_ms == pytest.approx(40.0)

    def test_stop_experiment(self, canary_app):
        router = ToggleRouter()
        router.start_experiment("backend", "2.0.0", fraction=1.0)
        router.stop_experiment("backend")
        decision = router.route(make_request(), "backend")
        assert decision.version is None

    def test_double_start_rejected(self):
        router = ToggleRouter()
        router.start_experiment("backend", "2.0.0", fraction=0.5)
        with pytest.raises(ConfigurationError):
            router.start_experiment("backend", "3.0.0", fraction=0.5)

    def test_advance_rollout(self, canary_app):
        router = ToggleRouter()
        router.start_experiment("backend", "2.0.0", fraction=0.0)
        router.advance_rollout("backend", 1.0)
        assert router.route(make_request(), "backend").version == "2.0.0"


class TestToggleDebt:
    def make_store(self) -> ToggleStore:
        store = ToggleStore()
        store.register(FeatureToggle("a", "svc1", created_at=0.0))
        store.register(FeatureToggle("b", "svc1", created_at=0.0))
        store.register(FeatureToggle("c", "svc2", created_at=100.0))
        store.register(FeatureToggle("d", "svc2"))
        store.disable("d")
        return store

    def test_counts(self):
        report = assess_toggle_debt(self.make_store(), now=0.0)
        assert report.active == 3
        assert report.disabled == 1
        assert report.per_service == {"svc1": 2, "svc2": 1}

    def test_stale_detection(self):
        report = assess_toggle_debt(
            self.make_store(), now=50.0, stale_after_seconds=10.0
        )
        assert report.stale == 2  # a, b are older than 10s

    def test_state_space(self):
        report = assess_toggle_debt(self.make_store())
        assert report.state_space == 8.0

    def test_policy_check(self):
        report = assess_toggle_debt(self.make_store())
        assert report.exceeds(max_active_per_service=1) == ["svc1"]
        assert report.exceeds(max_active_per_service=5) == []

    def test_effort_explodes(self):
        store = ToggleStore()
        for i in range(70):
            store.register(FeatureToggle(f"t{i}", "svc"))
        report = assess_toggle_debt(store)
        assert math.isinf(estimate_test_effort(report))
