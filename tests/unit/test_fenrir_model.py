"""Unit tests for Fenrir's problem model and schedule representation."""

import pytest

from repro.errors import ConfigurationError, ValidationError
from repro.fenrir.model import ExperimentSpec, SchedulingProblem
from repro.fenrir.schedule import Gene, Schedule


def make_spec(name="exp0", **kwargs) -> ExperimentSpec:
    defaults = dict(
        name=name,
        required_samples=1000.0,
        min_duration_slots=2,
        max_duration_slots=10,
        min_traffic_fraction=0.01,
        max_traffic_fraction=0.5,
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


class TestExperimentSpec:
    def test_valid(self):
        spec = make_spec()
        assert spec.name == "exp0"

    def test_requires_positive_samples(self):
        with pytest.raises(ConfigurationError):
            make_spec(required_samples=0)

    def test_duration_ordering(self):
        with pytest.raises(ConfigurationError):
            make_spec(min_duration_slots=5, max_duration_slots=3)

    def test_fraction_ordering(self):
        with pytest.raises(ConfigurationError):
            make_spec(min_traffic_fraction=0.6, max_traffic_fraction=0.5)

    def test_negative_start(self):
        with pytest.raises(ConfigurationError):
            make_spec(earliest_start=-1)


class TestSchedulingProblem:
    def test_duplicate_names_rejected(self, profile):
        with pytest.raises(ConfigurationError):
            SchedulingProblem(profile, [make_spec("a"), make_spec("a")])

    def test_unknown_preferred_group(self, profile):
        with pytest.raises(ConfigurationError):
            SchedulingProblem(
                profile, [make_spec(preferred_groups=frozenset({"mars"}))]
            )

    def test_start_beyond_horizon(self, profile):
        with pytest.raises(ConfigurationError):
            SchedulingProblem(profile, [make_spec(earliest_start=48)])

    def test_window_volume_matches_sum(self, profile):
        problem = SchedulingProblem(profile, [make_spec()])
        groups = frozenset({"eu"})
        manual = sum(problem.group_volume(s, groups) for s in range(3, 9))
        assert problem.window_volume(3, 9, groups) == pytest.approx(manual)

    def test_window_volume_clamps(self, profile):
        problem = SchedulingProblem(profile, [make_spec()])
        assert problem.window_volume(40, 100, frozenset({"eu"})) == pytest.approx(
            8 * 600.0
        )

    def test_group_share(self, profile):
        problem = SchedulingProblem(profile, [make_spec()])
        assert problem.group_share(frozenset({"eu", "na"})) == pytest.approx(1.0)

    def test_spec_lookup(self, profile):
        problem = SchedulingProblem(profile, [make_spec("a")])
        assert problem.spec("a").name == "a"
        with pytest.raises(ConfigurationError):
            problem.spec("z")


class TestGene:
    def test_end_and_slots(self):
        gene = Gene(3, 4, 0.2, frozenset({"eu"}))
        assert gene.end == 7
        assert list(gene.slots()) == [3, 4, 5, 6]

    def test_validation(self):
        with pytest.raises(ValidationError):
            Gene(-1, 1, 0.5, frozenset({"eu"}))
        with pytest.raises(ValidationError):
            Gene(0, 0, 0.5, frozenset({"eu"}))
        with pytest.raises(ValidationError):
            Gene(0, 1, 0.0, frozenset({"eu"}))
        with pytest.raises(ValidationError):
            Gene(0, 1, 0.5, frozenset())

    def test_with_helper(self):
        gene = Gene(0, 2, 0.1, frozenset({"eu"}))
        assert gene.with_(start=5).start == 5
        assert gene.start == 0


class TestSchedule:
    def test_gene_count_enforced(self, profile):
        problem = SchedulingProblem(profile, [make_spec("a"), make_spec("b")])
        with pytest.raises(ValidationError):
            Schedule(problem, [Gene(0, 2, 0.1, frozenset({"eu"}))])

    def test_samples_collected(self, profile):
        problem = SchedulingProblem(profile, [make_spec("a")])
        schedule = Schedule(problem, [Gene(0, 5, 0.2, frozenset({"eu"}))])
        # 5 slots * 1000 volume * 0.6 share * 0.2 fraction
        assert schedule.samples_collected(0) == pytest.approx(600.0)

    def test_samples_clamped_at_horizon(self, profile):
        problem = SchedulingProblem(profile, [make_spec("a")])
        schedule = Schedule(problem, [Gene(46, 10, 0.2, frozenset({"eu"}))])
        assert schedule.samples_collected(0) == pytest.approx(2 * 1000 * 0.6 * 0.2)

    def test_consumption_per_slot(self, profile):
        problem = SchedulingProblem(profile, [make_spec("a"), make_spec("b")])
        schedule = Schedule(
            problem,
            [
                Gene(0, 2, 0.5, frozenset({"eu"})),
                Gene(1, 2, 0.5, frozenset({"na"})),
            ],
        )
        consumption = schedule.consumption_per_slot()
        assert consumption[0] == pytest.approx(300.0)
        assert consumption[1] == pytest.approx(300.0 + 200.0)

    def test_group_usage_sums_fractions(self, profile):
        problem = SchedulingProblem(profile, [make_spec("a"), make_spec("b")])
        schedule = Schedule(
            problem,
            [
                Gene(0, 2, 0.4, frozenset({"eu"})),
                Gene(0, 1, 0.5, frozenset({"eu"})),
            ],
        )
        usage = schedule.group_usage()
        assert usage[(0, "eu")] == pytest.approx(0.9)
        assert usage[(1, "eu")] == pytest.approx(0.4)

    def test_replaced_does_not_mutate(self, profile):
        problem = SchedulingProblem(profile, [make_spec("a")])
        schedule = Schedule(problem, [Gene(0, 2, 0.1, frozenset({"eu"}))])
        other = schedule.replaced(0, Gene(5, 2, 0.1, frozenset({"eu"})))
        assert schedule.genes[0].start == 0
        assert other.genes[0].start == 5

    def test_gene_of(self, profile):
        problem = SchedulingProblem(profile, [make_spec("a")])
        schedule = Schedule(problem, [Gene(0, 2, 0.1, frozenset({"eu"}))])
        assert schedule.gene_of("a").start == 0
        with pytest.raises(ValidationError):
            schedule.gene_of("zz")
