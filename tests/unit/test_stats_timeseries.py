"""Unit tests for repro.stats.timeseries."""

import pytest

from repro.errors import StatisticsError
from repro.stats.timeseries import TimeSeries


class TestAppend:
    def test_in_order(self):
        series = TimeSeries("t")
        series.append(1.0, 10.0)
        series.append(2.0, 20.0)
        assert series.values == [10.0, 20.0]

    def test_out_of_order_sorts(self):
        series = TimeSeries()
        series.append(2.0, 20.0)
        series.append(1.0, 10.0)
        assert series.timestamps == [1.0, 2.0]
        assert series.values == [10.0, 20.0]

    def test_extend(self):
        series = TimeSeries()
        series.extend([(0.0, 1.0), (1.0, 2.0)])
        assert len(series) == 2

    def test_iteration_yields_pairs(self):
        series = TimeSeries()
        series.append(0.5, 5.0)
        assert list(series) == [(0.5, 5.0)]


class TestWindow:
    def test_half_open_interval(self):
        series = TimeSeries()
        for t in range(5):
            series.append(float(t), float(t) * 10)
        assert series.window(1.0, 3.0) == [10.0, 20.0]

    def test_empty_window(self):
        series = TimeSeries()
        series.append(1.0, 1.0)
        assert series.window(5.0, 6.0) == []

    def test_invalid_window(self):
        with pytest.raises(StatisticsError):
            TimeSeries().window(2.0, 1.0)

    def test_last_convenience(self):
        series = TimeSeries()
        for t in range(10):
            series.append(float(t), float(t))
        assert series.last(3.0, now=10.0) == [7.0, 8.0, 9.0]

    def test_start_boundary_included_end_excluded(self):
        series = TimeSeries()
        series.extend([(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)])
        # Half-open [start, end): exactly-on-start in, exactly-on-end out.
        assert series.window(1.0, 3.0) == [10.0, 20.0]
        assert series.window(3.0, 4.0) == [30.0]

    def test_adjacent_windows_partition_samples(self):
        series = TimeSeries()
        for t in range(8):
            series.append(float(t), float(t))
        lower = series.window(0.0, 4.0)
        upper = series.window(4.0, 8.0)
        assert lower + upper == series.values  # no loss, no double count

    def test_degenerate_window_is_empty(self):
        series = TimeSeries()
        series.append(2.0, 5.0)
        assert series.window(2.0, 2.0) == []

    def test_last_excludes_sample_at_now(self):
        series = TimeSeries()
        series.extend([(7.0, 7.0), (10.0, 99.0)])
        # last(d, now) is the half-open [now - d, now): the sample
        # stamped exactly `now` belongs to the *next* window.
        assert series.last(3.0, now=10.0) == [7.0]


class TestResample:
    def test_buckets_average(self):
        series = TimeSeries()
        series.extend([(0.0, 10.0), (0.5, 20.0), (1.2, 30.0)])
        buckets = series.resample(1.0)
        assert buckets[0] == (0.0, 15.0)
        assert buckets[1] == (1.0, 30.0)

    def test_empty_series(self):
        assert TimeSeries().resample(1.0) == []

    def test_invalid_bucket_width(self):
        with pytest.raises(StatisticsError):
            TimeSeries().resample(0.0)

    def test_gap_skips_empty_buckets(self):
        series = TimeSeries()
        series.extend([(0.0, 1.0), (5.0, 2.0)])
        buckets = series.resample(1.0)
        assert len(buckets) == 2
        assert buckets[1][0] == 5.0


class TestSummary:
    def test_summary_over_values(self):
        series = TimeSeries()
        series.extend([(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)])
        stats = series.summary()
        assert stats.count == 3
        assert stats.mean == 2.0
