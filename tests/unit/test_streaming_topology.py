"""Unit tests for the streaming topology pipeline (repro.topology.streaming)."""

import pytest

from repro.errors import ValidationError
from repro.telemetry.store import MetricStore
from repro.topology.builder import Observation, build_interaction_graph
from repro.topology.diff import diff_graphs
from repro.topology.graph import InteractionGraph, NodeKey
from repro.topology.streaming import (
    HEALTH_METRIC,
    HEALTH_VERSION,
    OVERALL_SERVICE,
    GraphWindowRing,
    HealthScorer,
    LiveHealthMonitor,
    LiveTopologyDiff,
    StreamingGraphBuilder,
    copy_graph,
    graphs_equal,
    merge_graph_into,
)
from repro.tracing.collector import TraceCollector
from repro.tracing.span import Span


def make_span(
    span_id,
    trace_id="t1",
    parent_id=None,
    service="frontend",
    version="1.0.0",
    endpoint="home",
    start=0.0,
    duration_ms=10.0,
    error=False,
    tags=None,
) -> Span:
    return Span(
        span_id=span_id,
        trace_id=trace_id,
        parent_id=parent_id,
        service=service,
        version=version,
        endpoint=endpoint,
        start=start,
        duration_ms=duration_ms,
        error=error,
        tags=tags or {},
    )


def trace_spans(trace_id, start=0.0, error=False, shadow=False):
    """A two-span frontend→backend trace starting at *start*."""
    tags = {"shadow": "true"} if shadow else {}
    return [
        make_span(f"{trace_id}-root", trace_id=trace_id, start=start),
        make_span(
            f"{trace_id}-child",
            trace_id=trace_id,
            parent_id=f"{trace_id}-root",
            service="backend",
            endpoint="api",
            start=start + 0.001,
            error=error,
            tags=tags,
        ),
    ]


def obs(start=0.0, duration_ms=10.0, error=False, callee_service="backend"):
    return Observation(
        NodeKey("frontend", "1.0.0", "home"),
        NodeKey(callee_service, "1.0.0", "api"),
        duration_ms,
        error,
        start,
    )


class TestGraphHelpers:
    def make_graph(self, latency=10.0, error=False):
        graph = InteractionGraph()
        graph.observe_call(
            None, NodeKey("a", "1.0.0", "ep"), latency, error
        )
        graph.observe_call(
            NodeKey("a", "1.0.0", "ep"), NodeKey("b", "1.0.0", "ep"), latency, error
        )
        return graph

    def test_merge_doubles_stats(self):
        graph = self.make_graph()
        merged = copy_graph(graph)
        merge_graph_into(merged, graph)
        assert merged.node_stats(NodeKey("a", "1.0.0", "ep")).calls == 2
        assert not graphs_equal(merged, graph)

    def test_copy_is_independent(self):
        graph = self.make_graph()
        clone = copy_graph(graph, name="clone")
        clone.observe_call(None, NodeKey("a", "1.0.0", "ep"), 5.0, False)
        assert graph.node_stats(NodeKey("a", "1.0.0", "ep")).calls == 1
        assert clone.node_stats(NodeKey("a", "1.0.0", "ep")).calls == 2

    def test_graphs_equal_detects_stat_differences(self):
        assert graphs_equal(self.make_graph(), self.make_graph())
        assert not graphs_equal(self.make_graph(), self.make_graph(latency=11.0))
        assert not graphs_equal(self.make_graph(), self.make_graph(error=True))

    def test_graphs_equal_detects_shape_differences(self):
        graph = self.make_graph()
        bigger = self.make_graph()
        bigger.observe_call(
            NodeKey("b", "1.0.0", "ep"), NodeKey("c", "1.0.0", "ep"), 1.0, False
        )
        assert not graphs_equal(graph, bigger)
        assert not graphs_equal(bigger, graph)


class TestGraphWindowRing:
    def test_assigns_half_open_windows(self):
        ring = GraphWindowRing(window_seconds=10.0)
        assert ring.index_of(0.0) == 0
        assert ring.index_of(9.999) == 0
        assert ring.index_of(10.0) == 1  # boundary goes to the next window

    def test_observations_bucket_by_start(self):
        ring = GraphWindowRing(window_seconds=10.0)
        ring.observe(obs(start=1.0))
        ring.observe(obs(start=15.0))
        assert ring.window_indexes == [0, 1]
        assert ring.window(0).node_stats(NodeKey("backend", "1.0.0", "api")).calls == 1

    def test_merged_equals_sum_of_windows(self):
        ring = GraphWindowRing(window_seconds=10.0)
        for start in (1.0, 5.0, 15.0, 25.0):
            ring.observe(obs(start=start))
        expected = InteractionGraph()
        for idx in ring.window_indexes:
            merge_graph_into(expected, ring.window(idx))
        assert graphs_equal(ring.merged(), expected)

    def test_capacity_expires_oldest_window(self):
        ring = GraphWindowRing(window_seconds=10.0, capacity=2)
        for start in (1.0, 11.0, 21.0):
            ring.observe(obs(start=start))
        assert ring.window_indexes == [1, 2]
        assert ring.expired_windows == 1
        # merged() rebuilds without the expired window.
        assert ring.merged().node_stats(NodeKey("backend", "1.0.0", "api")).calls == 2

    def test_late_observation_for_expired_window_dropped(self):
        ring = GraphWindowRing(window_seconds=10.0, capacity=2)
        for start in (1.0, 11.0, 21.0):
            ring.observe(obs(start=start))
        ring.observe(obs(start=2.0))  # window 0 already expired
        assert ring.late_observations_dropped == 1
        assert ring.merged().node_stats(NodeKey("backend", "1.0.0", "api")).calls == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            GraphWindowRing(window_seconds=0.0)
        with pytest.raises(ValidationError):
            GraphWindowRing(window_seconds=1.0, capacity=0)


class TestStreamingGraphBuilder:
    def test_matches_batch_builder(self):
        collector = TraceCollector()
        builder = StreamingGraphBuilder().attach(collector)
        for i in range(5):
            collector.record_all(
                trace_spans(f"t{i}", start=float(i), error=(i == 3))
            )
        batch = build_interaction_graph(collector.traces())
        assert graphs_equal(builder.graph, batch)
        assert builder.trace_count == 5

    def test_shadow_exclusion_matches_batch(self):
        collector = TraceCollector()
        builder = StreamingGraphBuilder(include_shadow=False).attach(collector)
        collector.record_all(trace_spans("t1", shadow=True))
        collector.record_all(trace_spans("t2"))
        batch = build_interaction_graph(collector.traces(), include_shadow=False)
        assert graphs_equal(builder.graph, batch)
        assert not builder.graph.has_node(("backend", "1.0.0", "api")) or (
            builder.graph.node_stats(NodeKey("backend", "1.0.0", "api")).calls == 1
        )

    def test_regrown_trace_applies_only_the_delta(self):
        collector = TraceCollector()
        builder = StreamingGraphBuilder().attach(collector)
        collector.record_all(trace_spans("t1"))
        # A late extra child arrives: the collector re-notifies with the
        # full trace; the builder must fold in only the new span.
        collector.record(
            make_span(
                "late",
                trace_id="t1",
                parent_id="t1-root",
                service="db",
                endpoint="query",
                start=0.002,
            )
        )
        batch = build_interaction_graph(collector.traces())
        assert graphs_equal(builder.graph, batch)
        assert builder.trace_count == 1

    def test_version_bumps_only_on_change(self):
        collector = TraceCollector()
        builder = StreamingGraphBuilder().attach(collector)
        collector.record_all(trace_spans("t1"))
        version = builder.version
        builder.on_trace(collector.trace("t1"))  # no new observations
        assert builder.version == version

    def test_eviction_releases_bookkeeping_but_keeps_stats(self):
        collector = TraceCollector(capacity=1)
        builder = StreamingGraphBuilder().attach(collector)
        collector.record_all(trace_spans("t1"))
        collector.record_all(trace_spans("t2", start=1.0))  # evicts t1
        assert "t1" not in builder._applied
        root = NodeKey("frontend", "1.0.0", "home")
        assert builder.graph.node_stats(root).calls == 2

    def test_subscribers_receive_trace_and_delta(self):
        collector = TraceCollector()
        builder = StreamingGraphBuilder().attach(collector)
        seen = []
        builder.subscribe(
            lambda trace, delta: seen.append((trace.trace_id, sum(delta.values())))
        )
        collector.record_all(trace_spans("t1"))
        assert seen == [("t1", 2)]

    def test_window_ring_wired_through(self):
        collector = TraceCollector()
        builder = StreamingGraphBuilder(window_seconds=10.0).attach(collector)
        collector.record_all(trace_spans("t1", start=1.0))
        collector.record_all(trace_spans("t2", start=15.0))
        assert builder.windows.window_indexes == [0, 1]
        assert graphs_equal(builder.windows.merged(), builder.graph)


class TestLiveTopologyDiff:
    def baseline_and_builder(self):
        baseline_collector = TraceCollector()
        for i in range(3):
            baseline_collector.record_all(trace_spans(f"b{i}", start=float(i)))
        baseline = build_interaction_graph(
            baseline_collector.traces(), name="baseline"
        )
        collector = TraceCollector()
        builder = StreamingGraphBuilder().attach(collector)
        return baseline, builder, collector

    def test_matches_batch_diff(self):
        baseline, builder, collector = self.baseline_and_builder()
        live = LiveTopologyDiff(baseline, builder)
        collector.record_all(trace_spans("t1"))
        collector.record_all(
            [
                make_span("r", trace_id="t2", start=2.0),
                make_span(
                    "c",
                    trace_id="t2",
                    parent_id="r",
                    service="backend",
                    version="2.0.0",
                    endpoint="api",
                    start=2.001,
                ),
            ]
        )
        batch = diff_graphs(baseline, builder.graph)
        current = live.current()
        assert {c.identity for c in current.changes} == {
            c.identity for c in batch.changes
        }
        assert [c.type for c in current.changes] == [c.type for c in batch.changes]

    def test_refresh_is_lazy(self):
        baseline, builder, collector = self.baseline_and_builder()
        live = LiveTopologyDiff(baseline, builder)
        collector.record_all(trace_spans("t1"))
        first = live.current()
        assert live.current() is first  # no new traces -> cached object
        assert live.refreshes == 1
        collector.record_all(trace_spans("t2", start=1.0))
        assert live.current() is not first
        assert live.refreshes == 2

    def test_use_windows_requires_ring(self):
        baseline, builder, _collector = self.baseline_and_builder()
        with pytest.raises(ValidationError):
            LiveTopologyDiff(baseline, builder, use_windows=True)

    def test_windowed_diff_uses_window_merge(self):
        baseline = InteractionGraph("baseline")
        collector = TraceCollector()
        builder = StreamingGraphBuilder(
            window_seconds=10.0, window_capacity=1
        ).attach(collector)
        live = LiveTopologyDiff(baseline, builder)
        collector.record_all(trace_spans("t1", start=1.0))
        collector.record_all(trace_spans("t2", start=15.0))  # expires window 0
        diff = live.current()
        root = NodeKey("frontend", "1.0.0", "home")
        assert diff.experimental.node_stats(root).calls == 1  # recency view


class TestHealthScorer:
    def traffic_graph(self, error_rate=0.0, latency=10.0, calls=50):
        graph = InteractionGraph()
        root = NodeKey("frontend", "1.0.0", "home")
        callee = NodeKey("backend", "1.0.0", "api")
        for i in range(calls):
            graph.observe_call(None, root, 2.0, False)
            graph.observe_call(
                root, callee, latency, error=(i < error_rate * calls)
            )
        return graph

    def test_identical_graphs_are_perfectly_healthy(self):
        base = self.traffic_graph()
        report = HealthScorer().report(diff_graphs(base, self.traffic_graph()))
        assert report.overall == pytest.approx(1.0)
        assert all(s == pytest.approx(1.0) for s in report.services.values())

    def test_error_injection_lowers_the_faulty_service(self):
        base = self.traffic_graph()
        sick = self.traffic_graph(error_rate=0.5)
        report = HealthScorer().report(diff_graphs(base, sick))
        assert report.services["backend"] < 0.7
        assert report.services["frontend"] == pytest.approx(1.0)

    def test_latency_regression_lowers_score(self):
        base = self.traffic_graph(latency=10.0)
        slow = self.traffic_graph(latency=25.0)
        report = HealthScorer().report(diff_graphs(base, slow))
        assert report.services["backend"] < 0.7
        assert report.components["backend"]["rt_ratio"] == pytest.approx(1.5)

    def test_overall_is_minimum_across_services(self):
        base = self.traffic_graph()
        sick = self.traffic_graph(error_rate=0.4)
        report = HealthScorer().report(diff_graphs(base, sick))
        assert report.overall == pytest.approx(min(report.services.values()))

    def test_empty_live_graph_reports_healthy(self):
        base = self.traffic_graph()
        report = HealthScorer().report(diff_graphs(base, InteractionGraph()))
        assert report.overall == 1.0
        assert report.services == {}

    def test_describe_mentions_every_service(self):
        base = self.traffic_graph()
        report = HealthScorer().report(diff_graphs(base, self.traffic_graph()))
        text = report.describe()
        assert "overall health" in text
        assert "backend" in text and "frontend" in text


class TestLiveHealthMonitor:
    def setup_monitor(self, publish_interval=5.0):
        baseline_collector = TraceCollector()
        for i in range(3):
            baseline_collector.record_all(trace_spans(f"b{i}", start=float(i)))
        baseline = build_interaction_graph(
            baseline_collector.traces(), name="baseline"
        )
        collector = TraceCollector()
        builder = StreamingGraphBuilder().attach(collector)
        store = MetricStore()
        monitor = LiveHealthMonitor(
            builder, baseline, store, publish_interval=publish_interval
        )
        return monitor, collector, store

    def test_publishes_per_service_and_overall(self):
        monitor, collector, store = self.setup_monitor(publish_interval=0.0)
        collector.record_all(trace_spans("t1", start=10.0))
        assert monitor.publishes == 1
        for service in ("frontend", "backend", OVERALL_SERVICE):
            values = store.values_in_window(
                service, HEALTH_VERSION, HEALTH_METRIC, 0.0, 100.0
            )
            assert len(values) == 1
            assert 0.0 <= values[0] <= 1.0

    def test_throttles_by_publish_interval(self):
        monitor, collector, _store = self.setup_monitor(publish_interval=5.0)
        collector.record_all(trace_spans("t1", start=10.0))
        collector.record_all(trace_spans("t2", start=11.0))  # within interval
        collector.record_all(trace_spans("t3", start=16.0))  # past interval
        assert monitor.publishes == 2

    def test_faulty_traffic_publishes_degraded_score(self):
        monitor, collector, store = self.setup_monitor(publish_interval=0.0)
        for i in range(10):
            collector.record_all(
                trace_spans(f"t{i}", start=10.0 + i, error=True)
            )
        values = store.values_in_window(
            "backend", HEALTH_VERSION, HEALTH_METRIC, 0.0, 100.0
        )
        assert min(values) < 0.8
        assert monitor.last_report is not None
        assert monitor.last_report.services["backend"] < 0.8

    def test_negative_interval_rejected(self):
        with pytest.raises(ValidationError):
            LiveHealthMonitor(
                StreamingGraphBuilder(),
                InteractionGraph(),
                MetricStore(),
                publish_interval=-1.0,
            )
