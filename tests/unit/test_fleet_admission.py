"""Unit tests for the per-slot admission controller."""

import pytest

from repro.errors import ValidationError
from repro.fleet.admission import (
    SHED_DEADLINE,
    SHED_STARVED,
    AdmissionController,
    AdmissionRequest,
    schedule_budget_violations,
    usage_within_budget,
)


def req(name, fraction=0.3, groups=("all",), **kwargs):
    return AdmissionRequest(name=name, fraction=fraction, groups=groups, **kwargs)


class TestRequestValidation:
    def test_fraction_bounds(self):
        with pytest.raises(ValidationError):
            req("a", fraction=0.0)
        with pytest.raises(ValidationError):
            req("a", fraction=1.5)

    def test_groups_required(self):
        with pytest.raises(ValidationError):
            req("a", groups=())

    def test_controller_validation(self):
        with pytest.raises(ValidationError):
            AdmissionController(())
        with pytest.raises(ValidationError):
            AdmissionController(("all",), budget=0.0)
        with pytest.raises(ValidationError):
            AdmissionController(("all",), max_defer=-1)

    def test_unknown_group_rejected(self):
        controller = AdmissionController(("all",))
        with pytest.raises(ValidationError):
            controller.decide(0, [req("a", groups=("ghost",))])


class TestDecide:
    def test_admits_within_budget(self):
        controller = AdmissionController(("all",))
        decision = controller.decide(0, [req("a", 0.4), req("b", 0.4)])
        assert decision.admitted == ("a", "b")
        assert decision.queued == ()
        assert decision.shed == ()
        assert dict(decision.usage)["all"] == pytest.approx(0.8)

    def test_queues_when_over_budget(self):
        controller = AdmissionController(("all",))
        decision = controller.decide(0, [req("a", 0.7), req("b", 0.7)])
        assert decision.admitted == ("a",)
        assert decision.queued == ("b",)
        assert usage_within_budget(dict(decision.usage))

    def test_weight_wins_then_name_breaks_ties(self):
        controller = AdmissionController(("all",))
        decision = controller.decide(
            0, [req("z", 0.7, weight=2.0), req("a", 0.7, weight=1.0)]
        )
        assert decision.admitted == ("z",)
        decision = controller.decide(0, [req("z", 0.7), req("a", 0.7)])
        assert decision.admitted == ("a",)

    def test_reserved_holders_count_against_budget(self):
        controller = AdmissionController(("all",))
        decision = controller.decide(
            3, [req("new", 0.5)], reserved=[req("old", 0.6)]
        )
        assert decision.admitted == ()
        assert decision.queued == ("new",)
        assert dict(decision.usage)["all"] == pytest.approx(0.6)

    def test_group_budgets_are_independent(self):
        controller = AdmissionController(("eu", "na"))
        decision = controller.decide(
            0, [req("a", 0.8, groups=("eu",)), req("b", 0.8, groups=("na",))]
        )
        assert decision.admitted == ("a", "b")

    def test_multi_group_request_must_fit_everywhere(self):
        controller = AdmissionController(("eu", "na"))
        decision = controller.decide(
            0,
            [req("a", 0.8, groups=("eu",), weight=2.0),
             req("b", 0.3, groups=("eu", "na"))],
        )
        # b fits in na but not in eu after a: it must queue.
        assert decision.admitted == ("a",)
        assert decision.queued == ("b",)

    def test_deadline_shed(self):
        controller = AdmissionController(("all",))
        decision = controller.decide(5, [req("late", latest_start=4)])
        assert decision.shed == (("late", SHED_DEADLINE),)
        assert decision.admitted == ()

    def test_starvation_shed(self):
        controller = AdmissionController(("all",), max_defer=2)
        decision = controller.decide(0, [req("hungry", deferrals=2)])
        assert decision.shed == (("hungry", SHED_STARVED),)

    def test_paused_queues_everything_but_still_sheds(self):
        controller = AdmissionController(("all",), max_defer=2)
        decision = controller.decide(
            3,
            [req("ok", 0.1), req("late", latest_start=2), req("hungry", deferrals=2)],
            paused=True,
        )
        assert decision.admitted == ()
        assert decision.queued == ("ok",)
        assert set(decision.shed) == {
            ("late", SHED_DEADLINE), ("hungry", SHED_STARVED),
        }

    def test_exact_budget_fit_admitted(self):
        controller = AdmissionController(("all",))
        decision = controller.decide(0, [req("a", 0.5), req("b", 0.5)])
        assert decision.admitted == ("a", "b")

    def test_order_independence(self):
        controller = AdmissionController(("all",))
        requests = [req("c", 0.4), req("a", 0.5, weight=2.0), req("b", 0.3)]
        forward = controller.decide(0, requests)
        backward = controller.decide(0, list(reversed(requests)))
        assert forward == backward


class TestHelpers:
    def test_usage_within_budget(self):
        assert usage_within_budget({"all": 1.0})
        assert not usage_within_budget({"all": 1.1})
        assert usage_within_budget([("eu", 0.5), ("na", 0.9)])

    def test_schedule_budget_violations(self):
        from repro.fenrir.model import ExperimentSpec, SchedulingProblem
        from repro.fenrir.schedule import Gene, Schedule
        from repro.traffic.profile import TrafficProfile, UserGroup

        profile = TrafficProfile([100.0] * 4, [UserGroup("all", 1.0)])
        specs = [
            ExperimentSpec(name="a", required_samples=10, max_traffic_fraction=1.0),
            ExperimentSpec(name="b", required_samples=10, max_traffic_fraction=1.0),
        ]
        genes = [
            Gene(0, 2, 0.7, frozenset({"all"})),
            Gene(1, 2, 0.7, frozenset({"all"})),
        ]
        schedule = Schedule(SchedulingProblem(profile, specs), genes)
        violations = schedule_budget_violations(schedule)
        assert violations == [(1, "all", pytest.approx(1.4))]
