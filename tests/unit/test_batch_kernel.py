"""Unit tests for the batch execution kernel's building blocks.

The scalar-vs-batch *equivalence* is covered by
``tests/property/test_batch_equivalence.py``; here we pin the individual
pieces: the ring buffer, the columnar append paths, bulk trace
ingestion, fast-path blocker detection, and trace-id bookkeeping.
"""

import random
from collections import deque

import pytest

from repro.bifrost import Bifrost
from repro.errors import ConfigurationError, StatisticsError
from repro.microservices.faults import (
    ErrorBurst,
    FaultCampaign,
    FaultInjector,
)
from repro.routing.rules import AudienceFilter, ExperimentRoute, Variant
from repro.simulation.batch import (
    BatchOptions,
    FloatRing,
    run_batches,
    slice_blockers,
)
from repro.stats.timeseries import TimeSeries
from repro.telemetry.store import MetricStore
from repro.tracing.collector import TraceCollector
from repro.tracing.span import Span, next_span_id
from repro.traffic.batch import BatchWorkloadGenerator
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation

from repro.topology.scenarios import sample_application


class TestFloatRing:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigurationError):
            FloatRing(0)
        with pytest.raises(ConfigurationError):
            FloatRing(-1)

    def test_fills_then_evicts_oldest(self):
        ring = FloatRing(3)
        ring.push(1.0)
        ring.push(2.0)
        assert ring.values().tolist() == [1.0, 2.0]
        ring.push(3.0)
        ring.push(4.0)
        assert ring.values().tolist() == [2.0, 3.0, 4.0]
        assert len(ring) == 3
        assert ring.total_pushed == 4

    def test_push_many_wraps_around(self):
        ring = FloatRing(5)
        ring.push_many([1.0, 2.0, 3.0, 4.0])
        ring.push_many([5.0, 6.0, 7.0])
        assert ring.values().tolist() == [3.0, 4.0, 5.0, 6.0, 7.0]

    def test_push_many_larger_than_capacity(self):
        ring = FloatRing(5)
        ring.push(0.0)
        ring.push_many(list(map(float, range(1, 12))))
        assert ring.values().tolist() == [7.0, 8.0, 9.0, 10.0, 11.0]
        assert ring.total_pushed == 12

    def test_matches_bounded_deque_reference(self):
        """Randomized cross-check: any interleaving of push/push_many
        retains exactly what a ``deque(maxlen=capacity)`` would."""
        rng = random.Random(1234)
        for capacity in (1, 2, 3, 7, 16):
            ring = FloatRing(capacity)
            reference: deque[float] = deque(maxlen=capacity)
            counter = 0.0
            for _ in range(200):
                if rng.random() < 0.5:
                    ring.push(counter)
                    reference.append(counter)
                    counter += 1.0
                else:
                    n = rng.randrange(0, 2 * capacity + 2)
                    chunk = [counter + i for i in range(n)]
                    counter += n
                    ring.push_many(chunk)
                    reference.extend(chunk)
                assert ring.values().tolist() == list(reference), (
                    f"capacity={capacity}"
                )


class TestExtendColumns:
    def _reference(self, samples):
        series = TimeSeries("ref")
        for ts, value in samples:
            series.append(ts, value)
        return list(series)

    def test_equivalent_to_appends(self):
        rng = random.Random(7)
        for _ in range(20):
            samples = [
                (round(rng.uniform(0, 50), 3), float(i)) for i in range(40)
            ]
            series = TimeSeries("col")
            series.extend_columns(
                [ts for ts, _ in samples], [v for _, v in samples]
            )
            assert list(series) == self._reference(samples)

    def test_out_of_order_prefix_against_existing_samples(self):
        """New chunk partially predating the existing tail: the prefix
        must insertion-sort, the rest bulk-append."""
        series = TimeSeries("col")
        series.append(10.0, 1.0)
        series.append(20.0, 2.0)
        series.extend_columns([5.0, 15.0, 25.0], [3.0, 4.0, 5.0])
        assert list(series) == self._reference(
            [(10.0, 1.0), (20.0, 2.0), (5.0, 3.0), (15.0, 4.0), (25.0, 5.0)]
        )

    def test_stable_for_equal_timestamps(self):
        series = TimeSeries("col")
        series.extend_columns([1.0, 1.0, 1.0], [1.0, 2.0, 3.0])
        assert series.values == [1.0, 2.0, 3.0]

    def test_rejects_mismatched_columns(self):
        with pytest.raises(StatisticsError):
            TimeSeries("col").extend_columns([1.0, 2.0], [1.0])

    def test_empty_columns_are_a_no_op(self):
        series = TimeSeries("col")
        series.extend_columns([], [])
        assert len(series) == 0

    def test_metric_store_columnar_matches_record(self):
        columnar, scalar = MetricStore(), MetricStore()
        samples = [(3.0, 1.0), (1.0, 2.0), (2.0, 3.0)]
        columnar.extend_columns(
            "svc", "1.0", "latency",
            [ts for ts, _ in samples], [v for _, v in samples],
        )
        for ts, value in samples:
            scalar.record("svc", "1.0", "latency", ts, value)
        assert columnar.snapshot() == scalar.snapshot()


def _make_trace(trace_id: str, n_spans: int = 2) -> list[Span]:
    root = Span(next_span_id(), trace_id, None, "svc", "1.0", "ep", 0.0, 5.0)
    spans = [root]
    for _ in range(n_spans - 1):
        spans.append(
            Span(
                next_span_id(), trace_id, root.span_id,
                "child", "1.0", "ep", 1.0, 2.0,
            )
        )
    return spans


class TestRecordTrace:
    def test_matches_record_all(self):
        bulk, scalar = TraceCollector(), TraceCollector()
        for trace_id in ("t1", "t2"):
            spans = _make_trace(trace_id)
            bulk.record_trace(trace_id, spans)
            scalar.record_all(spans)
        assert bulk.trace_ids == scalar.trace_ids
        for trace_id in bulk.trace_ids:
            assert bulk.trace(trace_id).spans == scalar.trace(trace_id).spans

    def test_capacity_eviction_and_tombstones(self):
        collector = TraceCollector(capacity=2)
        for trace_id in ("t1", "t2", "t3"):
            collector.record_trace(trace_id, _make_trace(trace_id))
        assert collector.trace_ids == ["t2", "t3"]
        assert collector.evicted_ids == ["t1"]
        # A late chunk for the evicted trace is dropped, not resurrected.
        collector.record_trace("t1", _make_trace("t1"))
        assert collector.trace_ids == ["t2", "t3"]
        assert collector.late_spans_dropped.value == 2

    def test_notifies_subscribers_once_per_trace(self):
        collector = TraceCollector()
        seen: list[str] = []
        collector.subscribe(lambda trace: seen.append(trace.trace_id))
        assert collector.has_subscribers
        collector.record_trace("t1", _make_trace("t1", n_spans=3))
        assert seen == ["t1"]

    def test_has_subscribers_defaults_false(self):
        assert not TraceCollector().has_subscribers


class TestSliceBlockers:
    def test_default_bifrost_is_fast(self):
        bifrost = Bifrost(sample_application(), seed=1)
        assert slice_blockers(bifrost.runtime, (), 0.0, False) == []
        assert bifrost.runtime.fast_path_blockers() == []

    def test_fault_campaign_blocks_only_while_active(self):
        bifrost = Bifrost(sample_application(), seed=1)
        campaign = FaultCampaign(FaultInjector(bifrost.application))
        campaign.add(
            ErrorBurst("catalog", "1.0.0", "list", 0.5, start=5.0, end=10.0)
        )
        campaigns = (campaign,)
        assert slice_blockers(bifrost.runtime, campaigns, 4.9, False) == []
        assert slice_blockers(bifrost.runtime, campaigns, 5.0, False) == [
            "fault-campaign"
        ]
        assert slice_blockers(bifrost.runtime, campaigns, 10.0, False) == []

    def test_collector_subscribers_block_unless_recording(self):
        bifrost = Bifrost(sample_application(), seed=1)
        bifrost.collector.subscribe(lambda trace: None)
        assert slice_blockers(bifrost.runtime, (), 0.0, False) == [
            "collector-subscribers"
        ]
        # record_traces=True feeds the subscribers, so no blocker.
        assert slice_blockers(bifrost.runtime, (), 0.0, True) == []

    def test_shadow_routes_and_header_audiences_block(self):
        bifrost = Bifrost(sample_application(), seed=1)
        bifrost.router.install(
            ExperimentRoute(
                experiment="shadow-exp",
                service="catalog",
                variants=(Variant("1.0.0", 1.0),),
                shadow_versions=("2.0.0",),
            )
        )
        assert slice_blockers(bifrost.runtime, (), 0.0, False) == [
            "shadow-route:catalog"
        ]
        bifrost.router.uninstall("catalog")
        bifrost.router.install(
            ExperimentRoute(
                experiment="header-exp",
                service="catalog",
                variants=(Variant("1.0.0", 1.0),),
                audience=AudienceFilter(headers={"beta": "1"}),
            )
        )
        assert slice_blockers(bifrost.runtime, (), 0.0, False) == [
            "header-audience:catalog"
        ]

    def test_unknown_router_and_network_block(self):
        bifrost = Bifrost(sample_application(), seed=1)
        runtime = bifrost.runtime
        original_router = runtime.router
        runtime.router = object()
        assert slice_blockers(runtime, (), 0.0, False) == ["custom-router"]
        runtime.router = original_router

        from repro.microservices.faults import NetworkState

        runtime.network = NetworkState()
        runtime.network.partition("frontend", "catalog")
        assert runtime.fast_path_blockers() == ["network-partitions"]
        runtime.network.heal_all()
        assert runtime.fast_path_blockers() == []


class TestTraceIdBookkeeping:
    def test_advance_skips_exactly_count_ids(self):
        bifrost = Bifrost(sample_application(), seed=1)
        runtime = bifrost.runtime
        first = runtime.next_trace_id()
        runtime.advance_trace_ids(3)
        after = runtime.next_trace_id()
        assert int(after[1:]) == int(first[1:]) + 4

    def test_advance_ignores_non_positive_counts(self):
        bifrost = Bifrost(sample_application(), seed=1)
        runtime = bifrost.runtime
        first = runtime.next_trace_id()
        runtime.advance_trace_ids(0)
        runtime.advance_trace_ids(-5)
        assert int(runtime.next_trace_id()[1:]) == int(first[1:]) + 1


class TestRunBatchesDriver:
    def test_empty_workload_with_until_advances_clock(self):
        bifrost = Bifrost(sample_application(), seed=1)
        result = run_batches(
            bifrost.simulation, bifrost.runtime, [], until=25.0
        )
        assert result.requests == 0
        assert bifrost.simulation.now == 25.0

    def test_fallback_reasons_count_stretches_not_chunks(self):
        # Regression (PR 9): a blocked stretch spanning several input
        # chunks used to increment fallback_reasons once *per chunk*,
        # inflating the diagnostic — "why did we fall back" reported the
        # same cause dozens of times for one contiguous stretch.
        bifrost = Bifrost(sample_application(), seed=1)
        campaign = FaultCampaign(FaultInjector(bifrost.application))
        campaign.add(
            ErrorBurst("catalog", "1.0.0", "list", 0.2, start=0.0, end=500.0)
        )
        bifrost.install_campaign(campaign)
        population = UserPopulation(50, DEFAULT_GROUPS, seed=1)
        generator = BatchWorkloadGenerator(
            population, entry="frontend.index", seed=3, batch_size=8
        )
        # 120 requests in chunks of 8 -> 15 chunks, all inside the fault
        # window, with no engine events between them: one stretch.
        result = bifrost.run_batches(generator.constant(0.25, 120))
        assert result.fallback_requests == 120
        assert result.fallback_slices == 1
        assert result.fallback_reasons["fault-campaign"] == 1

    def test_fallback_reasons_recount_after_fast_slice(self):
        # Distinct stretches (separated by traffic outside the fault
        # window, which takes the fast path) each count their reasons.
        bifrost = Bifrost(sample_application(), seed=1)
        campaign = FaultCampaign(FaultInjector(bifrost.application))
        campaign.add(
            ErrorBurst("catalog", "1.0.0", "list", 0.2, start=0.0, end=10.0)
        )
        campaign.add(
            ErrorBurst("catalog", "1.0.0", "list", 0.2, start=20.0, end=30.0)
        )
        bifrost.install_campaign(campaign)
        population = UserPopulation(50, DEFAULT_GROUPS, seed=1)
        generator = BatchWorkloadGenerator(
            population, entry="frontend.index", seed=3, batch_size=8
        )
        result = bifrost.run_batches(generator.constant(0.25, 160), until=40.0)
        assert result.fast_requests > 0
        assert result.fallback_requests > 0
        assert result.fallback_reasons["fault-campaign"] == result.fallback_slices
        assert result.fallback_slices >= 2

    def test_custom_ring_capacity(self):
        bifrost = Bifrost(sample_application(), seed=1)
        population = UserPopulation(50, DEFAULT_GROUPS, seed=1)
        generator = BatchWorkloadGenerator(
            population, entry="frontend.index", seed=3
        )
        result = bifrost.run_batches(
            generator.constant(0.1, 40),
            options=BatchOptions(ring_capacity=8),
        )
        assert result.requests == 40
        assert result.recent_durations.capacity == 8
        assert len(result.recent_durations) == 8
        assert result.mean_duration_ms > 0.0
        assert 0.0 <= result.error_rate <= 1.0
