"""Tests for remaining code paths across subsystems."""

import pytest

from repro.bifrost import Bifrost
from repro.bifrost.model import Phase, PhaseType, Strategy, StrategyOutcome, Check
from repro.microservices.service import ServiceVersion
from repro.simulation.executor import SimulatedExecutor
from repro.traffic.profile import UserGroup, flat_profile
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator
from tests.conftest import constant_endpoint

GROUPS = (UserGroup("eu", 0.6), UserGroup("na", 0.4))


class TestWorkloadFromProfile:
    def test_follows_profile_shape(self):
        # Two-slot profile: busy slot then quiet slot.
        profile = flat_profile(2, 3600.0, GROUPS)  # 1 req/s per slot
        population = UserPopulation(100, GROUPS, seed=1)
        generator = WorkloadGenerator(population, seed=2)
        requests = list(generator.from_profile(profile, scale=1.0))
        first_slot = [r for r in requests if r.timestamp < 3600.0]
        second_slot = [r for r in requests if r.timestamp >= 3600.0]
        assert 3000 <= len(first_slot) <= 4200
        assert 3000 <= len(second_slot) <= 4200

    def test_scale_reduces_volume(self):
        profile = flat_profile(1, 3600.0, GROUPS)
        population = UserPopulation(100, GROUPS, seed=1)
        full = len(list(
            WorkloadGenerator(population, seed=3).from_profile(profile, scale=1.0)
        ))
        tenth = len(list(
            WorkloadGenerator(population, seed=3).from_profile(profile, scale=0.1)
        ))
        assert tenth < full / 5

    def test_zero_volume_slots_skipped(self):
        from repro.traffic.profile import TrafficProfile

        profile = TrafficProfile([0.0, 3600.0], GROUPS)
        population = UserPopulation(50, GROUPS, seed=1)
        requests = list(
            WorkloadGenerator(population, seed=4).from_profile(profile)
        )
        assert all(r.timestamp >= 3600.0 for r in requests)


class TestExecutorSeries:
    def test_busy_bucket_saturates(self):
        executor = SimulatedExecutor()
        executor.submit(0.0, 1.0)  # fills bucket [0,1) completely
        executor.submit(5.0, 0.2)
        series = dict(executor.utilization_series(1.0))
        assert series[0.0] == pytest.approx(1.0)
        assert series[5.0] == pytest.approx(0.2)

    def test_work_spanning_buckets_distributed(self):
        executor = SimulatedExecutor()
        executor.submit(0.5, 1.0)  # busy 0.5..1.5
        series = dict(executor.utilization_series(1.0))
        assert series[0.5] == pytest.approx(0.5, abs=1e-9) or series.get(0.5)


class TestFrameworkAnalyzeOptions:
    def test_custom_heuristic_selected(self, canary_app):
        from repro.core.framework import ExperimentationFramework
        from repro.topology.heuristics import SubtreeComplexityHeuristic

        framework = ExperimentationFramework(canary_app, seed=5)
        population = UserPopulation(150, GROUPS, seed=6)
        workload = WorkloadGenerator(population, entry="frontend.home", seed=7)
        framework.bifrost.run(workload.poisson(20.0, 20.0), until=20.0)
        framework.bifrost.run(
            workload.poisson(20.0, 20.0, start=20.0), until=40.0
        )
        report = framework.analyze(
            (0.0, 20.0), (20.0, 40.0),
            heuristic=SubtreeComplexityHeuristic(),
        )
        assert report.heuristic == "SC"


class TestWinnerFollowThrough:
    def test_rollout_checks_follow_ab_winner(self, canary_app):
        """After the A/B picks 2.1.0, the rollout phase's checks written
        against 2.0.0 must evaluate 2.1.0 instead (and pass)."""
        canary_app.deploy(
            ServiceVersion(
                "backend", "2.1.0", {"api": constant_endpoint("api", 10.0)}
            )
        )
        ab = Phase(
            name="ab",
            type=PhaseType.AB_TEST,
            service="backend",
            stable_version="1.0.0",
            experimental_version="2.0.0",
            second_version="2.1.0",
            fraction=0.5,
            duration_seconds=40.0,
            check_interval_seconds=5.0,
            on_success="rollout",
        )
        rollout = Phase(
            name="rollout",
            type=PhaseType.GRADUAL_ROLLOUT,
            service="backend",
            stable_version="1.0.0",
            experimental_version="2.0.0",
            steps=(0.5, 1.0),
            duration_seconds=40.0,
            check_interval_seconds=5.0,
            checks=(
                Check(
                    name="errors",
                    service="backend",
                    version="2.0.0",  # written against the declared version
                    metric="error",
                    aggregation="mean",
                    operator="<=",
                    threshold=0.1,
                    window_seconds=20.0,
                ),
            ),
        )
        strategy = Strategy("s", (ab, rollout))
        bifrost = Bifrost(canary_app, seed=8)
        execution = bifrost.submit(strategy, at=1.0)
        population = UserPopulation(300, GROUPS, seed=9)
        workload = WorkloadGenerator(population, entry="frontend.home", seed=10)
        bifrost.run(workload.poisson(40.0, 100.0), until=120.0)
        assert execution.winner == "2.1.0"
        assert execution.outcome is StrategyOutcome.COMPLETED
        # The rollout's check log must show evaluations against 2.1.0.
        rollout_checks = [
            r for r in execution.check_log if r.check.version == "2.1.0"
        ]
        assert rollout_checks
        assert canary_app.stable_version("backend") == "2.1.0"


class TestVerificationReporting:
    def test_clean_report_describe(self, canary_app):
        from repro.verification import verify_strategy
        from tests.unit.test_verification import strategy_for

        report = verify_strategy(strategy_for(canary_app), canary_app)
        assert "no findings" in report.describe()

    def test_findings_listed_in_describe(self, canary_app):
        from repro.verification import verify_strategy
        from tests.unit.test_verification import strategy_for

        strategy = strategy_for(canary_app, experimental_version="9.9.9")
        report = verify_strategy(strategy, canary_app)
        text = report.describe()
        assert "version-not-deployed" in text
        assert "ERROR" in text
