"""Unit tests for the experimentation-as-code DSL."""

import pytest

from repro.errors import DSLError
from repro.bifrost.dsl import parse_strategy, strategy_to_dsl
from repro.bifrost.model import PhaseType

MINIMAL = """
strategy my-exp
  phase only
    type canary
    service svc
    stable 1.0.0
    experimental 2.0.0
    fraction 0.1
"""

FULL = """
strategy full-exp
  description "a full multi-phase strategy"
  phase canary
    type canary
    service svc
    stable 1.0.0
    experimental 2.0.0
    fraction 0.05
    duration 120
    interval 10
    groups eu, na
    min_samples 50
    check errors
      metric error
      aggregation mean
      operator <=
      threshold 0.02
      window 60
    check latency
      metric response_time
      aggregation p95
      operator <=
      baseline 1.0.0
      tolerance 1.3
      window 30
    on_success ab
    on_failure rollback
    on_inconclusive repeat
    max_repeats 2
  phase ab
    type ab_test
    service svc
    stable 1.0.0
    experimental 2.0.0
    second 2.1.0
    fraction 0.5
    duration 300
    winner_metric response_time
    winner_lower_is_better true
    on_success rollout
    on_failure rollback
  phase rollout
    type gradual_rollout
    service svc
    stable 1.0.0
    experimental 2.0.0
    steps 0.2, 0.5, 1.0
    duration 180
    on_success complete
    on_failure rollback
"""


class TestParsing:
    def test_minimal(self):
        strategy = parse_strategy(MINIMAL)
        assert strategy.name == "my-exp"
        assert len(strategy.phases) == 1
        assert strategy.entry.type is PhaseType.CANARY
        assert strategy.entry.on_success == "complete"

    def test_full_structure(self):
        strategy = parse_strategy(FULL)
        assert strategy.description == "a full multi-phase strategy"
        assert [p.name for p in strategy.phases] == ["canary", "ab", "rollout"]

    def test_checks_parsed(self):
        strategy = parse_strategy(FULL)
        canary = strategy.phase("canary")
        assert len(canary.checks) == 2
        errors = canary.checks[0]
        assert errors.metric == "error"
        assert errors.threshold == 0.02
        latency = canary.checks[1]
        assert latency.is_relative
        assert latency.tolerance == 1.3
        assert latency.version == "2.0.0"  # inherited from phase

    def test_groups_parsed(self):
        canary = parse_strategy(FULL).phase("canary")
        assert canary.audience_groups == frozenset({"eu", "na"})

    def test_steps_parsed(self):
        rollout = parse_strategy(FULL).phase("rollout")
        assert rollout.steps == (0.2, 0.5, 1.0)

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n" + MINIMAL + "\n# trailing comment\n"
        assert parse_strategy(text).name == "my-exp"

    def test_min_samples_and_repeats(self):
        canary = parse_strategy(FULL).phase("canary")
        assert canary.min_samples == 50
        assert canary.max_repeats == 2


HEALTH = """
strategy health-gated
  phase canary
    type canary
    service svc
    stable 1.0.0
    experimental 2.0.0
    fraction 0.1
    check live
      kind health
      threshold 0.85
      window 30
    check overall
      kind health
      service topology
      threshold 0.7
      window 30
"""


class TestHealthChecks:
    def test_kind_parsed_and_normalized(self):
        canary = parse_strategy(HEALTH).phase("canary")
        live = canary.checks[0]
        assert live.kind == "health"
        assert live.service == "svc"  # inherited from phase
        assert live.version == "live"
        assert live.metric == "health.score"

    def test_health_default_operator_is_gte(self):
        # Health scores are good-when-high, unlike latency/error metrics.
        canary = parse_strategy(HEALTH).phase("canary")
        assert canary.checks[0].operator == ">="
        assert parse_strategy(FULL).phase("canary").checks[0].operator == "<="

    def test_service_override_targets_overall_score(self):
        overall = parse_strategy(HEALTH).phase("canary").checks[1]
        assert overall.service == "topology"
        assert overall.threshold == 0.7

    def test_health_round_trip(self):
        strategy = parse_strategy(HEALTH)
        text = strategy_to_dsl(strategy)
        assert "kind health" in text
        assert "service topology" in text
        assert parse_strategy(text) == strategy


class TestParsingErrors:
    def test_empty(self):
        with pytest.raises(DSLError):
            parse_strategy("")

    def test_missing_header(self):
        with pytest.raises(DSLError):
            parse_strategy("  phase p\n    type canary\n")

    def test_unknown_phase_field(self):
        bad = MINIMAL + "    bogus 1\n"
        with pytest.raises(DSLError):
            parse_strategy(bad)

    def test_unknown_check_field(self):
        bad = MINIMAL + "    check c\n      bogus 1\n"
        with pytest.raises(DSLError):
            parse_strategy(bad)

    def test_unknown_type(self):
        bad = MINIMAL.replace("type canary", "type yolo")
        with pytest.raises(DSLError):
            parse_strategy(bad)

    def test_odd_indentation(self):
        with pytest.raises(DSLError):
            parse_strategy("strategy s\n   phase p\n")

    def test_check_outside_phase(self):
        with pytest.raises(DSLError):
            parse_strategy("strategy s\n  description x\n    check c\n")


class TestRoundTrip:
    def test_minimal_round_trip(self):
        strategy = parse_strategy(MINIMAL)
        again = parse_strategy(strategy_to_dsl(strategy))
        assert again == strategy

    def test_full_round_trip(self):
        strategy = parse_strategy(FULL)
        again = parse_strategy(strategy_to_dsl(strategy))
        assert again == strategy

    def test_serialization_contains_checks(self):
        text = strategy_to_dsl(parse_strategy(FULL))
        assert "check errors" in text
        assert "baseline 1.0.0" in text
