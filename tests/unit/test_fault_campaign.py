"""Unit tests for fault composition, single-fault reversal, and campaigns."""

import pytest

from repro.errors import ConfigurationError
from repro.microservices.faults import (
    EngineCrash,
    ErrorBurst,
    FaultCampaign,
    FaultInjector,
    LatencySpike,
    NetworkState,
    Partition,
    VersionCrash,
    _ScaledLatency,
)
from repro.simulation.engine import SimulationEngine
from repro.simulation.latency import ConstantLatency


class TestInjectorComposition:
    def test_double_degrade_composes_factors(self, tiny_app):
        injector = FaultInjector(tiny_app)
        injector.degrade("backend", "1.0.0", "api", latency_factor=2.0)
        injector.degrade("backend", "1.0.0", "api", latency_factor=3.0)
        spec = tiny_app.resolve("backend").endpoint("api")
        # One wrapper around the pristine model, never wrapper-on-wrapper.
        assert isinstance(spec.latency, _ScaledLatency)
        assert isinstance(spec.latency.base, ConstantLatency)
        assert spec.latency.factor == pytest.approx(6.0)

    def test_double_degrade_sums_error_rates(self, tiny_app):
        injector = FaultInjector(tiny_app)
        injector.degrade("backend", "1.0.0", "api", added_error_rate=0.4)
        injector.degrade("backend", "1.0.0", "api", added_error_rate=0.8)
        spec = tiny_app.resolve("backend").endpoint("api")
        assert spec.error_rate == pytest.approx(1.0)  # clamped

    def test_restore_single_fault(self, tiny_app):
        injector = FaultInjector(tiny_app)
        first = injector.degrade("backend", "1.0.0", "api", latency_factor=2.0)
        injector.degrade("backend", "1.0.0", "api", latency_factor=3.0)
        injector.restore(first)
        spec = tiny_app.resolve("backend").endpoint("api")
        assert spec.latency.factor == pytest.approx(3.0)
        assert len(injector.faults) == 1

    def test_restore_last_fault_recovers_pristine_spec(self, tiny_app):
        pristine = tiny_app.resolve("backend").endpoint("api")
        injector = FaultInjector(tiny_app)
        fault = injector.degrade("backend", "1.0.0", "api", latency_factor=5.0)
        injector.restore(fault)
        assert tiny_app.resolve("backend").endpoint("api") is pristine

    def test_restore_unknown_fault_rejected(self, tiny_app):
        injector = FaultInjector(tiny_app)
        fault = injector.degrade("backend", "1.0.0", "api", latency_factor=2.0)
        injector.restore(fault)
        with pytest.raises(ConfigurationError):
            injector.restore(fault)

    def test_restore_all_counts_and_recovers(self, tiny_app):
        injector = FaultInjector(tiny_app)
        injector.degrade("backend", "1.0.0", "api", latency_factor=2.0)
        injector.degrade("frontend", "1.0.0", "home", added_error_rate=0.2)
        assert injector.restore_all() == 2
        assert injector.faults == []
        assert tiny_app.resolve("backend").endpoint("api").error_rate == 0.0

    def test_degrade_preserves_parallel_calls_flag(self, tiny_app):
        version = tiny_app.resolve("frontend")
        spec = version.endpoint("home")
        version.endpoints["home"] = type(spec)(
            name=spec.name,
            latency=spec.latency,
            error_rate=spec.error_rate,
            calls=spec.calls,
            parallel_calls=True,
        )
        injector = FaultInjector(tiny_app)
        injector.degrade("frontend", "1.0.0", "home", latency_factor=2.0)
        assert tiny_app.resolve("frontend").endpoint("home").parallel_calls


class TestNetworkState:
    def test_partition_is_symmetric(self):
        network = NetworkState()
        network.partition("a", "b")
        assert network.is_partitioned("a", "b")
        assert network.is_partitioned("b", "a")
        assert not network.is_partitioned("a", "c")

    def test_heal(self):
        network = NetworkState()
        network.partition("a", "b")
        network.heal("b", "a")
        assert not network.is_partitioned("a", "b")

    def test_self_partition_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkState().partition("a", "a")

    def test_partitions_listing(self):
        network = NetworkState()
        network.partition("b", "a")
        network.partition("c", "d")
        assert network.partitions == [("a", "b"), ("c", "d")]


class TestFaultCampaign:
    def test_window_validation(self, tiny_app):
        campaign = FaultCampaign(FaultInjector(tiny_app))
        with pytest.raises(ConfigurationError):
            campaign.add(ErrorBurst("backend", "1.0.0", "api", 0.5, 10.0, 10.0))
        with pytest.raises(ConfigurationError):
            campaign.add(ErrorBurst("backend", "1.0.0", "api", 0.5, -1.0, 10.0))

    def test_partition_requires_network(self, tiny_app):
        campaign = FaultCampaign(FaultInjector(tiny_app))
        with pytest.raises(ConfigurationError):
            campaign.add(Partition("frontend", "backend", 0.0, 10.0))

    def test_error_burst_window(self, tiny_app):
        simulation = SimulationEngine()
        injector = FaultInjector(tiny_app)
        campaign = FaultCampaign(injector)
        campaign.add(ErrorBurst("backend", "1.0.0", "api", 0.5, 10.0, 20.0))
        assert campaign.install(simulation) == 2

        simulation.run_until(5.0)
        assert tiny_app.resolve("backend").endpoint("api").error_rate == 0.0
        simulation.run_until(15.0)
        assert tiny_app.resolve("backend").endpoint("api").error_rate == pytest.approx(0.5)
        simulation.run_until(25.0)
        assert tiny_app.resolve("backend").endpoint("api").error_rate == 0.0
        assert [e.action for e in campaign.log] == ["activate", "revert"]
        assert [e.time for e in campaign.log] == [10.0, 20.0]

    def test_latency_spike_window(self, tiny_app):
        simulation = SimulationEngine()
        campaign = FaultCampaign(FaultInjector(tiny_app))
        campaign.add(LatencySpike("backend", "1.0.0", "api", 4.0, 5.0, 8.0))
        campaign.install(simulation)
        simulation.run_until(6.0)
        assert tiny_app.resolve("backend").endpoint("api").latency.factor == 4.0
        simulation.run_until(9.0)
        assert isinstance(
            tiny_app.resolve("backend").endpoint("api").latency, ConstantLatency
        )

    def test_version_crash_hits_all_endpoints(self, canary_app):
        simulation = SimulationEngine()
        campaign = FaultCampaign(FaultInjector(canary_app))
        campaign.add(VersionCrash("backend", "2.0.0", 1.0, 3.0))
        campaign.install(simulation)
        simulation.run_until(2.0)
        assert canary_app.resolve("backend", "2.0.0").endpoint("api").error_rate == 1.0
        # The stable version is untouched.
        assert canary_app.resolve("backend", "1.0.0").endpoint("api").error_rate == 0.0
        simulation.run_until(4.0)
        assert canary_app.resolve("backend", "2.0.0").endpoint("api").error_rate == 0.0

    def test_partition_window(self, tiny_app):
        simulation = SimulationEngine()
        network = NetworkState()
        campaign = FaultCampaign(FaultInjector(tiny_app), network=network)
        campaign.add(Partition("frontend", "backend", 2.0, 4.0))
        campaign.install(simulation)
        simulation.run_until(3.0)
        assert network.is_partitioned("frontend", "backend")
        simulation.run_until(5.0)
        assert not network.is_partitioned("frontend", "backend")

    def test_overlapping_faults_compose(self, tiny_app):
        simulation = SimulationEngine()
        campaign = FaultCampaign(FaultInjector(tiny_app))
        campaign.add(LatencySpike("backend", "1.0.0", "api", 2.0, 0.0, 10.0))
        campaign.add(LatencySpike("backend", "1.0.0", "api", 3.0, 5.0, 15.0))
        campaign.install(simulation)
        simulation.run_until(7.0)
        assert tiny_app.resolve("backend").endpoint("api").latency.factor == pytest.approx(6.0)
        simulation.run_until(12.0)
        assert tiny_app.resolve("backend").endpoint("api").latency.factor == pytest.approx(3.0)
        simulation.run_until(20.0)
        assert isinstance(
            tiny_app.resolve("backend").endpoint("api").latency, ConstantLatency
        )

    def test_active_at(self, tiny_app):
        campaign = FaultCampaign(FaultInjector(tiny_app))
        burst = campaign.add(ErrorBurst("backend", "1.0.0", "api", 0.5, 10.0, 20.0))
        assert campaign.active_at(15.0) == [burst]
        assert campaign.active_at(25.0) == []

    def test_install_twice_rejected(self, tiny_app):
        simulation = SimulationEngine()
        campaign = FaultCampaign(FaultInjector(tiny_app))
        campaign.add(ErrorBurst("backend", "1.0.0", "api", 0.5, 1.0, 2.0))
        campaign.install(simulation)
        with pytest.raises(ConfigurationError):
            campaign.install(simulation)
        with pytest.raises(ConfigurationError):
            campaign.add(ErrorBurst("backend", "1.0.0", "api", 0.5, 3.0, 4.0))


class TestOverlappingFaultComposition:
    """Regression tests: nested windows, equal faults, LIFO unwinding."""

    def test_spike_inside_burst_unwinds_cleanly(self, tiny_app):
        # A latency spike nested entirely inside an error burst: the
        # spike's revert must peel off only the spike, and the burst's
        # revert must recover the pristine spec (object identity).
        pristine = tiny_app.resolve("backend").endpoint("api")
        simulation = SimulationEngine()
        campaign = FaultCampaign(FaultInjector(tiny_app))
        campaign.add(ErrorBurst("backend", "1.0.0", "api", 0.5, 5.0, 30.0))
        campaign.add(LatencySpike("backend", "1.0.0", "api", 4.0, 10.0, 20.0))
        campaign.install(simulation)

        simulation.run_until(15.0)
        spec = tiny_app.resolve("backend").endpoint("api")
        assert spec.error_rate == pytest.approx(0.5)
        assert spec.latency.factor == pytest.approx(4.0)

        simulation.run_until(25.0)
        spec = tiny_app.resolve("backend").endpoint("api")
        assert spec.error_rate == pytest.approx(0.5)
        assert isinstance(spec.latency, ConstantLatency)

        simulation.run_until(35.0)
        assert tiny_app.resolve("backend").endpoint("api") is pristine

    def test_equal_overlapping_spikes_restore_independently(self, tiny_app):
        # Two spikes with identical magnitude but staggered windows
        # produce *equal* fault records; each revert must remove its own
        # application, not whichever equal record sits first.
        simulation = SimulationEngine()
        campaign = FaultCampaign(FaultInjector(tiny_app))
        campaign.add(LatencySpike("backend", "1.0.0", "api", 3.0, 0.0, 10.0))
        campaign.add(LatencySpike("backend", "1.0.0", "api", 3.0, 5.0, 15.0))
        campaign.install(simulation)
        simulation.run_until(7.0)
        assert tiny_app.resolve("backend").endpoint("api").latency.factor == pytest.approx(9.0)
        simulation.run_until(12.0)
        assert tiny_app.resolve("backend").endpoint("api").latency.factor == pytest.approx(3.0)
        simulation.run_until(17.0)
        assert isinstance(
            tiny_app.resolve("backend").endpoint("api").latency, ConstantLatency
        )

    def test_equal_degrades_restore_by_identity(self, tiny_app):
        injector = FaultInjector(tiny_app)
        first = injector.degrade("backend", "1.0.0", "api", latency_factor=3.0)
        second = injector.degrade("backend", "1.0.0", "api", latency_factor=3.0)
        assert first == second and first is not second
        injector.restore(first)
        assert tiny_app.resolve("backend").endpoint("api").latency.factor == pytest.approx(3.0)
        injector.restore(second)
        assert isinstance(
            tiny_app.resolve("backend").endpoint("api").latency, ConstantLatency
        )
        with pytest.raises(ConfigurationError):
            injector.restore(second)

    def test_restore_all_unwinds_lifo(self, tiny_app):
        injector = FaultInjector(tiny_app)
        injector.degrade("backend", "1.0.0", "api", latency_factor=2.0)
        injector.degrade("backend", "1.0.0", "api", added_error_rate=0.3)
        injector.degrade("frontend", "1.0.0", "home", latency_factor=5.0)
        assert injector.restore_all() == 3
        assert injector.faults == []
        assert isinstance(
            tiny_app.resolve("backend").endpoint("api").latency, ConstantLatency
        )

    def test_redeploy_after_restore_is_recaptured(self, tiny_app):
        # Once all faults on an endpoint are restored the injector must
        # forget its cached pristine spec: a mid-experiment deploy may
        # replace the endpoint, and the *new* spec becomes the baseline
        # for later fault cycles.
        injector = FaultInjector(tiny_app)
        fault = injector.degrade("backend", "1.0.0", "api", latency_factor=2.0)
        injector.restore(fault)

        version = tiny_app.resolve("backend")
        redeployed = type(version.endpoint("api"))(
            name="api",
            latency=ConstantLatency(99.0),
            error_rate=0.0,
            calls=version.endpoint("api").calls,
        )
        version.endpoints["api"] = redeployed

        fault = injector.degrade("backend", "1.0.0", "api", latency_factor=3.0)
        assert version.endpoint("api").latency.base is redeployed.latency
        injector.restore(fault)
        assert version.endpoint("api") is redeployed


class _RecordingCrashTarget:
    """Minimal CrashTarget double recording the calls it receives."""

    def __init__(self):
        self.calls = []

    def crash(self, now):
        self.calls.append(("crash", now))

    def restart(self, now):
        self.calls.append(("restart", now))


class TestEngineCrashFault:
    def test_crash_and_restart_fire_on_window_bounds(self, tiny_app):
        simulation = SimulationEngine()
        target = _RecordingCrashTarget()
        campaign = FaultCampaign(FaultInjector(tiny_app), engine=target)
        campaign.add(EngineCrash(5.0, 9.0))
        campaign.install(simulation)
        simulation.run_until(6.0)
        assert target.calls == [("crash", 5.0)]
        simulation.run_until(10.0)
        assert target.calls == [("crash", 5.0), ("restart", 9.0)]

    def test_engine_crash_without_target_rejected_at_install(self, tiny_app):
        simulation = SimulationEngine()
        campaign = FaultCampaign(FaultInjector(tiny_app))
        campaign.add(EngineCrash(1.0, 2.0))  # add() accepts; wiring comes later
        with pytest.raises(ConfigurationError):
            campaign.install(simulation)

    def test_target_wired_after_add_is_accepted(self, tiny_app):
        simulation = SimulationEngine()
        campaign = FaultCampaign(FaultInjector(tiny_app))
        campaign.add(EngineCrash(1.0, 2.0))
        campaign.engine = _RecordingCrashTarget()
        assert campaign.install(simulation) == 2

    def test_window_validation_applies(self, tiny_app):
        campaign = FaultCampaign(FaultInjector(tiny_app))
        with pytest.raises(ConfigurationError):
            campaign.add(EngineCrash(5.0, 5.0))
        with pytest.raises(ConfigurationError):
            campaign.add(EngineCrash(-1.0, 5.0))

    def test_logged_like_other_faults(self, tiny_app):
        simulation = SimulationEngine()
        campaign = FaultCampaign(FaultInjector(tiny_app), engine=_RecordingCrashTarget())
        crash = campaign.add(EngineCrash(1.0, 2.0))
        campaign.install(simulation)
        simulation.run_until(3.0)
        assert [(e.action, e.fault) for e in campaign.log] == [
            ("activate", crash),
            ("revert", crash),
        ]
        assert campaign.active_at(1.5) == [crash]
