"""Unit tests for schedule reevaluation."""

import pytest

from repro.fenrir import Fenrir, GeneticAlgorithm, LocalSearch, reevaluate
from repro.fenrir.reevaluation import build_reevaluation, build_reevaluation_from_fleet
from tests.unit.test_fenrir_model import make_spec


@pytest.fixture
def running_schedule(profile):
    specs = [
        make_spec("done", required_samples=400, earliest_start=0),
        make_spec("running", required_samples=400, earliest_start=0),
        make_spec("future", required_samples=400, earliest_start=5),
        make_spec("doomed", required_samples=400, earliest_start=5),
    ]
    result = Fenrir(GeneticAlgorithm(population_size=12)).schedule(
        profile, specs, budget=500, seed=3
    )
    return result.schedule


def _now_between(schedule, running_name, future_name):
    """A slot where `running` is active but `future` hasn't started."""
    running = schedule.gene_of(running_name)
    return running.start + max(1, running.duration // 2)


class TestBuildReevaluation:
    def test_finished_dropped(self, running_schedule):
        done_gene = running_schedule.gene_of("done")
        now = done_gene.end + 1
        plan = build_reevaluation(running_schedule, now_slot=now)
        names = [s.name for s in plan.problem.experiments]
        if done_gene.end <= now:
            assert "done" not in names
            assert "done" in plan.finished

    def test_canceled_dropped(self, running_schedule):
        plan = build_reevaluation(
            running_schedule, now_slot=0, canceled={"doomed"}
        )
        names = [s.name for s in plan.problem.experiments]
        assert "doomed" not in names
        assert plan.canceled == ("doomed",)

    def test_running_locked_verbatim(self, running_schedule):
        running = running_schedule.gene_of("running")
        now = running.start + 1
        plan = build_reevaluation(running_schedule, now_slot=now)
        names = [s.name for s in plan.problem.experiments]
        if running.end > now:
            index = names.index("running")
            assert index in plan.locked
            assert plan.initial.genes[index] == running

    def test_new_experiments_added(self, running_schedule):
        new = [make_spec("fresh", required_samples=300)]
        plan = build_reevaluation(running_schedule, now_slot=2, new_experiments=new)
        names = [s.name for s in plan.problem.experiments]
        assert "fresh" in names
        assert plan.added == ("fresh",)

    def test_future_experiments_not_pushed_into_past(self, running_schedule):
        plan = build_reevaluation(running_schedule, now_slot=10)
        for index, spec in enumerate(plan.problem.experiments):
            if index not in plan.locked:
                assert spec.earliest_start >= 10


class TestReevaluate:
    def test_produces_valid_schedule(self, running_schedule):
        plan, result = reevaluate(
            running_schedule,
            now_slot=4,
            algorithm=GeneticAlgorithm(population_size=12),
            new_experiments=[make_spec("fresh", required_samples=300)],
            budget=500,
            seed=1,
        )
        assert result.best_evaluation.valid

    def test_locked_genes_survive_optimization(self, running_schedule):
        plan, result = reevaluate(
            running_schedule,
            now_slot=4,
            algorithm=LocalSearch(stall_limit=40),
            budget=300,
            seed=2,
        )
        for index in plan.locked:
            assert result.best_schedule.genes[index] == plan.initial.genes[index]

    def test_warm_started_search_at_least_as_good_as_initial(self, running_schedule):
        from repro.fenrir.fitness import evaluate

        plan, result = reevaluate(
            running_schedule,
            now_slot=4,
            algorithm=LocalSearch(stall_limit=40),
            budget=300,
            seed=3,
        )
        initial_eval = evaluate(plan.initial)
        assert result.best_evaluation.penalized >= initial_eval.penalized - 1e-9


class TestBuildReevaluationFromFleet:
    """Closing the loop with real fleet outcomes (PR 7)."""

    @pytest.fixture
    def fleet_schedule(self, profile):
        specs = [
            make_spec("won", required_samples=400, earliest_start=0),
            make_spec("lost", required_samples=400, earliest_start=0),
            make_spec("shed", required_samples=400, earliest_start=0),
            make_spec("murky", required_samples=400, earliest_start=0),
            make_spec("running", required_samples=400, earliest_start=0),
            make_spec("future", required_samples=400, earliest_start=5),
        ]
        result = Fenrir(GeneticAlgorithm(population_size=12)).schedule(
            profile, specs, budget=500, seed=7
        )
        return result.schedule

    def test_decided_outcomes_drop_out(self, fleet_schedule):
        plan = build_reevaluation_from_fleet(
            fleet_schedule,
            now_slot=4,
            outcomes={
                "won": "promoted",
                "lost": "rolled_back",
                "shed": "shed",
                "murky": "inconclusive",
            },
        )
        names = [s.name for s in plan.problem.experiments]
        assert "won" not in names
        assert "lost" not in names
        assert sorted(plan.finished) == ["lost", "won"]

    def test_undecided_outcomes_revived_from_now(self, fleet_schedule):
        now = 4
        plan = build_reevaluation_from_fleet(
            fleet_schedule,
            now_slot=now,
            outcomes={
                "won": "promoted",
                "shed": "shed",
                "murky": "inconclusive",
            },
        )
        names = [s.name for s in plan.problem.experiments]
        assert sorted(plan.revived) == ["murky", "shed"]
        for name in plan.revived:
            index = names.index(name)
            assert plan.problem.experiments[index].earliest_start >= now
            assert plan.initial.genes[index].start >= now
            # Revived experiments are re-planned, never locked.
            assert index not in plan.locked

    def test_absent_running_locked_absent_future_replanned(self, fleet_schedule):
        running = fleet_schedule.gene_of("running")
        now = running.start + 1
        plan = build_reevaluation_from_fleet(
            fleet_schedule, now_slot=now, outcomes={"won": "promoted"}
        )
        names = [s.name for s in plan.problem.experiments]
        if running.end > now:
            index = names.index("running")
            assert index in plan.locked
            assert plan.initial.genes[index] == running
        future_index = names.index("future")
        assert future_index not in plan.locked
        assert plan.initial.genes[future_index].start >= now

    def test_unknown_experiment_rejected(self, fleet_schedule):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            build_reevaluation_from_fleet(
                fleet_schedule, now_slot=1, outcomes={"ghost": "promoted"}
            )

    def test_unknown_outcome_rejected(self, fleet_schedule):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            build_reevaluation_from_fleet(
                fleet_schedule, now_slot=1, outcomes={"won": "exploded"}
            )

    def test_new_experiments_get_genes(self, fleet_schedule):
        plan = build_reevaluation_from_fleet(
            fleet_schedule,
            now_slot=2,
            outcomes={"won": "promoted"},
            new_experiments=[make_spec("fresh", required_samples=300)],
        )
        names = [s.name for s in plan.problem.experiments]
        assert "fresh" in names
        assert len(plan.initial.genes) == len(names)

    def test_feeds_reoptimization(self, fleet_schedule):
        plan = build_reevaluation_from_fleet(
            fleet_schedule,
            now_slot=3,
            outcomes={"won": "promoted", "shed": "shed"},
        )
        result = LocalSearch(stall_limit=40).optimize(
            plan.problem,
            budget=300,
            seed=5,
            initial=plan.initial,
            locked=plan.locked,
        )
        assert result.best_evaluation is not None
        for index in plan.locked:
            assert result.best_schedule.genes[index] == plan.initial.genes[index]
