"""Unit tests for the fleet orchestrator: bulkheads, admission, sheds."""

import pytest

from repro.errors import ValidationError
from repro.fenrir.model import ExperimentSpec, SchedulingProblem
from repro.fenrir.reevaluation import build_reevaluation_from_fleet
from repro.fenrir.schedule import Gene, Schedule
from repro.fleet import (
    OUTCOME_INCONCLUSIVE,
    OUTCOME_PROMOTED,
    OUTCOME_ROLLED_BACK,
    OUTCOME_SHED,
    SHED_CRASH_LOOP,
    SHED_HEALTH,
    SHED_STARVED,
    ExperimentFaults,
    FleetConfig,
    FleetOrchestrator,
    FleetWatchdog,
    fleet_outcomes_for_reevaluation,
    usage_within_budget,
)
from repro.traffic.profile import TrafficProfile, UserGroup

ALL = frozenset({"all"})


def make_schedule(
    n=4,
    duration=2,
    fraction=0.1,
    wave=4,
    horizon=None,
    looper=None,
    looper_duration=None,
    starts=None,
):
    """Back-to-back waves of *wave* experiments, one group, fixed volume."""
    waves = (n + wave - 1) // wave
    tail = looper_duration or duration
    horizon = horizon or waves * duration + tail + 2
    profile = TrafficProfile([40_000.0] * horizon, [UserGroup("all", 1.0)])
    specs = [
        ExperimentSpec(
            name=f"exp{i}",
            required_samples=100.0,
            min_traffic_fraction=0.01,
            max_traffic_fraction=1.0,
            max_duration_slots=horizon,
        )
        for i in range(n)
    ]
    genes = [
        Gene(
            start=starts[i] if starts else (i // wave) * duration,
            duration=looper_duration if i == looper else duration,
            fraction=fraction,
            groups=ALL,
        )
        for i in range(n)
    ]
    return Schedule(SchedulingProblem(profile, specs), genes)


def fast_config(**overrides):
    # base_error=0 keeps healthy experiments deterministic: the error
    # gate only trips on injected world deltas, never on ambient noise.
    defaults = dict(
        slot_seconds=30.0, check_interval_seconds=10.0, base_error=0.0, seed=3
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestHealthyFleet:
    def test_all_promote(self):
        result = FleetOrchestrator(make_schedule(4), config=fast_config()).run()
        assert set(result.outcomes) == {"exp0", "exp1", "exp2", "exp3"}
        assert all(o == OUTCOME_PROMOTED for o in result.outcomes.values())
        assert not result.aborted
        assert result.sheds == {}

    def test_every_slot_within_budget(self):
        result = FleetOrchestrator(make_schedule(6), config=fast_config()).run()
        for row in result.ledger:
            assert usage_within_budget(dict(row.usage))

    def test_fleet_wal_structure(self):
        from repro.fleet.orchestrator import K_FINISHED, K_PLANNED, K_SLOT

        orchestrator = FleetOrchestrator(make_schedule(2), config=fast_config())
        orchestrator.run()
        kinds = [r.kind for r in orchestrator.journal.load()[0]]
        assert kinds[0] == K_PLANNED
        assert kinds[-1] == K_FINISHED
        commits = [k for k in kinds if k == K_SLOT]
        assert len(commits) == orchestrator.cursor

    def test_bad_experiment_rolls_back_alone(self):
        result = FleetOrchestrator(
            make_schedule(4),
            world={"exp1": 0.4},
            config=fast_config(),
        ).run()
        assert result.outcomes["exp1"] == OUTCOME_ROLLED_BACK
        for name in ("exp0", "exp2", "exp3"):
            assert result.outcomes[name] == OUTCOME_PROMOTED


class TestValidation:
    def test_config_rejects_bad_parameters(self):
        for bad in (
            dict(slot_seconds=0.0),
            dict(grace_slots=-1),
            dict(budget=0.0),
            dict(max_defer_slots=-1),
            dict(check_interval_seconds=0.0),
            dict(check_window_seconds=-1.0),
            dict(max_repeats=-1),
            dict(restart_max=-1),
        ):
            with pytest.raises(ValidationError):
                FleetConfig(**bad)

    def test_unknown_world_name_rejected(self):
        with pytest.raises(ValidationError):
            FleetOrchestrator(
                make_schedule(2), world={"ghost": 0.5}, config=fast_config()
            )

    def test_unknown_faults_name_rejected(self):
        with pytest.raises(ValidationError):
            FleetOrchestrator(
                make_schedule(2),
                faults={"ghost": ExperimentFaults(crash_loop=True)},
                config=fast_config(),
            )


class TestBulkheads:
    def test_check_errors_absorbed_without_contamination(self):
        schedule = make_schedule(3)
        # Every evaluation errors: each round degrades to inconclusive,
        # the repeat budget drains, and the engine falls back to a safe
        # rollback — all inside exp1's bulkhead.
        faults = {"exp1": ExperimentFaults(check_error_slots=tuple(range(16)))}
        result = FleetOrchestrator(
            schedule, faults=faults, config=fast_config()
        ).run()
        assert result.outcomes["exp1"] == OUTCOME_ROLLED_BACK
        assert result.outcomes["exp0"] == OUTCOME_PROMOTED
        assert result.outcomes["exp2"] == OUTCOME_PROMOTED
        assert not result.aborted

    def test_poison_quarantined_inside_bulkhead(self):
        schedule = make_schedule(3)
        faults = {"exp1": ExperimentFaults(poison_slots=(0, 1))}
        result = FleetOrchestrator(
            schedule, faults=faults, config=fast_config()
        ).run()
        assert result.outcomes["exp1"] == OUTCOME_INCONCLUSIVE
        assert result.outcomes["exp0"] == OUTCOME_PROMOTED
        failed = [pair for row in result.ledger for pair in row.failed]
        assert any(name == "exp1" and "FleetPoison" in err for name, err in failed)
        assert not result.aborted

    def test_poison_without_bulkheads_aborts_fleet(self):
        schedule = make_schedule(3)
        faults = {"exp1": ExperimentFaults(poison_slots=(0, 1))}
        result = FleetOrchestrator(
            schedule, faults=faults, config=fast_config(bulkheads=False)
        ).run()
        assert result.aborted
        # The whole fleet is collateral damage — the designed contamination.
        assert all(o == OUTCOME_INCONCLUSIVE for o in result.outcomes.values())

    def test_crash_restart_still_decides(self):
        schedule = make_schedule(3)
        faults = {"exp0": ExperimentFaults(crash_slots=(0,))}
        result = FleetOrchestrator(
            schedule, faults=faults, config=fast_config()
        ).run()
        assert result.restarts.get("exp0") == 1
        assert result.outcomes["exp0"] in (
            OUTCOME_PROMOTED, OUTCOME_ROLLED_BACK, OUTCOME_INCONCLUSIVE,
        )
        assert result.outcomes["exp1"] == OUTCOME_PROMOTED

    def test_crash_loop_exhausts_budget_then_sheds(self):
        schedule = make_schedule(2, looper=0, looper_duration=6)
        faults = {"exp0": ExperimentFaults(crash_loop=True)}
        result = FleetOrchestrator(
            schedule, faults=faults, config=fast_config(restart_max=2)
        ).run()
        assert result.outcomes["exp0"] == OUTCOME_SHED
        assert result.sheds["exp0"] == SHED_CRASH_LOOP
        assert result.restarts["exp0"] == 2
        assert result.outcomes["exp1"] == OUTCOME_PROMOTED


class TestAdmission:
    def test_contended_start_queued_then_admitted(self):
        # Both want slot 0 at 0.7: one must wait for the other to finish.
        schedule = make_schedule(2, fraction=0.7, starts=[0, 0], horizon=12)
        result = FleetOrchestrator(schedule, config=fast_config()).run()
        first = result.ledger[0]
        assert first.started == ("exp0",)
        assert first.queued == ("exp1",)
        later_starts = [row.slot for row in result.ledger if "exp1" in row.started]
        assert later_starts and later_starts[0] >= 2
        assert result.outcomes["exp1"] == OUTCOME_PROMOTED

    def test_starved_experiment_shed_with_reason(self):
        # exp0 holds 0.7 for 6 slots; exp1 can defer only once.
        schedule = make_schedule(
            2, fraction=0.7, starts=[0, 0], looper=0, looper_duration=6,
            horizon=12,
        )
        result = FleetOrchestrator(
            schedule, config=fast_config(max_defer_slots=1)
        ).run()
        assert result.outcomes["exp1"] == OUTCOME_SHED
        assert result.sheds["exp1"] == SHED_STARVED

    def test_shed_never_silent(self):
        schedule = make_schedule(
            2, fraction=0.7, starts=[0, 0], looper=0, looper_duration=6,
            horizon=12,
        )
        result = FleetOrchestrator(
            schedule, config=fast_config(max_defer_slots=1)
        ).run()
        ledger_sheds = {n for row in result.ledger for n, _ in row.shed}
        assert set(result.sheds) == ledger_sheds
        assert set(result.outcomes) == {"exp0", "exp1"}


class TestWatchdog:
    def test_health_collapse_sheds_running_holders(self):
        # Healthy long enough to admit, then collapse: holders are shed
        # one per slot, lowest weight (then name) first.
        scores = iter([1.0])  # healthy once, then collapsed

        watchdog = FleetWatchdog(health_of=lambda: next(scores, 0.1))
        result = FleetOrchestrator(
            make_schedule(2), config=fast_config(), watchdog=watchdog
        ).run()
        assert result.sheds.get("exp0") == SHED_HEALTH
        assert all(o == OUTCOME_SHED for o in result.outcomes.values()) or (
            result.outcomes["exp0"] == OUTCOME_SHED
        )

    def test_degraded_health_pauses_admission(self):
        watchdog = FleetWatchdog(health_of=lambda: 0.5)
        result = FleetOrchestrator(
            make_schedule(2), config=fast_config(max_defer_slots=2),
            watchdog=watchdog,
        ).run()
        # Nothing is ever admitted; starvation shedding still reports.
        assert all(row.started == () for row in result.ledger)
        assert all(reason == SHED_STARVED for reason in result.sheds.values())
        assert set(result.outcomes) == {"exp0", "exp1"}

    def test_healthy_score_changes_nothing(self):
        watchdog = FleetWatchdog(health_of=lambda: 1.0)
        result = FleetOrchestrator(
            make_schedule(2), config=fast_config(), watchdog=watchdog
        ).run()
        assert all(o == OUTCOME_PROMOTED for o in result.outcomes.values())


class TestReevaluationLoop:
    def test_fleet_outcomes_feed_replanning(self):
        schedule = make_schedule(3, looper=0, looper_duration=6)
        faults = {"exp0": ExperimentFaults(crash_loop=True)}
        result = FleetOrchestrator(
            schedule, faults=faults, config=fast_config(restart_max=2)
        ).run()
        outcomes = fleet_outcomes_for_reevaluation(result)
        plan = build_reevaluation_from_fleet(
            schedule, now_slot=result.slots_run - 1, outcomes=outcomes
        )
        assert "exp0" in plan.revived
        assert sorted(plan.finished) == ["exp1", "exp2"]


class TestResultDigest:
    def test_digest_excludes_recovered_flag(self):
        import dataclasses

        result = FleetOrchestrator(make_schedule(2), config=fast_config()).run()
        twin = dataclasses.replace(result, recovered=True)
        assert result.digest() == twin.digest()

    def test_identical_runs_identical_digests(self):
        a = FleetOrchestrator(make_schedule(3), config=fast_config()).run()
        b = FleetOrchestrator(make_schedule(3), config=fast_config()).run()
        assert a.digest() == b.digest()
