"""Unit tests for the write-ahead journal and snapshot layer."""

import json

import pytest

from repro.bifrost.engine import StrategyExecution
from repro.bifrost.journal import (
    SCHEMA_VERSION,
    FileJournalStorage,
    Journal,
    JournalRecord,
    MemoryJournalStorage,
    Snapshot,
    SnapshotPolicy,
    SnapshotStore,
    decode_record,
    encode_record,
    execution_from_dict,
    execution_to_dict,
    snapshot_from_dict,
    snapshot_to_dict,
)
from repro.bifrost.model import Check, Phase, PhaseType, Strategy, StrategyOutcome
from repro.bifrost.state_machine import StateMachine
from repro.errors import ValidationError


def canary_strategy() -> Strategy:
    """A one-phase canary with a single error check."""
    return Strategy(
        "canary-strategy",
        (
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="backend",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.3,
                duration_seconds=60.0,
                check_interval_seconds=5.0,
                checks=(
                    Check(
                        name="errors",
                        service="backend",
                        version="2.0.0",
                        metric="error",
                        threshold=0.05,
                        window_seconds=20.0,
                    ),
                ),
            ),
        ),
    )


class TestRecordCodec:
    def test_round_trip(self):
        record = JournalRecord(3, "tick", 12.5, {"strategy": "s", "checks": []})
        assert decode_record(encode_record(record)) == record

    def test_garbage_rejected(self):
        with pytest.raises(ValidationError):
            decode_record('{"torn": tru')

    def test_missing_fields_rejected(self):
        with pytest.raises(ValidationError):
            decode_record(json.dumps({"v": SCHEMA_VERSION, "lsn": 1}))

    def test_newer_schema_rejected(self):
        line = json.dumps(
            {"v": SCHEMA_VERSION + 1, "lsn": 1, "kind": "tick", "time": 0, "data": {}}
        )
        with pytest.raises(ValidationError):
            decode_record(line)


class TestJournal:
    def test_append_assigns_monotonic_lsns(self):
        journal = Journal()
        first = journal.append("submitted", 0.0, {"a": 1})
        second = journal.append("tick", 1.0, {"b": 2})
        assert (first.lsn, second.lsn) == (1, 2)
        assert journal.last_lsn == 2

    def test_load_round_trip(self):
        journal = Journal()
        journal.append("submitted", 0.0, {"a": 1})
        journal.append("tick", 1.0, {"b": 2})
        records, dropped = journal.load()
        assert [r.kind for r in records] == ["submitted", "tick"]
        assert dropped == 0

    def test_corrupt_tail_dropped(self):
        storage = MemoryJournalStorage()
        journal = Journal(storage)
        journal.append("submitted", 0.0, {})
        journal.append("tick", 1.0, {})
        storage.lines[-1] = storage.lines[-1][: len(storage.lines[-1]) // 2]
        records, dropped = journal.load()
        assert [r.kind for r in records] == ["submitted"]
        assert dropped == 1

    def test_corruption_in_middle_drops_rest(self):
        storage = MemoryJournalStorage()
        journal = Journal(storage)
        for i in range(4):
            journal.append("tick", float(i), {})
        storage.lines[1] = "garbage"
        records, dropped = journal.load()
        assert len(records) == 1
        assert dropped == 3

    def test_non_monotonic_lsn_treated_as_corruption(self):
        storage = MemoryJournalStorage()
        journal = Journal(storage)
        journal.append("tick", 0.0, {})
        storage.lines.append(storage.lines[0])  # duplicated LSN
        records, dropped = journal.load()
        assert len(records) == 1
        assert dropped == 1

    def test_truncate_corrupt_tail_repairs_storage(self):
        storage = MemoryJournalStorage()
        journal = Journal(storage)
        journal.append("submitted", 0.0, {})
        journal.append("tick", 1.0, {})
        storage.lines[-1] = storage.lines[-1][: len(storage.lines[-1]) // 2]
        assert journal.truncate_corrupt_tail() == 1
        # Appends after the repair stay reachable on the next load.
        journal.append("tick", 2.0, {})
        records, dropped = journal.load()
        assert [r.kind for r in records] == ["submitted", "tick"]
        assert dropped == 0
        assert [r.lsn for r in records] == [1, 2]

    def test_truncate_corrupt_tail_noop_when_clean(self):
        journal = Journal()
        journal.append("tick", 0.0, {})
        assert journal.truncate_corrupt_tail() == 0
        assert len(journal.records()) == 1

    def test_records_after(self):
        journal = Journal()
        journal.append("submitted", 0.0, {})
        journal.append("tick", 1.0, {})
        journal.append("tick", 2.0, {})
        records, _ = journal.records_after(1)
        assert [r.lsn for r in records] == [2, 3]

    def test_compact_keeps_lsn_counter(self):
        journal = Journal()
        for i in range(5):
            journal.append("tick", float(i), {})
        removed = journal.compact(3)
        assert removed == 3
        assert [r.lsn for r in journal.records()] == [4, 5]
        assert journal.append("tick", 9.0, {}).lsn == 6

    def test_reopening_storage_resumes_lsns(self):
        storage = MemoryJournalStorage()
        Journal(storage).append("tick", 0.0, {})
        reopened = Journal(storage)
        assert reopened.append("tick", 1.0, {}).lsn == 2


class TestFileJournalStorage:
    def test_append_and_read(self, tmp_path):
        storage = FileJournalStorage(str(tmp_path / "wal.jsonl"))
        journal = Journal(storage)
        journal.append("submitted", 0.0, {"a": 1})
        journal.append("tick", 1.0, {})
        reopened = Journal(FileJournalStorage(str(tmp_path / "wal.jsonl")))
        assert [r.kind for r in reopened.records()] == ["submitted", "tick"]

    def test_missing_file_is_empty(self, tmp_path):
        storage = FileJournalStorage(str(tmp_path / "absent.jsonl"))
        assert storage.read_lines() == []

    def test_rewrite_for_compaction(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        journal = Journal(FileJournalStorage(path))
        for i in range(4):
            journal.append("tick", float(i), {})
        journal.compact(2)
        assert [r.lsn for r in Journal(FileJournalStorage(path)).records()] == [3, 4]

    def test_torn_file_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        journal = Journal(FileJournalStorage(path))
        journal.append("submitted", 0.0, {})
        journal.append("tick", 1.0, {})
        with open(path, "r+", encoding="utf-8") as handle:
            content = handle.read()
            handle.seek(0)
            handle.truncate()
            handle.write(content[:-20])
        records, dropped = Journal(FileJournalStorage(path)).load()
        assert [r.kind for r in records] == ["submitted"]
        assert dropped == 1


class TestSnapshotStore:
    def test_snapshot_due_after_policy_records(self):
        store = SnapshotStore(SnapshotPolicy(every_records=3))
        assert [store.note_append() for _ in range(3)] == [False, False, True]

    def test_zero_period_disables(self):
        store = SnapshotStore(SnapshotPolicy(every_records=0))
        assert not any(store.note_append() for _ in range(100))

    def test_save_resets_counter(self):
        store = SnapshotStore(SnapshotPolicy(every_records=2))
        store.note_append()
        store.note_append()
        snapshot = Snapshot(SCHEMA_VERSION, 0.0, 2, (), None, None, ())
        store.save(snapshot)
        assert store.latest is snapshot
        assert store.taken == 1
        assert store.note_append() is False

    def test_snapshot_dict_round_trip(self):
        snapshot = Snapshot(
            SCHEMA_VERSION, 5.0, 7, ({"x": 1},), {"series": []}, None, ()
        )
        assert snapshot_from_dict(snapshot_to_dict(snapshot)) == snapshot

    def test_newer_snapshot_schema_rejected(self):
        document = snapshot_to_dict(
            Snapshot(SCHEMA_VERSION, 0.0, 0, (), None, None, ())
        )
        document["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValidationError):
            snapshot_from_dict(document)

    def test_malformed_snapshot_rejected(self):
        with pytest.raises(ValidationError):
            snapshot_from_dict({"schema_version": SCHEMA_VERSION})


class TestExecutionSerialization:
    def make_execution(self) -> StrategyExecution:
        strategy = canary_strategy()
        return StrategyExecution(
            strategy=strategy,
            machine=StateMachine(strategy),
            state=strategy.entry.name,
            started_at=1.0,
            phase_started_at=1.0,
            phase_entries=1,
            last_tick_at=11.0,
        )

    def test_round_trip_preserves_every_field(self):
        execution = self.make_execution()
        execution.repeats["canary"] = 1
        execution.phase_first_entered["canary"] = 1.0
        rebuilt = execution_from_dict(execution_to_dict(execution))
        assert execution_to_dict(rebuilt) == execution_to_dict(execution)
        assert rebuilt.strategy == execution.strategy
        assert rebuilt.outcome is StrategyOutcome.RUNNING
        assert rebuilt.machine.has_state(rebuilt.state)

    def test_json_serializable(self):
        document = execution_to_dict(self.make_execution())
        assert json.loads(json.dumps(document)) == document

    def test_unknown_state_rejected(self):
        document = execution_to_dict(self.make_execution())
        document["state"] = "no-such-phase"
        with pytest.raises(ValidationError):
            execution_from_dict(document)

    def test_malformed_document_rejected(self):
        document = execution_to_dict(self.make_execution())
        del document["phase_entries"]
        with pytest.raises(ValidationError):
            execution_from_dict(document)
