"""Unit tests: Table 2.5 data and its consistency with the core model."""

import pytest

from repro.bifrost.model import PhaseType
from repro.core.experiment import (
    ExperimentClass,
    ExperimentPractice,
    TYPICAL_DURATION_HOURS,
)
from repro.errors import ExecutionError
from repro.study.comparison import TABLE_2_5, comparison_for


class TestTable25:
    def test_seven_dimensions(self):
        assert len(TABLE_2_5) == 7

    def test_columns_differ_everywhere(self):
        for row in TABLE_2_5:
            assert row.regression_driven != row.business_driven

    def test_comparison_for_both_classes(self):
        regression = comparison_for(ExperimentClass.REGRESSION_DRIVEN)
        business = comparison_for(ExperimentClass.BUSINESS_DRIVEN)
        assert set(regression) == set(business)
        assert "A/B testing" in business["common_practices"]
        assert "Canary" in regression["common_practices"]

    def test_practices_consistent_with_core_model(self):
        """Every practice Table 2.5 names exists in the core enum and
        maps to the right experiment class."""
        regression_practices = comparison_for(
            ExperimentClass.REGRESSION_DRIVEN
        )["common_practices"].lower()
        for practice in (
            ExperimentPractice.CANARY_RELEASE,
            ExperimentPractice.DARK_LAUNCH,
            ExperimentPractice.GRADUAL_ROLLOUT,
        ):
            keyword = practice.value.split("_")[0].replace("canary", "canary")
            assert keyword in regression_practices
            assert practice.experiment_class is ExperimentClass.REGRESSION_DRIVEN
        assert (
            ExperimentPractice.AB_TEST.experiment_class
            is ExperimentClass.BUSINESS_DRIVEN
        )

    def test_durations_consistent_with_core_model(self):
        """'Minutes to days' vs 'weeks' matches TYPICAL_DURATION_HOURS."""
        regression = TYPICAL_DURATION_HOURS[ExperimentClass.REGRESSION_DRIVEN]
        business = TYPICAL_DURATION_HOURS[ExperimentClass.BUSINESS_DRIVEN]
        assert regression[0] < 1.0             # minutes
        assert regression[1] <= 14 * 24.0      # at most ~two weeks
        assert business[0] >= 7 * 24.0         # at least a week

    def test_phase_types_cover_practices(self):
        """Bifrost can enact every practice the study names."""
        assert {p.value for p in PhaseType} == {
            "canary", "dark_launch", "ab_test", "gradual_rollout",
        }


class TestSubmitValidation:
    def test_unknown_service_rejected_at_submit(self, canary_app):
        from repro.bifrost import Bifrost
        from tests.unit.test_bifrost_model import make_phase
        from repro.bifrost.model import Strategy

        bifrost = Bifrost(canary_app)
        ghost = Strategy("s", (make_phase(service="ghost"),))
        with pytest.raises(ExecutionError):
            bifrost.submit(ghost)

    def test_undeployed_version_rejected_at_submit(self, canary_app):
        from repro.bifrost import Bifrost
        from tests.unit.test_bifrost_model import make_phase
        from repro.bifrost.model import Strategy

        bifrost = Bifrost(canary_app)
        missing = Strategy(
            "s",
            (make_phase(service="backend", experimental_version="9.9.9"),),
        )
        with pytest.raises(ExecutionError):
            bifrost.submit(missing)

    def test_valid_strategy_still_accepted(self, canary_app):
        from repro.bifrost import Bifrost
        from tests.unit.test_bifrost_model import make_phase
        from repro.bifrost.model import Strategy

        bifrost = Bifrost(canary_app)
        fine = Strategy("s", (make_phase(service="backend"),))
        execution = bifrost.submit(fine)
        assert execution.strategy.name == "s"
