"""Unit tests for the topological diff and change-type classification."""

import pytest

from repro.topology.change_types import ChangeType
from repro.topology.diff import DiffStatus, diff_graphs
from repro.topology.graph import InteractionGraph, NodeKey
from repro.topology.uncertainty import UncertaintyModel, uniform_uncertainty
from repro.errors import ConfigurationError


def key(service, version="1.0.0", endpoint="ep") -> NodeKey:
    return NodeKey(service, version, endpoint)


def base_graph() -> InteractionGraph:
    graph = InteractionGraph("base")
    graph.observe_call(None, key("frontend"), 10.0, False)
    graph.observe_call(key("frontend"), key("backend"), 20.0, False)
    graph.observe_call(key("backend"), key("db"), 5.0, False)
    return graph


class TestNodeOverlay:
    def test_unchanged(self):
        diff = diff_graphs(base_graph(), base_graph())
        assert all(
            entry.status is DiffStatus.UNCHANGED for entry in diff.entries.values()
        )
        assert diff.changes == []

    def test_added_node(self):
        experimental = base_graph()
        experimental.observe_call(key("frontend"), key("newsvc"), 3.0, False)
        diff = diff_graphs(base_graph(), experimental)
        assert diff.entry("newsvc", "ep").status is DiffStatus.ADDED

    def test_removed_node(self):
        experimental = InteractionGraph("exp")
        experimental.observe_call(None, key("frontend"), 10.0, False)
        experimental.observe_call(key("frontend"), key("backend"), 20.0, False)
        diff = diff_graphs(base_graph(), experimental)
        assert diff.entry("db", "ep").status is DiffStatus.REMOVED

    def test_updated_node(self):
        experimental = InteractionGraph("exp")
        experimental.observe_call(None, key("frontend"), 10.0, False)
        experimental.observe_call(key("frontend"), key("backend", "2.0.0"), 20.0, False)
        experimental.observe_call(key("backend", "2.0.0"), key("db"), 5.0, False)
        diff = diff_graphs(base_graph(), experimental)
        assert diff.entry("backend", "ep").status is DiffStatus.UPDATED

    def test_summary_counts(self):
        experimental = base_graph()
        experimental.observe_call(key("frontend"), key("newsvc"), 3.0, False)
        summary = diff_graphs(base_graph(), experimental).summary()
        assert summary["added"] == 1
        assert summary["unchanged"] == 3


class TestFundamentalChangeTypes:
    def test_calling_new_endpoint(self):
        experimental = base_graph()
        experimental.observe_call(key("frontend"), key("newsvc"), 3.0, False)
        diff = diff_graphs(base_graph(), experimental)
        types = {c.type for c in diff.changes}
        assert ChangeType.CALLING_NEW_ENDPOINT in types

    def test_calling_existing_endpoint(self):
        experimental = base_graph()
        # frontend now also calls db directly (db already existed).
        experimental.observe_call(key("frontend"), key("db"), 5.0, False)
        diff = diff_graphs(base_graph(), experimental)
        changes = [
            c for c in diff.changes
            if c.type is ChangeType.CALLING_EXISTING_ENDPOINT
        ]
        assert len(changes) == 1
        assert changes[0].callee.service == "db"

    def test_removing_service_call(self):
        experimental = InteractionGraph("exp")
        experimental.observe_call(None, key("frontend"), 10.0, False)
        experimental.observe_call(key("frontend"), key("backend"), 20.0, False)
        diff = diff_graphs(base_graph(), experimental)
        removed = [
            c for c in diff.changes if c.type is ChangeType.REMOVING_SERVICE_CALL
        ]
        assert len(removed) == 1
        assert removed[0].callee.service == "db"
        assert removed[0].removed


class TestComposedChangeTypes:
    def test_updated_callee_version(self):
        experimental = InteractionGraph("exp")
        experimental.observe_call(None, key("frontend"), 10.0, False)
        experimental.observe_call(key("frontend"), key("backend", "2.0.0"), 20.0, False)
        experimental.observe_call(key("backend", "2.0.0"), key("db"), 5.0, False)
        diff = diff_graphs(base_graph(), experimental)
        by_type = {c.type: c for c in diff.changes}
        callee_update = by_type[ChangeType.UPDATED_CALLEE_VERSION]
        assert callee_update.callee == key("backend", "2.0.0")
        # backend is also an updated *caller* towards db.
        caller_update = by_type[ChangeType.UPDATED_CALLER_VERSION]
        assert caller_update.caller == key("backend", "2.0.0")
        assert caller_update.anchor == key("backend", "2.0.0")

    def test_updated_version_both_sides(self):
        experimental = InteractionGraph("exp")
        experimental.observe_call(None, key("frontend", "2.0.0"), 10.0, False)
        experimental.observe_call(
            key("frontend", "2.0.0"), key("backend", "2.0.0"), 20.0, False
        )
        experimental.observe_call(key("backend", "2.0.0"), key("db"), 5.0, False)
        diff = diff_graphs(base_graph(), experimental)
        types = {c.type for c in diff.changes}
        assert ChangeType.UPDATED_VERSION in types

    def test_mixed_versions_during_experiment(self):
        # Both 1.0.0 and 2.0.0 of backend serve simultaneously (canary):
        # the new version must be detected regardless of edge ordering.
        experimental = base_graph()
        experimental.observe_call(key("frontend"), key("backend", "2.0.0"), 22.0, False)
        experimental.observe_call(key("backend", "2.0.0"), key("db"), 5.0, False)
        diff = diff_graphs(base_graph(), experimental)
        callee_updates = [
            c for c in diff.changes if c.type is ChangeType.UPDATED_CALLEE_VERSION
        ]
        assert any(c.callee.version == "2.0.0" for c in callee_updates)

    def test_change_identity_is_version_agnostic(self):
        experimental = InteractionGraph("exp")
        experimental.observe_call(None, key("frontend"), 10.0, False)
        experimental.observe_call(key("frontend"), key("backend", "2.0.0"), 20.0, False)
        experimental.observe_call(key("backend", "2.0.0"), key("db"), 5.0, False)
        diff = diff_graphs(base_graph(), experimental)
        identities = {c.identity for c in diff.changes}
        assert ("updated_callee_version", "frontend/ep", "backend/ep") in identities


class TestUncertainty:
    def test_default_ordering(self):
        model = UncertaintyModel()
        assert model.weight(ChangeType.CALLING_NEW_ENDPOINT) > model.weight(
            ChangeType.CALLING_EXISTING_ENDPOINT
        )
        assert model.weight(ChangeType.CALLING_EXISTING_ENDPOINT) > model.weight(
            ChangeType.REMOVING_SERVICE_CALL
        )

    def test_uniform(self):
        model = uniform_uncertainty(2.0)
        assert all(model.weight(ct) == 2.0 for ct in ChangeType)

    def test_missing_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            UncertaintyModel({ChangeType.CALLING_NEW_ENDPOINT: 1.0})

    def test_scaled(self):
        model = UncertaintyModel().scaled(2.0)
        assert model.weight(ChangeType.CALLING_NEW_ENDPOINT) == 2.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            uniform_uncertainty(-1.0)
