"""Unit tests for the telemetry package."""

import pytest

from repro.errors import ValidationError
from repro.telemetry.metrics import Counter, Gauge, Histogram
from repro.telemetry.monitor import Monitor
from repro.telemetry.store import MetricKey, MetricStore, supported_aggregations
from tests.unit.test_tracing import make_span


class TestCounter:
    def test_increment(self):
        counter = Counter("requests")
        counter.increment()
        counter.increment(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            Counter("x").increment(-1.0)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("inflight", 5.0)
        gauge.add(-2.0)
        assert gauge.value == 3.0
        gauge.set(10.0)
        assert gauge.value == 10.0


class TestHistogram:
    def test_percentiles(self):
        histogram = Histogram("rt")
        for v in range(1, 101):
            histogram.observe(float(v))
        assert histogram.percentile(50) == pytest.approx(50.5)
        assert histogram.percentile(99) == pytest.approx(99.01, abs=0.5)

    def test_capacity_evicts_oldest(self):
        histogram = Histogram("rt", capacity=3)
        for v in (1.0, 2.0, 3.0, 100.0):
            histogram.observe(v)
        assert len(histogram) == 3
        assert histogram.percentile(0) == 2.0

    def test_empty_percentile_raises(self):
        with pytest.raises(ValidationError):
            Histogram("rt").percentile(50)

    def test_summary(self):
        histogram = Histogram("rt")
        histogram.observe(1.0)
        histogram.observe(3.0)
        assert histogram.summary().mean == 2.0


class TestMetricStore:
    def test_record_and_aggregate(self):
        store = MetricStore()
        for t in range(10):
            store.record("svc", "1.0", "response_time", float(t), float(t * 10))
        assert store.aggregate("svc", "1.0", "response_time", "mean", 0, 10) == 45.0
        assert store.aggregate("svc", "1.0", "response_time", "count", 0, 5) == 5.0
        assert store.aggregate("svc", "1.0", "response_time", "max", 0, 10) == 90.0

    def test_empty_window_returns_none(self):
        store = MetricStore()
        store.record("svc", "1.0", "m", 0.0, 1.0)
        assert store.aggregate("svc", "1.0", "m", "mean", 5.0, 10.0) is None

    def test_window_boundaries_are_half_open(self):
        store = MetricStore()
        for t in (1.0, 2.0, 3.0):
            store.record("svc", "1.0", "m", t, t * 10)
        # Sample at start included, sample at end excluded.
        assert store.values_in_window("svc", "1.0", "m", 1.0, 3.0) == [10.0, 20.0]
        assert store.aggregate("svc", "1.0", "m", "count", 1.0, 3.0) == 2.0
        # The end-boundary sample lands in the adjacent window instead.
        assert store.values_in_window("svc", "1.0", "m", 3.0, 5.0) == [30.0]

    def test_adjacent_windows_never_double_count(self):
        store = MetricStore()
        for t in range(6):
            store.record("svc", "1.0", "m", float(t), 1.0)
        first = store.aggregate("svc", "1.0", "m", "count", 0.0, 3.0)
        second = store.aggregate("svc", "1.0", "m", "count", 3.0, 6.0)
        assert first + second == 6.0

    def test_unknown_metric_returns_none(self):
        assert MetricStore().aggregate("a", "b", "c", "mean", 0, 1) is None

    def test_unknown_aggregation_raises(self):
        with pytest.raises(ValidationError):
            MetricStore().aggregate("a", "b", "c", "avg", 0, 1)

    def test_supported_aggregations_listed(self):
        assert {"mean", "p95", "count"} <= set(supported_aggregations())

    def test_keys_sorted(self):
        store = MetricStore()
        store.record("b", "1", "m", 0.0, 1.0)
        store.record("a", "1", "m", 0.0, 1.0)
        assert store.keys()[0] == MetricKey("a", "1", "m")

    def test_merge(self):
        a, b = MetricStore(), MetricStore()
        a.record("svc", "1", "m", 0.0, 1.0)
        b.record("svc", "1", "m", 1.0, 3.0)
        a.merge(b)
        assert a.aggregate("svc", "1", "m", "mean", 0, 2) == 2.0

    def test_versions_are_separate_streams(self):
        store = MetricStore()
        store.record("svc", "1.0", "m", 0.0, 1.0)
        store.record("svc", "2.0", "m", 0.0, 9.0)
        assert store.aggregate("svc", "1.0", "m", "mean", 0, 1) == 1.0
        assert store.aggregate("svc", "2.0", "m", "mean", 0, 1) == 9.0


class TestMonitor:
    def test_observe_span_derives_metrics(self):
        monitor = Monitor()
        monitor.observe_span(make_span(duration_ms=42.0))
        assert monitor.mean_response_time("frontend", "1.0.0", 0, 1) == 42.0
        assert monitor.error_rate("frontend", "1.0.0", 0, 1) == 0.0
        assert monitor.throughput("frontend", "1.0.0", 0, 1) == 1.0

    def test_error_rate(self):
        monitor = Monitor()
        monitor.observe_span(make_span("s1", error=True))
        monitor.observe_span(make_span("s2", error=False))
        assert monitor.error_rate("frontend", "1.0.0", 0, 1) == 0.5

    def test_no_traffic_is_none(self):
        monitor = Monitor()
        assert monitor.error_rate("svc", "1.0", 0, 1) is None
        assert monitor.throughput("svc", "1.0", 0, 1) == 0.0


class TestMetricStoreSnapshot:
    def make_store(self) -> MetricStore:
        store = MetricStore()
        store.record("svc", "1.0", "response_time", 0.0, 10.0)
        store.record("svc", "1.0", "response_time", 1.0, 12.0)
        store.record("svc", "2.0", "error", 0.5, 1.0)
        return store

    def test_snapshot_restore_round_trip(self):
        store = self.make_store()
        restored = MetricStore()
        restored.restore(store.snapshot())
        assert restored.keys() == store.keys()
        for key in store.keys():
            assert restored.values_in_window(
                key.service, key.version, key.metric, 0.0, 10.0
            ) == store.values_in_window(key.service, key.version, key.metric, 0.0, 10.0)

    def test_snapshot_is_json_compatible(self):
        import json

        dump = self.make_store().snapshot()
        assert json.loads(json.dumps(dump)) == dump

    def test_restore_replaces_existing_contents(self):
        restored = MetricStore()
        restored.record("stale", "1.0", "m", 0.0, 1.0)
        restored.restore(self.make_store().snapshot())
        assert all(key.service != "stale" for key in restored.keys())

    def test_restore_rejects_malformed_document(self):
        import pytest as _pytest

        from repro.errors import ValidationError

        with _pytest.raises(ValidationError):
            MetricStore().restore({"series": [{"service": "x"}]})


class TestDurabilityMetrics:
    def test_observe_durability_records_under_engine_key(self):
        monitor = Monitor()
        monitor.observe_durability("crash", 5.0)
        monitor.observe_durability("restart", 6.0)
        assert monitor.durability_count("crash", 0.0, 10.0) == 1.0
        assert monitor.durability_count("restart", 0.0, 10.0) == 1.0
        assert monitor.durability_count("restart", 0.0, 5.5) == 0.0

    def test_durability_value_carries_magnitude(self):
        monitor = Monitor()
        monitor.observe_durability("records_replayed", 1.0, value=17.0)
        assert monitor.store.aggregate(
            "bifrost", "engine", "durability.records_replayed", "sum", 0.0, 2.0
        ) == 17.0

    def test_no_events_is_zero(self):
        assert Monitor().durability_count("crash", 0.0, 1.0) == 0.0


class TestHistogramEviction:
    """Sliding-window (FIFO) eviction and percentile edge cases."""

    def test_exactly_at_capacity_keeps_everything(self):
        histogram = Histogram("rt", capacity=4)
        for v in (4.0, 1.0, 3.0, 2.0):
            histogram.observe(v)
        assert len(histogram) == 4
        assert histogram.values() == [1.0, 2.0, 3.0, 4.0]

    def test_eviction_is_fifo_not_by_value(self):
        # The *oldest* observation leaves, even when it is the largest —
        # this is sliding-window truncation, not reservoir sampling.
        histogram = Histogram("rt", capacity=3)
        for v in (100.0, 1.0, 2.0, 3.0):
            histogram.observe(v)
        assert histogram.values() == [1.0, 2.0, 3.0]

    def test_heavy_eviction_keeps_only_recent_window(self):
        histogram = Histogram("rt", capacity=10)
        for v in range(1000):
            histogram.observe(float(v))
        assert histogram.values() == [float(v) for v in range(990, 1000)]

    def test_percentile_zero_is_minimum(self):
        histogram = Histogram("rt")
        for v in (5.0, 1.0, 9.0):
            histogram.observe(v)
        assert histogram.percentile(0) == 1.0

    def test_percentile_hundred_is_maximum(self):
        histogram = Histogram("rt")
        for v in (5.0, 1.0, 9.0):
            histogram.observe(v)
        assert histogram.percentile(100) == 9.0

    def test_single_element_every_percentile(self):
        histogram = Histogram("rt")
        histogram.observe(42.0)
        for q in (0, 25, 50, 75, 100):
            assert histogram.percentile(q) == 42.0

    def test_out_of_range_percentile_raises(self):
        histogram = Histogram("rt")
        histogram.observe(1.0)
        with pytest.raises(ValidationError):
            histogram.percentile(-1)
        with pytest.raises(ValidationError):
            histogram.percentile(101)


class TestResilienceMetrics:
    """Version mapping of resilience events and wildcard aggregation."""

    def make_event(self, kind="retry", version="", time=1.0):
        from repro.microservices.resilience import ResilienceEvent

        return ResilienceEvent(
            kind=kind, time=time, service="checkout", version=version
        )

    def test_versioned_event_recorded_under_real_version(self):
        monitor = Monitor()
        monitor.observe_resilience(self.make_event(version="2.0.0"))
        assert (
            monitor.resilience_count("checkout", "2.0.0", "retry", 0.0, 2.0)
            == 1.0
        )
        # Nothing leaks into the wildcard bucket.
        assert (
            monitor.resilience_count("checkout", "*", "retry", 0.0, 2.0) == 0.0
        )

    def test_versionless_event_falls_back_to_wildcard(self):
        monitor = Monitor()
        monitor.observe_resilience(self.make_event(version=""))
        assert (
            monitor.resilience_count("checkout", "*", "retry", 0.0, 2.0) == 1.0
        )

    def test_count_all_sums_versions_and_wildcard(self):
        monitor = Monitor()
        monitor.observe_resilience(self.make_event(version="1.0.0"))
        monitor.observe_resilience(self.make_event(version="2.0.0", time=1.5))
        monitor.observe_resilience(self.make_event(version="", time=1.7))
        monitor.observe_resilience(
            self.make_event(kind="breaker_open", version="", time=1.8)
        )
        assert (
            monitor.resilience_count_all("checkout", "retry", 0.0, 2.0) == 3.0
        )
        assert (
            monitor.resilience_count_all("checkout", "breaker_open", 0.0, 2.0)
            == 1.0
        )
        # Other services' series do not contaminate the sum.
        assert monitor.resilience_count_all("billing", "retry", 0.0, 2.0) == 0.0
