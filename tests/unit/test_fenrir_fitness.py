"""Unit tests for Fenrir's fitness and constraint evaluation."""

import pytest

from repro.errors import ConfigurationError
from repro.fenrir.fitness import FitnessWeights, evaluate, max_fitness
from repro.fenrir.model import SchedulingProblem
from repro.fenrir.schedule import Gene, Schedule
from tests.unit.test_fenrir_model import make_spec


def make_problem(profile, specs):
    return SchedulingProblem(profile, specs)


class TestFitnessWeights:
    def test_default_sums_to_one(self):
        weights = FitnessWeights()
        assert weights.duration + weights.start + weights.coverage == pytest.approx(1.0)

    def test_invalid_sum(self):
        with pytest.raises(ConfigurationError):
            FitnessWeights(0.5, 0.5, 0.5)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            FitnessWeights(1.2, -0.1, -0.1)


class TestConstraints:
    def test_valid_schedule(self, profile):
        problem = make_problem(profile, [make_spec(required_samples=500)])
        schedule = Schedule(problem, [Gene(0, 5, 0.3, frozenset({"eu"}))])
        evaluation = evaluate(schedule)
        assert evaluation.valid
        assert evaluation.fitness > 0

    def test_sample_shortfall_detected(self, profile):
        problem = make_problem(profile, [make_spec(required_samples=100_000)])
        schedule = Schedule(problem, [Gene(0, 5, 0.3, frozenset({"eu"}))])
        evaluation = evaluate(schedule)
        assert not evaluation.valid
        assert any("samples" in v for v in evaluation.violations)

    def test_early_start_violation(self, profile):
        problem = make_problem(profile, [make_spec(earliest_start=10)])
        schedule = Schedule(problem, [Gene(5, 5, 0.3, frozenset({"eu"}))])
        assert any("earliest" in v for v in evaluate(schedule).violations)

    def test_horizon_overflow(self, profile):
        spec = make_spec(required_samples=100, max_duration_slots=20)
        problem = make_problem(profile, [spec])
        schedule = Schedule(problem, [Gene(45, 10, 0.3, frozenset({"eu"}))])
        assert any("horizon" in v for v in evaluate(schedule).violations)

    def test_duration_bounds(self, profile):
        problem = make_problem(profile, [make_spec(required_samples=10)])
        schedule = Schedule(problem, [Gene(0, 1, 0.3, frozenset({"eu"}))])
        assert any("duration" in v for v in evaluate(schedule).violations)

    def test_fraction_bounds(self, profile):
        problem = make_problem(profile, [make_spec(required_samples=10)])
        schedule = Schedule(problem, [Gene(0, 5, 0.9, frozenset({"eu"}))])
        assert any("fraction" in v for v in evaluate(schedule).violations)

    def test_overlap_detected(self, profile):
        specs = [make_spec("a", required_samples=100), make_spec("b", required_samples=100)]
        problem = make_problem(profile, specs)
        schedule = Schedule(
            problem,
            [
                Gene(0, 5, 0.5, frozenset({"eu"})),
                Gene(2, 5, 0.6, frozenset({"eu"})),  # 1.1 in slots 2-4
            ],
        )
        evaluation = evaluate(schedule)
        assert any("oversubscribed" in v for v in evaluation.violations)

    def test_disjoint_groups_may_fill_completely(self, profile):
        specs = [
            make_spec("a", required_samples=100),
            make_spec("b", required_samples=100),
        ]
        problem = make_problem(profile, specs)
        schedule = Schedule(
            problem,
            [
                Gene(0, 5, 0.5, frozenset({"eu"})),
                Gene(0, 5, 0.5, frozenset({"na"})),
            ],
        )
        assert evaluate(schedule).valid

    def test_invalid_fitness_is_zero(self, profile):
        problem = make_problem(profile, [make_spec(required_samples=1e9)])
        schedule = Schedule(problem, [Gene(0, 5, 0.3, frozenset({"eu"}))])
        evaluation = evaluate(schedule)
        assert evaluation.fitness == 0.0
        # The penalized score keeps guiding the search: it is the raw
        # objective score minus the violation penalty.
        raw = sum(evaluation.per_experiment)
        assert evaluation.penalized < raw


class TestObjectives:
    def test_earlier_start_scores_higher(self, profile):
        problem = make_problem(profile, [make_spec(required_samples=100)])
        early = Schedule(problem, [Gene(0, 5, 0.3, frozenset({"eu"}))])
        late = Schedule(problem, [Gene(40, 5, 0.3, frozenset({"eu"}))])
        assert evaluate(early).fitness > evaluate(late).fitness

    def test_shorter_duration_scores_higher(self, profile):
        problem = make_problem(profile, [make_spec(required_samples=100)])
        short = Schedule(problem, [Gene(0, 2, 0.3, frozenset({"eu"}))])
        long = Schedule(problem, [Gene(0, 10, 0.3, frozenset({"eu"}))])
        assert evaluate(short).fitness > evaluate(long).fitness

    def test_preferred_group_coverage_scores_higher(self, profile):
        spec = make_spec(required_samples=100, preferred_groups=frozenset({"eu"}))
        problem = make_problem(profile, [spec])
        on_preferred = Schedule(problem, [Gene(0, 2, 0.3, frozenset({"eu"}))])
        off_preferred = Schedule(problem, [Gene(0, 2, 0.3, frozenset({"na"}))])
        assert evaluate(on_preferred).fitness > evaluate(off_preferred).fitness

    def test_perfect_schedule_approaches_max(self, profile):
        spec = make_spec(required_samples=10, min_duration_slots=2)
        problem = make_problem(profile, [spec])
        schedule = Schedule(problem, [Gene(0, 2, 0.3, frozenset({"eu", "na"}))])
        evaluation = evaluate(schedule)
        assert evaluation.fitness == pytest.approx(max_fitness())

    def test_weights_shift_scores(self, profile):
        problem = make_problem(profile, [make_spec(required_samples=100)])
        late = Schedule(problem, [Gene(40, 2, 0.3, frozenset({"eu"}))])
        start_heavy = evaluate(late, FitnessWeights(0.1, 0.8, 0.1))
        duration_heavy = evaluate(late, FitnessWeights(0.8, 0.1, 0.1))
        assert duration_heavy.fitness > start_heavy.fitness

    def test_per_experiment_scores_present(self, profile):
        specs = [make_spec("a", required_samples=10), make_spec("b", required_samples=10)]
        problem = make_problem(profile, specs)
        schedule = Schedule(
            problem,
            [Gene(0, 2, 0.3, frozenset({"eu"})), Gene(0, 2, 0.3, frozenset({"na"}))],
        )
        assert len(evaluate(schedule).per_experiment) == 2
