"""Unit tests for the resilience layer: policies, breakers, runtime wiring."""

import pytest

from repro.errors import ConfigurationError
from repro.microservices.application import Application
from repro.microservices.faults import NetworkState
from repro.microservices.resilience import (
    BreakerConfig,
    BreakerState,
    CallPolicy,
    CircuitBreaker,
    ResilienceLayer,
    ResilienceSummary,
)
from repro.microservices.runtime import RoutingDecision, Runtime
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.simulation.latency import ConstantLatency
from repro.traffic.workload import Request
from tests.conftest import constant_endpoint


def make_request(entry="frontend.home", user="u1", group="eu", t=0.0) -> Request:
    return Request(
        request_id="r1",
        timestamp=t,
        user_id=user,
        group=group,
        entry=entry,
        headers={"user-id": user},
    )


class TestCallPolicy:
    def test_defaults_are_noop(self):
        policy = CallPolicy()
        assert policy.timeout_ms is None
        assert policy.max_retries == 0
        assert not policy.fallback

    def test_backoff_grows_exponentially(self):
        policy = CallPolicy(max_retries=3, backoff_base_ms=10.0, backoff_multiplier=2.0)
        assert policy.backoff_ms(1) == 10.0
        assert policy.backoff_ms(2) == 20.0
        assert policy.backoff_ms(3) == 40.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_ms": 0.0},
            {"timeout_ms": -5.0},
            {"max_retries": -1},
            {"backoff_base_ms": -1.0},
            {"backoff_multiplier": 0.5},
            {"jitter_ms": -1.0},
            {"fallback_latency_ms": -1.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            CallPolicy(**kwargs)


class TestCircuitBreaker:
    def config(self, **overrides):
        defaults = dict(
            failure_threshold=0.5,
            window_size=10,
            min_calls=4,
            open_seconds=30.0,
            half_open_max_calls=2,
            half_open_successes=2,
        )
        defaults.update(overrides)
        return BreakerConfig(**defaults)

    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker("svc", "1.0", self.config())
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(0.0)

    def test_opens_at_failure_threshold(self):
        breaker = CircuitBreaker("svc", "1.0", self.config())
        for t in range(4):
            breaker.record(float(t), success=False)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(4.0)
        assert breaker.rejected_calls == 1

    def test_needs_min_calls_before_tripping(self):
        breaker = CircuitBreaker("svc", "1.0", self.config(min_calls=6))
        for t in range(5):
            breaker.record(float(t), success=False)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_after_cooldown_then_closes(self):
        breaker = CircuitBreaker("svc", "1.0", self.config())
        for t in range(4):
            breaker.record(float(t), success=False)
        assert breaker.state is BreakerState.OPEN
        # Cooldown elapsed: first allow() transitions to half-open.
        assert breaker.allow(40.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record(40.1, success=True)
        assert breaker.allow(41.0)
        breaker.record(41.1, success=True)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker("svc", "1.0", self.config())
        for t in range(4):
            breaker.record(float(t), success=False)
        assert breaker.allow(40.0)
        breaker.record(40.1, success=False)
        assert breaker.state is BreakerState.OPEN
        # The cooldown restarts from the reopening.
        assert not breaker.allow(50.0)
        assert breaker.allow(75.0)

    def test_half_open_bounds_probe_calls(self):
        breaker = CircuitBreaker("svc", "1.0", self.config(half_open_max_calls=2))
        for t in range(4):
            breaker.record(float(t), success=False)
        assert breaker.allow(40.0)
        assert breaker.allow(40.5)
        assert not breaker.allow(40.6)

    def test_transitions_recorded_with_times(self):
        breaker = CircuitBreaker("svc", "1.0", self.config())
        for t in range(4):
            breaker.record(float(t), success=False)
        assert [
            (t.source, t.target) for t in breaker.transitions
        ] == [(BreakerState.CLOSED, BreakerState.OPEN)]
        assert breaker.transitions[0].time == 3.0

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            BreakerConfig(failure_threshold=0.0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(half_open_successes=5, half_open_max_calls=3)


class TestResilienceLayer:
    def test_policy_scoping_most_specific_wins(self):
        layer = ResilienceLayer()
        default = CallPolicy(max_retries=1)
        service = CallPolicy(max_retries=2)
        endpoint = CallPolicy(max_retries=3)
        layer.set_policy(default)
        layer.set_policy(service, service="backend")
        layer.set_policy(endpoint, service="backend", endpoint="api")
        assert layer.policy_for("backend", "api") is endpoint
        assert layer.policy_for("backend", "other") is service
        assert layer.policy_for("frontend", "home") is default

    def test_no_policy_returns_none(self):
        layer = ResilienceLayer()
        assert layer.policy_for("backend", "api") is None

    def test_endpoint_policy_requires_service(self):
        layer = ResilienceLayer()
        with pytest.raises(ConfigurationError):
            layer.set_policy(CallPolicy(), endpoint="api")

    def test_breakers_disabled_without_config(self):
        layer = ResilienceLayer()
        assert layer.breaker("svc", "1.0") is None
        assert layer.admit("svc", "1.0", 0.0)

    def test_breaker_transitions_emitted_as_events(self):
        layer = ResilienceLayer(
            breaker_config=BreakerConfig(min_calls=2, window_size=4)
        )
        layer.observe("svc", "1.0", 0.0, success=False)
        layer.observe("svc", "1.0", 1.0, success=False)
        assert layer.counters() == {"breaker_open": 1}
        assert not layer.admit("svc", "1.0", 2.0)

    def test_summary(self):
        layer = ResilienceLayer(
            breaker_config=BreakerConfig(min_calls=2, window_size=4)
        )
        layer.observe("svc", "2.0", 0.0, success=False)
        layer.observe("svc", "2.0", 1.0, success=False)
        summary = ResilienceSummary.of(layer)
        assert summary.open_breakers == [("svc", "2.0")]
        assert summary.events["breaker_open"] == 1


class TestRuntimeResilience:
    def failing_app(self, latency_ms=20.0, error_rate=1.0) -> Application:
        app = Application("resil")
        app.deploy(
            ServiceVersion(
                "frontend",
                "1.0.0",
                {
                    "home": constant_endpoint(
                        "home", 10.0, (DownstreamCall("backend", "api"),)
                    )
                },
            ),
            stable=True,
        )
        app.deploy(
            ServiceVersion(
                "backend",
                "1.0.0",
                {"api": EndpointSpec("api", ConstantLatency(latency_ms), error_rate)},
            ),
            stable=True,
        )
        return app

    def test_retries_charged_to_duration(self):
        app = self.failing_app()
        layer = ResilienceLayer()
        layer.set_policy(
            CallPolicy(max_retries=2, backoff_base_ms=10.0, backoff_multiplier=2.0),
            service="backend",
        )
        runtime = Runtime(app, seed=1, resilience=layer)
        outcome = runtime.execute(make_request())
        # 3 backend attempts (20 ms each) + backoffs 10 + 20, + frontend 10.
        assert outcome.duration_ms == pytest.approx(10.0 + 20 * 3 + 10 + 20)
        assert outcome.error
        retries = [e for e in layer.events if e.kind == "retry"]
        assert len(retries) == 2
        attempts = [
            s for s in outcome.trace.spans if s.service == "backend"
        ]
        assert len(attempts) == 3
        assert attempts[1].tags["retry_attempt"] == "1"
        assert attempts[2].tags["retry_attempt"] == "2"

    def test_fallback_masks_error(self):
        app = self.failing_app()
        layer = ResilienceLayer()
        layer.set_policy(
            CallPolicy(max_retries=1, backoff_base_ms=5.0, fallback=True,
                       fallback_latency_ms=2.0),
            service="backend",
        )
        runtime = Runtime(app, seed=1, resilience=layer)
        outcome = runtime.execute(make_request())
        assert not outcome.error
        assert outcome.duration_ms == pytest.approx(10.0 + 20 * 2 + 5 + 2)
        assert [e.kind for e in layer.events] == ["retry", "fallback"]
        # The fallback shows up as a metric sample for trace analysis.
        assert runtime.monitor.resilience_count(
            "backend", "1.0.0", "fallback", 0.0, 1.0
        ) == 1.0

    def test_timeout_caps_observed_wait(self):
        app = self.failing_app(latency_ms=50.0, error_rate=0.0)
        layer = ResilienceLayer()
        layer.set_policy(CallPolicy(timeout_ms=30.0), service="backend")
        runtime = Runtime(app, seed=1, resilience=layer)
        outcome = runtime.execute(make_request())
        # The caller waits only 30 ms, but the callee span keeps 50 ms.
        assert outcome.duration_ms == pytest.approx(10.0 + 30.0)
        assert outcome.error
        backend_span = [s for s in outcome.trace.spans if s.service == "backend"][0]
        assert backend_span.duration_ms == pytest.approx(50.0)
        assert [e.kind for e in layer.events] == ["timeout"]

    def test_healthy_call_unaffected_by_policy(self):
        app = self.failing_app(error_rate=0.0)
        layer = ResilienceLayer()
        layer.set_policy(
            CallPolicy(max_retries=3, timeout_ms=100.0, fallback=True),
            service="backend",
        )
        runtime = Runtime(app, seed=1, resilience=layer)
        outcome = runtime.execute(make_request())
        assert outcome.duration_ms == pytest.approx(30.0)
        assert not outcome.error
        assert layer.events == []

    def test_jitter_draws_from_runtime_rng(self):
        app = self.failing_app()
        outcomes = []
        for _ in range(2):
            layer = ResilienceLayer()
            layer.set_policy(
                CallPolicy(max_retries=2, backoff_base_ms=5.0, jitter_ms=10.0),
                service="backend",
            )
            runtime = Runtime(app, seed=7, resilience=layer)
            outcomes.append(runtime.execute(make_request()).duration_ms)
        assert outcomes[0] == pytest.approx(outcomes[1])
        # Jitter actually added something beyond the deterministic base.
        assert outcomes[0] > 10.0 + 60.0 + 5.0 + 5.0

    def test_breaker_opens_and_rejects_in_runtime(self):
        app = self.failing_app()
        layer = ResilienceLayer(
            breaker_config=BreakerConfig(
                failure_threshold=0.5, window_size=6, min_calls=3, open_seconds=60.0
            )
        )
        runtime = Runtime(app, seed=1, resilience=layer)
        for i in range(3):
            runtime.execute(make_request(t=float(i)))
        breaker = layer.breaker("backend", "1.0.0")
        assert breaker.state is BreakerState.OPEN
        outcome = runtime.execute(make_request(t=5.0))
        assert outcome.error
        rejected = [
            s for s in outcome.trace.spans if s.tags.get("breaker") == "open"
        ]
        assert len(rejected) == 1
        assert rejected[0].duration_ms == 0.0
        assert layer.counters()["breaker_reject"] == 1

    def test_partition_fails_edge(self):
        app = self.failing_app(error_rate=0.0)
        network = NetworkState()
        network.partition("frontend", "backend")
        runtime = Runtime(app, seed=1, network=network)
        outcome = runtime.execute(make_request())
        assert outcome.error
        faulted = [s for s in outcome.trace.spans if s.tags.get("fault") == "partition"]
        assert len(faulted) == 1
        network.heal("frontend", "backend")
        assert not runtime.execute(make_request(t=1.0)).error

    def test_shadow_hops_excluded_from_version_path(self, canary_app):
        class WithShadow:
            def route(self, request, service):
                if service == "backend":
                    return RoutingDecision(shadow_versions=("2.0.0",))
                return RoutingDecision()

        runtime = Runtime(canary_app, router=WithShadow(), seed=1)
        outcome = runtime.execute(make_request())
        assert ("backend", "2.0.0") not in outcome.version_path
        assert outcome.version_path == (
            ("frontend", "1.0.0"),
            ("backend", "1.0.0"),
        )
        # The shadow hop is still traced (tagged), just not user-visible.
        shadow = [s for s in outcome.trace.spans if s.tags.get("shadow") == "true"]
        assert len(shadow) == 1
