"""Unit tests for the traffic routing layer."""

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.routing.assignment import StickyAssigner
from repro.routing.proxy import VersionRouter
from repro.routing.rules import AudienceFilter, ExperimentRoute, Variant
from repro.routing.splitter import (
    ab_split,
    canary_split,
    dark_launch_split,
    rollout_split,
)
from tests.unit.test_microservices import make_request


class TestSplitters:
    def test_canary_split(self):
        variants = canary_split("1.0", "2.0", 0.05)
        assert variants[0] == Variant("1.0", 0.95)
        assert variants[1] == Variant("2.0", 0.05)

    def test_canary_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            canary_split("1.0", "2.0", 1.0)

    def test_ab_split_default_even(self):
        variants = ab_split("a", "b")
        assert variants[0].fraction == variants[1].fraction == 0.5

    def test_dark_launch_keeps_stable(self):
        variants = dark_launch_split("1.0")
        assert variants == (Variant("1.0", 1.0),)

    def test_rollout_extremes_degenerate(self):
        assert rollout_split("1.0", "2.0", 0.0) == (Variant("1.0", 1.0),)
        assert rollout_split("1.0", "2.0", 1.0) == (Variant("2.0", 1.0),)

    def test_rollout_midpoint(self):
        variants = rollout_split("1.0", "2.0", 0.3)
        assert variants[1] == Variant("2.0", 0.3)


class TestRules:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            ExperimentRoute("exp", "svc", (Variant("a", 0.5), Variant("b", 0.4)))

    def test_audience_matches_group(self):
        audience = AudienceFilter(groups=frozenset({"eu"}))
        assert audience.matches(make_request(group="eu"))
        assert not audience.matches(make_request(group="na"))

    def test_audience_matches_headers(self):
        audience = AudienceFilter(headers={"user-id": "u1"})
        assert audience.matches(make_request(user="u1"))
        assert not audience.matches(make_request(user="u2"))

    def test_empty_audience_matches_all(self):
        assert AudienceFilter().matches(make_request())

    def test_with_variants_copy(self):
        route = ExperimentRoute("exp", "svc", canary_split("1.0", "2.0", 0.1))
        stepped = route.with_variants(rollout_split("1.0", "2.0", 0.5))
        assert stepped.experiment == "exp"
        assert stepped.variants[1].fraction == 0.5

    def test_route_needs_variants_or_shadow(self):
        with pytest.raises(ConfigurationError):
            ExperimentRoute("exp", "svc", ())


class TestStickyAssigner:
    def test_sticky(self):
        assigner = StickyAssigner("exp1")
        variants = ab_split("a", "b")
        first = assigner.assign("user1", variants)
        for _ in range(5):
            assert assigner.assign("user1", variants) == first

    def test_split_approximates_fractions(self):
        assigner = StickyAssigner("exp1")
        variants = canary_split("stable", "canary", 0.1)
        assignments = [
            assigner.assign(f"user{i}", variants) for i in range(2000)
        ]
        canary_share = assignments.count("canary") / 2000
        assert canary_share == pytest.approx(0.1, abs=0.03)

    def test_counts_distinct_users_once(self):
        assigner = StickyAssigner("exp1")
        variants = ab_split("a", "b")
        for _ in range(3):
            assigner.assign("u1", variants)
        assert assigner.total_distinct_users() == 1

    def test_different_salts_independent(self):
        variants = ab_split("a", "b")
        x = StickyAssigner("exp1")
        y = StickyAssigner("exp2")
        differing = sum(
            x.assign(f"u{i}", variants) != y.assign(f"u{i}", variants)
            for i in range(300)
        )
        assert differing > 75

    def test_empty_variants_rejected(self):
        with pytest.raises(ConfigurationError):
            StickyAssigner("exp").assign("u", [])


class TestVersionRouter:
    def test_unrouted_service_goes_stable(self):
        router = VersionRouter()
        decision = router.route(make_request(), "backend")
        assert decision.version is None
        assert decision.proxy_hops == 0

    def test_routed_service_costs_a_hop(self):
        router = VersionRouter()
        router.install(ExperimentRoute("exp", "backend", canary_split("1.0", "2.0", 0.2)))
        decision = router.route(make_request(), "backend")
        assert decision.proxy_hops == 1
        assert decision.version in ("1.0", "2.0")

    def test_audience_mismatch_pins_stable(self):
        router = VersionRouter()
        router.install(
            ExperimentRoute(
                "exp",
                "backend",
                canary_split("1.0", "2.0", 0.2),
                audience=AudienceFilter(groups=frozenset({"na"})),
            )
        )
        decision = router.route(make_request(group="eu"), "backend")
        assert decision.version is None
        assert decision.proxy_hops == 1

    def test_overlapping_experiments_rejected(self):
        router = VersionRouter()
        router.install(ExperimentRoute("exp1", "backend", canary_split("1.0", "2.0", 0.2)))
        with pytest.raises(RoutingError):
            router.install(
                ExperimentRoute("exp2", "backend", canary_split("1.0", "3.0", 0.2))
            )

    def test_same_experiment_may_update_route(self):
        router = VersionRouter()
        router.install(ExperimentRoute("exp1", "backend", rollout_split("1.0", "2.0", 0.2)))
        router.install(ExperimentRoute("exp1", "backend", rollout_split("1.0", "2.0", 0.5)))
        assert router.active_route("backend").variants[1].fraction == 0.5

    def test_uninstall_restores_stable(self):
        router = VersionRouter()
        router.install(ExperimentRoute("exp1", "backend", canary_split("1.0", "2.0", 0.2)))
        router.uninstall("backend")
        assert router.route(make_request(), "backend").proxy_hops == 0

    def test_shadow_versions_passed_through(self):
        router = VersionRouter()
        router.install(
            ExperimentRoute(
                "exp1", "backend", dark_launch_split("1.0"),
                shadow_versions=("2.0",),
            )
        )
        decision = router.route(make_request(), "backend")
        assert decision.shadow_versions == ("2.0",)

    def test_assigner_tracks_samples(self):
        router = VersionRouter()
        router.install(ExperimentRoute("exp1", "backend", canary_split("1.0", "2.0", 0.5)))
        for i in range(100):
            router.route(make_request(user=f"user{i}"), "backend")
        assigner = router.assigner("exp1")
        assert assigner.total_distinct_users() == 100

    def test_unknown_assigner(self):
        with pytest.raises(RoutingError):
            VersionRouter().assigner("ghost")
