"""Truncation sentinel of event-log exports (PR-9 satellite).

A bounded :class:`EventLog` that evicted events must say so in its
exports: the first JSONL line becomes an ``obs.truncated`` sentinel, and
every consumer that assumes a complete history (``load_jsonl``,
``reconstruct_timelines``, the REPLAY backend) either warns or refuses
instead of silently reconstructing a wrong prefix-less history.
"""

import io

import pytest

from repro.errors import ValidationError
from repro.obs.events import (
    ENGINE_CHECK,
    ENGINE_PHASE_ENTERED,
    ENGINE_SUBMITTED,
    OBS_TRUNCATED,
    EventLog,
    TruncatedStreamWarning,
    is_truncation,
    load_jsonl,
    stream_truncation,
)
from repro.obs.timeline import reconstruct_timelines


def filled_log(capacity: int, appended: int) -> EventLog:
    log = EventLog(capacity=capacity)
    for i in range(appended):
        log.append("engine.check", float(i), {"i": i})
    return log


class TestTruncationSentinel:
    def test_lossless_log_has_no_sentinel(self):
        log = filled_log(capacity=10, appended=10)
        assert log.dropped == 0
        assert log.truncation_sentinel() is None
        lines = list(log.jsonl_lines())
        assert len(lines) == 10
        assert all('"obs.truncated"' not in line for line in lines)

    def test_overflowed_log_emits_sentinel_first(self):
        log = filled_log(capacity=5, appended=12)
        sentinel = log.truncation_sentinel()
        assert sentinel is not None
        assert sentinel.kind == OBS_TRUNCATED
        assert sentinel.data["dropped"] == 7
        assert sentinel.data["first_retained_seq"] == 8
        # One below the first retained seq, so sorted exports keep it first.
        assert sentinel.seq == 7
        lines = list(log.jsonl_lines())
        assert len(lines) == 6  # sentinel + 5 retained
        assert '"obs.truncated"' in lines[0]

    def test_export_jsonl_counts_sentinel_line(self):
        log = filled_log(capacity=5, appended=12)
        buffer = io.StringIO()
        assert log.export_jsonl(buffer) == 6

    def test_helpers(self):
        log = filled_log(capacity=5, appended=12)
        sentinel = log.truncation_sentinel()
        assert is_truncation(sentinel)
        assert not is_truncation(log.tail(1)[0])
        events = [sentinel, *log.events()]
        assert stream_truncation(events) is sentinel
        assert stream_truncation(log.events()) is None


class TestLoadJsonlPolicies:
    def lines(self) -> list[str]:
        return list(filled_log(capacity=5, appended=12).jsonl_lines())

    def test_warn_policy_keeps_sentinel_and_warns(self):
        with pytest.warns(TruncatedStreamWarning, match="7 events evicted"):
            events = load_jsonl(self.lines())
        assert len(events) == 6
        assert is_truncation(events[0])

    def test_error_policy_raises(self):
        with pytest.raises(ValidationError, match="truncated"):
            load_jsonl(self.lines(), on_truncated="error")

    def test_ignore_policy_is_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            events = load_jsonl(self.lines(), on_truncated="ignore")
        assert len(events) == 6

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValidationError, match="on_truncated"):
            load_jsonl([], on_truncated="explode")

    def test_lossless_stream_never_warns(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            events = load_jsonl(filled_log(10, 10).jsonl_lines())
        assert len(events) == 10


class TestTimelineRefusal:
    def engine_events(self) -> EventLog:
        log = EventLog(capacity=100)
        log.append(ENGINE_SUBMITTED, 0.0, {"strategy": "s", "start": 0.0})
        log.append(ENGINE_PHASE_ENTERED, 1.0, {"strategy": "s", "phase": "canary"})
        log.append(
            ENGINE_CHECK,
            5.0,
            {"strategy": "s", "check": "errors", "outcome": "pass"},
        )
        return log

    def test_reconstruct_refuses_truncated_stream(self):
        log = self.engine_events()
        sentinel = filled_log(capacity=2, appended=9).truncation_sentinel()
        events = [sentinel, *log.events()]
        with pytest.raises(ValidationError, match="truncated"):
            reconstruct_timelines(events)

    def test_reconstruct_allows_truncated_when_asked(self):
        log = self.engine_events()
        sentinel = filled_log(capacity=2, appended=9).truncation_sentinel()
        timelines = reconstruct_timelines(
            [sentinel, *log.events()], allow_truncated=True
        )
        assert "s" in timelines

    def test_reconstruct_intact_stream_unchanged(self):
        timelines = reconstruct_timelines(self.engine_events().events())
        assert set(timelines) == {"s"}


class TestSinkPolicyMatrix:
    """load_jsonl policies composed with sink round-trips under eviction.

    A :class:`JsonlEventSink` attached from the start captures the
    lossless stream even while the bounded ring evicts; the ring's own
    export is a suffix prefixed by the sentinel.  Every policy must
    behave correctly against both shapes.
    """

    CAPACITY = 4
    APPENDED = 12

    def both_exports(self) -> tuple[list[str], list[str]]:
        """(lossless sink lines, truncated ring lines) for one run."""
        from repro.obs.exporters import JsonlEventSink

        log = EventLog(capacity=self.CAPACITY)
        buffer = io.StringIO()
        with JsonlEventSink(buffer) as sink:
            sink.attach(log, replay=True)
            for i in range(self.APPENDED):
                log.append("engine.check", float(i), {"i": i})
        assert log.dropped == self.APPENDED - self.CAPACITY
        return buffer.getvalue().splitlines(), list(log.jsonl_lines())

    def test_sentinel_is_first_line_of_ring_export(self):
        _, ring_lines = self.both_exports()
        import json

        first = json.loads(ring_lines[0])
        assert first["kind"] == OBS_TRUNCATED
        assert first["data"]["dropped"] == self.APPENDED - self.CAPACITY
        # Exactly one sentinel, and only ever at the head.
        kinds = [json.loads(line)["kind"] for line in ring_lines]
        assert kinds.count(OBS_TRUNCATED) == 1

    @pytest.mark.parametrize("policy", ["warn", "error", "ignore"])
    def test_lossless_sink_stream_loads_under_every_policy(self, policy):
        import warnings

        sink_lines, _ = self.both_exports()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warn here is a bug
            events = load_jsonl(sink_lines, on_truncated=policy)
        assert len(events) == self.APPENDED
        assert stream_truncation(events) is None
        assert [e.seq for e in events] == list(range(1, self.APPENDED + 1))

    def test_truncated_ring_export_warn_keeps_sentinel(self):
        _, ring_lines = self.both_exports()
        dropped = self.APPENDED - self.CAPACITY
        with pytest.warns(TruncatedStreamWarning, match=f"{dropped} events"):
            events = load_jsonl(ring_lines, on_truncated="warn")
        assert is_truncation(events[0])
        assert len(events) == self.CAPACITY + 1

    def test_truncated_ring_export_error_raises(self):
        _, ring_lines = self.both_exports()
        with pytest.raises(ValidationError, match="truncated"):
            load_jsonl(ring_lines, on_truncated="error")

    def test_truncated_ring_export_ignore_is_silent(self):
        import warnings

        _, ring_lines = self.both_exports()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            events = load_jsonl(ring_lines, on_truncated="ignore")
        assert is_truncation(events[0])

    def test_ring_suffix_round_trips_exactly(self):
        """export -> load -> re-export is byte-identical (sentinel incl.)."""
        import json

        _, ring_lines = self.both_exports()
        events = load_jsonl(ring_lines, on_truncated="ignore")
        redumped = [
            json.dumps(e.as_dict(), separators=(",", ":"), sort_keys=True)
            for e in events
        ]
        assert redumped == ring_lines

    def test_sink_stream_is_superset_of_ring_suffix(self):
        sink_lines, ring_lines = self.both_exports()
        assert set(ring_lines[1:]) <= set(sink_lines)


class TestTruncationBanner:
    """The PR-10 satellite: truncation surfaces in renderings, loudly."""

    def overflowed_engine_log(self) -> EventLog:
        log = EventLog(capacity=4)
        log.append(ENGINE_SUBMITTED, 0.0, {"strategy": "s", "start": 0.0})
        for i in range(6):
            log.append(
                ENGINE_CHECK,
                float(i + 1),
                {"strategy": "s", "check": "errors", "outcome": "pass"},
            )
        assert log.dropped > 0
        return log

    def test_render_ascii_shows_banner(self):
        from repro.obs.timeline import render_ascii

        log = self.overflowed_engine_log()
        stream = [log.truncation_sentinel(), *log.events()]
        timelines = reconstruct_timelines(stream, allow_truncated=True)
        text = render_ascii(timelines["s"])
        assert text.splitlines()[0] == f"[TRUNCATED: {log.dropped} events dropped]"

    def test_render_ascii_lossless_has_no_banner(self):
        from repro.obs.timeline import render_ascii

        log = EventLog(capacity=100)
        log.append(ENGINE_SUBMITTED, 0.0, {"strategy": "s", "start": 0.0})
        timelines = reconstruct_timelines(log.events())
        assert "TRUNCATED" not in render_ascii(timelines["s"])

    def test_glass_box_panel_shows_banner(self):
        from repro.obs.dashboard import glass_box_panel
        from repro.obs.observer import Observer

        observer = Observer(enabled=True, event_capacity=4)
        observer.emit(ENGINE_SUBMITTED, 0.0, strategy="s", start=0.0)
        for i in range(8):
            observer.emit(
                ENGINE_CHECK,
                float(i + 1),
                strategy="s",
                check="errors",
                outcome="pass",
            )
        panel = glass_box_panel(observer)
        assert f"[TRUNCATED: {observer.events.dropped} events dropped]" in panel

    def test_glass_box_panel_lossless_has_no_banner(self):
        from repro.obs.dashboard import glass_box_panel
        from repro.obs.observer import Observer

        observer = Observer(enabled=True)
        observer.emit(ENGINE_SUBMITTED, 0.0, strategy="s", start=0.0)
        assert "TRUNCATED" not in glass_box_panel(observer)
