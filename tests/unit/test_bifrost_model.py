"""Unit tests for the Bifrost live-testing model and state machine."""

import pytest

from repro.errors import ConfigurationError, DSLError
from repro.bifrost.model import (
    Check,
    Phase,
    PhaseType,
    Strategy,
)
from repro.bifrost.state_machine import StateMachine


def make_check(name="c", **kwargs) -> Check:
    defaults = dict(
        name=name,
        service="svc",
        version="2.0.0",
        metric="response_time",
        threshold=100.0,
    )
    defaults.update(kwargs)
    return Check(**defaults)


def make_phase(name="p1", **kwargs) -> Phase:
    defaults = dict(
        name=name,
        type=PhaseType.CANARY,
        service="svc",
        stable_version="1.0.0",
        experimental_version="2.0.0",
        fraction=0.1,
    )
    defaults.update(kwargs)
    return Phase(**defaults)


class TestCheck:
    def test_threshold_check(self):
        check = make_check()
        assert not check.is_relative

    def test_relative_check(self):
        check = make_check(threshold=None, baseline_version="1.0.0", tolerance=1.2)
        assert check.is_relative

    def test_exactly_one_reference_required(self):
        with pytest.raises(ConfigurationError):
            make_check(baseline_version="1.0.0")  # both set
        with pytest.raises(ConfigurationError):
            make_check(threshold=None)  # neither set

    def test_operator_validation(self):
        with pytest.raises(ConfigurationError):
            make_check(operator="==")

    @pytest.mark.parametrize(
        "operator,observed,reference,expected",
        [
            ("<", 1.0, 2.0, True),
            ("<", 2.0, 2.0, False),
            ("<=", 2.0, 2.0, True),
            (">", 3.0, 2.0, True),
            (">=", 2.0, 2.0, True),
        ],
    )
    def test_compare(self, operator, observed, reference, expected):
        check = make_check(operator=operator)
        assert check.compare(observed, reference) is expected

    def test_health_kind_normalizes_address(self):
        check = make_check(kind="health", metric="ignored", version="9.9.9")
        assert check.kind == "health"
        # Health checks always read (service, "live", "health.score").
        assert check.version == "live"
        assert check.metric == "health.score"

    def test_health_kind_requires_threshold(self):
        with pytest.raises(ConfigurationError):
            make_check(
                kind="health", threshold=None,
                baseline_version="1.0.0", tolerance=1.1,
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_check(kind="vibes")

    def test_serialization_round_trips_kind(self):
        from repro.bifrost.model import check_from_dict, check_to_dict

        check = make_check(kind="health", threshold=0.9, operator=">=")
        data = check_to_dict(check)
        assert data["kind"] == "health"
        assert check_from_dict(data) == check
        # Journals written before kinds existed default to metric checks.
        legacy = check_to_dict(make_check())
        del legacy["kind"]
        assert check_from_dict(legacy).kind == "metric"

    def test_window_positive(self):
        with pytest.raises(ConfigurationError):
            make_check(window_seconds=0.0)


class TestPhase:
    def test_ab_needs_second_version(self):
        with pytest.raises(ConfigurationError):
            make_phase(type=PhaseType.AB_TEST)

    def test_rollout_needs_steps(self):
        with pytest.raises(ConfigurationError):
            make_phase(type=PhaseType.GRADUAL_ROLLOUT)

    def test_steps_bounds(self):
        with pytest.raises(ConfigurationError):
            make_phase(type=PhaseType.GRADUAL_ROLLOUT, steps=(0.5, 1.5))

    def test_canary_fraction_open_interval(self):
        with pytest.raises(ConfigurationError):
            make_phase(fraction=1.0)

    def test_valid_rollout(self):
        phase = make_phase(type=PhaseType.GRADUAL_ROLLOUT, steps=(0.25, 1.0))
        assert phase.steps == (0.25, 1.0)


class TestStrategy:
    def test_duplicate_phase_names(self):
        with pytest.raises(ConfigurationError):
            Strategy("s", (make_phase("a"), make_phase("a")))

    def test_unknown_transition_target(self):
        with pytest.raises(ConfigurationError):
            Strategy("s", (make_phase("a", on_success="ghost"),))

    def test_entry_is_first_phase(self):
        strategy = Strategy(
            "s",
            (make_phase("a", on_success="b"), make_phase("b")),
        )
        assert strategy.entry.name == "a"

    def test_phase_lookup(self):
        strategy = Strategy("s", (make_phase("a"),))
        assert strategy.phase("a").name == "a"
        with pytest.raises(ConfigurationError):
            strategy.phase("z")

    def test_services_collected(self):
        strategy = Strategy(
            "s",
            (
                make_phase("a", service="x", on_success="b"),
                make_phase("b", service="y"),
            ),
        )
        assert strategy.services == frozenset({"x", "y"})

    def test_total_checks(self):
        strategy = Strategy(
            "s", (make_phase("a", checks=(make_check("c1"), make_check("c2"))),)
        )
        assert strategy.total_checks() == 2


class TestStateMachine:
    def test_states_include_terminals(self):
        machine = StateMachine(Strategy("s", (make_phase("a"),)))
        names = {state.name for state in machine.states}
        assert {"a", "complete", "rollback", "abort"} <= names

    def test_next_state(self):
        strategy = Strategy(
            "s", (make_phase("a", on_success="b"), make_phase("b"))
        )
        machine = StateMachine(strategy)
        assert machine.next_state("a", "success") == "b"
        assert machine.next_state("a", "failure") == "rollback"

    def test_repeat_resolves_to_self(self):
        machine = StateMachine(Strategy("s", (make_phase("a"),)))
        assert machine.next_state("a", "inconclusive") == "a"

    def test_unreachable_phase_rejected(self):
        with pytest.raises(DSLError):
            StateMachine(
                Strategy(
                    "s",
                    (
                        make_phase("a"),  # success -> complete, never to b
                        make_phase("b"),
                    ),
                )
            )

    def test_to_dot_mentions_all_states(self):
        strategy = Strategy(
            "s", (make_phase("a", on_success="b"), make_phase("b"))
        )
        dot = StateMachine(strategy).to_dot()
        for name in ("a", "b", "complete", "rollback"):
            assert name in dot

    def test_unknown_state_lookup(self):
        machine = StateMachine(Strategy("s", (make_phase("a"),)))
        with pytest.raises(DSLError):
            machine.state("ghost")
