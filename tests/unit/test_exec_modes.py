"""Unit tests for the execution layer: modes, recordings, routing.

Covers the PR-9 surface below the e2e level: the ``mode`` DSL keyword
and its model validation, the check-level ``version`` round trip the
replay fidelity depends on, the :class:`Recording` JSONL format, digest
semantics, the router's mode-resolution precedence, and the middleware's
submit-time mode guard.
"""

import io

import pytest

from repro.bifrost.dsl import parse_strategy, strategy_to_dsl
from repro.bifrost.middleware import Bifrost
from repro.bifrost.model import (
    Check,
    Phase,
    PhaseType,
    Strategy,
    strategy_from_dict,
    strategy_to_dict,
)
from repro.errors import (
    ConfigurationError,
    DSLError,
    ReplayError,
    ValidationError,
)
from repro.exec import (
    ExecutionMode,
    ExecutionRouter,
    RecordedRequest,
    RecordedSpan,
    Recording,
    ReplayBackend,
    diff_replay,
    run_digest,
)
from repro.obs.events import EventLog
from repro.traffic.users import UserPopulation
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.workload import WorkloadGenerator


def canary_strategy(**overrides) -> Strategy:
    defaults = dict(
        name="canary",
        type=PhaseType.CANARY,
        service="backend",
        stable_version="1.0.0",
        experimental_version="2.0.0",
        fraction=0.3,
        duration_seconds=30.0,
        check_interval_seconds=5.0,
        checks=(
            Check(
                name="errors",
                service="backend",
                version="2.0.0",
                metric="error",
                threshold=0.1,
                window_seconds=20.0,
            ),
        ),
    )
    defaults.update(overrides)
    mode = defaults.pop("execution_mode", "sim")
    return Strategy("s", (Phase(**defaults),), execution_mode=mode)


class TestModeInDSL:
    def test_mode_parses_and_round_trips(self):
        text = "strategy s\n  mode live\n  phase p\n    service backend\n"
        strategy = parse_strategy(text)
        assert strategy.execution_mode == "live"
        assert "  mode live" in strategy_to_dsl(strategy)
        assert parse_strategy(strategy_to_dsl(strategy)).execution_mode == "live"

    def test_default_mode_is_sim_and_not_serialized(self):
        strategy = parse_strategy("strategy s\n  phase p\n    service backend\n")
        assert strategy.execution_mode == "sim"
        assert "mode" not in strategy_to_dsl(strategy)

    def test_unknown_mode_rejected(self):
        with pytest.raises(DSLError, match="unknown mode"):
            parse_strategy("strategy s\n  mode warp\n  phase p\n")

    def test_model_validates_mode(self):
        with pytest.raises(ConfigurationError, match="execution mode"):
            Strategy("s", (), execution_mode="warp")

    def test_mode_survives_dict_round_trip(self):
        strategy = canary_strategy(execution_mode="live")
        doc = strategy_to_dict(strategy)
        assert doc["execution_mode"] == "live"
        assert strategy_from_dict(doc).execution_mode == "live"


class TestCheckVersionRoundTrip:
    def test_check_version_differing_from_experimental_survives_dsl(self):
        # The replay-fidelity bug this PR fixes: a check watching the
        # *stable* version used to be silently rebound to the
        # experimental one by a DSL round trip.
        strategy = canary_strategy(
            checks=(
                Check(
                    name="user-errors",
                    service="backend",
                    version="1.0.0",
                    metric="error",
                    threshold=0.1,
                    window_seconds=20.0,
                ),
            )
        )
        text = strategy_to_dsl(strategy)
        assert "      version 1.0.0" in text
        reparsed = parse_strategy(text)
        assert reparsed.entry.checks[0].version == "1.0.0"
        assert strategy_to_dsl(reparsed) == text

    def test_check_version_defaults_to_experimental(self):
        text = (
            "strategy s\n"
            "  phase p\n"
            "    service backend\n"
            "    stable 1.0.0\n"
            "    experimental 2.0.0\n"
            "    check errors\n"
            "      metric error\n"
            "      threshold 0.1\n"
        )
        check = parse_strategy(text).entry.checks[0]
        assert check.version == "2.0.0"


class TestBifrostModeGuard:
    def test_rejects_unknown_middleware_mode(self, tiny_app):
        with pytest.raises(ConfigurationError, match="execution mode"):
            Bifrost(tiny_app, mode="warp")

    def test_rejects_mode_pinned_strategy(self, canary_app):
        bifrost = Bifrost(canary_app)
        with pytest.raises(ConfigurationError, match="ExecutionRouter"):
            bifrost.submit(canary_strategy(execution_mode="live"))

    def test_accepts_default_mode_strategy(self, canary_app):
        bifrost = Bifrost(canary_app)
        execution = bifrost.submit(canary_strategy(), at=1.0)
        assert execution.strategy.name == "s"

    def test_matching_pinned_mode_accepted(self, canary_app):
        bifrost = Bifrost(canary_app, mode="live")
        execution = bifrost.submit(canary_strategy(execution_mode="live"))
        assert execution.strategy.execution_mode == "live"


class TestModeResolution:
    def router(self, canary_app) -> ExecutionRouter:
        return ExecutionRouter(lambda: canary_app)

    def test_coerce(self):
        assert ExecutionMode.coerce("sim") is ExecutionMode.SIM
        assert ExecutionMode.coerce(ExecutionMode.LIVE) is ExecutionMode.LIVE
        with pytest.raises(ConfigurationError, match="unknown execution mode"):
            ExecutionMode.coerce("warp")

    def test_explicit_argument_wins(self, canary_app):
        router = self.router(canary_app)
        strategy = canary_strategy(execution_mode="live")
        assert (
            router.resolve_mode(strategy, "sim", None) is ExecutionMode.SIM
        )

    def test_strategy_pin_beats_recording(self, canary_app):
        router = self.router(canary_app)
        recording = Recording("", seed=1, submit_at=0.0, end_time=1.0)
        strategy = canary_strategy(execution_mode="live")
        assert (
            router.resolve_mode(strategy, None, recording)
            is ExecutionMode.LIVE
        )

    def test_recording_implies_replay(self, canary_app):
        router = self.router(canary_app)
        recording = Recording("", seed=1, submit_at=0.0, end_time=1.0)
        assert (
            router.resolve_mode(canary_strategy(), None, recording)
            is ExecutionMode.REPLAY
        )

    def test_default_is_sim(self, canary_app):
        assert (
            self.router(canary_app).resolve_mode(canary_strategy(), None, None)
            is ExecutionMode.SIM
        )

    def test_replay_needs_recording(self, canary_app):
        with pytest.raises(ConfigurationError, match="needs a recording"):
            self.router(canary_app).run(canary_strategy(), mode="replay")

    def test_sim_needs_workload(self, canary_app):
        with pytest.raises(ConfigurationError, match="needs a workload"):
            self.router(canary_app).run(canary_strategy(), mode="sim")

    def test_live_cannot_record(self, canary_app):
        with pytest.raises(ConfigurationError, match="SIM-mode feature"):
            self.router(canary_app).run(
                canary_strategy(), workload=[], mode="live", record=True
            )


class TestRecordingFormat:
    def recording(self) -> Recording:
        log = EventLog(capacity=100)
        log.append("engine.submitted", 0.0, {"strategy": "s", "start": 0.0})
        return Recording(
            strategy_dsl="strategy s\n  phase p\n    service backend\n",
            seed=7,
            submit_at=1.0,
            end_time=60.0,
            events=log.events(),
            requests=[
                RecordedRequest(
                    timestamp=2.0,
                    user_id="u1",
                    group="eu",
                    entry="frontend.home",
                    headers={"x-group": "eu"},
                    spans=(
                        RecordedSpan("frontend", "1.0.0", 2.0, 12.5, False),
                        RecordedSpan("backend", "1.0.0", 2.1, 8.0, True),
                    ),
                    duration_ms=12.5,
                    error=False,
                )
            ],
            digest="d" * 64,
            outcomes={"s": "completed"},
            strategy_doc={"name": "s"},
        )

    def test_jsonl_round_trip_is_lossless(self):
        recording = self.recording()
        buffer = io.StringIO()
        lines = recording.save(buffer)
        # meta + 1 event + 1 request + digest
        assert lines == 4
        loaded = Recording.from_jsonl(buffer.getvalue().splitlines())
        assert loaded.strategy_dsl == recording.strategy_dsl
        assert loaded.strategy_doc == {"name": "s"}
        assert loaded.seed == 7
        assert loaded.submit_at == 1.0
        assert loaded.end_time == 60.0
        assert loaded.digest == recording.digest
        assert loaded.outcomes == {"s": "completed"}
        assert loaded.events[0].kind == "engine.submitted"
        assert loaded.requests[0].spans == recording.requests[0].spans
        assert loaded.requests[0].headers == {"x-group": "eu"}

    def test_unknown_line_type_rejected(self):
        with pytest.raises(ValidationError, match="unknown recording line"):
            Recording.from_jsonl(['{"type": "mystery"}'])

    def test_missing_meta_rejected(self):
        with pytest.raises(ValidationError, match="meta"):
            Recording.from_jsonl(['{"type": "digest", "value": "x"}'])

    def test_undecodable_line_rejected(self):
        with pytest.raises(ValidationError, match="undecodable"):
            Recording.from_jsonl(["{not json"])

    def test_truncated_recording_detected_and_refused(self, canary_app):
        log = EventLog(capacity=2)
        for i in range(9):
            log.append("engine.check", float(i), {})
        recording = self.recording()
        recording.events = [log.truncation_sentinel(), *log.events()]
        assert recording.truncated is not None
        backend = ReplayBackend(lambda: canary_app)
        with pytest.raises(ReplayError, match="truncated"):
            backend.execute(recording)
        with pytest.raises(ReplayError, match="truncated"):
            diff_replay(recording, object())

    def test_recording_without_strategy_refused(self, canary_app):
        recording = Recording("", seed=1, submit_at=0.0, end_time=1.0)
        with pytest.raises(ReplayError, match="no strategy"):
            ReplayBackend(lambda: canary_app).execute(recording)


class TestRecordReplayUnit:
    """A fast in-process record→replay cycle on the tiny fixture app."""

    def run_recorded(self, canary_app):
        router = ExecutionRouter(lambda: canary_app, seed=11)
        population = UserPopulation(150, DEFAULT_GROUPS, seed=12)
        workload = WorkloadGenerator(
            population, entry="frontend.home", seed=13
        )
        return router, router.run(
            canary_strategy(),
            workload=workload.poisson(20.0, 40.0),
            until=60.0,
            submit_at=1.0,
            record=True,
        )

    def test_replay_is_digest_equal(self, canary_app):
        router, report = self.run_recorded(canary_app)
        recording = report.recording
        assert recording is not None
        assert recording.requests and recording.events
        assert recording.digest == report.details.recording.digest
        replay_report = router.run(mode="replay", recording=recording)
        assert replay_report.mode is ExecutionMode.REPLAY
        assert replay_report.replay.digest_match
        assert replay_report.replay.identical, replay_report.replay.describe()
        assert replay_report.outcome == report.outcome

    def test_replay_survives_serialization(self, canary_app):
        router, report = self.run_recorded(canary_app)
        buffer = io.StringIO()
        report.recording.save(buffer)
        loaded = Recording.from_jsonl(buffer.getvalue().splitlines())
        replay_report = router.run(recording=loaded)  # implies REPLAY
        assert replay_report.replay.identical, replay_report.replay.describe()

    def test_what_if_replay_diverges_visibly(self, canary_app):
        # Replaying a *stricter* strategy against the same traffic is the
        # what-if workflow: the diff must flag the divergence rather than
        # pretend the replay was faithful.
        router, report = self.run_recorded(canary_app)
        strict = canary_strategy(
            checks=(
                Check(
                    name="errors",
                    service="backend",
                    version="2.0.0",
                    metric="response_time",
                    threshold=1.0,  # impossible: constant 30ms latency
                    window_seconds=20.0,
                ),
            )
        )
        replay_report = router.run(
            strict, mode="replay", recording=report.recording
        )
        assert not replay_report.replay.identical
        assert replay_report.rolled_back

    def test_digest_covers_store_contents(self, canary_app):
        router, report = self.run_recorded(canary_app)
        result = report.details
        digest_before = run_digest(
            result.middleware.store, result.executions
        )
        result.middleware.store.record("backend", "1.0.0", "error", 59.0, 1.0)
        digest_after = run_digest(result.middleware.store, result.executions)
        assert digest_before != digest_after
