"""Unit tests for crash-consistent fleet recovery."""

import pytest

from repro.bifrost.journal import Journal, MemoryJournalStorage
from repro.errors import ValidationError
from repro.fleet import (
    ExperimentFaults,
    FleetOrchestrator,
    OrchestratorKilled,
    recover_fleet,
)
from tests.unit.test_fleet_orchestrator import fast_config, make_schedule


class FleetHarness:
    """One fleet over durable (in-memory) storage, killable and recoverable."""

    def __init__(self, schedule, config, faults=None, world=None):
        self.schedule = schedule
        self.config = config
        self.faults = faults or {}
        self.world = world or {}
        self.fleet_storage = MemoryJournalStorage()
        self.exp_storages = {}

    def journal_factory(self, name):
        storage = self.exp_storages.setdefault(name, MemoryJournalStorage())
        return Journal(storage)

    def build(self, kill_at=None):
        return FleetOrchestrator(
            self.schedule,
            world=self.world,
            faults=self.faults,
            config=self.config,
            fleet_journal=Journal(self.fleet_storage),
            journal_factory=self.journal_factory,
            crash_after_appends=kill_at,
        )

    def run_killed(self, kill_at):
        """Run until the injected kill; returns whether the kill fired."""
        orchestrator = self.build(kill_at=kill_at)
        try:
            orchestrator.run()
            return False
        except OrchestratorKilled:
            return True

    def recover(self):
        return recover_fleet(
            Journal(self.fleet_storage), self.journal_factory
        )


def uncrashed_digest(schedule, config, faults=None, world=None):
    return FleetOrchestrator(
        schedule, world=world or {}, faults=faults or {}, config=config
    ).run().digest()


FAULTS = {
    "exp0": ExperimentFaults(crash_loop=True),
    "exp2": ExperimentFaults(check_error_slots=tuple(range(16))),
    "exp3": ExperimentFaults(crash_slots=(2,)),
}


class TestKillAndRecover:
    @pytest.mark.parametrize("kill_at", [1, 3, 5, 8, 12])
    def test_recovered_equals_uncrashed(self, kill_at):
        schedule = make_schedule(4, looper=0, looper_duration=6)
        config = fast_config(restart_max=2)
        world = {"exp1": 0.4}
        baseline = uncrashed_digest(schedule, config, FAULTS, world)
        harness = FleetHarness(schedule, config, FAULTS, world)
        killed = harness.run_killed(kill_at)
        assert killed, f"kill point {kill_at} never reached"
        recovered = harness.recover()
        result = recovered.run()
        assert result.recovered
        assert result.digest() == baseline

    def test_kill_before_first_append_loses_nothing(self):
        schedule = make_schedule(2)
        config = fast_config()
        harness = FleetHarness(schedule, config)
        with pytest.raises(OrchestratorKilled):
            harness.build(kill_at=0)
        # Nothing durable: a fresh orchestrator starts from scratch.
        assert harness.fleet_storage.lines == []

    def test_crash_loop_budget_not_refilled_by_recovery(self):
        # Kill the orchestrator after the looper has burned restarts;
        # the recovered supervisor must remember them, or the looper
        # would limp on with a fresh budget and diverge from baseline.
        schedule = make_schedule(2, looper=0, looper_duration=6)
        config = fast_config(restart_max=2)
        faults = {"exp0": ExperimentFaults(crash_loop=True)}
        baseline = uncrashed_digest(schedule, config, faults)
        harness = FleetHarness(schedule, config, faults)
        assert harness.run_killed(8)
        recovered = harness.recover()
        looper = recovered.bulkheads["exp0"].supervisor
        assert looper.restarts >= 1
        assert len(looper.restart_times) == looper.restarts
        result = recovered.run()
        assert result.digest() == baseline
        assert result.sheds["exp0"] == "crash_loop"

    def test_recovery_emits_recovered_record(self):
        from repro.fleet.orchestrator import K_RECOVERED

        schedule = make_schedule(2)
        config = fast_config()
        harness = FleetHarness(schedule, config)
        assert harness.run_killed(4)
        harness.recover()
        kinds = [r.kind for r in Journal(harness.fleet_storage).load()[0]]
        assert K_RECOVERED in kinds


class TestRecoveryEdgeCases:
    def test_no_planned_record_rejected(self):
        with pytest.raises(ValidationError):
            recover_fleet(Journal(), lambda name: Journal())

    def test_corrupt_tail_truncated(self):
        schedule = make_schedule(2)
        config = fast_config()
        harness = FleetHarness(schedule, config)
        assert harness.run_killed(5)
        harness.fleet_storage.lines.append('{"torn wri')
        recovered = harness.recover()
        result = recovered.run()
        assert result.digest() == uncrashed_digest(schedule, config)

    def test_double_kill_double_recovery(self):
        schedule = make_schedule(4, looper=0, looper_duration=6)
        config = fast_config(restart_max=2)
        baseline = uncrashed_digest(schedule, config, FAULTS)
        harness = FleetHarness(schedule, config, FAULTS)
        assert harness.run_killed(4)
        # Second incarnation dies too (counting restarts from zero
        # appends again), before a third finally finishes the fleet.
        second = recover_fleet(
            Journal(harness.fleet_storage),
            harness.journal_factory,
            crash_after_appends=6,
        )
        with pytest.raises(OrchestratorKilled):
            second.run()
        result = harness.recover().run()
        assert result.digest() == baseline
