"""Unit tests for multi-window burn-rate alerting (PR-10 tentpole).

Covers rule validation, the burn arithmetic, the multi-window AND
discipline, edge-triggered event emission, gate publication for ``kind
slo`` checks, and the simulation-attached evaluation tick.
"""

import pytest

from repro.errors import ConfigurationError
from repro.obs.alerts import (
    ALERTS_VERSION,
    AlertEngine,
    AlertRule,
    alert_metric,
)
from repro.obs.events import ALERT_FIRED, ALERT_RESOLVED
from repro.obs.observer import Observer
from repro.simulation.engine import SimulationEngine
from repro.telemetry.store import MetricStore


def rule(**overrides) -> AlertRule:
    fields = dict(
        name="checkout-slo",
        service="backend",
        version="2.0.0",
        objective=0.95,  # 5% error budget
        fast_window=10.0,
        slow_window=40.0,
        burn_threshold=2.0,
    )
    fields.update(overrides)
    return AlertRule(**fields)


def feed_errors(store: MetricStore, times, error_rate: float) -> None:
    """Record a 0/1 error stream whose mean is exactly *error_rate*."""
    for t in times:
        # Ten samples per tick with error_rate*10 ones.
        ones = round(error_rate * 10)
        for i in range(10):
            store.record(
                "backend", "2.0.0", "error", t, 1.0 if i < ones else 0.0
            )


class TestAlertRule:
    def test_error_budget(self):
        assert rule(objective=0.95).error_budget == pytest.approx(0.05)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"name": ""},
            {"objective": 0.0},
            {"objective": 1.0},
            {"fast_window": 0.0},
            {"slow_window": -1.0},
            {"fast_window": 50.0},  # slow(40) < fast
            {"burn_threshold": 0.0},
        ],
    )
    def test_invalid_rules_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            rule(**overrides)

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            AlertEngine(MetricStore(), [rule(), rule()])

    def test_non_positive_interval_rejected(self):
        with pytest.raises(ConfigurationError, match="interval"):
            AlertEngine(MetricStore(), [rule()], interval=0.0)


class TestBurnEvaluation:
    def test_empty_fast_window_yields_no_verdict_or_publication(self):
        store = MetricStore()
        engine = AlertEngine(store, [rule()])
        (result,) = engine.evaluate(100.0)
        assert result.burn is None and not result.firing
        assert not store.values_in_window(
            "backend", ALERTS_VERSION, alert_metric("checkout-slo"), 0.0, 200.0
        )

    def test_burn_is_error_rate_over_budget(self):
        store = MetricStore()
        # 10% errors against a 5% budget -> burn 2.0 in both windows.
        feed_errors(store, [float(t) for t in range(0, 40)], 0.10)
        engine = AlertEngine(store, [rule()])
        (result,) = engine.evaluate(40.0)
        assert result.fast_burn == pytest.approx(2.0)
        assert result.slow_burn == pytest.approx(2.0)
        assert result.burn == pytest.approx(2.0)

    def test_fires_when_both_windows_exceed_threshold(self):
        store = MetricStore()
        # 20% errors against a 5% budget -> burn 4.0, well past 2.0.
        feed_errors(store, [float(t) for t in range(0, 40)], 0.20)
        engine = AlertEngine(store, [rule()])
        (result,) = engine.evaluate(40.0)
        assert result.burn == pytest.approx(4.0)
        assert result.firing

    def test_fires_only_when_both_windows_burn(self):
        store = MetricStore()
        # Long healthy history, then a burst only inside the fast window:
        # the slow window dilutes it below threshold -> no fire yet.
        feed_errors(store, [float(t) for t in range(0, 30)], 0.0)
        feed_errors(store, [float(t) for t in range(30, 40)], 0.20)
        engine = AlertEngine(store, [rule()])
        (result,) = engine.evaluate(40.0)
        assert result.fast_burn == pytest.approx(4.0)
        assert result.slow_burn == pytest.approx(1.0)
        assert result.burn == pytest.approx(1.0)  # min(fast, slow)
        assert not result.firing

    def test_empty_slow_window_falls_back_to_fast(self):
        store = MetricStore()
        feed_errors(store, [95.0, 96.0, 97.0], 0.20)  # only recent samples
        engine = AlertEngine(store, [rule()])
        (result,) = engine.evaluate(100.0)
        assert result.slow_burn == result.fast_burn
        assert result.firing

    def test_evaluate_is_pure_in_store_and_now(self):
        store = MetricStore()
        feed_errors(store, [float(t) for t in range(0, 40)], 0.10)
        first = AlertEngine(store, [rule()], publish=False).evaluate(40.0)
        second = AlertEngine(store, [rule()], publish=False).evaluate(40.0)
        assert first == second


class TestEdgeTriggeredEvents:
    def run_burst(self, observer: Observer) -> AlertEngine:
        store = MetricStore()
        engine = AlertEngine(store, [rule()], observer=observer)
        feed_errors(store, [float(t) for t in range(0, 40)], 0.20)
        engine.evaluate(40.0)  # fires
        engine.evaluate(41.0)  # still firing: no second event
        feed_errors(store, [float(t) for t in range(41, 80)], 0.0)
        engine.evaluate(80.0)  # resolved
        return engine

    def test_fired_and_resolved_emitted_once_per_edge(self):
        observer = Observer(enabled=True)
        engine = self.run_burst(observer)
        counts = observer.events.counts_by_kind()
        assert counts[ALERT_FIRED] == 1
        assert counts[ALERT_RESOLVED] == 1
        assert engine.active() == ()
        fired = observer.events.events(kinds={ALERT_FIRED})[0]
        assert fired.data["rule"] == "checkout-slo"
        assert fired.data["burn"] >= fired.data["threshold"]
        assert observer.metrics.value(
            "alert_transitions_total", rule="checkout-slo", state="firing"
        ) == 1.0

    def test_active_reflects_firing_state(self):
        store = MetricStore()
        engine = AlertEngine(store, [rule()])
        feed_errors(store, [float(t) for t in range(0, 40)], 0.20)
        engine.evaluate(40.0)
        assert engine.active() == ("checkout-slo",)
        assert engine.firing("checkout-slo")
        assert not engine.firing("unknown")


class TestGatePublication:
    def test_publish_records_gate_under_alerts_version(self):
        store = MetricStore()
        engine = AlertEngine(store, [rule()])
        feed_errors(store, [float(t) for t in range(0, 40)], 0.10)
        engine.evaluate(40.0)
        values = store.values_in_window(
            "backend", ALERTS_VERSION, alert_metric("checkout-slo"), 0.0, 50.0
        )
        assert values == [pytest.approx(2.0)]

    def test_publish_false_leaves_store_untouched(self):
        store = MetricStore()
        engine = AlertEngine(store, [rule()], publish=False)
        feed_errors(store, [float(t) for t in range(0, 40)], 0.10)
        before = store.snapshot()
        engine.evaluate(40.0)
        assert store.snapshot() == before


class TestSimulationAttachment:
    def test_attach_self_schedules_on_interval(self):
        store = MetricStore()
        simulation = SimulationEngine()
        engine = AlertEngine(store, [rule()], interval=5.0).attach(simulation)
        simulation.run_until(26.0)
        assert engine.evaluations == 5  # t = 5, 10, 15, 20, 25
