"""Unit tests for multi-strategy DSL files."""

import pytest

from repro.errors import DSLError
from repro.bifrost.dsl import parse_strategies, strategy_to_dsl

TWO_STRATEGIES = """
# Team checkout's experiments for sprint 42.

strategy checkout-canary
  phase canary
    type canary
    service checkout
    stable 1.0.0
    experimental 2.0.0
    fraction 0.1

strategy search-ab
  description "search ranker A/B"
  phase compare
    type ab_test
    service search
    stable 1.0.0
    experimental 2.0.0
    second 2.1.0
    fraction 0.5
"""


class TestParseStrategies:
    def test_parses_both(self):
        strategies = parse_strategies(TWO_STRATEGIES)
        assert [s.name for s in strategies] == ["checkout-canary", "search-ab"]

    def test_single_strategy_file(self):
        single = strategy_to_dsl(parse_strategies(TWO_STRATEGIES)[0])
        assert len(parse_strategies(single)) == 1

    def test_blocks_are_independent(self):
        strategies = parse_strategies(TWO_STRATEGIES)
        assert strategies[0].services == frozenset({"checkout"})
        assert strategies[1].services == frozenset({"search"})
        assert strategies[1].description == "search ranker A/B"

    def test_empty_file_rejected(self):
        with pytest.raises(DSLError):
            parse_strategies("# nothing here\n")

    def test_duplicate_names_rejected(self):
        duplicated = TWO_STRATEGIES.replace("search-ab", "checkout-canary")
        with pytest.raises(DSLError):
            parse_strategies(duplicated)

    def test_round_trip_all(self):
        strategies = parse_strategies(TWO_STRATEGIES)
        text = "\n".join(strategy_to_dsl(s) for s in strategies)
        again = parse_strategies(text)
        assert again == strategies

    def test_compatible_with_verification(self):
        from repro.verification import verify_strategies_compatible

        strategies = parse_strategies(TWO_STRATEGIES)
        assert verify_strategies_compatible(strategies).ok
