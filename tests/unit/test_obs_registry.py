"""Unit tests for the metric registry, observer facade, and exporters."""

import io

import pytest

from repro.errors import ValidationError
from repro.obs.events import EventLog
from repro.obs.exporters import (
    JsonlEventSink,
    format_sample,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.observer import NULL_OBSERVER, NullTimer, Observer, Timer
from repro.obs.registry import (
    NOOP_INSTRUMENT,
    MetricRegistry,
    labels_key,
)
from repro.telemetry.store import MetricStore


class TestMetricRegistry:
    def test_counter_children_are_distinct_per_label_set(self):
        registry = MetricRegistry()
        registry.counter("checks_total", outcome="pass").increment()
        registry.counter("checks_total", outcome="pass").increment()
        registry.counter("checks_total", outcome="fail").increment()
        assert registry.value("checks_total", outcome="pass") == 2.0
        assert registry.value("checks_total", outcome="fail") == 1.0

    def test_label_order_does_not_matter(self):
        assert labels_key({"a": "1", "b": "2"}) == labels_key({"b": "2", "a": "1"})
        registry = MetricRegistry()
        registry.gauge("g", a="1", b="2").set(3.0)
        assert registry.value("g", b="2", a="1") == 3.0

    def test_kind_mismatch_raises(self):
        registry = MetricRegistry()
        registry.counter("m")
        with pytest.raises(ValidationError):
            registry.gauge("m")

    def test_disabled_registry_is_noop(self):
        registry = MetricRegistry(enabled=False)
        instrument = registry.counter("anything", label="x")
        assert instrument is NOOP_INSTRUMENT
        instrument.increment()
        instrument.observe(1.0)
        assert len(registry) == 0
        assert registry.collect() == []

    def test_collect_histogram_shape(self):
        registry = MetricRegistry()
        for v in (1.0, 2.0, 3.0):
            registry.histogram("lat_seconds", stage="fold").observe(v)
        samples = {s.name: s for s in registry.collect()}
        assert samples["lat_seconds_count"].value == 3.0
        assert samples["lat_seconds_sum"].value == 6.0
        quantiles = [
            s for s in registry.collect() if s.name == "lat_seconds"
        ]
        assert {dict(s.labels)["quantile"] for s in quantiles} == {
            "p50",
            "p90",
            "p99",
        }

    def test_value_absent_child_is_none(self):
        registry = MetricRegistry()
        assert registry.value("missing") is None
        registry.histogram("h").observe(1.0)
        assert registry.value("h") is None  # histograms have no scalar value


class TestObserver:
    def test_emit_appends_event_with_payload(self):
        observer = Observer(enabled=True)
        event = observer.emit("engine.check", 5.0, check="errors", outcome="pass")
        assert event is not None
        assert event.time == 5.0
        assert event.data["check"] == "errors"
        assert len(observer.events) == 1

    def test_disabled_observer_emits_nothing(self):
        observer = Observer(enabled=False)
        assert observer.emit("engine.check", 5.0) is None
        assert len(observer.events) == 0
        assert not observer.enabled

    def test_null_observer_is_disabled(self):
        assert not NULL_OBSERVER.enabled
        assert NULL_OBSERVER.emit("k", 0.0) is None

    def test_timed_records_histogram_observation(self):
        observer = Observer(enabled=True)
        with observer.timed("stage_seconds", stage="fold") as timer:
            assert isinstance(timer, Timer)
        samples = {s.name: s for s in observer.metrics.collect()}
        assert samples["stage_seconds_count"].value == 1.0
        assert timer.elapsed_s >= 0.0

    def test_timed_on_disabled_observer_is_null(self):
        with NULL_OBSERVER.timed("stage_seconds") as timer:
            assert isinstance(timer, NullTimer)


class TestPrometheusExposition:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("health.score") == "health_score"
        assert sanitize_metric_name("1bad") == "_1bad"
        assert sanitize_metric_name("") == "_"

    def test_format_sample_escapes_label_values(self):
        line = format_sample("m", (("svc", 'a"b\n'),), 1.0)
        assert line == 'm{svc="a\\"b\\n"} 1'

    def test_render_registry_families_with_type_headers(self):
        registry = MetricRegistry()
        registry.counter("checks_total", outcome="pass").increment(3)
        text = render_prometheus(registry)
        assert "# TYPE repro_checks_total counter" in text
        assert 'repro_checks_total{outcome="pass"} 3' in text

    def test_render_store_series(self):
        store = MetricStore()
        store.record("backend", "1.0.0", "error", 1.0, 0.0)
        store.record("backend", "1.0.0", "error", 2.0, 1.0)
        text = render_prometheus(store=store)
        assert "# TYPE repro_store_samples counter" in text
        assert (
            'repro_store_samples{metric="error",service="backend",'
            'version="1.0.0"} 2' in text
        )
        assert (
            'repro_store_last{metric="error",service="backend",'
            'version="1.0.0"} 1' in text
        )

    def test_disabled_registry_renders_empty(self):
        assert render_prometheus(MetricRegistry(enabled=False)) == ""


class TestJsonlEventSink:
    def test_sink_captures_stream_beyond_ring_capacity(self):
        log = EventLog(capacity=2)
        buffer = io.StringIO()
        sink = JsonlEventSink(buffer).attach(log)
        for i in range(6):
            log.append("k", float(i))
        sink.close()
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 6  # the ring only retains 2
        assert sink.written == 6

    def test_attach_with_replay_writes_backlog(self):
        log = EventLog()
        log.append("a", 0.0)
        buffer = io.StringIO()
        with JsonlEventSink(buffer) as sink:
            sink.attach(log, replay=True)
            log.append("b", 1.0)
        assert len(buffer.getvalue().splitlines()) == 2

    def test_closed_sink_ignores_writes(self):
        log = EventLog()
        buffer = io.StringIO()
        sink = JsonlEventSink(buffer).attach(log)
        sink.close()
        log.append("k", 0.0)
        assert sink.written == 0

    def test_file_target_round_trips(self, tmp_path):
        from repro.obs.events import load_jsonl

        path = tmp_path / "events.jsonl"
        log = EventLog()
        with JsonlEventSink(str(path)) as sink:
            sink.attach(log)
            log.append("k", 1.0, {"x": 2})
        events = load_jsonl(path.read_text().splitlines())
        assert events == list(log)


def _lint_exposition(text: str) -> dict[str, str]:
    """Prometheus format lint: returns {family: declared type}.

    Asserts the invariants scrape endpoints rely on: every sample line
    is covered by exactly one preceding ``# TYPE`` header for its
    family, no family is declared twice or ``untyped``, and summary
    families carry a conformant ``_count``/``_sum`` pair.
    """
    import re

    types: dict[str, str] = {}
    current: str | None = None
    samples_of: dict[str, list[str]] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, family, declared = line.split(" ")
            assert family not in types, f"family {family} declared twice"
            assert declared in {"counter", "gauge", "summary"}, (
                f"family {family} declared {declared!r}"
            )
            types[family] = declared
            current = family
            continue
        assert not line.startswith("#"), f"unexpected comment: {line!r}"
        name = re.match(r"[a-zA-Z_:][a-zA-Z0-9_:]*", line).group(0)
        assert current is not None, f"sample {name} before any # TYPE"
        base = name
        if types[current] == "summary":
            for suffix in ("_count", "_sum"):
                if base.endswith(suffix):
                    base = base[: -len(suffix)]
        assert base == current, (
            f"sample {name} not covered by current family {current}"
        )
        samples_of.setdefault(current, []).append(name)
    for family, declared in types.items():
        names = samples_of.get(family, [])
        assert names, f"family {family} declared but has no samples"
        if declared == "summary":
            assert f"{family}_count" in names, f"{family} missing _count"
            assert f"{family}_sum" in names, f"{family} missing _sum"
    return types


class TestPrometheusFormatLint:
    def test_histograms_render_as_conformant_summaries(self):
        registry = MetricRegistry()
        registry.histogram("check_seconds", phase="canary").observe(0.25)
        registry.histogram("check_seconds", phase="canary").observe(0.75)
        text = render_prometheus(registry)
        types = _lint_exposition(text)
        assert types["repro_check_seconds"] == "summary"
        assert "# TYPE repro_check_seconds summary" in text
        # Exactly one header covers quantiles, _count, and _sum alike.
        assert text.count("# TYPE repro_check_seconds") == 1
        assert "repro_check_seconds_count" in text
        assert "repro_check_seconds_sum" in text
        assert "untyped" not in text

    def test_lint_covers_every_exported_family(self):
        registry = MetricRegistry()
        registry.counter("events_total", kind="engine.check").increment(4)
        registry.gauge("ring_pressure").set(0.5)
        registry.histogram("fold_seconds").observe(0.1)
        registry.histogram("rank_seconds", algo="ga").observe(0.2)
        store = MetricStore()
        store.record("backend", "1.0.0", "error", 1.0, 0.0)
        text = render_prometheus(registry, store)
        types = _lint_exposition(text)
        assert types == {
            "repro_events_total": "counter",
            "repro_fold_seconds": "summary",
            "repro_rank_seconds": "summary",
            "repro_ring_pressure": "gauge",
            "repro_store_last": "gauge",
            "repro_store_samples": "counter",
        }
