"""Documentation hygiene: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        out.append(info.name)
    return sorted(out)


ALL_MODULES = _walk_modules()


class TestDocstrings:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), (
            f"module {module_name} lacks a docstring"
        )

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_public_classes_and_functions_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue  # re-exported from elsewhere
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
        assert not undocumented, (
            f"{module_name}: public items without docstrings: {undocumented}"
        )

    def test_package_count_sanity(self):
        # The library keeps growing; this guards against the walker
        # silently finding nothing (e.g. a broken import path).
        assert len(ALL_MODULES) >= 50
