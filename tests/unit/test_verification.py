"""Unit tests for static experiment verification."""


from repro.bifrost.model import Check, Strategy
from repro.routing.proxy import VersionRouter
from repro.routing.rules import ExperimentRoute
from repro.routing.splitter import canary_split
from repro.verification import (
    Severity,
    verify_strategies_compatible,
    verify_strategy,
)
from tests.unit.test_bifrost_model import make_check, make_phase


def strategy_for(app, **phase_kwargs) -> Strategy:
    defaults = dict(
        name="canary",
        service="backend",
        stable_version="1.0.0",
        experimental_version="2.0.0",
        checks=(
            Check(
                name="err",
                service="backend",
                version="2.0.0",
                metric="error",
                threshold=0.05,
                window_seconds=30.0,
            ),
        ),
    )
    defaults.update(phase_kwargs)
    return Strategy("s", (make_phase(**defaults),))


class TestDeploymentChecks:
    def test_clean_strategy_verifies(self, canary_app):
        report = verify_strategy(strategy_for(canary_app), canary_app)
        assert report.ok
        assert not report.findings

    def test_unknown_service(self, canary_app):
        strategy = strategy_for(canary_app, service="ghost")
        report = verify_strategy(strategy, canary_app)
        assert not report.ok
        assert any(f.code == "unknown-service" for f in report.errors)

    def test_missing_version(self, canary_app):
        strategy = strategy_for(canary_app, experimental_version="9.9.9")
        report = verify_strategy(strategy, canary_app)
        assert any(f.code == "version-not-deployed" for f in report.errors)

    def test_missing_baseline_version(self, canary_app):
        strategy = strategy_for(
            canary_app,
            checks=(
                Check(
                    name="rel",
                    service="backend",
                    version="2.0.0",
                    metric="response_time",
                    baseline_version="7.7.7",
                    window_seconds=30.0,
                ),
            ),
        )
        report = verify_strategy(strategy, canary_app)
        assert any(f.code == "version-not-deployed" for f in report.errors)

    def test_stable_mismatch_warns(self, canary_app):
        canary_app.service("backend").promote("2.0.0")
        strategy = strategy_for(canary_app)  # declares stable 1.0.0
        report = verify_strategy(strategy, canary_app)
        assert report.ok  # warning, not error
        assert any(f.code == "stable-mismatch" for f in report.warnings)


class TestCheckChecks:
    def test_no_checks_warns(self, canary_app):
        strategy = strategy_for(canary_app, checks=())
        report = verify_strategy(strategy, canary_app)
        assert any(f.code == "no-checks" for f in report.warnings)

    def test_unknown_metric_warns(self, canary_app):
        strategy = strategy_for(
            canary_app,
            checks=(make_check(metric="cpu_temperature", service="backend"),),
        )
        report = verify_strategy(strategy, canary_app)
        assert any(f.code == "unknown-metric" for f in report.warnings)

    def test_unknown_aggregation_errors(self, canary_app):
        strategy = strategy_for(
            canary_app,
            checks=(
                Check(
                    name="bad",
                    service="backend",
                    version="2.0.0",
                    metric="error",
                    aggregation="avg",
                    threshold=0.05,
                ),
            ),
        )
        report = verify_strategy(strategy, canary_app)
        assert any(f.code == "unknown-aggregation" for f in report.errors)

    def test_short_window_warns(self, canary_app):
        strategy = strategy_for(
            canary_app,
            check_interval_seconds=30.0,
            checks=(
                Check(
                    name="tight",
                    service="backend",
                    version="2.0.0",
                    metric="error",
                    threshold=0.05,
                    window_seconds=5.0,
                ),
            ),
        )
        report = verify_strategy(strategy, canary_app)
        assert any(
            f.code == "window-shorter-than-interval" for f in report.warnings
        )

    def test_cross_service_check_warns(self, canary_app):
        strategy = strategy_for(
            canary_app,
            checks=(make_check(service="frontend", version="1.0.0"),),
        )
        report = verify_strategy(strategy, canary_app)
        assert any(f.code == "cross-service-check" for f in report.warnings)


class TestSafety:
    def test_failure_loop_detected(self, canary_app):
        phase_a = make_phase(
            "a", service="backend", on_success="b", on_failure="b",
            checks=(make_check(service="backend"),),
        )
        phase_b = make_phase(
            "b", service="backend", on_success="complete", on_failure="a",
            checks=(make_check(service="backend"),),
        )
        strategy = Strategy("s", (phase_a, phase_b))
        report = verify_strategy(strategy, canary_app)
        assert any(f.code == "failure-loop" for f in report.errors)

    def test_straight_failure_path_ok(self, canary_app):
        report = verify_strategy(strategy_for(canary_app), canary_app)
        assert not any(f.code == "failure-loop" for f in report.findings)


class TestInterference:
    def test_live_conflict_detected(self, canary_app):
        router = VersionRouter()
        router.install(
            ExperimentRoute("other-exp", "backend", canary_split("1.0.0", "2.0.0", 0.1))
        )
        report = verify_strategy(strategy_for(canary_app), canary_app, router)
        assert any(f.code == "live-conflict" for f in report.errors)

    def test_own_route_not_a_conflict(self, canary_app):
        router = VersionRouter()
        router.install(
            ExperimentRoute("s", "backend", canary_split("1.0.0", "2.0.0", 0.1))
        )
        report = verify_strategy(strategy_for(canary_app), canary_app, router)
        assert not any(f.code == "live-conflict" for f in report.findings)

    def test_concurrent_strategies_overlap(self):
        a = Strategy("a", (make_phase("p", service="svc"),))
        b = Strategy("b", (make_phase("p", service="svc"),))
        report = verify_strategies_compatible([a, b])
        assert not report.ok
        assert any(f.code == "overlap" for f in report.errors)

    def test_disjoint_strategies_compatible(self):
        a = Strategy("a", (make_phase("p", service="svc1"),))
        b = Strategy("b", (make_phase("p", service="svc2"),))
        assert verify_strategies_compatible([a, b]).ok

    def test_report_describe(self):
        a = Strategy("a", (make_phase("p", service="svc"),))
        b = Strategy("b", (make_phase("p", service="svc"),))
        report = verify_strategies_compatible([a, b])
        text = report.describe()
        assert "error" in text.lower()
        assert report.findings[0].severity is Severity.ERROR
