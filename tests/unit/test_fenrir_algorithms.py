"""Unit tests for the four search algorithms and the Fenrir facade."""

import pytest

from repro.errors import InfeasibleScheduleError
from repro.fenrir import (
    Fenrir,
    GeneticAlgorithm,
    LocalSearch,
    RandomSampling,
    SampleSizeBand,
    SimulatedAnnealing,
    random_experiments,
)
from repro.fenrir.base import BudgetedEvaluator
from repro.fenrir.model import ExperimentSpec, SchedulingProblem
from repro.fenrir.operators import random_schedule
from repro.simulation.rng import SeededRng
from tests.unit.test_fenrir_model import make_spec

ALGORITHMS = [
    GeneticAlgorithm(population_size=12),
    RandomSampling(),
    LocalSearch(stall_limit=60),
    SimulatedAnnealing(),
]


@pytest.fixture
def small_problem_specs(profile):
    return [make_spec(f"e{i}", required_samples=600) for i in range(5)]


class TestBudgetedEvaluator:
    def test_counts_evaluations(self, profile, small_problem_specs):
        problem = SchedulingProblem(profile, small_problem_specs)
        evaluator = BudgetedEvaluator(budget=10)
        rng = SeededRng(1)
        for _ in range(10):
            evaluator.evaluate(random_schedule(problem, rng))
        assert evaluator.used == 10
        assert evaluator.exhausted

    def test_prefers_valid_over_invalid(self, profile):
        problem = SchedulingProblem(
            profile, [make_spec(required_samples=600)]
        )
        evaluator = BudgetedEvaluator(budget=100)
        rng = SeededRng(2)
        from repro.fenrir.schedule import Gene, Schedule

        invalid = Schedule(problem, [Gene(0, 2, 0.01, frozenset({"eu"}))])
        valid = Schedule(problem, [Gene(10, 5, 0.3, frozenset({"eu"}))])
        evaluator.evaluate(invalid)
        evaluator.evaluate(valid)
        evaluator.evaluate(invalid)
        assert evaluator.best_evaluation.valid
        assert evaluator.best_schedule.genes[0].start == 10

    def test_history_monotone(self, profile, small_problem_specs):
        problem = SchedulingProblem(profile, small_problem_specs)
        evaluator = BudgetedEvaluator(budget=200)
        rng = SeededRng(3)
        while not evaluator.exhausted:
            evaluator.evaluate(random_schedule(problem, rng))
        fitness_values = [f for _, f in evaluator.history if f > 0]
        assert fitness_values == sorted(fitness_values)


@pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
class TestAlgorithmContract:
    def test_respects_budget(self, profile, small_problem_specs, algorithm):
        problem = SchedulingProblem(profile, small_problem_specs)
        result = algorithm.optimize(problem, budget=300, seed=1)
        assert result.evaluations_used <= 300 + 15  # small overshoot tolerated

    def test_finds_valid_schedule_on_easy_instance(
        self, profile, small_problem_specs, algorithm
    ):
        problem = SchedulingProblem(profile, small_problem_specs)
        result = algorithm.optimize(problem, budget=400, seed=2)
        assert result.best_evaluation.valid
        assert result.fitness > 0.3

    def test_deterministic_for_seed(self, profile, small_problem_specs, algorithm):
        problem = SchedulingProblem(profile, small_problem_specs)
        a = algorithm.optimize(problem, budget=200, seed=5)
        b = algorithm.optimize(problem, budget=200, seed=5)
        assert a.fitness == b.fitness

    def test_respects_locked_genes(self, profile, small_problem_specs, algorithm):
        problem = SchedulingProblem(profile, small_problem_specs)
        rng = SeededRng(4)
        initial = random_schedule(problem, rng)
        locked = frozenset({0})
        result = algorithm.optimize(
            problem, budget=200, seed=3, initial=initial, locked=locked
        )
        assert result.best_schedule.genes[0] == initial.genes[0]


class TestGeneticAlgorithmSpecifics:
    def test_more_budget_does_not_hurt(self, profile):
        specs = [make_spec(f"e{i}", required_samples=900) for i in range(8)]
        problem = SchedulingProblem(profile, specs)
        ga = GeneticAlgorithm(population_size=12)
        small = ga.optimize(problem, budget=150, seed=1).fitness
        large = ga.optimize(problem, budget=1200, seed=1).fitness
        assert large >= small - 0.02

    def test_beats_random_on_crowded_instance(self, week_profile):
        experiments = random_experiments(
            week_profile, 20, SampleSizeBand.HIGH, seed=6
        )
        problem = SchedulingProblem(week_profile, experiments)
        ga = GeneticAlgorithm(population_size=20).optimize(problem, budget=900, seed=1)
        rs = RandomSampling().optimize(problem, budget=900, seed=1)
        assert ga.best_evaluation.penalized >= rs.best_evaluation.penalized - 0.05


class TestFenrirFacade:
    def test_schedule_returns_plan_table(self, week_profile):
        experiments = random_experiments(week_profile, 6, seed=2)
        result = Fenrir().schedule(week_profile, experiments, budget=600, seed=1)
        rows = result.plan_table()
        assert len(rows) == 6
        for row in rows:
            assert row["expected_samples"] >= 0
            assert row["end_slot"] <= week_profile.num_slots

    def test_require_valid_raises_on_impossible(self, profile):
        impossible = [
            ExperimentSpec(
                name="huge",
                required_samples=1e9,
                min_duration_slots=2,
                max_duration_slots=4,
                max_traffic_fraction=0.1,
            )
        ]
        with pytest.raises(InfeasibleScheduleError):
            Fenrir().schedule(
                profile, impossible, budget=120, seed=1, require_valid=True
            )

    def test_generator_bands_scale(self, week_profile):
        low = random_experiments(week_profile, 5, SampleSizeBand.LOW, seed=1)
        high = random_experiments(week_profile, 5, SampleSizeBand.HIGH, seed=1)
        assert sum(e.required_samples for e in high) > sum(
            e.required_samples for e in low
        )
