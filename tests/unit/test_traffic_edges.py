"""Traffic-layer edge cases: zero-traffic windows, single-user
populations, half-open window boundaries, flash crowds, heavy tails.

The scenario fuzzer stresses these paths constantly, so each edge gets a
pinned unit test rather than relying on the fuzzer stumbling over it.
"""

import pytest

from repro.errors import ConfigurationError
from repro.traffic.profile import (
    DEFAULT_GROUPS,
    UserGroup,
    flat_profile,
    with_flash_crowd,
)
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

SOLE = (UserGroup("all", 1.0),)


def make_generator(seed: int = 5, population_size: int = 50) -> WorkloadGenerator:
    population = UserPopulation(population_size, DEFAULT_GROUPS, seed=seed)
    return WorkloadGenerator(population, entry="frontend.home", seed=seed + 1)


class TestZeroTrafficWindows:
    def test_zero_volume_slots_yield_no_requests(self):
        profile = flat_profile(3, 0.0)
        assert list(make_generator().from_profile(profile)) == []

    def test_zero_slot_between_busy_slots_is_silent(self):
        profile = with_flash_crowd(flat_profile(3, 7200.0), slot=1, magnitude=0.0)
        requests = list(make_generator().from_profile(profile))
        assert requests, "busy slots must still produce traffic"
        slot_seconds = profile.slot_duration_hours * 3600.0
        assert all(
            not slot_seconds <= r.timestamp < 2 * slot_seconds for r in requests
        )

    def test_zero_rate_per_second(self):
        assert flat_profile(2, 0.0).rate_per_second(1) == 0.0


class TestSingleUserPopulation:
    def test_all_requests_from_the_only_user(self):
        population = UserPopulation(1, SOLE, seed=3)
        generator = WorkloadGenerator(population, entry="frontend.home", seed=4)
        requests = list(generator.poisson(5.0, 20.0))
        assert requests
        assert {r.user_id for r in requests} == {"u0000000"}
        assert {r.group for r in requests} == {"all"}

    def test_single_user_multi_group_population(self):
        # One user still lands in exactly one of the declared groups.
        population = UserPopulation(1, DEFAULT_GROUPS, seed=3)
        [user_id] = population.user_ids
        assert population.group_of(user_id) in {g.name for g in DEFAULT_GROUPS}

    def test_empty_group_sampling_rejected(self):
        population = UserPopulation(1, DEFAULT_GROUPS, seed=3)
        [user_id] = population.user_ids
        empty = next(
            g.name for g in DEFAULT_GROUPS if g.name != population.group_of(user_id)
        )
        from repro.simulation.rng import SeededRng

        with pytest.raises(ConfigurationError):
            population.sample(SeededRng(0), groups=[empty])


class TestHalfOpenWindows:
    def test_poisson_excludes_end(self):
        requests = list(make_generator().poisson(50.0, 10.0, start=2.0))
        assert requests
        assert all(2.0 < r.timestamp < 12.0 for r in requests)

    def test_heavy_tail_excludes_end(self):
        requests = list(
            make_generator().heavy_tail(50.0, 10.0, alpha=1.3, start=2.0)
        )
        assert requests
        assert all(2.0 < r.timestamp < 12.0 for r in requests)

    def test_constant_includes_start_excludes_end_count(self):
        requests = list(make_generator().constant(1.0, 5, start=10.0))
        assert [r.timestamp for r in requests] == [10.0, 11.0, 12.0, 13.0, 14.0]

    def test_flash_crowd_window_is_half_open(self):
        profile = with_flash_crowd(flat_profile(4, 100.0), slot=1, magnitude=3.0, width=2)
        assert profile.volumes() == [100.0, 300.0, 300.0, 100.0]

    def test_flash_crowd_clipped_at_horizon(self):
        profile = with_flash_crowd(flat_profile(3, 10.0), slot=2, magnitude=2.0, width=5)
        assert profile.volumes() == [10.0, 10.0, 20.0]

    def test_flash_crowd_validation(self):
        profile = flat_profile(3, 10.0)
        with pytest.raises(ConfigurationError):
            with_flash_crowd(profile, slot=3, magnitude=2.0)
        with pytest.raises(ConfigurationError):
            with_flash_crowd(profile, slot=-1, magnitude=2.0)
        with pytest.raises(ConfigurationError):
            with_flash_crowd(profile, slot=0, magnitude=-0.5)
        with pytest.raises(ConfigurationError):
            with_flash_crowd(profile, slot=0, magnitude=2.0, width=0)

    def test_flash_crowd_leaves_original_untouched(self):
        profile = flat_profile(3, 10.0)
        with_flash_crowd(profile, slot=0, magnitude=9.0)
        assert profile.volumes() == [10.0, 10.0, 10.0]


class TestHeavyTailArrivals:
    def test_mean_rate_matches_poisson_calibration(self):
        n = len(list(make_generator(seed=11).heavy_tail(20.0, 400.0, alpha=1.8)))
        assert n == pytest.approx(20.0 * 400.0, rel=0.1)

    def test_small_alpha_burstier_than_poisson(self):
        # Burstiness: coefficient of variation of inter-arrival gaps.
        def cv(timestamps):
            gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var**0.5 / mean

        poisson = [r.timestamp for r in make_generator(seed=2).poisson(10.0, 300.0)]
        bursty = [
            r.timestamp
            for r in make_generator(seed=2).heavy_tail(10.0, 300.0, alpha=1.15)
        ]
        assert cv(bursty) > 1.5 * cv(poisson)

    def test_determinism(self):
        a = [r.timestamp for r in make_generator(seed=8).heavy_tail(5.0, 60.0)]
        b = [r.timestamp for r in make_generator(seed=8).heavy_tail(5.0, 60.0)]
        assert a == b

    def test_validation(self):
        generator = make_generator()
        with pytest.raises(ConfigurationError):
            list(generator.heavy_tail(0.0, 10.0))
        with pytest.raises(ConfigurationError):
            list(generator.heavy_tail(5.0, 0.0))
        with pytest.raises(ConfigurationError):
            list(generator.heavy_tail(5.0, 10.0, alpha=1.0))
