"""Unit tests for the decision-provenance layer (PR-10 tentpole).

The fold itself is exercised end-to-end by the property and e2e suites;
here the pieces are pinned in isolation: margin arithmetic, record
construction from event payloads, phase-stay tracking, alert spans,
truncation refusal, and the three report renderings.
"""

import json

import pytest

from repro.errors import ValidationError
from repro.obs.events import (
    ALERT_FIRED,
    ALERT_RESOLVED,
    DECISION_RECORDED,
    ENGINE_CHECK,
    ENGINE_FINALIZED,
    ENGINE_PHASE_ENTERED,
    ENGINE_SUBMITTED,
    EventLog,
)
from repro.obs.provenance import (
    ProvenanceTracker,
    build_provenance,
    evidence_margin,
    render_decision_report,
)


def check_payload(**overrides) -> dict:
    payload = {
        "strategy": "s",
        "phase": "canary",
        "check": "errors",
        "service": "backend",
        "version": "2.0.0",
        "metric": "error",
        "aggregation": "mean",
        "operator": "<=",
        "window_start": 10.0,
        "samples": 42,
        "outcome": "pass",
        "observed": 0.01,
        "reference": 0.05,
        "margin": 0.04,
        "duration_s": 0.0,
    }
    payload.update(overrides)
    return payload


def canary_stream(log: EventLog) -> None:
    """A minimal hand-written run: submit, one stay, fail, roll back."""
    log.append(ENGINE_SUBMITTED, 1.0, {"strategy": "s", "start": 1.0})
    log.append(ENGINE_PHASE_ENTERED, 1.0, {"strategy": "s", "phase": "canary"})
    log.append(ENGINE_CHECK, 20.0, check_payload())
    log.append(
        ENGINE_CHECK,
        30.0,
        check_payload(
            outcome="fail", observed=0.2, margin=-0.15, window_start=20.0
        ),
    )
    check_seq = log.tail(1)[0].seq
    log.append(
        DECISION_RECORDED,
        30.0,
        {
            "strategy": "s",
            "source": "canary",
            "target": "rolled_back",
            "trigger": "failure",
            "action": "rollback",
            "transition_seq": None,
            "evidence": [check_seq],
            "alerts": ["checkout-slo"],
            "faults": ["ErrorBurst:backend@2.0.0/home"],
            "terminal": True,
        },
    )
    log.append(
        ENGINE_FINALIZED,
        30.0,
        {
            "strategy": "s",
            "terminal": "rolled_back",
            "outcome": "rolled_back",
            "promoted": None,
        },
    )


class TestEvidenceMargin:
    def test_less_than_margin_is_reference_minus_observed(self):
        assert evidence_margin("<=", 0.01, 0.05) == pytest.approx(0.04)
        assert evidence_margin("<", 0.08, 0.05) == pytest.approx(-0.03)

    def test_greater_than_margin_is_observed_minus_reference(self):
        assert evidence_margin(">=", 120.0, 100.0) == pytest.approx(20.0)
        assert evidence_margin(">", 80.0, 100.0) == pytest.approx(-20.0)

    def test_missing_side_yields_none(self):
        assert evidence_margin("<=", None, 0.05) is None
        assert evidence_margin("<=", 0.01, None) is None


class TestFold:
    def graph(self):
        log = EventLog()
        canary_stream(log)
        return build_provenance(log.events())

    def test_evidence_records_built_from_check_events(self):
        record = self.graph().strategy("s")
        assert len(record.evidence) == 2
        failing = [e for e in record.evidence.values() if e.failing]
        assert len(failing) == 1
        evidence = failing[0]
        assert evidence.metric == "error"
        assert evidence.window_start == 20.0
        assert evidence.window_end == 30.0  # the event's own time
        assert evidence.samples == 42
        assert evidence.margin == pytest.approx(-0.15)

    def test_decision_links_evidence_alerts_and_faults(self):
        record = self.graph().strategy("s")
        decision = record.terminal_decision()
        assert decision is not None
        assert decision.action == "rollback"
        assert decision.alerts == ("checkout-slo",)
        assert decision.faults == ("ErrorBurst:backend@2.0.0/home",)
        graph = self.graph()
        resolved = graph.evidence_for(graph.strategy("s").terminal_decision())
        assert [e.failing for e in resolved] == [True]

    def test_terminal_state_folded_from_finalized(self):
        record = self.graph().strategy("s")
        assert record.outcome == "rolled_back"
        assert record.terminal == "rolled_back"
        assert record.finished_at == 30.0
        assert record.promoted is None

    def test_digest_is_deterministic(self):
        assert self.graph().digest() == self.graph().digest()

    def test_stay_resets_on_phase_entry(self):
        tracker = ProvenanceTracker()
        log = EventLog()
        log.append(ENGINE_PHASE_ENTERED, 1.0, {"strategy": "s", "phase": "a"})
        log.append(ENGINE_CHECK, 2.0, check_payload(phase="a"))
        for event in log.events():
            tracker.record(event)
        assert len(tracker.stay_evidence("s")) == 1
        tracker.record(
            log.append(
                ENGINE_PHASE_ENTERED, 3.0, {"strategy": "s", "phase": "b"}
            )
        )
        assert tracker.stay_evidence("s") == ()

    def test_stay_keeps_latest_evaluation_per_check(self):
        tracker = ProvenanceTracker()
        log = EventLog()
        log.append(ENGINE_PHASE_ENTERED, 1.0, {"strategy": "s", "phase": "a"})
        log.append(ENGINE_CHECK, 2.0, check_payload(check="errors"))
        log.append(ENGINE_CHECK, 3.0, check_payload(check="latency"))
        log.append(ENGINE_CHECK, 4.0, check_payload(check="errors"))
        for event in log.events():
            tracker.record(event)
        seqs = tracker.stay_evidence("s")
        assert len(seqs) == 2  # latest errors + latency
        checks = {
            tracker.graph().strategy("s").evidence[seq].check for seq in seqs
        }
        assert checks == {"errors", "latency"}

    def test_alert_spans_pair_fired_and_resolved(self):
        log = EventLog()
        log.append(ALERT_FIRED, 10.0, {"rule": "r", "burn": 3.0})
        log.append(ALERT_RESOLVED, 25.0, {"rule": "r", "burn": 0.5})
        graph = build_provenance(log.events())
        (span,) = graph.alerts
        assert span.fired_at == 10.0
        assert span.burn == 3.0
        assert span.resolved_at == 25.0

    def test_truncated_stream_refused_unless_allowed(self):
        log = EventLog(capacity=3)
        canary_stream(log)
        stream = [log.truncation_sentinel(), *log.events()]
        with pytest.raises(ValidationError, match="truncated"):
            build_provenance(stream)
        graph = build_provenance(stream, allow_truncated=True)
        assert "s" in graph.strategies


class TestDecisionReport:
    def graph(self):
        log = EventLog()
        canary_stream(log)
        return build_provenance(log.events())

    def test_ascii_names_the_failing_evidence(self):
        text = render_decision_report(self.graph(), "s", fmt="ascii")
        assert "strategy s — rolled_back" in text
        assert "--failure--> rolled_back (rollback)" in text
        assert "!! " in text  # the failing record is flagged
        assert "errors: fail" in text
        assert "alerts firing: checkout-slo" in text
        assert "faults active: ErrorBurst:backend@2.0.0/home" in text

    def test_dot_renders_a_digraph(self):
        text = render_decision_report(self.graph(), "s", fmt="dot")
        assert text.startswith('digraph "s-provenance"')
        assert "doubleoctagon" in text  # terminal decision
        assert "color=red" in text  # failing evidence
        assert '"alert:checkout-slo"' in text

    def test_jsonl_lines_are_machine_readable(self):
        text = render_decision_report(self.graph(), "s", fmt="jsonl")
        docs = [json.loads(line) for line in text.splitlines()]
        assert docs[0]["type"] == "strategy"
        assert docs[0]["outcome"] == "rolled_back"
        types = {doc["type"] for doc in docs}
        assert types == {"strategy", "evidence", "decision"}

    def test_unknown_format_and_strategy_rejected(self):
        with pytest.raises(ValidationError, match="format"):
            render_decision_report(self.graph(), "s", fmt="yaml")
        with pytest.raises(ValidationError, match="no provenance"):
            render_decision_report(self.graph(), "ghost")
