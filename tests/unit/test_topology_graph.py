"""Unit tests for interaction graphs and the trace-based builder."""

import pytest

from repro.errors import TopologyError
from repro.topology.builder import build_interaction_graph
from repro.topology.graph import InteractionGraph, NodeKey
from repro.tracing.trace import Trace
from tests.unit.test_tracing import make_span


def key(service, version="1.0.0", endpoint="ep") -> NodeKey:
    return NodeKey(service, version, endpoint)


class TestInteractionGraph:
    def test_observe_call_creates_nodes_and_edges(self):
        graph = InteractionGraph()
        graph.observe_call(key("a"), key("b"), 10.0, False)
        assert graph.has_node(key("a"))
        assert graph.has_edge(key("a"), key("b"))
        assert graph.node_count == 2
        assert graph.edge_count == 1

    def test_entry_call_has_no_edge(self):
        graph = InteractionGraph()
        graph.observe_call(None, key("a"), 10.0, False)
        assert graph.node_count == 1
        assert graph.edge_count == 0

    def test_stats_accumulate(self):
        graph = InteractionGraph()
        graph.observe_call(None, key("a"), 10.0, False)
        graph.observe_call(None, key("a"), 30.0, True)
        stats = graph.node_stats(key("a"))
        assert stats.calls == 2
        assert stats.mean_response_ms == 20.0
        assert stats.error_rate == 0.5

    def test_edge_stats(self):
        graph = InteractionGraph()
        graph.observe_call(key("a"), key("b"), 10.0, False)
        graph.observe_call(key("a"), key("b"), 20.0, False)
        assert graph.edge_stats(key("a"), key("b")).mean_response_ms == 15.0

    def test_successors_and_predecessors(self):
        graph = InteractionGraph()
        graph.observe_call(key("a"), key("b"), 1.0, False)
        graph.observe_call(key("a"), key("c"), 1.0, False)
        assert set(graph.successors(key("a"))) == {key("b"), key("c")}
        assert graph.predecessors(key("b")) == [key("a")]

    def test_roots(self):
        graph = InteractionGraph()
        graph.observe_call(key("a"), key("b"), 1.0, False)
        assert graph.roots() == [key("a")]

    def test_versions_of(self):
        graph = InteractionGraph()
        graph.add_node(key("a", "1.0"))
        graph.add_node(key("a", "2.0"))
        assert graph.versions_of("a") == {"1.0", "2.0"}

    def test_subtree_size(self):
        graph = InteractionGraph()
        graph.observe_call(key("a"), key("b"), 1.0, False)
        graph.observe_call(key("b"), key("c"), 1.0, False)
        graph.observe_call(key("a"), key("d"), 1.0, False)
        assert graph.subtree_size(key("a")) == 4
        assert graph.subtree_size(key("b")) == 2

    def test_unknown_node_raises(self):
        with pytest.raises(TopologyError):
            InteractionGraph().node_stats(key("ghost"))

    def test_unknown_edge_raises(self):
        graph = InteractionGraph()
        graph.add_node(key("a"))
        with pytest.raises(TopologyError):
            graph.edge_stats(key("a"), key("b"))

    def test_service_endpoints_version_agnostic(self):
        graph = InteractionGraph()
        graph.add_node(key("a", "1.0"))
        graph.add_node(key("a", "2.0"))
        assert graph.service_endpoints() == {("a", "ep")}


class TestBuilder:
    def make_trace(self, shadow=False) -> Trace:
        root = make_span("root", service="frontend", endpoint="home")
        tags = {"shadow": "true"} if shadow else {}
        child = make_span(
            "child",
            parent_id="root",
            service="backend",
            endpoint="api",
            duration_ms=25.0,
            tags=tags,
        )
        return Trace("t1", [root, child])

    def test_builds_edges_from_parenthood(self):
        graph = build_interaction_graph([self.make_trace()])
        caller = NodeKey("frontend", "1.0.0", "home")
        callee = NodeKey("backend", "1.0.0", "api")
        assert graph.has_edge(caller, callee)
        assert graph.edge_stats(caller, callee).mean_response_ms == 25.0

    def test_shadow_spans_included_by_default(self):
        graph = build_interaction_graph([self.make_trace(shadow=True)])
        assert graph.has_node(NodeKey("backend", "1.0.0", "api"))

    def test_shadow_spans_excludable(self):
        graph = build_interaction_graph(
            [self.make_trace(shadow=True)], include_shadow=False
        )
        assert not graph.has_node(NodeKey("backend", "1.0.0", "api"))

    def test_aggregates_across_traces(self):
        traces = []
        for i in range(3):
            root = make_span(f"r{i}", trace_id=f"t{i}")
            traces.append(Trace(f"t{i}", [root]))
        graph = build_interaction_graph(traces)
        assert graph.node_stats(NodeKey("frontend", "1.0.0", "home")).calls == 3
