"""Unit tests for the core framework package and the Chapter 2 study."""

import pytest

from repro.errors import ConfigurationError, ValidationError
from repro.core.experiment import (
    Experiment,
    ExperimentClass,
    ExperimentPractice,
    TYPICAL_DURATION_HOURS,
)
from repro.core.lifecycle import ExperimentLifecycle, LifecyclePhase
from repro.study.data import ADOPTION, COLUMNS, PUBLISHED_TABLES, published_table
from repro.study.respondents import assign_table, generate_respondents
from repro.study.tables import format_table, recompute_table, table_deviation


class TestExperimentModel:
    def test_ab_test_is_business_driven(self):
        experiment = Experiment("e", "svc", ExperimentPractice.AB_TEST)
        assert experiment.experiment_class is ExperimentClass.BUSINESS_DRIVEN

    @pytest.mark.parametrize(
        "practice",
        [
            ExperimentPractice.CANARY_RELEASE,
            ExperimentPractice.DARK_LAUNCH,
            ExperimentPractice.GRADUAL_ROLLOUT,
        ],
    )
    def test_qa_practices_are_regression_driven(self, practice):
        experiment = Experiment("e", "svc", practice)
        assert experiment.experiment_class is ExperimentClass.REGRESSION_DRIVEN

    def test_typical_durations_ordered(self):
        regression = TYPICAL_DURATION_HOURS[ExperimentClass.REGRESSION_DRIVEN]
        business = TYPICAL_DURATION_HOURS[ExperimentClass.BUSINESS_DRIVEN]
        assert business[0] > regression[0]  # business runs much longer

    def test_to_scheduling_spec(self):
        experiment = Experiment(
            "e", "svc", ExperimentPractice.CANARY_RELEASE,
            required_samples=500,
            preferred_groups=frozenset({"eu"}),
        )
        spec = experiment.to_scheduling_spec(earliest_start=3)
        assert spec.name == "e"
        assert spec.required_samples == 500
        assert spec.preferred_groups == frozenset({"eu"})
        assert spec.earliest_start == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Experiment("", "svc", ExperimentPractice.AB_TEST)
        with pytest.raises(ConfigurationError):
            Experiment("e", "svc", ExperimentPractice.AB_TEST, required_samples=0)


class TestLifecycle:
    def test_happy_path(self):
        lifecycle = ExperimentLifecycle("e")
        lifecycle.advance(LifecyclePhase.PLANNED, artifact="schedule")
        lifecycle.advance(LifecyclePhase.EXECUTING)
        lifecycle.advance(LifecyclePhase.ANALYZED)
        lifecycle.advance(LifecyclePhase.CONCLUDED)
        assert lifecycle.phase is LifecyclePhase.CONCLUDED
        assert lifecycle.artifacts["planned"] == "schedule"
        assert not lifecycle.canceled

    def test_skipping_rejected(self):
        lifecycle = ExperimentLifecycle("e")
        with pytest.raises(ValidationError):
            lifecycle.advance(LifecyclePhase.EXECUTING)

    def test_regression_rejected(self):
        lifecycle = ExperimentLifecycle("e")
        lifecycle.advance(LifecyclePhase.PLANNED)
        with pytest.raises(ValidationError):
            lifecycle.advance(LifecyclePhase.DESIGNED)

    def test_cancel_from_any_phase(self):
        lifecycle = ExperimentLifecycle("e")
        lifecycle.advance(LifecyclePhase.PLANNED)
        lifecycle.cancel()
        assert lifecycle.phase is LifecyclePhase.CONCLUDED
        assert lifecycle.canceled

    def test_history_recorded(self):
        lifecycle = ExperimentLifecycle("e")
        lifecycle.advance(LifecyclePhase.PLANNED)
        assert lifecycle.history == [LifecyclePhase.DESIGNED, LifecyclePhase.PLANNED]


class TestStudyData:
    def test_all_expected_tables_present(self):
        assert set(PUBLISHED_TABLES) == {"2.2", "2.3", "2.4", "2.6", "2.7", "2.8"}

    def test_single_choice_columns_sum_to_about_100(self):
        for table_id in ("2.4", "2.6"):
            table = published_table(table_id)
            for column in COLUMNS:
                total = sum(
                    table.percentage(option, column) for option in table.rows
                )
                assert 95 <= total <= 105, f"{table_id}/{column}: {total}"

    def test_unknown_table(self):
        with pytest.raises(ConfigurationError):
            published_table("9.9")

    def test_adoption_headline_numbers(self):
        assert ADOPTION["regression_driven"] == 37
        assert ADOPTION["business_driven"] == 23


class TestSyntheticRespondents:
    def test_demographics_match(self):
        respondents = generate_respondents()
        assert len(respondents) == 187
        assert sum(r.app_type == "web" for r in respondents) == 105
        assert sum(r.company_size == "sme" for r in respondents) == 99
        assert sum(r.company_size == "startup" for r in respondents) == 35

    def test_deterministic(self):
        a = generate_respondents(seed=1)
        b = generate_respondents(seed=1)
        assert [r.company_size for r in a] == [r.company_size for r in b]

    @pytest.mark.parametrize("table_id", sorted(PUBLISHED_TABLES))
    def test_recomputed_tables_match_published(self, table_id):
        table = published_table(table_id)
        respondents = generate_respondents()
        participants = assign_table(respondents, table)
        assert len(participants) == table.sample_sizes["all"]
        recomputed = recompute_table(table, participants)
        assert table_deviation(table, recomputed) <= 1.0  # rounding only

    def test_single_choice_tables_have_one_answer_each(self):
        table = published_table("2.6")
        respondents = generate_respondents()
        participants = assign_table(respondents, table)
        for respondent in participants:
            assert len(respondent.answers[table.table_id]) == 1

    def test_format_table_renders(self):
        table = published_table("2.3")
        respondents = generate_respondents()
        participants = assign_table(respondents, table)
        text = format_table(table, recompute_table(table, participants))
        assert "Table 2.3" in text
        assert "monitoring" in text
