"""Unit tests for schedule serialization."""

import pytest

from repro.errors import ValidationError
from repro.fenrir import Fenrir, GeneticAlgorithm, random_experiments
from repro.fenrir.fitness import evaluate
from repro.fenrir.serialize import (
    problem_from_dict,
    problem_to_dict,
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)
from repro.traffic.profile import diurnal_profile


@pytest.fixture(scope="module")
def solved():
    profile = diurnal_profile(days=3, seed=5)
    experiments = random_experiments(profile, 5, seed=6)
    return Fenrir(GeneticAlgorithm(population_size=12)).schedule(
        profile, experiments, budget=400, seed=1
    )


class TestProblemRoundTrip:
    def test_round_trip_preserves_structure(self, solved):
        rebuilt = problem_from_dict(problem_to_dict(solved.problem))
        assert rebuilt.horizon == solved.problem.horizon
        assert [s.name for s in rebuilt.experiments] == [
            s.name for s in solved.problem.experiments
        ]
        assert rebuilt.profile.volumes() == solved.problem.profile.volumes()

    def test_malformed_document_rejected(self):
        with pytest.raises(ValidationError):
            problem_from_dict({"experiments": []})


class TestScheduleRoundTrip:
    def test_round_trip_preserves_genes(self, solved):
        rebuilt = schedule_from_dict(schedule_to_dict(solved.schedule))
        assert rebuilt.genes == solved.schedule.genes

    def test_round_trip_preserves_fitness(self, solved):
        rebuilt = schedule_from_dict(schedule_to_dict(solved.schedule))
        assert evaluate(rebuilt).fitness == pytest.approx(
            evaluate(solved.schedule).fitness
        )

    def test_json_round_trip(self, solved):
        rebuilt = schedule_from_json(schedule_to_json(solved.schedule))
        assert rebuilt.genes == solved.schedule.genes

    def test_gene_order_independent(self, solved):
        document = schedule_to_dict(solved.schedule)
        document["genes"] = list(reversed(document["genes"]))
        rebuilt = schedule_from_dict(document)
        assert rebuilt.genes == solved.schedule.genes

    def test_missing_gene_rejected(self, solved):
        document = schedule_to_dict(solved.schedule)
        document["genes"] = document["genes"][:-1]
        with pytest.raises(ValidationError):
            schedule_from_dict(document)
