"""Unit tests for schedule serialization."""

import dataclasses
import json

import pytest

from repro.errors import ValidationError
from repro.fenrir import Fenrir, GeneticAlgorithm, random_experiments
from repro.fenrir.fitness import evaluate
from repro.fenrir.model import ExperimentSpec, SchedulingProblem
from repro.fenrir.schedule import Gene, Schedule
from repro.fenrir.serialize import (
    problem_from_dict,
    problem_to_dict,
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)
from repro.traffic.profile import TrafficProfile, UserGroup, diurnal_profile


@pytest.fixture(scope="module")
def solved():
    profile = diurnal_profile(days=3, seed=5)
    experiments = random_experiments(profile, 5, seed=6)
    return Fenrir(GeneticAlgorithm(population_size=12)).schedule(
        profile, experiments, budget=400, seed=1
    )


class TestProblemRoundTrip:
    def test_round_trip_preserves_structure(self, solved):
        rebuilt = problem_from_dict(problem_to_dict(solved.problem))
        assert rebuilt.horizon == solved.problem.horizon
        assert [s.name for s in rebuilt.experiments] == [
            s.name for s in solved.problem.experiments
        ]
        assert rebuilt.profile.volumes() == solved.problem.profile.volumes()

    def test_malformed_document_rejected(self):
        with pytest.raises(ValidationError):
            problem_from_dict({"experiments": []})


class TestScheduleRoundTrip:
    def test_round_trip_preserves_genes(self, solved):
        rebuilt = schedule_from_dict(schedule_to_dict(solved.schedule))
        assert rebuilt.genes == solved.schedule.genes

    def test_round_trip_preserves_fitness(self, solved):
        rebuilt = schedule_from_dict(schedule_to_dict(solved.schedule))
        assert evaluate(rebuilt).fitness == pytest.approx(
            evaluate(solved.schedule).fitness
        )

    def test_json_round_trip(self, solved):
        rebuilt = schedule_from_json(schedule_to_json(solved.schedule))
        assert rebuilt.genes == solved.schedule.genes

    def test_gene_order_independent(self, solved):
        document = schedule_to_dict(solved.schedule)
        document["genes"] = list(reversed(document["genes"]))
        rebuilt = schedule_from_dict(document)
        assert rebuilt.genes == solved.schedule.genes

    def test_missing_gene_rejected(self, solved):
        document = schedule_to_dict(solved.schedule)
        document["genes"] = document["genes"][:-1]
        with pytest.raises(ValidationError):
            schedule_from_dict(document)


def _nondefault_spec() -> ExperimentSpec:
    """A spec where every field differs from its dataclass default, so a
    dropped field cannot hide behind a default value on the way back."""
    return ExperimentSpec(
        name="drift-guard",
        required_samples=1234,
        min_duration_slots=2,
        max_duration_slots=9,
        min_traffic_fraction=0.15,
        max_traffic_fraction=0.85,
        preferred_groups=frozenset({"eu", "beta"}),
        earliest_start=3,
        weight=2.5,
    )


def _nondefault_schedule() -> Schedule:
    profile = TrafficProfile(
        [100.0, 200.0, 300.0, 400.0],
        [UserGroup("eu", 0.7), UserGroup("beta", 0.3)],
        slot_duration_hours=0.5,
    )
    problem = SchedulingProblem(profile, [_nondefault_spec()])
    gene = Gene(start=1, duration=2, fraction=0.4, groups=frozenset({"eu"}))
    return Schedule(problem, [gene])


class TestLosslessRoundTrip:
    """Field-exhaustive drift guards: the serialization-drift class of
    bug the journal schema must also guard against — a field added to a
    dataclass but forgotten in its (de)serializer."""

    def test_every_experiment_spec_field_survives(self):
        schedule = _nondefault_schedule()
        rebuilt = schedule_from_dict(schedule_to_dict(schedule))
        original = schedule.problem.experiments[0]
        restored = rebuilt.problem.experiments[0]
        for field in dataclasses.fields(ExperimentSpec):
            assert getattr(restored, field.name) == getattr(
                original, field.name
            ), f"ExperimentSpec.{field.name} dropped in round trip"

    def test_every_gene_field_survives(self):
        schedule = _nondefault_schedule()
        rebuilt = schedule_from_dict(schedule_to_dict(schedule))
        for field in dataclasses.fields(Gene):
            assert getattr(rebuilt.genes[0], field.name) == getattr(
                schedule.genes[0], field.name
            ), f"Gene.{field.name} dropped in round trip"

    def test_profile_fields_survive(self):
        schedule = _nondefault_schedule()
        rebuilt = schedule_from_dict(schedule_to_dict(schedule))
        original = schedule.problem.profile
        restored = rebuilt.problem.profile
        assert restored.volumes() == original.volumes()
        assert restored.slot_duration_hours == original.slot_duration_hours
        assert restored.groups == original.groups

    def test_document_mentions_every_spec_field(self):
        document = schedule_to_dict(_nondefault_schedule())
        serialized = set(document["problem"]["experiments"][0])
        for field in dataclasses.fields(ExperimentSpec):
            assert field.name in serialized, (
                f"ExperimentSpec.{field.name} missing from serialized document"
            )

    def test_document_mentions_every_gene_field(self):
        document = schedule_to_dict(_nondefault_schedule())
        serialized = set(document["genes"][0])
        for field in dataclasses.fields(Gene):
            key = "experiment" if field.name == "name" else field.name
            assert key in serialized, (
                f"Gene.{field.name} missing from serialized document"
            )

    def test_json_round_trip_is_exact(self):
        schedule = _nondefault_schedule()
        text = schedule_to_json(schedule)
        assert schedule_to_dict(schedule_from_json(text)) == json.loads(text)
