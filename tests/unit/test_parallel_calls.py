"""Unit tests for parallel (fan-out) downstream calls."""

import pytest

from repro.microservices.application import Application
from repro.microservices.runtime import Runtime
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.simulation.latency import ConstantLatency
from tests.conftest import constant_endpoint
from tests.unit.test_microservices import make_request


def fanout_app(parallel: bool) -> Application:
    app = Application("fanout")
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {
                "home": EndpointSpec(
                    "home",
                    ConstantLatency(10.0),
                    calls=(
                        DownstreamCall("fast", "api"),
                        DownstreamCall("slow", "api"),
                    ),
                    parallel_calls=parallel,
                )
            },
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion("fast", "1.0.0", {"api": constant_endpoint("api", 20.0)}),
        stable=True,
    )
    app.deploy(
        ServiceVersion("slow", "1.0.0", {"api": constant_endpoint("api", 50.0)}),
        stable=True,
    )
    return app


class TestFanOut:
    def test_sequential_latencies_sum(self):
        runtime = Runtime(fanout_app(parallel=False), seed=1)
        outcome = runtime.execute(make_request())
        assert outcome.duration_ms == pytest.approx(10 + 20 + 50)

    def test_parallel_waits_for_slowest(self):
        runtime = Runtime(fanout_app(parallel=True), seed=1)
        outcome = runtime.execute(make_request())
        assert outcome.duration_ms == pytest.approx(10 + 50)

    def test_parallel_children_share_start_time(self):
        runtime = Runtime(fanout_app(parallel=True), seed=1)
        trace = runtime.execute(make_request()).trace
        children = trace.children(trace.root.span_id)
        assert len(children) == 2
        assert children[0].start == pytest.approx(children[1].start)

    def test_sequential_children_are_staggered(self):
        runtime = Runtime(fanout_app(parallel=False), seed=1)
        trace = runtime.execute(make_request()).trace
        children = trace.children(trace.root.span_id)
        assert children[1].start > children[0].start

    def test_parallel_error_still_propagates(self):
        app = fanout_app(parallel=True)
        app.resolve("slow").endpoints["api"] = constant_endpoint(
            "api", 50.0, error_rate=1.0
        )
        runtime = Runtime(app, seed=1)
        assert runtime.execute(make_request()).error

    def test_all_children_traced_in_both_modes(self):
        for parallel in (False, True):
            runtime = Runtime(fanout_app(parallel=parallel), seed=1)
            trace = runtime.execute(make_request()).trace
            services = {span.service for span in trace.spans}
            assert services == {"frontend", "fast", "slow"}
