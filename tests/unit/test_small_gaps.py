"""Small-gap tests: helpers and paths not covered elsewhere."""

import pytest

from repro.bifrost.dsl import parse_strategy
from repro.errors import ConfigurationError
from repro.telemetry.store import MetricStore, record_many
from repro.topology.uncertainty import UncertaintyModel


class TestRecordMany:
    def test_bulk_recording(self):
        store = MetricStore()
        record_many(
            store, "svc", "1.0", "m", [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]
        )
        assert store.aggregate("svc", "1.0", "m", "mean", 0, 3) == 3.0


class TestCheckIntervalDsl:
    def test_per_check_interval_parsed(self):
        strategy = parse_strategy(
            """
strategy s
  phase p
    type canary
    service svc
    stable 1.0.0
    experimental 2.0.0
    fraction 0.1
    interval 5
    check fast
      metric error
      threshold 0.1
    check slow
      metric response_time
      threshold 100
      interval 60
"""
        )
        fast, slow = strategy.entry.checks
        assert fast.interval_seconds is None
        assert slow.interval_seconds == 60.0

    def test_invalid_check_interval_rejected(self):
        from repro.bifrost.model import Check

        with pytest.raises(ConfigurationError):
            Check(
                name="c",
                service="svc",
                version="2.0.0",
                metric="error",
                threshold=0.1,
                interval_seconds=0.0,
            )


class TestUncertaintyScaling:
    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            UncertaintyModel().scaled(0.0)

    def test_scaling_preserves_ordering(self):
        base = UncertaintyModel()
        scaled = base.scaled(3.0)
        ordering = sorted(base.weights, key=base.weight)
        scaled_ordering = sorted(scaled.weights, key=scaled.weight)
        assert ordering == scaled_ordering


class TestGroupVolumeEdge:
    def test_flat_profile_helper(self):
        from repro.traffic.profile import UserGroup, flat_profile

        profile = flat_profile(3, 100.0, (UserGroup("all", 1.0),))
        assert profile.num_slots == 3
        assert profile.total_volume() == 300.0

    def test_single_group_share_one(self):
        from repro.traffic.profile import TrafficProfile, UserGroup

        profile = TrafficProfile([10.0], [UserGroup("all", 1.0)])
        assert profile.group_volume(0, "all") == 10.0
