"""A parse_file-level matrix covering every DSLError branch of the DSL.

Each case feeds a strategy *file* through :func:`parse_file`, so the
whole pipeline — disk read, file splitting, per-strategy parsing — is
exercised, and every ``raise DSLError`` in ``dsl.py`` has at least one
test that hits it.
"""

import pytest

from repro.bifrost.dsl import parse_file
from repro.errors import DSLError

VALID = """\
strategy ok
  description "fine"
  phase canary
    type canary
    service backend
    stable 1.0.0
    experimental 2.0.0
    check errors
      metric error
      threshold 0.05
"""

# One entry per DSLError branch: (case id, file text, message fragment).
ERROR_MATRIX = [
    (
        "odd-indentation",
        "strategy s\n   phase p\n",
        "odd indentation",
    ),
    (
        "no-strategy-definitions",
        "# just a comment\n",
        "no strategy definitions",
    ),
    (
        "duplicate-strategy-names",
        "strategy twin\n  phase p\n    service backend\n"
        "strategy twin\n  phase p\n    service backend\n",
        "duplicate strategy names",
    ),
    (
        "unknown-phase-type",
        "strategy s\n  phase p\n    type teleport\n    service backend\n",
        "unknown type",
    ),
    (
        "top-level-not-strategy",
        "strategy s\nrelease x\n",
        "expected 'strategy'",
    ),
    (
        "unexpected-keyword-at-strategy-level",
        "strategy s\n  budget 100\n",
        "at strategy level",
    ),
    (
        "keyword-outside-phase",
        "strategy s\n  description \"d\"\n    service backend\n",
        "outside a phase",
    ),
    (
        "unknown-phase-field",
        "strategy s\n  phase p\n    colour blue\n",
        "unknown phase field",
    ),
    (
        "keyword-outside-check",
        "strategy s\n  phase p\n    service backend\n      metric error\n",
        "outside a check",
    ),
    (
        "unknown-check-field",
        "strategy s\n  phase p\n    check c\n      sensitivity high\n",
        "unknown check field",
    ),
    (
        "indentation-too-deep",
        "strategy s\n  phase p\n    check c\n      metric error\n        deeper x\n",
        "indentation too deep",
    ),
]


@pytest.mark.parametrize(
    "text,fragment",
    [case[1:] for case in ERROR_MATRIX],
    ids=[case[0] for case in ERROR_MATRIX],
)
def test_every_dsl_error_branch(tmp_path, text, fragment):
    path = tmp_path / "broken.bifrost"
    path.write_text(text, encoding="utf-8")
    with pytest.raises(DSLError, match=fragment):
        parse_file(path)


def test_unreadable_path_raises_dsl_error(tmp_path):
    with pytest.raises(DSLError, match="cannot read strategy file"):
        parse_file(tmp_path / "absent.bifrost")


def test_valid_file_parses(tmp_path):
    path = tmp_path / "ok.bifrost"
    path.write_text(VALID, encoding="utf-8")
    strategies = parse_file(path)
    assert [s.name for s in strategies] == ["ok"]
    assert strategies[0].phases[0].checks[0].name == "errors"


def test_multiple_strategies_per_file(tmp_path):
    path = tmp_path / "two.bifrost"
    path.write_text(
        VALID + "\nstrategy second\n  phase p\n    service backend\n",
        encoding="utf-8",
    )
    assert [s.name for s in parse_file(path)] == ["ok", "second"]


def test_parse_strategy_only_branches():
    # Branches a *file* cannot reach (the file splitter only opens a
    # block on a 'strategy' header and never passes two headers to one
    # parse_strategy call): empty text, duplicated headers in one block,
    # and a block that never declared its header.
    from repro.bifrost.dsl import parse_strategy

    with pytest.raises(DSLError, match="empty strategy definition"):
        parse_strategy("   \n# only a comment\n")
    with pytest.raises(DSLError, match="multiple strategy definitions"):
        parse_strategy("strategy a\nstrategy b\n")
    with pytest.raises(DSLError, match="missing 'strategy"):
        parse_strategy("  phase p\n    service backend\n")
