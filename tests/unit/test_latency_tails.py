"""Heavy-tail latency samplers: quantiles pinned to closed-form values.

The scenario factory leans on two tail families — log-normal and Pareto —
whose p99/p999 have exact closed forms.  These tests pin the quantile
implementations to those values (no scipy involved) and sanity-check that
seeded sampling converges to the same tails.
"""

import math

import pytest

from repro.errors import ConfigurationError
from repro.simulation.latency import LogNormalLatency, ParetoLatency, _norm_ppf
from repro.simulation.rng import SeededRng

# Standard normal quantiles (reference values, Abramowitz & Stegun grade).
Z_99 = 2.3263478740408408
Z_999 = 3.0902323061678132


class TestNormPpf:
    def test_pinned_reference_quantiles(self):
        assert _norm_ppf(0.5) == pytest.approx(0.0, abs=1e-9)
        assert _norm_ppf(0.99) == pytest.approx(Z_99, abs=1e-6)
        assert _norm_ppf(0.999) == pytest.approx(Z_999, abs=1e-6)
        assert _norm_ppf(0.01) == pytest.approx(-Z_99, abs=1e-6)

    def test_symmetry(self):
        for p in (0.001, 0.025, 0.3, 0.77, 0.9995):
            assert _norm_ppf(p) == pytest.approx(-_norm_ppf(1.0 - p), abs=1e-8)

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.1, 1.5])
    def test_domain_enforced(self, p):
        with pytest.raises(ConfigurationError):
            _norm_ppf(p)


class TestParetoQuantiles:
    def test_p99_closed_form(self):
        # x_m * (1 - p) ** (-1/alpha): 10 * 0.01^(-2/3) = 10 * 100^(2/3)
        model = ParetoLatency(10.0, alpha=1.5)
        assert model.quantile(0.99) == pytest.approx(10.0 * 100.0 ** (2.0 / 3.0))
        assert model.quantile(0.99) == pytest.approx(215.443469, rel=1e-8)

    def test_p999_closed_form(self):
        # 10 * 0.001^(-2/3) = 10 * 1000^(2/3) = exactly 1000.
        model = ParetoLatency(10.0, alpha=1.5)
        assert model.quantile(0.999) == pytest.approx(1000.0, rel=1e-12)

    def test_median_and_mean(self):
        model = ParetoLatency(10.0, alpha=2.0)
        assert model.quantile(0.5) == pytest.approx(10.0 * math.sqrt(2.0))
        assert model.mean() == pytest.approx(20.0)

    def test_from_median_round_trips(self):
        model = ParetoLatency.from_median(12.0, alpha=1.7)
        assert model.quantile(0.5) == pytest.approx(12.0, rel=1e-12)

    def test_sampling_matches_closed_form_tail(self):
        model = ParetoLatency(5.0, alpha=1.8)
        rng = SeededRng(99)
        samples = sorted(model.sample(rng) for _ in range(200_000))
        p99_hat = samples[int(0.99 * len(samples))]
        assert p99_hat == pytest.approx(model.quantile(0.99), rel=0.05)
        assert min(samples) >= 5.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParetoLatency(0.0, alpha=1.5)
        with pytest.raises(ConfigurationError):
            ParetoLatency(10.0, alpha=1.0)
        with pytest.raises(ConfigurationError):
            ParetoLatency.from_median(0.0)
        with pytest.raises(ConfigurationError):
            ParetoLatency.from_median(10.0, alpha=0.9)
        with pytest.raises(ConfigurationError):
            ParetoLatency(10.0).quantile(1.0)


class TestLogNormalQuantiles:
    def test_p99_closed_form(self):
        model = LogNormalLatency(20.0, sigma=0.5)
        assert model.quantile(0.99) == pytest.approx(
            20.0 * math.exp(0.5 * Z_99), rel=1e-6
        )

    def test_p999_closed_form(self):
        model = LogNormalLatency(20.0, sigma=0.5)
        assert model.quantile(0.999) == pytest.approx(
            20.0 * math.exp(0.5 * Z_999), rel=1e-6
        )

    def test_median_is_parameter(self):
        assert LogNormalLatency(35.0, 0.4).quantile(0.5) == pytest.approx(35.0)

    def test_degenerate_sigma_zero(self):
        model = LogNormalLatency(15.0, sigma=0.0)
        assert model.quantile(0.001) == 15.0
        assert model.quantile(0.999) == 15.0
        with pytest.raises(ConfigurationError):
            model.quantile(1.0)

    def test_sampling_matches_closed_form_tail(self):
        model = LogNormalLatency(10.0, sigma=0.6)
        rng = SeededRng(7)
        samples = sorted(model.sample(rng) for _ in range(200_000))
        p99_hat = samples[int(0.99 * len(samples))]
        assert p99_hat == pytest.approx(model.quantile(0.99), rel=0.05)

    def test_pareto_tail_dominates_lognormal(self):
        # Same median, but the Pareto's p999/median ratio must be far
        # larger — the whole reason scenarios offer both families.
        lognormal = LogNormalLatency(10.0, sigma=0.3)
        pareto = ParetoLatency.from_median(10.0, alpha=1.2)
        assert pareto.quantile(0.999) > 10 * lognormal.quantile(0.999)
