"""Unit tests for repro.stats.descriptive."""

import math

import pytest

from repro.errors import StatisticsError
from repro.stats.descriptive import (
    mean,
    median,
    moving_average,
    percentile,
    stddev,
    summarize,
)


class TestMean:
    def test_simple(self):
        assert mean([1, 2, 3]) == 2.0

    def test_single_value(self):
        assert mean([42.0]) == 42.0

    def test_negative_values(self):
        assert mean([-2, 2]) == 0.0

    def test_empty_raises(self):
        with pytest.raises(StatisticsError):
            mean([])

    def test_accepts_generator(self):
        assert mean(x for x in (1.0, 3.0)) == 2.0


class TestMedian:
    def test_odd_length(self):
        assert median([3, 1, 2]) == 2.0

    def test_even_length_interpolates(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_unsorted_input(self):
        assert median([9, 1, 5]) == 5.0

    def test_empty_raises(self):
        with pytest.raises(StatisticsError):
            median([])


class TestStddev:
    def test_known_value(self):
        # Sample stddev of [2, 4, 4, 4, 5, 5, 7, 9] is ~2.138.
        assert stddev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.1381, abs=1e-3)

    def test_single_observation_is_zero(self):
        assert stddev([5.0]) == 0.0

    def test_constant_sample_is_zero(self):
        assert stddev([3, 3, 3]) == 0.0

    def test_population_variant(self):
        assert stddev([1, 3], ddof=0) == pytest.approx(1.0)


class TestPercentile:
    def test_median_equivalence(self):
        data = [1, 2, 3, 4, 5]
        assert percentile(data, 50) == median(data)

    def test_extremes(self):
        data = [10, 20, 30]
        assert percentile(data, 0) == 10
        assert percentile(data, 100) == 30

    def test_interpolation(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_out_of_range_q(self):
        with pytest.raises(StatisticsError):
            percentile([1, 2], 101)

    def test_single_value(self):
        assert percentile([7], 99) == 7


class TestMovingAverage:
    def test_window_one_is_identity(self):
        assert moving_average([1, 2, 3], 1) == [1, 2, 3]

    def test_window_smoothing(self):
        out = moving_average([0, 10, 20, 30], 2)
        assert out == [0.0, 5.0, 15.0, 25.0]

    def test_prefix_uses_shorter_window(self):
        out = moving_average([6, 0, 0], 3)
        assert out[0] == 6.0
        assert out[1] == 3.0
        assert out[2] == 2.0

    def test_same_length_as_input(self):
        assert len(moving_average(list(range(10)), 4)) == 10

    def test_invalid_window(self):
        with pytest.raises(StatisticsError):
            moving_average([1.0], 0)


class TestSummarize:
    def test_fields_consistent(self):
        stats = summarize([1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
        assert stats.count == 10
        assert stats.minimum == 1
        assert stats.maximum == 10
        assert stats.mean == 5.5
        assert stats.p25 <= stats.median <= stats.p75 <= stats.p95 <= stats.p99

    def test_as_row_keys(self):
        row = summarize([1.0, 2.0]).as_row()
        assert set(row) == {
            "count", "mean", "std", "min", "p25", "median", "p75",
            "p95", "p99", "max",
        }

    def test_empty_raises(self):
        with pytest.raises(StatisticsError):
            summarize([])

    def test_not_nan(self):
        stats = summarize([3.0])
        assert not math.isnan(stats.std)
