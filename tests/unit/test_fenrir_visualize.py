"""Unit tests for schedule visualization."""

import pytest

from repro.fenrir.model import SchedulingProblem
from repro.fenrir.schedule import Gene, Schedule
from repro.fenrir.visualize import schedule_gantt, utilization_sparkline
from tests.unit.test_fenrir_model import make_spec


@pytest.fixture
def small_schedule(profile):
    specs = [
        make_spec("alpha", required_samples=100),
        make_spec("beta", required_samples=100),
    ]
    problem = SchedulingProblem(profile, specs)
    return Schedule(
        problem,
        [
            Gene(0, 5, 0.5, frozenset({"eu"})),
            Gene(10, 8, 0.125, frozenset({"na"})),
        ],
    )


class TestGantt:
    def test_one_row_per_experiment(self, small_schedule):
        lines = schedule_gantt(small_schedule).splitlines()
        assert len(lines) == 3  # header + 2 experiments
        assert lines[1].startswith("alpha")
        assert lines[2].startswith("beta")

    def test_occupancy_marks_only_active_slots(self, small_schedule):
        lines = schedule_gantt(small_schedule, width=48).splitlines()
        alpha_row = lines[1]
        strip = alpha_row[len("alpha  "):len("alpha  ") + 48]
        assert strip[0] != " "      # slot 0 occupied
        assert strip[20] == " "     # slot 20 free

    def test_fraction_affects_glyph_intensity(self, small_schedule):
        lines = schedule_gantt(small_schedule, width=48).splitlines()
        alpha_glyph = lines[1][len("alpha  ")]
        beta_glyph = lines[2][len("beta ") + 2 + 10]
        # alpha (0.5) should render denser than beta (0.125).
        blocks = " ▁▂▃▄▅▆▇█"
        assert blocks.index(alpha_glyph) > blocks.index(beta_glyph)

    def test_annotations_present(self, small_schedule):
        text = schedule_gantt(small_schedule)
        assert "f=0.50" in text
        assert "eu" in text

    def test_wide_horizon_rescaled(self, week_profile):
        specs = [make_spec("x", required_samples=100, max_duration_slots=24)]
        problem = SchedulingProblem(week_profile, specs)
        schedule = Schedule(problem, [Gene(0, 10, 0.2, frozenset({"eu"}))])
        lines = schedule_gantt(schedule, width=40).splitlines()
        assert all(len(line) < 120 for line in lines)


class TestSparkline:
    @staticmethod
    def _cells(line: str) -> str:
        # The sparkline is everything before the "(peak ...)" annotation;
        # blank cells are significant, so split on the marker itself.
        return line[: line.index("   (peak")]

    def test_length_scales_to_width(self, small_schedule):
        cells = self._cells(utilization_sparkline(small_schedule, width=24))
        assert len(cells) <= 24

    def test_empty_slots_blank(self, small_schedule):
        cells = self._cells(utilization_sparkline(small_schedule, width=48))
        assert cells[30] == " "  # nothing scheduled late in horizon

    def test_peak_reported(self, small_schedule):
        assert "peak" in utilization_sparkline(small_schedule)
