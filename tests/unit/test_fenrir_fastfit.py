"""The fastfit evaluation layer: memoization, deltas, parallel scoring,
budget accounting, and the evaluation counters surfaced in results."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fenrir.base import BudgetedEvaluator
from repro.fenrir.fastfit import (
    SEED_OPTIONS,
    DeltaEvaluator,
    EvalStats,
    EvaluatorOptions,
    FitnessCache,
    ParallelEvaluator,
    publish_eval_stats,
)
from repro.fenrir.fitness import ScheduleEvaluation, evaluate
from repro.fenrir.genetic import GeneticAlgorithm
from repro.fenrir.generator import SampleSizeBand, random_experiments
from repro.fenrir.local_search import LocalSearch
from repro.fenrir.model import ExperimentSpec, SchedulingProblem
from repro.fenrir.operators import mutate_gene, random_schedule
from repro.fenrir.random_sampling import RandomSampling
from repro.fenrir.annealing import SimulatedAnnealing
from repro.simulation.rng import SeededRng
from repro.telemetry import MetricStore


@pytest.fixture
def problem(profile) -> SchedulingProblem:
    experiments = random_experiments(
        profile, count=5, band=SampleSizeBand.LOW, seed=2
    )
    return SchedulingProblem(profile, experiments)


def distinct_schedules(problem, count, seed=0):
    rng = SeededRng(seed)
    out = []
    seen = set()
    while len(out) < count:
        s = random_schedule(problem, rng)
        if s.key() not in seen:
            seen.add(s.key())
            out.append(s)
    return out


class TestWorstSentinel:
    def test_fields(self):
        worst = ScheduleEvaluation.worst()
        assert worst.fitness == 0.0
        assert worst.valid is False
        assert worst.penalized == float("-inf")
        assert worst.violations == ()
        assert worst.per_experiment == ()

    def test_ranks_below_any_real_evaluation(self, problem):
        real = evaluate(random_schedule(problem, SeededRng(0)))
        assert ScheduleEvaluation.worst().penalized < real.penalized


class TestFitnessCache:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            FitnessCache(0)

    def test_hit_and_miss_counters(self):
        cache = FitnessCache(4)
        assert cache.get(("a",)) is None
        cache.put(("a",), ScheduleEvaluation.worst())
        assert cache.get(("a",)) is not None
        assert cache.misses == 1
        assert cache.hits == 1

    def test_lru_eviction_prefers_recently_used(self):
        cache = FitnessCache(2)
        cache.put(("a",), ScheduleEvaluation.worst())
        cache.put(("b",), ScheduleEvaluation.worst())
        cache.get(("a",))  # refresh "a" so "b" is least recently used
        cache.put(("c",), ScheduleEvaluation.worst())
        assert cache.get(("a",)) is not None
        assert cache.get(("b",)) is None
        assert len(cache) == 2


class TestDeltaEvaluator:
    def test_single_mutation_matches_full(self, problem):
        rng = SeededRng(3)
        parent = random_schedule(problem, rng)
        delta = DeltaEvaluator(problem)
        base, used_delta = delta.evaluate(parent)
        assert not used_delta
        assert base == evaluate(parent)
        child = parent.replaced(
            1, mutate_gene(problem, problem.experiments[1], parent.genes[1], rng)
        )
        got, used_delta = delta.evaluate(child, parent=parent, changed={1})
        assert used_delta
        assert got == evaluate(child)

    def test_superset_changed_hint_is_sanitized(self, problem):
        rng = SeededRng(4)
        parent = random_schedule(problem, rng)
        delta = DeltaEvaluator(problem)
        delta.evaluate(parent)
        child = parent.replaced(
            0, mutate_gene(problem, problem.experiments[0], parent.genes[0], rng)
        )
        # Hint names every index; only gene 0 actually differs.
        got, used_delta = delta.evaluate(
            child, parent=parent, changed=range(len(child.genes))
        )
        assert used_delta
        assert got == evaluate(child)

    def test_unknown_parent_falls_back_to_full(self, problem):
        rng = SeededRng(5)
        parent = random_schedule(problem, rng)
        child = random_schedule(problem, rng)
        delta = DeltaEvaluator(problem)
        got, used_delta = delta.evaluate(child, parent=parent)
        assert not used_delta
        assert got == evaluate(child)

    def test_large_change_sets_use_full_path(self, problem):
        rng = SeededRng(6)
        parent = random_schedule(problem, rng)
        delta = DeltaEvaluator(problem, max_delta_fraction=0.2)
        delta.evaluate(parent)
        child = random_schedule(problem, rng)  # every gene differs
        got, used_delta = delta.evaluate(child, parent=parent)
        assert not used_delta
        assert got == evaluate(child)

    def test_state_store_is_bounded(self, problem):
        delta = DeltaEvaluator(problem, state_size=3)
        schedules = distinct_schedules(problem, 5, seed=7)
        for s in schedules:
            delta.evaluate(s)
        assert not delta.has_state(schedules[0])
        assert delta.has_state(schedules[-1])

    def test_rejects_nonpositive_state_size(self, problem):
        with pytest.raises(ConfigurationError):
            DeltaEvaluator(problem, state_size=0)


class TestBudgetedEvaluatorAccounting:
    def test_budget_exhaustion_boundary(self, problem):
        evaluator = BudgetedEvaluator(3)
        for s in distinct_schedules(problem, 3, seed=8):
            assert not evaluator.exhausted
            evaluator.evaluate(s)
        assert evaluator.used == 3
        assert evaluator.exhausted

    def test_cache_hit_is_free_by_default(self, problem):
        evaluator = BudgetedEvaluator(2)
        schedule = random_schedule(problem, SeededRng(9))
        first = evaluator.evaluate(schedule)
        again = evaluator.evaluate(schedule.copy())  # same chromosome, new object
        assert again == first
        assert evaluator.used == 1
        assert evaluator.stats.cache_hits == 1
        assert not evaluator.exhausted

    def test_count_cache_hits_charges_budget(self, problem):
        evaluator = BudgetedEvaluator(
            2, options=EvaluatorOptions(count_cache_hits=True)
        )
        schedule = random_schedule(problem, SeededRng(9))
        evaluator.evaluate(schedule)
        evaluator.evaluate(schedule.copy())
        assert evaluator.used == 2
        assert evaluator.stats.cache_hits == 1
        assert evaluator.exhausted  # hits alone can exhaust the budget

    def test_stall_guard_trips_on_endless_cache_hits(self, problem):
        evaluator = BudgetedEvaluator(1)
        schedule = random_schedule(problem, SeededRng(10))
        evaluator.evaluate(schedule)
        spins = 0
        while not evaluator.exhausted:
            evaluator.evaluate(schedule)
            spins += 1
            assert spins <= 2000, "stall guard never tripped"
        assert evaluator.used == 1  # only the first evaluation was computed

    def test_seed_options_disable_cache_and_delta(self, problem):
        evaluator = BudgetedEvaluator(5, options=SEED_OPTIONS)
        schedule = random_schedule(problem, SeededRng(11))
        evaluator.evaluate(schedule)
        evaluator.evaluate(schedule, parent=schedule, changed=frozenset())
        assert evaluator.used == 2
        assert evaluator.stats.cache_hits == 0
        assert evaluator.stats.delta_evals == 0
        assert evaluator.stats.full_evals == 2

    def test_used_matches_computed_evals(self, problem):
        result = LocalSearch().optimize(problem, budget=120, seed=1)
        stats = result.eval_stats
        assert stats is not None
        assert result.evaluations_used == stats.computed_evals
        assert stats.delta_evals > 0  # single-gene moves score incrementally

    def test_used_includes_hits_when_counted(self, problem):
        result = LocalSearch().optimize(
            problem,
            budget=120,
            seed=1,
            options=EvaluatorOptions(count_cache_hits=True),
        )
        stats = result.eval_stats
        assert result.evaluations_used == stats.computed_evals + stats.cache_hits


class TestTelemetryExport:
    def test_publish_eval_stats_records_counters(self):
        store = MetricStore()
        stats = EvalStats(full_evals=3, delta_evals=7, cache_hits=2, wall_time_s=0.5)
        publish_eval_stats(store, "ga", stats)
        for metric, value in stats.as_dict().items():
            assert store.aggregate("fenrir", "ga", metric, "sum", 0.0, 1.0) == value

    def test_search_result_counts_match_store(self, problem):
        store = MetricStore()
        result = SimulatedAnnealing().optimize(
            problem, budget=100, seed=2, options=EvaluatorOptions(telemetry=store)
        )
        stats = result.eval_stats
        for metric in ("full_evals", "delta_evals", "cache_hits"):
            recorded = store.aggregate("fenrir", "annealing", metric, "sum", 0.0, 1.0)
            assert recorded == stats.as_dict()[metric]


class TestParallelEvaluator:
    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            ParallelEvaluator(mode="gpu")
        with pytest.raises(ConfigurationError):
            ParallelEvaluator(chunk_size=0)

    def test_thread_mode_matches_serial_in_order(self, problem):
        schedules = distinct_schedules(problem, 9, seed=12)
        genes_list = [s.genes for s in schedules]
        serial = ParallelEvaluator(mode="serial").evaluate_schedules(
            problem, genes_list
        )
        with ParallelEvaluator(mode="thread", chunk_size=2) as pool:
            threaded = pool.evaluate_schedules(problem, genes_list)
        assert threaded == serial
        assert threaded == [evaluate(s) for s in schedules]

    def test_auto_mode_produces_correct_scores(self, problem):
        schedules = distinct_schedules(problem, 4, seed=13)
        with ParallelEvaluator(chunk_size=2) as pool:
            results = pool.evaluate_schedules(problem, [s.genes for s in schedules])
        assert results == [evaluate(s) for s in schedules]
        assert pool.effective_mode in ("process", "thread")

    def test_empty_population(self, problem):
        assert ParallelEvaluator(mode="serial").evaluate_schedules(problem, []) == []


class TestEvaluatePopulation:
    def test_parallel_population_matches_serial(self, problem):
        schedules = distinct_schedules(problem, 8, seed=14)
        serial = BudgetedEvaluator(20)
        serial_scores = serial.evaluate_population(schedules)
        with ParallelEvaluator(mode="thread", chunk_size=3) as pool:
            parallel = BudgetedEvaluator(
                20, options=EvaluatorOptions(parallel=pool)
            )
            parallel_scores = parallel.evaluate_population(schedules)
        assert parallel_scores == serial_scores
        assert parallel.used == serial.used
        assert parallel.history == serial.history
        assert parallel.best_evaluation == serial.best_evaluation

    def test_budget_padding_matches_serial(self, problem):
        schedules = distinct_schedules(problem, 8, seed=15)
        serial = BudgetedEvaluator(5)
        serial_scores = serial.evaluate_population(schedules)
        with ParallelEvaluator(mode="thread") as pool:
            parallel = BudgetedEvaluator(5, options=EvaluatorOptions(parallel=pool))
            parallel_scores = parallel.evaluate_population(schedules)
        assert parallel_scores == serial_scores
        assert parallel_scores[-1] == ScheduleEvaluation.worst()
        assert serial.used == parallel.used == 5

    def test_duplicate_schedules_hit_cache_in_parallel(self, problem):
        schedule = random_schedule(problem, SeededRng(16))
        population = [schedule, schedule.copy(), schedule.copy()]
        with ParallelEvaluator(mode="thread") as pool:
            evaluator = BudgetedEvaluator(10, options=EvaluatorOptions(parallel=pool))
            scores = evaluator.evaluate_population(population)
        assert scores[0] == scores[1] == scores[2]
        assert evaluator.used == 1
        assert evaluator.stats.cache_hits == 2


class TestAlgorithmsUnderOptions:
    @pytest.mark.parametrize(
        "algorithm",
        [
            GeneticAlgorithm(population_size=12),
            LocalSearch(),
            SimulatedAnnealing(),
            RandomSampling(),
        ],
        ids=["ga", "ls", "sa", "random"],
    )
    def test_deterministic_per_options(self, problem, algorithm):
        kwargs = dict(budget=150, seed=5)
        first = algorithm.optimize(problem, **kwargs)
        second = algorithm.optimize(problem, **kwargs)
        assert first.fitness == second.fitness
        assert first.best_schedule.key() == second.best_schedule.key()
        seeded = algorithm.optimize(problem, options=SEED_OPTIONS, **kwargs)
        seeded2 = algorithm.optimize(problem, options=SEED_OPTIONS, **kwargs)
        assert seeded.fitness == seeded2.fitness
        assert seeded.best_schedule.key() == seeded2.best_schedule.key()

    def test_ga_parallel_matches_ga_serial(self, problem):
        ga = GeneticAlgorithm(population_size=12)
        serial = ga.optimize(problem, budget=150, seed=3)
        with ParallelEvaluator(mode="thread", chunk_size=4) as pool:
            parallel = ga.optimize(
                problem,
                budget=150,
                seed=3,
                options=EvaluatorOptions(parallel=pool),
            )
        assert parallel.fitness == serial.fitness
        assert parallel.best_schedule.key() == serial.best_schedule.key()
        assert parallel.best_evaluation == serial.best_evaluation

    def test_foreign_problem_bypasses_fast_path(self, problem):
        other = SchedulingProblem(
            problem.profile,
            [ExperimentSpec(name="solo", required_samples=500.0)],
        )
        evaluator = BudgetedEvaluator(10)
        evaluator.evaluate(random_schedule(problem, SeededRng(17)))
        foreign = random_schedule(other, SeededRng(18))
        got = evaluator.evaluate(foreign)
        assert got == evaluate(foreign)
        assert evaluator.used == 2
