"""Unit tests for the ranking heuristics and nDCG evaluation."""

import pytest

from repro.topology.change_types import ChangeType
from repro.topology.diff import diff_graphs
from repro.topology.generator import mutate_graph, random_interaction_graph
from repro.topology.graph import InteractionGraph, NodeKey
from repro.topology.heuristics import (
    HybridHeuristic,
    ResponseTimeHeuristic,
    SubtreeComplexityHeuristic,
    all_heuristic_variants,
)
from repro.topology.heuristics.base import normalized
from repro.topology.ranking import evaluate_ranking, rank_changes, ranking_table


def key(service, version="1.0.0", endpoint="ep") -> NodeKey:
    return NodeKey(service, version, endpoint)


def graph_with_chain(*latencies) -> InteractionGraph:
    """root -> s1 -> s2 ... with the given mean latencies."""
    graph = InteractionGraph()
    prev = None
    for index, latency in enumerate(latencies):
        node = key(f"s{index}")
        for _ in range(20):
            graph.observe_call(prev, node, latency, False)
        prev = node
    return graph


class TestSubtreeComplexity:
    def test_bigger_subtree_scores_higher(self):
        base = graph_with_chain(10, 10, 10, 10)
        experimental = graph_with_chain(10, 10, 10, 10)
        # Change near the root (big subtree) and at the leaf (small).
        experimental.observe_call(key("s0"), key("new_root_child"), 5.0, False)
        experimental.observe_call(key("s3"), key("new_leaf_child"), 5.0, False)
        diff = diff_graphs(base, experimental)
        # Both changes are CALLING_NEW_ENDPOINT; anchors are the leaves,
        # so their subtrees are equal — rank by caller subtree is not the
        # model; verify by modifying subtree contents instead.
        heuristic = SubtreeComplexityHeuristic()
        scores = heuristic.scores(diff)
        assert all(score > 0 for score in scores.values())

    def test_uncertainty_weighting_orders_types(self):
        base = graph_with_chain(10, 10)
        experimental = graph_with_chain(10, 10)
        experimental.observe_call(key("s1"), key("brand_new"), 5.0, False)  # new endpoint
        # Remove nothing; add call to existing endpoint:
        experimental.observe_call(key("s0"), key("s1")._replace(endpoint="ep"), 5.0, False)
        diff = diff_graphs(base, experimental)
        heuristic = SubtreeComplexityHeuristic(use_uncertainty=True)
        scores = {c.type: s for c, s in heuristic.scores(diff).items()}
        if (
            ChangeType.CALLING_NEW_ENDPOINT in scores
            and ChangeType.CALLING_EXISTING_ENDPOINT in scores
        ):
            assert (
                scores[ChangeType.CALLING_NEW_ENDPOINT]
                >= scores[ChangeType.CALLING_EXISTING_ENDPOINT]
            )

    def test_plain_variant_ignores_type(self):
        heuristic = SubtreeComplexityHeuristic(use_uncertainty=False)
        assert heuristic.name == "SC-plain"
        weights = {heuristic.uncertainty.weight(ct) for ct in ChangeType}
        assert weights == {1.0}


class TestResponseTimeHeuristic:
    def make_degraded_diff(self):
        base = graph_with_chain(10, 20, 30)
        experimental = InteractionGraph()
        # s1 updated to 2.0.0 and much slower; s2 unchanged.
        prev = None
        for index, (latency, version) in enumerate(
            [(10, "1.0.0"), (80, "2.0.0"), (30, "1.0.0")]
        ):
            node = key(f"s{index}", version)
            for _ in range(20):
                experimental.observe_call(prev, node, latency, False)
            prev = node
        return diff_graphs(base, experimental)

    def test_culprit_gets_positive_score(self):
        diff = self.make_degraded_diff()
        scores = ResponseTimeHeuristic().scores(diff)
        callee_updates = {
            c: s for c, s in scores.items()
            if c.type is ChangeType.UPDATED_CALLEE_VERSION
        }
        assert callee_updates
        assert max(callee_updates.values()) > 0

    def test_exclusive_delta_subtracts_children(self):
        # s0's observed time includes s1's degradation: s0 is a victim.
        diff = self.make_degraded_diff()
        scores = ResponseTimeHeuristic().scores(diff)
        culprit = max(scores, key=scores.get)
        assert culprit.anchor.service_endpoint == ("s1", "ep")

    def test_removed_calls_score_zero(self):
        base = graph_with_chain(10, 20)
        experimental = InteractionGraph()
        experimental.observe_call(None, key("s0"), 10.0, False)
        diff = diff_graphs(base, experimental)
        scores = ResponseTimeHeuristic().scores(diff)
        removed = [c for c in scores if c.removed]
        assert removed and all(scores[c] == 0.0 for c in removed)

    def test_relative_variant_name(self):
        assert ResponseTimeHeuristic(relative=True).name == "RT-rel"

    def test_error_shift_scores(self):
        base = graph_with_chain(10, 20)
        experimental = InteractionGraph()
        experimental.observe_call(None, key("s0"), 10.0, False)
        for i in range(20):
            experimental.observe_call(
                key("s0"), key("s1", "2.0.0"), 20.0, error=(i % 2 == 0)
            )
        diff = diff_graphs(base, experimental)
        scores = ResponseTimeHeuristic().scores(diff)
        assert max(scores.values()) > 50  # error shift dominates


class TestHybrid:
    def test_combines_components(self):
        base = graph_with_chain(10, 20, 30)
        experimental = graph_with_chain(10, 20, 30)
        experimental.observe_call(key("s2"), key("fresh"), 5.0, False)
        diff = diff_graphs(base, experimental)
        hybrid = HybridHeuristic()
        scores = hybrid.scores(diff)
        assert all(0.0 <= s <= 1.0 for s in scores.values())

    def test_structure_weight_bounds(self):
        with pytest.raises(ValueError):
            HybridHeuristic(structure_weight=1.5)

    def test_variant_names(self):
        assert HybridHeuristic(relative=False).name == "HY-abs"
        assert HybridHeuristic(relative=True).name == "HY-rel"


class TestNormalization:
    def test_scales_to_unit(self):
        scores = normalized({"a": 2.0, "b": 4.0})
        assert scores == {"a": 0.5, "b": 1.0}

    def test_all_zero_stays_zero(self):
        scores = normalized({"a": 0.0})
        assert scores == {"a": 0.0}

    def test_empty(self):
        assert normalized({}) == {}


class TestRanking:
    def make_diff(self):
        base = graph_with_chain(10, 20, 30)
        experimental = graph_with_chain(10, 20, 30)
        experimental.observe_call(key("s0"), key("newsvc"), 5.0, False)
        experimental.observe_call(key("s2"), key("othersvc"), 5.0, False)
        return diff_graphs(base, experimental)

    def test_rank_positions_sequential(self):
        diff = self.make_diff()
        ranking = rank_changes(diff, SubtreeComplexityHeuristic())
        assert [r.rank for r in ranking] == list(range(1, len(ranking) + 1))

    def test_scores_descending(self):
        diff = self.make_diff()
        ranking = rank_changes(diff, SubtreeComplexityHeuristic())
        scores = [r.score for r in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_deterministic_tie_break(self):
        diff = self.make_diff()
        a = rank_changes(diff, SubtreeComplexityHeuristic())
        b = rank_changes(diff, SubtreeComplexityHeuristic())
        assert [r.change for r in a] == [r.change for r in b]

    def test_evaluate_ranking_perfect(self):
        diff = self.make_diff()
        ranking = rank_changes(diff, SubtreeComplexityHeuristic())
        relevance = {
            ranked.change.identity: float(len(ranking) - i)
            for i, ranked in enumerate(ranking)
        }
        assert evaluate_ranking(ranking, relevance, k=5) == pytest.approx(1.0)

    def test_evaluate_ranking_unknown_changes_irrelevant(self):
        diff = self.make_diff()
        ranking = rank_changes(diff, SubtreeComplexityHeuristic())
        assert evaluate_ranking(ranking, {}, k=5) == 1.0  # all-zero convention

    def test_ranking_table_limit(self):
        diff = self.make_diff()
        ranking = rank_changes(diff, SubtreeComplexityHeuristic())
        table = ranking_table(ranking, limit=1)
        assert table.count("\n") == 0

    def test_missed_relevant_change_lowers_score(self):
        """Regression: the nDCG ideal must cover the full ground truth.

        A diff/heuristic that never surfaces a highly relevant change
        used to score a perfect 1.0 because the ideal was computed only
        from the grades of *ranked* changes; now the unranked
        ground-truth grade enters the ideal and penalizes the miss.
        """
        diff = self.make_diff()
        ranking = rank_changes(diff, SubtreeComplexityHeuristic())
        relevance = {
            ranked.change.identity: float(len(ranking) - i)
            for i, ranked in enumerate(ranking)
        }
        perfect = evaluate_ranking(ranking, relevance, k=5)
        # Ground truth knows one more highly relevant change the diff
        # missed entirely (e.g. hidden by sampling or a collector gap).
        relevance_with_miss = dict(relevance)
        relevance_with_miss[("updated_version", "ghost/ep", "ghost/ep")] = 10.0
        punished = evaluate_ranking(ranking, relevance_with_miss, k=5)
        assert punished < perfect
        assert punished < 1.0

    def test_missed_irrelevant_change_does_not_lower_score(self):
        diff = self.make_diff()
        ranking = rank_changes(diff, SubtreeComplexityHeuristic())
        relevance = {
            ranked.change.identity: float(len(ranking) - i)
            for i, ranked in enumerate(ranking)
        }
        relevance[("updated_version", "ghost/ep", "ghost/ep")] = 0.0
        assert evaluate_ranking(ranking, relevance, k=5) == pytest.approx(1.0)


class TestVariants:
    def test_six_variants(self):
        variants = all_heuristic_variants()
        assert set(variants) == {
            "SC", "SC-plain", "RT-abs", "RT-rel", "HY-abs", "HY-rel",
        }

    def test_all_variants_run_on_synthetic_graph(self):
        base = random_interaction_graph(200, branching=3, seed=1)
        variant = mutate_graph(base, changes=12, seed=2)
        diff = diff_graphs(base, variant)
        assert diff.changes
        for heuristic in all_heuristic_variants().values():
            scores = heuristic.scores(diff)
            assert set(scores) == set(diff.changes)
