"""End-to-end decision provenance and burn-rate alerting (PR 10).

The acceptance scenario: a seeded faulty canary rolls back, and one
:func:`render_decision_report` call names the exact failing evidence
record and the fault that was active at decision time.  Plus the two
alerting integrations: ``kind slo`` DSL checks gating on a burn-rate
rule's published stream, and the fleet shedding a burning experiment
before its deadline.
"""

import pytest

from repro.bifrost.dsl import parse_strategy, strategy_to_dsl
from repro.bifrost.middleware import Bifrost
from repro.bifrost.model import Strategy, StrategyOutcome
from repro.fleet import (
    OUTCOME_PROMOTED,
    OUTCOME_SHED,
    SHED_BURN,
    FleetConfig,
    FleetOrchestrator,
)
from repro.microservices.faults import ErrorBurst, FaultCampaign, FaultInjector
from repro.obs.alerts import ALERTS_VERSION, AlertRule
from repro.obs.events import DECISION_RECORDED
from repro.obs.observer import Observer
from repro.obs.provenance import build_provenance, render_decision_report
from repro.traffic.profile import UserGroup
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

from tests.unit.test_bifrost_engine import canary_phase
from tests.unit.test_fleet_orchestrator import fast_config, make_schedule

GROUPS = (UserGroup("eu", 0.6), UserGroup("na", 0.4))


def drive(bifrost: Bifrost, duration=120.0, rate=40.0, seed=3):
    population = UserPopulation(400, GROUPS, seed=seed + 1)
    workload = WorkloadGenerator(
        population, entry="frontend.home", seed=seed + 2
    )
    bifrost.run(workload.poisson(rate, duration), until=duration + 20.0)


class TestWhyDidThisCanaryRollBack:
    """The headline e2e: the report explains a seeded faulty rollback."""

    def faulty_run(self, canary_app):
        observer = Observer(enabled=True)
        bifrost = Bifrost(canary_app, seed=7, observer=observer)
        campaign = FaultCampaign(FaultInjector(canary_app))
        campaign.add(
            ErrorBurst(
                service="backend",
                version="2.0.0",
                endpoint="api",
                added_error_rate=0.8,
                start=5.0,
                end=80.0,
            )
        )
        bifrost.install_campaign(campaign)
        execution = bifrost.submit(Strategy("s", (canary_phase(),)), at=1.0)
        drive(bifrost)
        assert execution.outcome is StrategyOutcome.ROLLED_BACK
        return bifrost, observer, execution

    def test_report_names_the_failing_evidence_and_fault(self, canary_app):
        bifrost, observer, execution = self.faulty_run(canary_app)
        graph = observer.provenance.graph()
        record = graph.strategy("s")
        decision = record.terminal_decision()
        assert decision is not None and decision.action == "rollback"
        # The decision happened inside the burst window and says so.
        assert decision.faults == ("ErrorBurst:backend@2.0.0/api",)
        failing = [e for e in graph.evidence_for(decision) if e.failing]
        assert len(failing) == 1
        evidence = failing[0]
        assert evidence.check == "errors"
        assert evidence.metric == "error"
        assert evidence.observed is not None and evidence.observed > 0.05
        assert evidence.margin is not None and evidence.margin < 0
        # One call answers the question, naming that exact record.
        report = render_decision_report(graph, "s")
        assert f"!! {evidence.describe()}" in report
        assert "faults active: ErrorBurst:backend@2.0.0/api" in report
        assert "--failure--> rollback (rollback)" in report

    def test_offline_fold_matches_engine_graph(self, canary_app):
        _, observer, _ = self.faulty_run(canary_app)
        live = observer.provenance.graph()
        offline = build_provenance(observer.events)
        assert offline.digest() == live.digest()

    def test_decision_events_cover_every_transition(self, canary_app):
        _, observer, execution = self.faulty_run(canary_app)
        decisions = observer.events.events(kinds={DECISION_RECORDED})
        assert len(decisions) == len(execution.transitions)


SLO_DSL = """
strategy slo-gated
  phase canary
    type canary
    service backend
    stable 1.0.0
    experimental 2.0.0
    fraction 0.3
    duration 60
    interval 5
    check burn
      kind slo
      rule checkout
      window 20
"""


class TestSloCheckGating:
    def test_dsl_round_trips(self):
        strategy = parse_strategy(SLO_DSL)
        check = strategy.phase("canary").checks[0]
        assert check.kind == "slo"
        assert check.rule == "checkout"
        assert check.version == ALERTS_VERSION
        assert check.metric == "burn:checkout"
        assert check.aggregation == "max"
        assert check.threshold == 1.0
        text = strategy_to_dsl(strategy)
        assert "kind slo" in text and "rule checkout" in text
        assert parse_strategy(text) == strategy

    def run_with_slo(self, app, canary_error_rate: float):
        version = app.resolve("backend", "2.0.0")
        from tests.conftest import constant_endpoint

        version.endpoints["api"] = constant_endpoint(
            "api", 30.0, error_rate=canary_error_rate
        )
        observer = Observer(enabled=True)
        bifrost = Bifrost(app, seed=11, observer=observer)
        bifrost.enable_alerts(
            [
                AlertRule(
                    name="checkout",
                    service="backend",
                    version="2.0.0",
                    objective=0.95,
                    fast_window=15.0,
                    slow_window=60.0,
                    burn_threshold=2.0,
                )
            ],
            interval=5.0,
        )
        execution = bifrost.submit(parse_strategy(SLO_DSL), at=1.0)
        drive(bifrost, seed=11)
        return execution, observer

    def test_burning_canary_rolls_back_on_slo_check(self, canary_app):
        execution, observer = self.run_with_slo(canary_app, 0.3)
        assert execution.outcome is StrategyOutcome.ROLLED_BACK
        graph = observer.provenance.graph()
        decision = graph.strategy("slo-gated").terminal_decision()
        assert decision.action == "rollback"
        # The alert fired before the decision and is linked into it.
        assert decision.alerts == ("checkout",)
        failing = [e for e in graph.evidence_for(decision) if e.failing]
        assert failing and failing[0].metric == "burn:checkout"
        assert failing[0].version == ALERTS_VERSION
        # The graph's alert timeline carries the firing span.
        assert any(span.rule == "checkout" for span in graph.alerts)

    def test_healthy_canary_promotes_through_slo_gate(self, canary_app):
        execution, _observer = self.run_with_slo(canary_app, 0.0)
        assert execution.outcome is StrategyOutcome.COMPLETED


class TestFleetBurnShedding:
    def slo_config(self, **overrides) -> FleetConfig:
        # The per-experiment error gate is parked far out of the way so
        # only the burn-rate path can cut the experiment.
        return fast_config(
            check_threshold=0.9,
            slo_objective=0.95,
            slo_fast_window_seconds=30.0,
            slo_slow_window_seconds=120.0,
            slo_burn_threshold=2.0,
            **overrides,
        )

    def test_burning_experiment_sheds_before_deadline(self):
        result = FleetOrchestrator(
            make_schedule(4),
            world={"exp1": 0.4},  # 8x burn against a 5% budget
            config=self.slo_config(),
        ).run()
        assert result.outcomes["exp1"] == OUTCOME_SHED
        assert result.sheds["exp1"] == SHED_BURN
        for name in ("exp0", "exp2", "exp3"):
            assert result.outcomes[name] == OUTCOME_PROMOTED

    def test_without_slo_objective_nothing_sheds(self):
        result = FleetOrchestrator(
            make_schedule(4),
            world={"exp1": 0.4},
            config=fast_config(check_threshold=0.9),
        ).run()
        assert result.sheds == {}
        assert result.outcomes["exp1"] == OUTCOME_PROMOTED

    def test_config_round_trips_and_tolerates_old_wals(self):
        config = self.slo_config()
        assert FleetConfig.from_dict(config.to_dict()) == config
        legacy = {
            k: v
            for k, v in fast_config().to_dict().items()
            if not k.startswith("slo_")
        }
        recovered = FleetConfig.from_dict(legacy)
        assert recovered.slo_objective is None
        with pytest.raises(Exception):
            FleetConfig(slo_objective=1.5)
