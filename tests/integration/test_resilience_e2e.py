"""End-to-end resilience: retries absorb bursts, breakers end crashes.

The acceptance scenario of the resilience layer: the *same* canary
strategy with retries enabled

- **completes** under a 30 s transient error burst — bounded retries
  re-execute the failed hops and the health checks never see a
  user-visible regression;
- **rolls back** under a sustained version crash — retries are
  exhausted, the circuit breaker opens on the crashed version, and the
  user-visible error check fails (or the phase deadline cuts it off);

and both runs are byte-identical across two executions with the same
seed.
"""

import pytest

from repro.bifrost import Bifrost
from repro.bifrost.model import Check, Phase, PhaseType, Strategy, StrategyOutcome
from repro.microservices.application import Application
from repro.microservices.faults import (
    ErrorBurst,
    FaultCampaign,
    FaultInjector,
    NetworkState,
    VersionCrash,
)
from repro.microservices.resilience import (
    BreakerConfig,
    BreakerState,
    CallPolicy,
    ResilienceLayer,
)
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.simulation.latency import LogNormalLatency
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

BURST = "burst"
CRASH = "crash"


def build_app() -> Application:
    app = Application("shop")
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {
                "index": EndpointSpec(
                    "index",
                    LogNormalLatency(8.0, 0.2),
                    calls=(DownstreamCall("catalog", "list"),),
                )
            },
            capacity_rps=300.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "1.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(18.0, 0.25))},
            capacity_rps=300.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "2.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(16.0, 0.25))},
            capacity_rps=300.0,
        )
    )
    return app


def canary_strategy(deadline=240.0) -> Strategy:
    return Strategy(
        "catalog-canary",
        (
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="catalog",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.3,
                duration_seconds=120.0,
                check_interval_seconds=10.0,
                deadline_seconds=deadline,
                checks=(
                    # User-visible health: what reaches the end user after
                    # the resilience layer did its work.
                    Check(
                        name="user-errors",
                        service="frontend",
                        version="1.0.0",
                        metric="error",
                        threshold=0.10,
                        window_seconds=25.0,
                    ),
                ),
            ),
        ),
    )


def run_scenario(kind: str, seed: int = 11):
    """Run one scenario; returns (bifrost, execution, report string)."""
    app = build_app()
    layer = ResilienceLayer(
        # Wide window + high threshold: a 0.5-rate burst cannot plausibly
        # fill 90% of 40 samples with failures, while a crash (rate 1.0)
        # trips the breaker as soon as min_calls attempts accumulate.
        breaker_config=BreakerConfig(
            failure_threshold=0.9,
            window_size=40,
            min_calls=20,
            open_seconds=20.0,
        )
    )
    layer.set_policy(
        CallPolicy(max_retries=2, backoff_base_ms=5.0, backoff_multiplier=2.0,
                   jitter_ms=3.0),
        service="catalog",
    )
    network = NetworkState()
    bifrost = Bifrost(app, seed=seed, resilience=layer, network=network)
    campaign = FaultCampaign(FaultInjector(app), network=network)
    if kind == BURST:
        # 30 s transient burst: each attempt fails with p=0.5; three
        # attempts drive the user-visible failure rate to ~0.125 on the
        # 30% canary slice — under the 10% check threshold.
        campaign.add(ErrorBurst("catalog", "2.0.0", "list", 0.5, 30.0, 60.0))
    else:
        # Sustained crash: every attempt fails until the end of the run.
        campaign.add(VersionCrash("catalog", "2.0.0", 30.0, 400.0))
    bifrost.install_campaign(campaign)
    execution = bifrost.submit(canary_strategy(), at=1.0)

    population = UserPopulation(400, DEFAULT_GROUPS, seed=seed + 1)
    workload = WorkloadGenerator(population, entry="frontend.index", seed=seed + 2)
    outcomes = bifrost.run(workload.poisson(30.0, 150.0), until=260.0)

    report = "\n".join(
        [
            f"outcome={execution.outcome.value}",
            f"finished_at={execution.finished_at}",
            f"deadline_exceeded={execution.deadline_exceeded}",
            "counters=" + repr(sorted(layer.counters().items())),
            "breakers=" + repr(
                [
                    (b.service, b.version, b.state.value)
                    for b in layer.breakers()
                ]
            ),
            "transitions=" + repr(
                [
                    (t.time, t.source, t.target, t.trigger)
                    for t in execution.transitions
                ]
            ),
            "durations=" + repr([round(o.duration_ms, 6) for o in outcomes]),
            "errors=" + repr([o.error for o in outcomes]),
            "events=" + repr(
                [(e.kind, round(e.time, 6), e.service, e.version) for e in layer.events]
            ),
        ]
    )
    return bifrost, execution, report


class TestBurstVersusSustained:
    def test_transient_burst_completes(self):
        bifrost, execution, _ = run_scenario(BURST)
        assert execution.outcome is StrategyOutcome.COMPLETED
        assert bifrost.application.stable_version("catalog") == "2.0.0"
        # Retries actually happened during the burst.
        assert bifrost.resilience.counters().get("retry", 0) > 0
        # No breaker opened: the burst stayed under the trip threshold.
        assert all(
            b.state is BreakerState.CLOSED for b in bifrost.resilience.breakers()
        )

    def test_sustained_crash_rolls_back(self):
        bifrost, execution, _ = run_scenario(CRASH)
        assert execution.outcome is StrategyOutcome.ROLLED_BACK
        assert bifrost.application.stable_version("catalog") == "1.0.0"
        breaker = bifrost.resilience.breaker("catalog", "2.0.0")
        # The breaker opened on the crashed canary (it may be probing
        # half-open by the end of the run, but it must have tripped).
        assert any(
            t.target is BreakerState.OPEN for t in breaker.transitions
        )
        # Rollback happened during the crash, after its onset.
        assert execution.finished_at is not None
        assert execution.finished_at > 30.0

    def test_crash_with_fallback_hits_phase_deadline(self):
        # When fallbacks mask every user-visible error, the health check
        # cannot fail — but it cannot pass either, because the strategy's
        # conclusive signal never materializes for the crashed canary.
        # The phase deadline is what ends the experiment.
        app = build_app()
        layer = ResilienceLayer()
        layer.set_policy(
            CallPolicy(max_retries=1, backoff_base_ms=5.0, fallback=True),
            service="catalog",
        )
        bifrost = Bifrost(app, seed=13, resilience=layer)
        campaign = FaultCampaign(FaultInjector(app))
        campaign.add(VersionCrash("catalog", "2.0.0", 10.0, 500.0))
        bifrost.install_campaign(campaign)
        strategy = Strategy(
            "catalog-canary",
            (
                Phase(
                    name="canary",
                    type=PhaseType.CANARY,
                    service="catalog",
                    stable_version="1.0.0",
                    experimental_version="2.0.0",
                    fraction=0.3,
                    duration_seconds=60.0,
                    check_interval_seconds=10.0,
                    deadline_seconds=150.0,
                    max_repeats=10,
                    checks=(
                        # Inspects a metric stream the crashed canary never
                        # produces: inconclusive forever.
                        Check(
                            name="canary-latency",
                            service="catalog",
                            version="2.0.0",
                            metric="resilience.breaker_close",
                            aggregation="count",
                            operator=">=",
                            threshold=1.0,
                            window_seconds=30.0,
                        ),
                    ),
                ),
            ),
        )
        execution = bifrost.submit(strategy, at=1.0)
        population = UserPopulation(200, DEFAULT_GROUPS, seed=14)
        workload = WorkloadGenerator(population, entry="frontend.index", seed=15)
        bifrost.run(workload.poisson(20.0, 180.0), until=300.0)
        assert execution.outcome is StrategyOutcome.ROLLED_BACK
        assert execution.deadline_exceeded == "canary"
        assert execution.finished_at == pytest.approx(151.0)
        # Fallbacks kept users unharmed the whole time.
        assert layer.counters().get("fallback", 0) > 0


class TestByteIdenticalReplays:
    @pytest.mark.parametrize("kind", [BURST, CRASH])
    def test_two_executions_identical(self, kind):
        _, _, first = run_scenario(kind)
        _, _, second = run_scenario(kind)
        assert first == second
