"""Integration tests: whole subsystems working together."""


from repro.bifrost import Bifrost, parse_strategy
from repro.bifrost.model import StrategyOutcome
from repro.core.experiment import Experiment, ExperimentPractice
from repro.core.framework import ExperimentationFramework
from repro.core.lifecycle import LifecyclePhase
from repro.fenrir import Fenrir, GeneticAlgorithm, random_experiments
from repro.microservices.service import (
    EndpointSpec,
    ServiceVersion,
)
from repro.simulation.latency import LoadSensitiveLatency, LogNormalLatency
from repro.topology.builder import build_interaction_graph
from repro.topology.diff import diff_graphs
from repro.topology.scenarios import sample_application
from repro.tracing.query import TraceQuery
from repro.traffic.profile import DEFAULT_GROUPS, diurnal_profile
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator


def deploy_recommend_variants(app):
    for version, median in (("1.0.0", 14.0), ("2.0.0", 18.0)):
        app.deploy(
            ServiceVersion(
                "recommend",
                version,
                {
                    "suggest": EndpointSpec(
                        "suggest",
                        LoadSensitiveLatency(LogNormalLatency(median, 0.25)),
                    )
                },
                capacity_rps=400.0,
            ),
            stable=(version == "1.0.0"),
        )


class TestDslToCompletion:
    DSL = """
strategy canary-then-rollout
  phase canary
    type canary
    service recommend
    stable 1.0.0
    experimental 2.0.0
    fraction 0.2
    duration 40
    interval 5
    check err
      metric error
      aggregation mean
      operator <=
      threshold 0.05
      window 20
    on_success rollout
    on_failure rollback
  phase rollout
    type gradual_rollout
    service recommend
    stable 1.0.0
    experimental 2.0.0
    steps 0.5, 1.0
    duration 40
    interval 5
    on_success complete
    on_failure rollback
"""

    def test_full_pipeline(self):
        app = sample_application()
        deploy_recommend_variants(app)
        bifrost = Bifrost(app, seed=13)
        execution = bifrost.submit(self.DSL, at=1.0)
        population = UserPopulation(600, DEFAULT_GROUPS, seed=14)
        # Traffic must hit the recommend service: use it as entry here.
        workload = WorkloadGenerator(population, entry="recommend.suggest", seed=15)
        bifrost.run(workload.poisson(40.0, 110.0), until=130.0)
        assert execution.outcome is StrategyOutcome.COMPLETED
        assert app.stable_version("recommend") == "2.0.0"

    def test_traces_reflect_experiment(self):
        app = sample_application()
        deploy_recommend_variants(app)
        bifrost = Bifrost(app, seed=16)
        bifrost.submit(self.DSL, at=1.0)
        population = UserPopulation(600, DEFAULT_GROUPS, seed=17)
        workload = WorkloadGenerator(population, entry="recommend.suggest", seed=18)
        bifrost.run(workload.poisson(40.0, 110.0), until=130.0)
        experimental = (
            TraceQuery(bifrost.collector)
            .touching_version("recommend", "2.0.0")
            .count()
        )
        assert experimental > 0


class TestPlanningToAnalysis:
    def test_framework_tracks_lifecycle(self):
        app = sample_application()
        deploy_recommend_variants(app)
        framework = ExperimentationFramework(app, seed=19)

        experiment = Experiment(
            "rec-canary",
            "recommend",
            ExperimentPractice.CANARY_RELEASE,
            required_samples=200.0,
        )
        framework.register(experiment)

        profile = diurnal_profile(days=2, seed=20)
        plan = framework.plan(profile, [experiment], budget=300, seed=1)
        assert plan.valid
        lifecycle = framework.lifecycles["rec-canary"]
        assert lifecycle.phase is LifecyclePhase.PLANNED

        strategy = parse_strategy(
            """
strategy rec-canary
  phase canary
    type canary
    service recommend
    stable 1.0.0
    experimental 2.0.0
    fraction 0.2
    duration 30
    interval 5
"""
        )
        population = UserPopulation(500, DEFAULT_GROUPS, seed=21)
        workload = WorkloadGenerator(population, entry="recommend.suggest", seed=22)
        framework.bifrost.run(workload.poisson(30.0, 20.0), until=20.0)
        framework.execute(strategy)
        assert lifecycle.phase is LifecyclePhase.EXECUTING
        framework.bifrost.run(
            workload.poisson(30.0, 60.0, start=20.0), until=90.0
        )

        report = framework.analyze(
            baseline_window=(0.0, 20.0),
            experimental_window=(20.0, 90.0),
            experiment_name="rec-canary",
        )
        assert lifecycle.phase is LifecyclePhase.ANALYZED
        assert report.diff.changes  # the canary version shows up
        assert report.top(3)


class TestSchedulerOnRealisticProfile:
    def test_schedule_then_execute_shapes(self):
        profile = diurnal_profile(days=7, seed=23)
        experiments = random_experiments(profile, 10, seed=24)
        result = Fenrir(GeneticAlgorithm(population_size=16)).schedule(
            profile, experiments, budget=800, seed=2
        )
        assert result.valid
        rows = result.plan_table()
        # Every experiment collects its required samples.
        for row in rows:
            assert row["expected_samples"] >= row["required_samples"] * 0.999


class TestTopologyFromRuntimeTraces:
    def test_diff_detects_canary_from_live_traces(self):
        app = sample_application()
        deploy_recommend_variants(app)
        bifrost = Bifrost(app, seed=25)
        population = UserPopulation(400, DEFAULT_GROUPS, seed=26)
        workload = WorkloadGenerator(population, entry="recommend.suggest", seed=27)
        # Baseline traffic without any experiment.
        bifrost.run(workload.poisson(30.0, 30.0), until=30.0)
        baseline_traces = TraceQuery(bifrost.collector).in_window(0, 30).run()

        strategy = parse_strategy(
            """
strategy c
  phase canary
    type canary
    service recommend
    stable 1.0.0
    experimental 2.0.0
    fraction 0.3
    duration 60
    interval 5
"""
        )
        bifrost.submit(strategy)
        bifrost.run(workload.poisson(30.0, 60.0, start=30.0), until=95.0)
        exp_traces = TraceQuery(bifrost.collector).in_window(31.0, 95.0).run()

        diff = diff_graphs(
            build_interaction_graph(baseline_traces, "base"),
            build_interaction_graph(exp_traces, "exp"),
        )
        identities = {c.identity for c in diff.changes}
        assert any("recommend" in str(i) for i in identities)
