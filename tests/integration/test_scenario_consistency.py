"""Regression guards for the evaluation scenarios.

The ranking-quality benches evaluate against ground-truth relevance
grades keyed by *change identities*.  If a scenario or the diff
algorithm drifts, relevance keys silently stop matching and nDCG scores
become meaningless — these tests pin the correspondence.
"""

import pytest

from repro.topology.scenarios import scenario1, scenario2


@pytest.mark.parametrize(
    "maker,degraded",
    [
        (scenario1, False),
        (scenario1, True),
        (scenario2, False),
        (scenario2, True),
    ],
    ids=["s1", "s1-degraded", "s2", "s2-degraded"],
)
class TestGroundTruthConsistency:
    def test_every_relevance_key_matches_a_change(self, maker, degraded):
        scenario = maker(degraded=degraded)
        identities = {c.identity for c in scenario.diff().changes}
        stale = set(scenario.relevance) - identities
        assert not stale, f"stale ground-truth keys: {stale}"

    def test_every_change_has_a_grade(self, maker, degraded):
        scenario = maker(degraded=degraded)
        identities = {c.identity for c in scenario.diff().changes}
        ungraded = identities - set(scenario.relevance)
        assert not ungraded, f"changes without ground truth: {ungraded}"

    def test_highest_grade_present(self, maker, degraded):
        scenario = maker(degraded=degraded)
        assert max(scenario.relevance.values()) == 3.0

    def test_scenario_is_deterministic(self, maker, degraded):
        first = maker(degraded=degraded).diff().summary()
        second = maker(degraded=degraded).diff().summary()
        assert first == second
