"""End-to-end glass-box observability: the acceptance scenario.

The claim under test: the event log alone carries enough to reconstruct
an experiment's full history.  A durable canary is driven through the
full middleware stack — including two mid-phase engine crashes — with an
observer attached; the timeline rebuilt purely from events must equal
the engine's own execution record field by field, the streaming JSONL
sink must capture a lossless copy, and the exposition/panel renderings
must reflect what actually happened.
"""

import io

from repro.bifrost import Bifrost, SnapshotPolicy
from repro.bifrost.model import StrategyOutcome
from repro.microservices.faults import EngineCrash, FaultCampaign, FaultInjector
from repro.obs import (
    ENGINE_CHECK,
    JOURNAL_APPEND,
    RECOVERY_CRASH,
    RECOVERY_REPLAYED,
    RECOVERY_RESTART,
    JsonlEventSink,
    Observer,
    diff_timeline_execution,
    glass_box_panel,
    load_jsonl,
    reconstruct_timelines,
    render_ascii,
    render_prometheus,
)
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator
from tests.integration.test_durability_e2e import build_app, canary_strategy

SEED = 31


def run_observed(crash_windows, sink_buffer=None):
    """The durable canary with an observer (and optional JSONL sink)."""
    app = build_app()
    observer = Observer(enabled=True)
    if sink_buffer is not None:
        JsonlEventSink(sink_buffer).attach(observer.events)
    bifrost = Bifrost(
        app,
        seed=SEED,
        durable=True,
        snapshot_policy=SnapshotPolicy(every_records=5, compact=True),
        observer=observer,
    )
    if crash_windows:
        campaign = FaultCampaign(FaultInjector(app))
        for start, end in crash_windows:
            campaign.add(EngineCrash(start, end))
        bifrost.install_campaign(campaign)
    bifrost.submit(canary_strategy(), at=1.0)
    population = UserPopulation(300, DEFAULT_GROUPS, seed=SEED + 1)
    workload = WorkloadGenerator(population, entry="frontend.index", seed=SEED + 2)
    bifrost.run(workload.poisson(15.0, 160.0), until=260.0)
    return bifrost, observer


class TestTimelineEqualsEngineRecord:
    def test_crash_free_run(self):
        bifrost, observer = run_observed([])
        execution = bifrost.engine.executions[0]
        assert execution.outcome is StrategyOutcome.COMPLETED
        timeline = reconstruct_timelines(observer.events)["catalog-canary"]
        assert diff_timeline_execution(timeline, execution) == []

    def test_two_crash_run_reconstructs_identically(self):
        bifrost, observer = run_observed([(30.0, 45.0), (70.0, 85.0)])
        execution = bifrost.engine.executions[0]
        assert execution.outcome is StrategyOutcome.COMPLETED
        assert bifrost.supervisor.restarts == 2
        timeline = reconstruct_timelines(observer.events)["catalog-canary"]
        assert diff_timeline_execution(timeline, execution) == []

    def test_crashed_and_crash_free_timelines_agree(self):
        # Recovery replays the journal without re-emitting: the event
        # stream of a crashed run must describe the same experiment
        # history as the baseline's, with recovery events interleaved.
        _, obs_base = run_observed([])
        _, obs_crash = run_observed([(30.0, 45.0), (70.0, 85.0)])
        base = reconstruct_timelines(obs_base.events)["catalog-canary"]
        crash = reconstruct_timelines(obs_crash.events)["catalog-canary"]
        assert [s.name for s in base.phases] == [s.name for s in crash.phases]
        assert base.transitions == crash.transitions
        assert base.outcome == crash.outcome
        assert base.finished_at == crash.finished_at
        check_key = [(p.time, p.outcome) for p in base.check_points]
        assert check_key == [(p.time, p.outcome) for p in crash.check_points]

    def test_recovery_events_present_with_original_timestamps(self):
        _, observer = run_observed([(30.0, 45.0), (70.0, 85.0)])
        counts = observer.events.counts_by_kind()
        assert counts[RECOVERY_CRASH] == 2
        assert counts[RECOVERY_RESTART] == 2
        assert counts[RECOVERY_REPLAYED] == 2
        crashes = observer.events.events(kinds={RECOVERY_CRASH})
        assert [e.time for e in crashes] == [30.0, 70.0]
        # Check events emitted before and after each outage keep their
        # simulated-clock timestamps in one monotonic stream.
        checks = [e.time for e in observer.events.events(kinds={ENGINE_CHECK})]
        assert checks == sorted(checks)


class TestExportsAndRenderings:
    def test_jsonl_sink_is_lossless(self):
        buffer = io.StringIO()
        bifrost, observer = run_observed(
            [(30.0, 45.0), (70.0, 85.0)], sink_buffer=buffer
        )
        exported = load_jsonl(buffer.getvalue().splitlines())
        assert len(exported) == observer.events.appended
        assert exported == list(observer.events)  # nothing dropped here
        rebuilt = reconstruct_timelines(exported)["catalog-canary"]
        execution = bifrost.engine.executions[0]
        assert diff_timeline_execution(rebuilt, execution) == []

    def test_prometheus_exposition_reflects_run(self):
        bifrost, observer = run_observed([(30.0, 45.0), (70.0, 85.0)])
        text = render_prometheus(observer.metrics, bifrost.store)
        assert "repro_engine_crashes_total 2" in text
        assert "repro_engine_restarts_total 2" in text
        checks = len(bifrost.engine.executions[0].check_log)
        assert f'repro_bifrost_checks_total{{outcome="pass"}} {checks}' in text
        assert "repro_store_samples" in text

    def test_journal_events_match_journal(self):
        bifrost, observer = run_observed([(30.0, 45.0), (70.0, 85.0)])
        appended = observer.events.events(kinds={JOURNAL_APPEND})
        # Compaction trims old records, but LSNs are assigned once per
        # append — the event stream must cover every one of them.
        assert len(appended) == bifrost.journal.last_lsn
        lsns = [e.data["lsn"] for e in appended]
        assert lsns == sorted(lsns)
        retained = {r.lsn for r in bifrost.journal.records()}
        assert retained <= set(lsns)

    def test_panel_and_ascii_render_the_story(self):
        bifrost, observer = run_observed([(30.0, 45.0), (70.0, 85.0)])
        timeline = reconstruct_timelines(observer.events)["catalog-canary"]
        ascii_art = render_ascii(timeline)
        assert "catalog-canary — completed" in ascii_art
        assert "promoted: 2.0.0" in ascii_art
        panel = glass_box_panel(observer, bifrost.store)
        assert "glass box" in panel
        assert "recovery.crash" in panel
        assert "catalog-canary" in panel
