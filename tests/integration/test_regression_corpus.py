"""Replay the checked-in regression corpus.

Every entry under ``tests/regression_corpus/`` is a shrunk counterexample
the fuzzer once found; each must keep reproducing its violation with the
exact stored digest.  If an engine change legitimately fixes one, the
entry must be consciously regenerated or retired — this test existing is
what makes that a decision instead of an accident.
"""

from pathlib import Path

import pytest

from repro.scenarios import load_entry

CORPUS_DIR = Path(__file__).resolve().parent.parent / "regression_corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    assert CORPUS_FILES, (
        f"no regression corpus under {CORPUS_DIR} — the fuzzer's known-bad "
        f"discoveries are supposed to live here forever"
    )


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_corpus_entry_replays_deterministically(path):
    entry = load_entry(path)
    violation = entry.replay()
    assert violation.invariant == entry.invariant
