"""Smoke tests: the fast example scripts run to completion.

Examples are documentation that must not rot; these tests execute the
quick ones in a subprocess and check their key output lines.  The two
long-running examples (ab_inc_recommendation, experiment_scheduling) are
exercised piecewise by the integration suite instead.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = REPO / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "strategy outcome:" in out
        assert "completed" in out

    def test_topology_health(self):
        out = run_example("topology_health.py")
        assert "identified changes" in out
        assert "nDCG5" in out

    def test_release_workflow(self):
        out = run_example("release_workflow.py")
        assert "advisor:" in out
        assert "verified, no findings" in out
        assert "canceled at" in out
        assert "Topological difference:" in out

    def test_resilience_canary(self):
        out = run_example("resilience_canary.py")
        assert "transient burst" in out
        assert "strategy outcome: completed" in out
        assert "sustained crash" in out
        assert "strategy outcome: rolled_back" in out
        assert "non-closed breakers: catalog/2.0.0" in out

    def test_exec_modes(self):
        out = run_example("exec_modes.py")
        assert "[sim] catalog-canary: completed" in out
        assert "replay diff: IDENTICAL" in out
        assert "[live] catalog-canary: completed" in out
        assert "all three substrates agree: True" in out

    def test_durable_canary(self):
        out = run_example("durable_canary.py")
        assert "strategy outcome: completed" in out
        assert "engine restarts: 2" in out
        assert "version_path identical to crash-free run: True" in out
        assert "baseline promoted the same version: True" in out

    def test_streaming_health(self):
        out = run_example("streaming_health.py")
        assert "faulty rollout" in out
        assert "strategy outcome: rolled_back" in out
        assert "healthy rollout" in out
        assert "strategy outcome: completed" in out
        assert "Topology health" in out
        assert "health publications:" in out

    def test_experiment_scheduling(self):
        out = run_example("experiment_scheduling.py", timeout=420.0)
        assert "algorithm comparison" in out
        assert "Gantt" in out
        assert "reevaluated fitness" in out

    def test_ab_inc_recommendation(self):
        out = run_example("ab_inc_recommendation.py", timeout=420.0)
        assert "strategy outcome: completed" in out
        assert "A/B winner:" in out
        assert "change ranking" in out

    def test_glass_box_canary(self):
        out = run_example("glass_box_canary.py")
        assert "strategy outcome: completed" in out
        assert "engine restarts: 2" in out
        assert "timeline matches engine record: True" in out
        assert "events exported to JSONL:" in out
        assert "repro_fenrir_generations_total" in out
        assert "glass box" in out

    def test_adversarial_canary(self):
        out = run_example("adversarial_canary.py")
        assert "fuzz campaign" in out
        assert "promotion_truth" in out
        assert "shrunk counterexample" in out
        assert "events by kind:" in out
        assert "scenario.violation_found" in out

    def test_fleet_orchestrator(self):
        out = run_example("fleet_orchestrator.py")
        assert "checkout  -> shed (shed: crash_loop)" in out
        assert "payments  -> rolled_back" in out
        assert "recovered run matches uncrashed run: True" in out
        assert "revived for a fresh attempt: checkout" in out

    def test_fleet_scale_bench_smoke(self):
        env = dict(os.environ, FLEET_SMOKE="1", PYTHONPATH=str(REPO / "src"))
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                str(REPO / "benchmarks" / "test_fleet_scale.py"),
                "-q",
            ],
            capture_output=True,
            text=True,
            timeout=240.0,
            env=env,
        )
        assert result.returncode == 0, result.stdout[-2000:] + result.stderr[-2000:]
        artifact = REPO / "benchmarks" / "output" / "BENCH_fleet_scale.json"
        assert artifact.exists()

    def test_scenario_fuzz_bench_smoke(self):
        env = dict(
            os.environ, SCENARIO_FUZZ_SMOKE="1", PYTHONPATH=str(REPO / "src")
        )
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                str(REPO / "benchmarks" / "test_scenario_fuzz.py"),
                "-q",
            ],
            capture_output=True,
            text=True,
            timeout=240.0,
            env=env,
        )
        assert result.returncode == 0, result.stdout[-2000:] + result.stderr[-2000:]
        artifact = REPO / "benchmarks" / "output" / "BENCH_scenario_fuzz.json"
        assert artifact.exists()

    def test_obs_overhead_bench_smoke(self):
        env = dict(os.environ, OBS_SMOKE="1", PYTHONPATH=str(REPO / "src"))
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                str(REPO / "benchmarks" / "test_obs_overhead.py"),
                "-q",
            ],
            capture_output=True,
            text=True,
            timeout=240.0,
            env=env,
        )
        assert result.returncode == 0, result.stdout[-2000:] + result.stderr[-2000:]
        artifact = REPO / "benchmarks" / "output" / "BENCH_obs_overhead.json"
        assert artifact.exists()
