"""End-to-end execution modes: one strategy, three substrates (PR 9).

The portability claim of the execution router, exercised for real:

- **SIM → REPLAY**: a recorded simulator run, serialized to JSONL and
  re-driven from the artifact, is digest-equal — same transitions, same
  check log, same final store, same terminal outcome.
- **LIVE**: the same unchanged strategy drives real asyncio HTTP servers
  on loopback sockets; a healthy canary is promoted and a faulty one is
  rolled back, with the engine's decisions driven by latencies and
  errors observed over actual connections.
"""

import io
import os

import pytest

from repro.bifrost.model import (
    Check,
    Phase,
    PhaseType,
    Strategy,
    StrategyOutcome,
)
from repro.exec import (
    ExecutionMode,
    ExecutionRouter,
    LiveOptions,
    Recording,
)
from repro.microservices.application import Application
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.simulation.latency import LogNormalLatency
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

SEED = 31

# CI smoke steps (REPLAY_SMOKE=1 / LIVE_SMOKE=1) run a lighter workload
# so each step fits a hard 60-second budget on shared runners.
_SMOKE = (
    os.environ.get("REPLAY_SMOKE") == "1" or os.environ.get("LIVE_SMOKE") == "1"
)
RATE_RPS = 8.0 if _SMOKE else 12.0
MIN_REQUESTS = 600 if _SMOKE else 1000


def build_app(canary_error_rate: float = 0.0) -> Application:
    app = Application("shop")
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {
                "index": EndpointSpec(
                    "index",
                    LogNormalLatency(8.0, 0.2),
                    calls=(DownstreamCall("catalog", "list"),),
                )
            },
            capacity_rps=300.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "1.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(18.0, 0.25))},
            capacity_rps=300.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "2.0.0",
            {
                "list": EndpointSpec(
                    "list",
                    LogNormalLatency(16.0, 0.25),
                    error_rate=canary_error_rate,
                )
            },
            capacity_rps=300.0,
        )
    )
    return app


def canary_strategy() -> Strategy:
    return Strategy(
        "catalog-canary",
        (
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="catalog",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.3,
                duration_seconds=120.0,
                check_interval_seconds=10.0,
                checks=(
                    Check(
                        name="user-errors",
                        service="frontend",
                        version="1.0.0",
                        metric="error",
                        threshold=0.10,
                        window_seconds=25.0,
                    ),
                ),
            ),
        ),
    )


def workload():
    population = UserPopulation(200, DEFAULT_GROUPS, seed=SEED + 1)
    generator = WorkloadGenerator(
        population, entry="frontend.index", seed=SEED + 2
    )
    return generator.poisson(RATE_RPS, 150.0)


class TestRecordReplayDiffE2E:
    def test_recorded_run_replays_digest_equal(self):
        router = ExecutionRouter(build_app, seed=SEED)
        report = router.run(
            canary_strategy(),
            workload=workload(),
            until=260.0,
            submit_at=1.0,
            record=True,
        )
        assert report.mode is ExecutionMode.SIM
        assert report.promoted
        assert report.stable_after == {"catalog": "2.0.0"}
        recording = report.recording
        assert recording is not None
        assert recording.requests and recording.events
        assert recording.truncated is None

        # Round-trip through the on-disk JSONL artifact.
        buffer = io.StringIO()
        line_count = recording.save(buffer)
        assert line_count == 2 + len(recording.events) + len(recording.requests)
        loaded = Recording.from_jsonl(buffer.getvalue().splitlines())
        assert loaded.digest == recording.digest

        replay_report = router.run(recording=loaded)
        assert replay_report.mode is ExecutionMode.REPLAY
        diff = replay_report.replay
        assert diff.digest_match, diff.describe()
        assert diff.identical, diff.describe()
        assert replay_report.outcome is report.outcome
        assert replay_report.stable_after == report.stable_after
        assert diff.outcomes_recorded == diff.outcomes_replayed


@pytest.mark.parametrize(
    "canary_error_rate, expected",
    [
        (0.0, StrategyOutcome.COMPLETED),
        (0.5, StrategyOutcome.ROLLED_BACK),
    ],
    ids=["healthy-promotes", "faulty-rolls-back"],
)
def test_live_canary_over_real_sockets(canary_error_rate, expected):
    router = ExecutionRouter(
        lambda: build_app(canary_error_rate),
        seed=SEED,
        live_options=LiveOptions(time_scale=0.02, max_wall_s=55.0),
    )
    report = router.run(
        canary_strategy(),
        workload=workload(),
        until=260.0,
        submit_at=1.0,
        mode="live",
    )
    assert report.mode is ExecutionMode.LIVE
    assert report.outcome is expected
    assert report.requests > MIN_REQUESTS
    assert report.wall_seconds is not None and report.wall_seconds < 55.0
    if expected is StrategyOutcome.COMPLETED:
        assert report.errors == 0
        assert report.stable_after == {"catalog": "2.0.0"}
    else:
        assert report.errors > 0
        assert report.stable_after == {"catalog": "1.0.0"}
    # Real loopback servers were bound to ephemeral ports per version.
    ports = report.details.ports
    assert {"catalog@1.0.0", "catalog@2.0.0"} <= set(ports)
    assert all(port > 0 for port in ports.values())
