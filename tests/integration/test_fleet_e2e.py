"""Chaos end-to-end: a 100-experiment fleet under injected faults.

ISSUE 7's acceptance scenario: a fleet of 100+ concurrent strategies
with injected check exceptions, version crashes, and one crash-looping
experiment must complete the schedule with **zero cross-experiment
contamination** — every non-faulted experiment's outcome is identical to
a fault-free twin run — and a kill-the-orchestrator-mid-slot recovery
run must equal the uncrashed run record-for-record.
"""

import pytest

from repro.bifrost.journal import Journal, MemoryJournalStorage
from repro.fleet import (
    OUTCOME_ROLLED_BACK,
    OUTCOME_SHED,
    SHED_CRASH_LOOP,
    ExperimentFaults,
    FleetOrchestrator,
    OrchestratorKilled,
    recover_fleet,
    usage_within_budget,
)
from tests.unit.test_fleet_orchestrator import fast_config, make_schedule

N = 100
LOOPER = "exp0"
CHECK_ERROR = [f"exp{i}" for i in range(10, 15)]
CRASHING = [f"exp{i}" for i in range(20, 25)]
BAD = "exp30"

FAULTS = {
    LOOPER: ExperimentFaults(crash_loop=True),
    **{
        name: ExperimentFaults(check_error_slots=tuple(range(40)))
        for name in CHECK_ERROR
    },
    **{
        # Each crasher dies at its own wave's start slot.
        name: ExperimentFaults(crash_slots=((int(name[3:]) // 10) * 2,))
        for name in CRASHING
    },
}
WORLD = {BAD: 0.4}
FAULTED = set(FAULTS)


def chaos_schedule():
    return make_schedule(
        N, duration=2, fraction=0.05, wave=10, looper=0, looper_duration=6
    )


def chaos_config(**overrides):
    return fast_config(restart_max=2, base_error=0.02, **overrides)


@pytest.fixture(scope="module")
def clean_run():
    return FleetOrchestrator(
        chaos_schedule(), world=WORLD, config=chaos_config()
    ).run()


@pytest.fixture(scope="module")
def chaos_run():
    return FleetOrchestrator(
        chaos_schedule(), world=WORLD, faults=FAULTS, config=chaos_config()
    ).run()


class TestChaosFleet:
    def test_schedule_completes_with_all_outcomes(self, chaos_run):
        assert not chaos_run.aborted
        assert len(chaos_run.outcomes) == N

    def test_zero_cross_experiment_contamination(self, clean_run, chaos_run):
        differing = [
            name
            for name in clean_run.outcomes
            if name not in FAULTED
            and chaos_run.outcomes[name] != clean_run.outcomes[name]
        ]
        assert differing == [], (
            f"faults leaked out of their bulkheads into {differing}"
        )

    def test_crash_looper_shed_with_budget_spent(self, chaos_run):
        assert chaos_run.outcomes[LOOPER] == OUTCOME_SHED
        assert chaos_run.sheds[LOOPER] == SHED_CRASH_LOOP
        assert chaos_run.restarts[LOOPER] == 2

    def test_crashed_experiments_restarted_and_decided(self, chaos_run):
        for name in CRASHING:
            assert chaos_run.restarts.get(name) == 1
            assert chaos_run.outcomes[name] not in (None, OUTCOME_SHED)

    def test_bad_experiment_rolled_back_in_both_runs(self, clean_run, chaos_run):
        assert clean_run.outcomes[BAD] == OUTCOME_ROLLED_BACK
        assert chaos_run.outcomes[BAD] == OUTCOME_ROLLED_BACK

    def test_no_slot_over_admitted(self, chaos_run):
        assert chaos_run.ledger, "fleet committed no slots"
        for row in chaos_run.ledger:
            assert usage_within_budget(dict(row.usage))

    def test_sheds_always_reported(self, chaos_run):
        ledger_sheds = {n for row in chaos_run.ledger for n, _ in row.shed}
        assert set(chaos_run.sheds) == ledger_sheds
        for name in chaos_run.sheds:
            assert chaos_run.outcomes[name] == OUTCOME_SHED


class TestKillMidSlot:
    def test_recovered_run_equals_uncrashed(self, chaos_run):
        fleet_storage = MemoryJournalStorage()
        exp_storages: dict[str, MemoryJournalStorage] = {}

        def factory(name):
            storage = exp_storages.setdefault(name, MemoryJournalStorage())
            return Journal(storage)

        # Kill mid-slot: append 40 lands between a slot's start record
        # and its commit, deep inside the run.
        with pytest.raises(OrchestratorKilled):
            FleetOrchestrator(
                chaos_schedule(),
                world=WORLD,
                faults=FAULTS,
                config=chaos_config(),
                fleet_journal=Journal(fleet_storage),
                journal_factory=factory,
                crash_after_appends=40,
            ).run()

        recovered = recover_fleet(Journal(fleet_storage), factory)
        result = recovered.run()
        assert result.recovered
        assert result.digest() == chaos_run.digest()
