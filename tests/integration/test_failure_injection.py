"""Failure-injection integration tests.

The dissertation's central safety claim is that conditional chaining
keeps "the impact of failing experiments low": when something breaks
mid-experiment, the automated fallback transitions fire.  These tests
inject faults *while strategies are running* and verify the system's
reaction end to end.
"""


from repro.bifrost import Bifrost
from repro.bifrost.model import (
    Check,
    Phase,
    PhaseType,
    Strategy,
    StrategyOutcome,
)
from repro.microservices.faults import FaultInjector
from repro.stats.sequential import SequentialProbabilityRatioTest, SprtDecision
from repro.topology import build_interaction_graph, diff_graphs, rank_changes
from repro.topology.heuristics import ResponseTimeHeuristic
from repro.topology.scenarios import sample_application
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator
from tests.conftest import constant_endpoint
from repro.microservices.service import ServiceVersion


def deploy_catalog_canary(app):
    stable = app.resolve("catalog")
    app.deploy(
        ServiceVersion(
            "catalog",
            "2.0.0",
            {
                "list": constant_endpoint(
                    "list", 20.0, calls=stable.endpoint("list").calls
                )
            },
            capacity_rps=stable.capacity_rps,
        )
    )


def canary_strategy(duration=300.0, error_threshold=0.1) -> Strategy:
    return Strategy(
        "catalog-canary",
        (
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="catalog",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.3,
                duration_seconds=duration,
                check_interval_seconds=5.0,
                checks=(
                    Check(
                        name="errors",
                        service="catalog",
                        version="2.0.0",
                        metric="error",
                        aggregation="mean",
                        operator="<=",
                        threshold=error_threshold,
                        window_seconds=20.0,
                    ),
                    Check(
                        name="latency",
                        service="catalog",
                        version="2.0.0",
                        metric="response_time",
                        aggregation="mean",
                        operator="<=",
                        baseline_version="1.0.0",
                        tolerance=1.5,
                        window_seconds=20.0,
                    ),
                ),
            ),
        ),
    )


class TestMidFlightFaults:
    def _run(
        self,
        fault_at: float,
        latency_factor=1.0,
        added_error_rate=0.0,
        duration=180.0,
    ):
        app = sample_application()
        deploy_catalog_canary(app)
        bifrost = Bifrost(app, seed=41)
        execution = bifrost.submit(canary_strategy(duration=duration), at=1.0)
        injector = FaultInjector(app)
        population = UserPopulation(500, DEFAULT_GROUPS, seed=42)
        workload = WorkloadGenerator(population, entry="frontend.index", seed=43)

        injected = False
        for request in workload.poisson(40.0, 200.0):
            if not injected and request.timestamp >= fault_at:
                injector.degrade(
                    "catalog",
                    "2.0.0",
                    "list",
                    latency_factor=latency_factor,
                    added_error_rate=added_error_rate,
                )
                injected = True
            bifrost.simulation.run_until(
                max(request.timestamp, bifrost.simulation.now)
            )
            bifrost.runtime.execute(request)
        bifrost.simulation.run_until(320.0)
        return app, execution

    def test_error_burst_triggers_rollback(self):
        app, execution = self._run(fault_at=60.0, added_error_rate=1.0)
        assert execution.outcome is StrategyOutcome.ROLLED_BACK
        assert app.stable_version("catalog") == "1.0.0"
        failure = [t for t in execution.transitions if t.trigger == "failure"]
        assert failure and failure[0].time > 60.0

    def test_latency_regression_triggers_rollback(self):
        app, execution = self._run(fault_at=60.0, latency_factor=4.0)
        assert execution.outcome is StrategyOutcome.ROLLED_BACK

    def test_healthy_run_completes(self):
        app, execution = self._run(fault_at=1e9)  # never inject
        assert execution.outcome is StrategyOutcome.COMPLETED
        assert app.stable_version("catalog") == "2.0.0"

    def test_rollback_detected_by_relative_check_only_on_canary(self):
        # Degrading the *stable* version must NOT fail the experiment:
        # the relative check compares canary against the (also slower)
        # baseline, so the canary stays within tolerance.
        app = sample_application()
        deploy_catalog_canary(app)
        bifrost = Bifrost(app, seed=44)
        execution = bifrost.submit(canary_strategy(duration=120.0), at=1.0)
        injector = FaultInjector(app)
        injector.degrade("catalog", "1.0.0", "list", latency_factor=2.0)
        population = UserPopulation(500, DEFAULT_GROUPS, seed=45)
        workload = WorkloadGenerator(population, entry="frontend.index", seed=46)
        bifrost.run(workload.poisson(40.0, 140.0), until=160.0)
        assert execution.outcome is StrategyOutcome.COMPLETED


class TestSprtOnLiveErrors:
    def test_sprt_rejects_on_degraded_canary_traffic(self):
        """Wald's SPRT over live per-request errors spots the regression."""
        app = sample_application()
        deploy_catalog_canary(app)
        injector = FaultInjector(app)
        injector.degrade("catalog", "2.0.0", "list", added_error_rate=0.3)
        bifrost = Bifrost(app, seed=47)
        bifrost.submit(canary_strategy(error_threshold=1.0), at=0.0)

        sprt = SequentialProbabilityRatioTest(p0=0.01, p1=0.2)
        population = UserPopulation(400, DEFAULT_GROUPS, seed=48)
        workload = WorkloadGenerator(population, entry="frontend.index", seed=49)
        for request in workload.poisson(40.0, 120.0):
            bifrost.simulation.run_until(
                max(request.timestamp, bifrost.simulation.now)
            )
            outcome = bifrost.runtime.execute(request)
            if ("catalog", "2.0.0") in outcome.version_path:
                if sprt.observe(outcome.error) is not SprtDecision.CONTINUE:
                    break
        assert sprt.decision is SprtDecision.REJECT_NULL

    def test_sprt_accepts_on_healthy_canary(self):
        app = sample_application()
        deploy_catalog_canary(app)
        bifrost = Bifrost(app, seed=50)
        bifrost.submit(canary_strategy(error_threshold=1.0), at=0.0)
        sprt = SequentialProbabilityRatioTest(p0=0.01, p1=0.2)
        population = UserPopulation(400, DEFAULT_GROUPS, seed=51)
        workload = WorkloadGenerator(population, entry="frontend.index", seed=52)
        for request in workload.poisson(40.0, 120.0):
            bifrost.simulation.run_until(
                max(request.timestamp, bifrost.simulation.now)
            )
            outcome = bifrost.runtime.execute(request)
            if ("catalog", "2.0.0") in outcome.version_path:
                if sprt.observe(outcome.error) is not SprtDecision.CONTINUE:
                    break
        assert sprt.decision is SprtDecision.ACCEPT_NULL


class TestPostMortemAnalysis:
    def test_rt_heuristic_pinpoints_injected_fault(self):
        """After a degraded canary, the RT heuristic names the culprit."""
        app = sample_application()
        deploy_catalog_canary(app)

        # Healthy baseline window.
        bifrost = Bifrost(app, seed=53)
        population = UserPopulation(400, DEFAULT_GROUPS, seed=54)
        workload = WorkloadGenerator(population, entry="frontend.index", seed=55)
        bifrost.run(workload.poisson(40.0, 40.0), until=40.0)

        injector = FaultInjector(app)
        injector.degrade("catalog", "2.0.0", "list", latency_factor=4.0)
        bifrost.submit(canary_strategy(error_threshold=1.0), at=41.0)
        bifrost.run(workload.poisson(40.0, 80.0, start=40.0), until=125.0)

        from repro.tracing.query import TraceQuery

        base_traces = TraceQuery(bifrost.collector).in_window(0, 40).run()
        exp_traces = TraceQuery(bifrost.collector).in_window(45, 125).run()
        diff = diff_graphs(
            build_interaction_graph(base_traces, "base"),
            build_interaction_graph(exp_traces, "exp"),
        )
        ranking = rank_changes(diff, ResponseTimeHeuristic())
        assert ranking
        top = ranking[0].change
        assert top.anchor.service == "catalog"
