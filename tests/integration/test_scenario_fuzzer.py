"""Integration tests for the adversarial scenario fuzzer.

The acceptance bar from the issue: the fuzzer must *rediscover* a seeded
known-bad configuration — a health-gate threshold loose enough to
promote a ground-truth-regressing variant — shrink it, and round-trip it
through the regression-corpus pipeline deterministically.
"""

import dataclasses

import pytest

from repro.obs.observer import Observer
from repro.scenarios import (
    ScenarioFuzzer,
    ScenarioSpec,
    check_invariant,
    load_corpus,
    load_entry,
    save_entry,
    shrink_violation,
)
from repro.scenarios.fuzzer import ARCHETYPES_BY_NAME

FUZZ_SEED = 2026


@pytest.fixture(scope="module")
def loose_gate_report():
    fuzzer = ScenarioFuzzer(seed=FUZZ_SEED, archetypes=["loose_gate"])
    return fuzzer.run(3)


class TestKnownBadRediscovery:
    def test_finds_promotion_truth_violation(self, loose_gate_report):
        names = {v.invariant for v in loose_gate_report.violations}
        assert "promotion_truth" in names

    def test_violation_is_a_loose_gate(self, loose_gate_report):
        violation = next(
            v
            for v in loose_gate_report.violations
            if v.invariant == "promotion_truth"
        )
        experiment = violation.spec.experiment
        # The rediscovered misconfiguration: gate threshold above the
        # variant's true degradation, so the check can never fire.
        assert experiment.check_threshold > experiment.true_error_delta
        assert experiment.true_error_delta > 0.05

    def test_report_accounting(self, loose_gate_report):
        assert loose_gate_report.iterations == 3
        assert loose_gate_report.checks >= 3
        assert loose_gate_report.by_invariant().get("promotion_truth", 0) >= 1
        assert "promotion_truth" in loose_gate_report.describe()


class TestShrinking:
    def test_shrunk_spec_still_violates(self, loose_gate_report):
        violation = loose_gate_report.violations[0]
        assert check_invariant(violation.invariant, violation.spec) is not None

    def test_shrinking_simplifies_the_spec(self):
        fuzzer = ScenarioFuzzer(seed=FUZZ_SEED, archetypes=["loose_gate"])
        archetype = ARCHETYPES_BY_NAME["loose_gate"]
        found = None
        for index in range(6):
            spec = archetype.sample(fuzzer._rng, index)
            found = check_invariant("promotion_truth", spec)
            if found:
                break
        assert found is not None
        shrunk = shrink_violation(found, budget=32)
        assert len(shrunk.spec.services) <= len(found.spec.services)
        assert len(shrunk.spec.faults) <= len(found.spec.faults)
        assert shrunk.spec.run_until <= found.spec.run_until
        assert check_invariant("promotion_truth", shrunk.spec) is not None

    def test_shrink_budget_limits_rechecks(self, loose_gate_report):
        violation = loose_gate_report.violations[0]
        # Budget 0 means no candidate is ever evaluated.
        untouched = shrink_violation(violation, budget=0)
        assert untouched.spec == violation.spec


class TestCorpusPipeline:
    def test_save_load_replay_round_trip(self, tmp_path, loose_gate_report):
        violation = loose_gate_report.violations[0]
        path = save_entry(tmp_path, violation)
        entry = load_entry(path)
        assert entry.spec == violation.spec
        assert entry.digest == violation.digest
        replayed = entry.replay()
        assert replayed.digest == violation.digest

    def test_load_corpus_orders_by_name(self, tmp_path, loose_gate_report):
        for violation in loose_gate_report.violations[:2]:
            save_entry(tmp_path, violation)
        entries = load_corpus(tmp_path)
        assert len(entries) >= 1
        assert [p.name for p, _ in entries] == sorted(p.name for p, _ in entries)

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []

    def test_stale_digest_fails_replay(self, tmp_path, loose_gate_report):
        violation = loose_gate_report.violations[0]
        path = save_entry(tmp_path, violation)
        entry = load_entry(path)
        stale = dataclasses.replace(entry, digest=("bogus",))
        with pytest.raises(AssertionError):
            stale.replay()


class TestFuzzerPlumbing:
    def test_unknown_archetype_rejected(self):
        with pytest.raises(KeyError):
            ScenarioFuzzer(archetypes=["meteor_strike"])

    def test_unknown_invariant_rejected(self):
        spec = ScenarioFuzzer(seed=1).sample(0)[1]
        with pytest.raises(KeyError):
            check_invariant("vibes", spec)

    def test_observer_sees_the_campaign(self):
        observer = Observer()
        fuzzer = ScenarioFuzzer(
            seed=FUZZ_SEED, archetypes=["loose_gate"], observer=observer
        )
        fuzzer.run(1)
        kinds = {event.kind for event in observer.events.events()}
        assert "scenario.fuzz_case" in kinds
        assert "scenario.run_started" in kinds
        assert "scenario.fuzz_finished" in kinds
        # This seed finds a violation on the first scenario.
        assert "scenario.violation_found" in kinds

    def test_specs_are_serializable_scenariospecs(self):
        _, spec = ScenarioFuzzer(seed=9).sample(3)
        assert isinstance(spec, ScenarioSpec)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
