"""End-to-end: the streaming health pipeline gating Bifrost strategies.

The closed Ch. 4 ↔ Ch. 5 loop: runtime traces stream into the live
topology pipeline, the pipeline publishes ``health.score`` metrics, and
a canary phase with a ``kind health`` check promotes or rolls back on
them.  A broken experimental version (injected endpoint fault) must fail
the health gate; a healthy one must pass it.
"""

from repro.bifrost import Bifrost
from repro.bifrost.model import StrategyOutcome
from repro.microservices.service import EndpointSpec, ServiceVersion
from repro.simulation.latency import LoadSensitiveLatency, LogNormalLatency
from repro.topology.scenarios import sample_application
from repro.topology.streaming import HEALTH_METRIC, HEALTH_VERSION
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

HEALTH_GATED_CANARY = """
strategy health-gated-canary
  phase canary
    type canary
    service recommend
    stable 1.0.0
    experimental 2.0.0
    fraction 0.3
    duration 45
    interval 5
    check live-health
      kind health
      threshold 0.8
      window 20
    on_success complete
    on_failure rollback
"""


def deploy_recommend(app, experimental_error_rate: float = 0.0):
    for version, median, err in (
        ("1.0.0", 14.0, 0.0),
        ("2.0.0", 15.0, experimental_error_rate),
    ):
        app.deploy(
            ServiceVersion(
                "recommend",
                version,
                {
                    "suggest": EndpointSpec(
                        "suggest",
                        LoadSensitiveLatency(LogNormalLatency(median, 0.25)),
                        error_rate=err,
                    )
                },
                capacity_rps=400.0,
            ),
            stable=(version == "1.0.0"),
        )


def run_gated_canary(seed: int, experimental_error_rate: float):
    app = sample_application()
    deploy_recommend(app, experimental_error_rate)
    bifrost = Bifrost(app, seed=seed)
    population = UserPopulation(600, DEFAULT_GROUPS, seed=seed + 1)
    workload = WorkloadGenerator(
        population, entry="recommend.suggest", seed=seed + 2
    )
    # Warmup on the stable version only: these traces become the pinned
    # baseline graph the live diff compares against.
    bifrost.run(workload.poisson(40.0, 30.0), until=30.0)
    bifrost.enable_live_health(publish_interval=2.0)
    execution = bifrost.submit(HEALTH_GATED_CANARY, at=31.0)
    bifrost.run(workload.poisson(40.0, 60.0, start=31.0), until=100.0)
    return bifrost, execution


class TestHealthGatedCanary:
    def test_faulty_experimental_version_fails_health_gate(self):
        bifrost, execution = run_gated_canary(
            seed=101, experimental_error_rate=0.6
        )
        assert execution.outcome is StrategyOutcome.ROLLED_BACK
        # The decision came from the health check, not a timeout.
        failed = [
            r for r in execution.check_log if r.outcome.value == "fail"
        ]
        assert failed, "expected at least one failing health evaluation"
        assert all(r.check.kind == "health" for r in failed)
        assert bifrost.application.stable_version("recommend") == "1.0.0"

    def test_healthy_experimental_version_passes_health_gate(self):
        bifrost, execution = run_gated_canary(
            seed=202, experimental_error_rate=0.0
        )
        assert execution.outcome is StrategyOutcome.COMPLETED
        assert bifrost.application.stable_version("recommend") == "2.0.0"

    def test_health_metrics_published_into_shared_store(self):
        bifrost, _execution = run_gated_canary(
            seed=303, experimental_error_rate=0.6
        )
        values = bifrost.store.values_in_window(
            "recommend", HEALTH_VERSION, HEALTH_METRIC, 0.0, 1e9
        )
        assert values, "live health scores should be in the metric store"
        assert all(0.0 <= v <= 1.0 for v in values)
        assert bifrost.live_health is not None
        assert bifrost.live_health.publishes > 0
        # The faulty canary must have dragged the score below the gate.
        assert min(values) < 0.8

    def test_streaming_builder_saw_the_runtime_traces(self):
        bifrost, _execution = run_gated_canary(
            seed=404, experimental_error_rate=0.0
        )
        builder = bifrost.streaming_builder
        assert builder is not None
        assert builder.trace_count > 0
        assert builder.graph.has_node(("recommend", "2.0.0", "suggest"))
