"""End-to-end durability: EngineCrash faults, recovery, and convergence.

The acceptance scenario of the durability layer: a canary driven by the
full middleware stack is killed *mid-phase* by an ``EngineCrash`` fault
from a campaign, recovers from journal + snapshot, and still reaches
``TERMINAL_COMPLETE`` with the same user-visible ``version_path`` as the
crash-free baseline.  A truncated or corrupt journal tail degrades
gracefully instead of failing the recovery.
"""

import json

import pytest

from repro.bifrost import Bifrost, SnapshotPolicy
from repro.bifrost.model import (
    TERMINAL_COMPLETE,
    Check,
    Phase,
    PhaseType,
    Strategy,
    StrategyOutcome,
)
from repro.microservices.application import Application
from repro.microservices.faults import EngineCrash, FaultCampaign, FaultInjector
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.simulation.latency import LogNormalLatency
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

SEED = 31


def build_app() -> Application:
    app = Application("shop")
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {
                "index": EndpointSpec(
                    "index",
                    LogNormalLatency(8.0, 0.2),
                    calls=(DownstreamCall("catalog", "list"),),
                )
            },
            capacity_rps=300.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "1.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(18.0, 0.25))},
            capacity_rps=300.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "2.0.0",
            {"list": EndpointSpec("list", LogNormalLatency(16.0, 0.25))},
            capacity_rps=300.0,
        )
    )
    return app


def canary_strategy() -> Strategy:
    return Strategy(
        "catalog-canary",
        (
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="catalog",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.3,
                duration_seconds=120.0,
                check_interval_seconds=10.0,
                deadline_seconds=500.0,
                checks=(
                    Check(
                        name="user-errors",
                        service="frontend",
                        version="1.0.0",
                        metric="error",
                        threshold=0.10,
                        window_seconds=25.0,
                    ),
                ),
            ),
        ),
    )


def run_scenario(crash_windows, snapshot_policy=None, corrupt_tail_at=None):
    """Drive the canary under optional EngineCrash windows."""
    app = build_app()
    bifrost = Bifrost(app, seed=SEED, durable=True, snapshot_policy=snapshot_policy)
    if crash_windows:
        campaign = FaultCampaign(FaultInjector(app))
        for start, end in crash_windows:
            campaign.add(EngineCrash(start, end))
        bifrost.install_campaign(campaign)
    if corrupt_tail_at is not None:
        def corrupt():
            lines = bifrost.journal.storage.lines
            lines[-1] = lines[-1][: len(lines[-1]) // 2]

        bifrost.simulation.schedule_at(corrupt_tail_at, corrupt)
    bifrost.submit(canary_strategy(), at=1.0)
    population = UserPopulation(300, DEFAULT_GROUPS, seed=SEED + 1)
    workload = WorkloadGenerator(population, entry="frontend.index", seed=SEED + 2)
    outcomes = bifrost.run(workload.poisson(15.0, 160.0), until=260.0)
    return bifrost, app, outcomes


class TestCrashMidPhase:
    def test_canary_completes_across_two_crashes(self):
        b_base, app_base, out_base = run_scenario([])
        b_crash, app_crash, out_crash = run_scenario([(30.0, 45.0), (70.0, 85.0)])
        execution = b_crash.engine.executions[0]
        assert execution.state == TERMINAL_COMPLETE
        assert execution.outcome is StrategyOutcome.COMPLETED
        assert b_crash.supervisor.restarts == 2
        # The recovered run is user-indistinguishable from the baseline.
        assert [o.version_path for o in out_crash] == [
            o.version_path for o in out_base
        ]
        assert app_crash.stable_version("catalog") == app_base.stable_version(
            "catalog"
        ) == "2.0.0"

    def test_transition_log_identical_to_baseline(self):
        b_base, _, _ = run_scenario([])
        b_crash, _, _ = run_scenario([(30.0, 45.0), (70.0, 85.0)])

        def log(b):
            execution = b.engine.executions[0]
            return [
                (t.time, t.source, t.target, t.trigger, t.action)
                for t in execution.transitions
            ]

        assert log(b_crash) == log(b_base)

    def test_crash_with_snapshots_and_compaction(self):
        b_base, _, out_base = run_scenario([])
        b_crash, _, out_crash = run_scenario(
            [(30.0, 45.0), (70.0, 85.0)],
            snapshot_policy=SnapshotPolicy(every_records=5, compact=True),
        )
        assert b_crash.snapshots.taken >= 1
        assert all(r.snapshot_restored for r in b_crash.supervisor.reports)
        assert b_crash.outcome_of("catalog-canary") is StrategyOutcome.COMPLETED
        assert [o.version_path for o in out_crash] == [
            o.version_path for o in out_base
        ]

    def test_routes_survive_the_outage(self):
        # While the engine is dead mid-phase, the canary split keeps
        # serving: the data plane must not notice the control plane died.
        b_crash, _, _ = run_scenario([(30.0, 45.0)])
        monitor = b_crash.runtime.monitor
        served = monitor.throughput("catalog", "2.0.0", 30.0, 45.0)
        assert served > 0

    def test_durability_metrics_flow_through_monitor(self):
        b_crash, _, _ = run_scenario([(30.0, 45.0), (70.0, 85.0)])
        monitor = b_crash.runtime.monitor
        assert monitor.durability_count("crash", 0.0, 300.0) == 2.0
        assert monitor.durability_count("restart", 0.0, 300.0) == 2.0
        assert monitor.durability_count("recovered", 0.0, 300.0) == 2.0


class TestCorruptJournalTail:
    def test_truncated_tail_degrades_gracefully(self):
        # The journal's last record is torn in half just before the
        # crash: recovery drops it, reports it, and still completes.
        b_crash, _, _ = run_scenario(
            [(30.0, 45.0)], corrupt_tail_at=29.5
        )
        report = b_crash.supervisor.reports[0]
        assert report.records_dropped >= 1
        assert b_crash.outcome_of("catalog-canary") is StrategyOutcome.COMPLETED

    def test_journal_readable_after_recovery(self):
        b_crash, _, _ = run_scenario([(30.0, 45.0)], corrupt_tail_at=29.5)
        records = b_crash.journal.records()
        assert any(r.kind == "recovered" for r in records)
        assert any(r.kind == "finalized" for r in records)
        # Every surviving record decodes as strict JSON.
        for line in b_crash.journal.storage.lines[: len(records)]:
            json.loads(line)


class TestEngineCrashRequiresDurableMiddleware:
    def test_non_durable_middleware_rejects_engine_crash(self):
        from repro.errors import ConfigurationError

        app = build_app()
        bifrost = Bifrost(app, seed=SEED)  # not durable
        campaign = FaultCampaign(FaultInjector(app))
        campaign.add(EngineCrash(10.0, 20.0))
        with pytest.raises(ConfigurationError):
            bifrost.install_campaign(campaign)
