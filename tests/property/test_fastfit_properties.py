"""Property: incremental (delta) evaluation is exactly full evaluation.

For randomly generated problems and random gene-delta sequences, the
:class:`DeltaEvaluator` must return evaluations *equal* to a fresh full
:func:`evaluate` — same fitness, penalized score, validity, violations
(as sequences, hence also as multisets), and per-experiment scores.
Generated genes are deliberately allowed to be infeasible (beyond the
horizon, out of bounds, oversubscribed) so every violation kind flows
through the delta path.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fenrir.fastfit import DeltaEvaluator
from repro.fenrir.fitness import FitnessWeights, evaluate
from repro.fenrir.model import ExperimentSpec, SchedulingProblem
from repro.fenrir.schedule import Gene, Schedule
from repro.traffic.profile import UserGroup, flat_profile

GROUP_NAMES = ("alpha", "beta", "gamma", "delta")


@st.composite
def problems(draw):
    n_groups = draw(st.integers(min_value=1, max_value=4))
    shares = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=1.0),
            min_size=n_groups,
            max_size=n_groups,
        )
    )
    total = sum(shares)
    groups = tuple(
        UserGroup(name, share / total)
        for name, share in zip(GROUP_NAMES, shares)
    )
    num_slots = draw(st.integers(min_value=6, max_value=28))
    volume = draw(st.floats(min_value=10.0, max_value=5000.0))
    profile = flat_profile(num_slots, volume, groups)

    n_exp = draw(st.integers(min_value=1, max_value=6))
    specs = []
    names = [g.name for g in groups]
    for i in range(n_exp):
        min_dur = draw(st.integers(min_value=1, max_value=4))
        max_dur = draw(st.integers(min_value=min_dur, max_value=num_slots))
        min_frac = draw(st.floats(min_value=0.01, max_value=0.3))
        max_frac = draw(st.floats(min_value=min_frac, max_value=1.0))
        preferred = draw(
            st.frozensets(st.sampled_from(names), max_size=len(names))
        )
        specs.append(
            ExperimentSpec(
                name=f"exp-{i}",
                required_samples=draw(st.floats(min_value=1.0, max_value=1e5)),
                min_duration_slots=min_dur,
                max_duration_slots=max_dur,
                min_traffic_fraction=min_frac,
                max_traffic_fraction=max_frac,
                preferred_groups=preferred,
                earliest_start=draw(
                    st.integers(min_value=0, max_value=num_slots - 1)
                ),
                weight=draw(st.floats(min_value=0.1, max_value=5.0)),
            )
        )
    return SchedulingProblem(profile, specs)


def raw_genes(problem: SchedulingProblem):
    """Arbitrary (possibly infeasible) genes for *problem*."""
    names = list(problem.group_names)
    horizon = problem.horizon
    return st.builds(
        Gene,
        start=st.integers(min_value=0, max_value=horizon + 4),
        duration=st.integers(min_value=1, max_value=horizon + 4),
        fraction=st.floats(
            min_value=0.001, max_value=1.0, exclude_min=False
        ),
        groups=st.frozensets(
            st.sampled_from(names), min_size=1, max_size=len(names)
        ),
    )


@st.composite
def delta_chains(draw):
    """A problem, an initial chromosome, and a sequence of gene patches."""
    problem = draw(problems())
    gene = raw_genes(problem)
    n = len(problem.experiments)
    initial = draw(st.lists(gene, min_size=n, max_size=n))
    steps = draw(
        st.lists(
            st.lists(
                st.tuples(st.integers(min_value=0, max_value=n - 1), gene),
                min_size=1,
                max_size=max(1, n),
            ),
            min_size=1,
            max_size=8,
        )
    )
    return problem, initial, steps


def assert_equivalent(got, want):
    assert got.fitness == want.fitness
    assert got.penalized == want.penalized
    assert got.valid == want.valid
    assert got.per_experiment == want.per_experiment
    assert got.violations == want.violations
    assert Counter(got.violations) == Counter(want.violations)
    assert got == want


class TestDeltaExactness:
    @settings(max_examples=60, deadline=None)
    @given(delta_chains())
    def test_delta_chain_equals_full_evaluation(self, chain):
        problem, initial, steps = chain
        delta = DeltaEvaluator(problem)
        current = Schedule(problem, initial)
        got, used_delta = delta.evaluate(current)
        assert not used_delta
        assert_equivalent(got, evaluate(current))
        for patches in steps:
            genes = list(current.genes)
            changed = set()
            for index, gene in patches:
                genes[index] = gene
                changed.add(index)
            child = Schedule(problem, genes)
            got, _ = delta.evaluate(child, parent=current, changed=changed)
            assert_equivalent(got, evaluate(child))
            current = child

    @settings(max_examples=40, deadline=None)
    @given(delta_chains())
    def test_inferred_diff_equals_hinted_diff(self, chain):
        problem, initial, steps = chain
        hinted = DeltaEvaluator(problem)
        inferred = DeltaEvaluator(problem)
        current = Schedule(problem, initial)
        hinted.evaluate(current)
        inferred.evaluate(current)
        for patches in steps:
            genes = list(current.genes)
            changed = set()
            for index, gene in patches:
                genes[index] = gene
                changed.add(index)
            child = Schedule(problem, genes)
            with_hint, _ = hinted.evaluate(child, parent=current, changed=changed)
            without, _ = inferred.evaluate(child, parent=current, changed=None)
            assert_equivalent(with_hint, without)
            current = child

    @settings(max_examples=30, deadline=None)
    @given(delta_chains())
    def test_nondefault_weights_flow_through_delta(self, chain):
        problem, initial, steps = chain
        weights = FitnessWeights(duration=0.2, start=0.3, coverage=0.5)
        delta = DeltaEvaluator(problem, weights=weights)
        current = Schedule(problem, initial)
        delta.evaluate(current)
        for patches in steps[:3]:
            genes = list(current.genes)
            for index, gene in patches:
                genes[index] = gene
            child = Schedule(problem, genes)
            got, _ = delta.evaluate(child, parent=current)
            assert_equivalent(got, evaluate(child, weights))
            current = child
