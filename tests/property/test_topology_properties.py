"""Property-based tests on interaction graphs, diffs, and rankings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.builder import build_interaction_graph
from repro.topology.diff import DiffStatus, diff_graphs
from repro.topology.generator import mutate_graph, random_interaction_graph
from repro.topology.heuristics import all_heuristic_variants
from repro.topology.ranking import evaluate_ranking, rank_changes
from repro.topology.streaming import LiveTopologyDiff, StreamingGraphBuilder, graphs_equal
from repro.tracing.collector import TraceCollector
from repro.tracing.span import Span

graph_params = st.tuples(
    st.integers(min_value=2, max_value=120),   # endpoints
    st.integers(min_value=1, max_value=6),     # branching
    st.integers(min_value=0, max_value=500),   # seed
)


class TestGraphInvariants:
    @settings(max_examples=40, deadline=None)
    @given(graph_params)
    def test_generated_graph_is_consistent(self, params):
        n, branching, seed = params
        graph = random_interaction_graph(n, branching=branching, seed=seed)
        assert graph.node_count == n
        for caller, callee, stats in graph.edges():
            assert graph.has_node(caller)
            assert graph.has_node(callee)
            assert callee in graph.successors(caller)
            assert caller in graph.predecessors(callee)
            assert stats.calls > 0

    @settings(max_examples=40, deadline=None)
    @given(graph_params)
    def test_tree_has_single_root(self, params):
        n, branching, seed = params
        graph = random_interaction_graph(n, branching=branching, seed=seed)
        assert len(graph.roots()) == 1

    @settings(max_examples=40, deadline=None)
    @given(graph_params)
    def test_subtree_of_root_covers_graph(self, params):
        n, branching, seed = params
        graph = random_interaction_graph(n, branching=branching, seed=seed)
        root = graph.roots()[0]
        assert graph.subtree_size(root) == n


class TestDiffInvariants:
    @settings(max_examples=40, deadline=None)
    @given(graph_params)
    def test_self_diff_is_empty(self, params):
        n, branching, seed = params
        graph = random_interaction_graph(n, branching=branching, seed=seed)
        diff = diff_graphs(graph, graph)
        assert diff.changes == []
        assert all(
            entry.status is DiffStatus.UNCHANGED
            for entry in diff.entries.values()
        )

    @settings(max_examples=30, deadline=None)
    @given(graph_params, st.integers(min_value=1, max_value=20))
    def test_diff_is_antisymmetric_on_adds_removes(self, params, changes):
        n, branching, seed = params
        base = random_interaction_graph(n, branching=branching, seed=seed)
        variant = mutate_graph(base, changes=changes, seed=seed + 1)
        forward = diff_graphs(base, variant).summary()
        backward = diff_graphs(variant, base).summary()
        assert forward["added"] == backward["removed"]
        assert forward["removed"] == backward["added"]
        assert forward["updated"] == backward["updated"]

    @settings(max_examples=30, deadline=None)
    @given(graph_params, st.integers(min_value=0, max_value=20))
    def test_entries_cover_union_of_service_endpoints(self, params, changes):
        n, branching, seed = params
        base = random_interaction_graph(n, branching=branching, seed=seed)
        variant = mutate_graph(base, changes=changes, seed=seed + 1)
        diff = diff_graphs(base, variant)
        union = base.service_endpoints() | variant.service_endpoints()
        assert set(diff.entries) == union


class TestRankingInvariants:
    @settings(max_examples=20, deadline=None)
    @given(graph_params, st.integers(min_value=1, max_value=15))
    def test_rankings_are_permutations_of_changes(self, params, changes):
        n, branching, seed = params
        base = random_interaction_graph(n, branching=branching, seed=seed)
        variant = mutate_graph(base, changes=changes, seed=seed + 1)
        diff = diff_graphs(base, variant)
        for heuristic in all_heuristic_variants().values():
            ranking = rank_changes(diff, heuristic)
            assert sorted(r.change.describe() for r in ranking) == sorted(
                c.describe() for c in diff.changes
            )
            scores = [r.score for r in ranking]
            assert scores == sorted(scores, reverse=True)

    @settings(max_examples=20, deadline=None)
    @given(graph_params, st.integers(min_value=1, max_value=10))
    def test_ndcg_bounded_for_any_relevance(self, params, changes):
        n, branching, seed = params
        base = random_interaction_graph(n, branching=branching, seed=seed)
        variant = mutate_graph(base, changes=changes, seed=seed + 1)
        diff = diff_graphs(base, variant)
        ranking = rank_changes(diff, all_heuristic_variants()["HY-abs"])
        relevance = {
            change.identity: float(i % 4) for i, change in enumerate(diff.changes)
        }
        score = evaluate_ranking(ranking, relevance, k=5)
        assert 0.0 <= score <= 1.0 + 1e-9


@st.composite
def shuffled_span_stream(draw):
    """Random trace forest delivered as one shuffled global span stream.

    Each trace is a random tree (every non-root span parents onto an
    earlier span); the global permutation interleaves traces and delivers
    spans out of order, exercising the collector's reassembly and the
    streaming builder's re-notification delta path.
    """
    services = ["frontend", "auth", "catalog", "db"]
    spans = []
    for t in range(draw(st.integers(min_value=1, max_value=5))):
        for s in range(draw(st.integers(min_value=1, max_value=7))):
            spans.append(
                Span(
                    span_id=f"t{t}-s{s}",
                    trace_id=f"t{t}",
                    parent_id=(
                        None
                        if s == 0
                        else f"t{t}-s{draw(st.integers(min_value=0, max_value=s - 1))}"
                    ),
                    service=draw(st.sampled_from(services)),
                    version=draw(st.sampled_from(["1.0.0", "2.0.0"])),
                    endpoint=draw(st.sampled_from(["home", "api", "query"])),
                    start=draw(
                        st.floats(
                            min_value=0.0,
                            max_value=500.0,
                            allow_nan=False,
                            allow_infinity=False,
                        )
                    ),
                    duration_ms=draw(
                        st.floats(
                            min_value=0.0,
                            max_value=80.0,
                            allow_nan=False,
                            allow_infinity=False,
                        )
                    ),
                    error=draw(st.booleans()),
                    tags={"shadow": "true"} if draw(st.booleans()) else {},
                )
            )
    return draw(st.permutations(spans))


class TestStreamingEqualsBatch:
    """The tentpole exactness guarantee: a StreamingGraphBuilder fed a
    span stream produces the same graph — node set, edge set, call
    counts, error counts, response-time totals — as
    ``build_interaction_graph`` over the assembled traces."""

    @settings(max_examples=40, deadline=None)
    @given(shuffled_span_stream(), st.booleans())
    def test_streaming_graph_equals_batch_graph(self, stream, include_shadow):
        collector = TraceCollector()
        builder = StreamingGraphBuilder(include_shadow=include_shadow)
        builder.attach(collector)
        for span in stream:
            collector.record(span)
        batch = build_interaction_graph(
            collector.traces(), include_shadow=include_shadow
        )
        assert graphs_equal(builder.graph, batch)

    @settings(max_examples=25, deadline=None)
    @given(shuffled_span_stream(), graph_params)
    def test_live_diff_equals_batch_diff(self, stream, params):
        n, branching, seed = params
        baseline = random_interaction_graph(n, branching=branching, seed=seed)
        collector = TraceCollector()
        builder = StreamingGraphBuilder().attach(collector)
        live = LiveTopologyDiff(baseline, builder)
        for span in stream:
            collector.record(span)
        batch = diff_graphs(baseline, builder.graph)
        current = live.current()
        assert [c.identity for c in current.changes] == [
            c.identity for c in batch.changes
        ]
        assert current.summary() == batch.summary()
