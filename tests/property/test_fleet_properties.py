"""Property tests for the fleet layer.

Two contracts hold under adversarial inputs:

1. **No over-admission** — for any set of requests and reservations, in
   any arrival order, the admission controller never lets a (slot,
   group) cell exceed the budget, every request is accounted for exactly
   once (admitted, queued, or shed with a reason), and the decision is
   independent of arrival order.  Satellite of ISSUE 7's acceptance
   criteria: "per-slot admitted traffic never exceeds budgets under
   shuffled arrival orders".

2. **Crash-consistent recovery** — an orchestrator killed before an
   arbitrary fleet-WAL append and recovered from the surviving journals
   finishes with a result digest identical to the run that never
   crashed, injected engine faults and all.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bifrost.journal import Journal, MemoryJournalStorage
from repro.fleet import (
    AdmissionController,
    AdmissionRequest,
    ExperimentFaults,
    FleetOrchestrator,
    OrchestratorKilled,
    recover_fleet,
    usage_within_budget,
)
from tests.unit.test_fleet_orchestrator import fast_config, make_schedule

GROUPS = ("eu", "na", "apac")


@st.composite
def admission_requests(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    requests = []
    for i in range(count):
        group_mask = draw(
            st.lists(
                st.sampled_from(GROUPS), min_size=1, max_size=3, unique=True
            )
        )
        requests.append(
            AdmissionRequest(
                name=f"exp{i}",
                fraction=draw(
                    st.floats(min_value=0.01, max_value=1.0,
                              allow_nan=False, allow_infinity=False)
                ),
                groups=tuple(group_mask),
                weight=draw(st.floats(min_value=0.1, max_value=5.0,
                                      allow_nan=False)),
                latest_start=draw(
                    st.one_of(st.none(), st.integers(min_value=0, max_value=10))
                ),
                deferrals=draw(st.integers(min_value=0, max_value=6)),
            )
        )
    return requests


class TestNoOverAdmission:
    @given(
        requests=admission_requests(),
        reserved=admission_requests(),
        slot=st.integers(min_value=0, max_value=10),
        budget=st.floats(min_value=0.2, max_value=1.0, allow_nan=False),
        max_defer=st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
        order=st.randoms(use_true_random=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_budget_and_accounting(
        self, requests, reserved, slot, budget, max_defer, order
    ):
        controller = AdmissionController(GROUPS, budget=budget,
                                         max_defer=max_defer)
        shuffled = list(requests)
        order.shuffle(shuffled)
        decision = controller.decide(slot, shuffled, reserved=reserved)

        # Every request lands in exactly one bucket; sheds carry reasons.
        landed = (
            list(decision.admitted)
            + list(decision.queued)
            + [name for name, _ in decision.shed]
        )
        assert sorted(landed) == sorted(r.name for r in requests)
        assert all(reason for _, reason in decision.shed)

        # The admitted set (reservations included) never overdraws any
        # group — *unless* the pre-existing reservations alone already
        # did, which admission cannot retroactively fix but must also
        # never worsen.
        reserved_usage = {g: 0.0 for g in GROUPS}
        for holder in reserved:
            for g in holder.groups:
                reserved_usage[g] += holder.fraction
        admitted_usage = dict(reserved_usage)
        by_name = {r.name: r for r in requests}
        for name in decision.admitted:
            for g in by_name[name].groups:
                admitted_usage[g] += by_name[name].fraction
        for g in GROUPS:
            if reserved_usage[g] <= budget:
                assert admitted_usage[g] <= budget + 1e-9
            else:
                assert admitted_usage[g] <= reserved_usage[g] + 1e-9
        # The reported usage matches the reconstruction (modulo float
        # summation order) and respects the budget whenever the
        # reservations themselves did.
        reported = dict(decision.usage)
        for g in GROUPS:
            assert abs(reported[g] - admitted_usage[g]) < 1e-6
        if usage_within_budget(reserved_usage, budget):
            assert usage_within_budget(reported, budget)

    @given(
        requests=admission_requests(),
        slot=st.integers(min_value=0, max_value=10),
        order=st.randoms(use_true_random=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_arrival_order_irrelevant(self, requests, slot, order):
        controller = AdmissionController(GROUPS, budget=1.0, max_defer=4)
        shuffled = list(requests)
        order.shuffle(shuffled)
        assert controller.decide(slot, requests) == controller.decide(
            slot, shuffled
        )


class TestCrashConsistency:
    @given(
        kill_at=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=3),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_recovery_digest_equality(self, kill_at, seed):
        schedule = make_schedule(4, looper=0, looper_duration=6)
        config = fast_config(restart_max=2, seed=seed)
        faults = {
            "exp0": ExperimentFaults(crash_loop=True),
            "exp2": ExperimentFaults(check_error_slots=tuple(range(16))),
            "exp3": ExperimentFaults(crash_slots=(2,)),
        }
        world = {"exp1": 0.4}
        baseline = FleetOrchestrator(
            schedule, world=world, faults=faults, config=config
        ).run().digest()

        fleet_storage = MemoryJournalStorage()
        exp_storages: dict[str, MemoryJournalStorage] = {}

        def factory(name):
            storage = exp_storages.setdefault(name, MemoryJournalStorage())
            return Journal(storage)

        try:
            result = FleetOrchestrator(
                schedule,
                world=world,
                faults=faults,
                config=config,
                fleet_journal=Journal(fleet_storage),
                journal_factory=factory,
                crash_after_appends=kill_at,
            ).run()
            # The kill point lay beyond the run: nothing to recover.
            assert result.digest() == baseline
            return
        except OrchestratorKilled:
            pass

        recovered = recover_fleet(Journal(fleet_storage), factory)
        result = recovered.run()
        assert result.recovered
        assert result.digest() == baseline
