"""Determinism of the resilience layer under an active fault campaign.

The benchmark outputs must stay reproducible: two runs with the same
root seed have to produce identical retry counts, breaker transitions,
and trace durations — even while a campaign flips transient faults on
and off and policies inject seeded backoff jitter.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bifrost import Bifrost
from repro.bifrost.model import Check, Phase, PhaseType, Strategy
from repro.microservices.application import Application
from repro.microservices.faults import (
    ErrorBurst,
    FaultCampaign,
    FaultInjector,
    LatencySpike,
    NetworkState,
    Partition,
)
from repro.microservices.resilience import BreakerConfig, CallPolicy, ResilienceLayer
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.simulation.latency import LogNormalLatency
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator


def build_app() -> Application:
    app = Application("determinism")
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {
                "home": EndpointSpec(
                    "home",
                    LogNormalLatency(8.0, 0.2),
                    calls=(
                        DownstreamCall("backend", "api"),
                        DownstreamCall("auth", "check", probability=0.7),
                    ),
                )
            },
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "backend", "1.0.0", {"api": EndpointSpec("api", LogNormalLatency(15.0, 0.3))}
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "backend", "2.0.0", {"api": EndpointSpec("api", LogNormalLatency(14.0, 0.3))}
        )
    )
    app.deploy(
        ServiceVersion(
            "auth", "1.0.0", {"check": EndpointSpec("check", LogNormalLatency(4.0, 0.2))}
        ),
        stable=True,
    )
    return app


def canary_strategy() -> Strategy:
    return Strategy(
        "backend-canary",
        (
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="backend",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.3,
                duration_seconds=60.0,
                check_interval_seconds=10.0,
                deadline_seconds=200.0,
                checks=(
                    Check(
                        name="frontend-errors",
                        service="frontend",
                        version="1.0.0",
                        metric="error",
                        threshold=0.25,
                        window_seconds=20.0,
                    ),
                ),
            ),
        ),
    )


def run_once(seed: int):
    """One full run; returns a hashable fingerprint of everything observable."""
    app = build_app()
    layer = ResilienceLayer(
        breaker_config=BreakerConfig(
            failure_threshold=0.6, window_size=20, min_calls=8, open_seconds=15.0
        )
    )
    layer.set_policy(
        CallPolicy(max_retries=2, backoff_base_ms=5.0, jitter_ms=4.0, timeout_ms=500.0),
        service="backend",
    )
    network = NetworkState()
    bifrost = Bifrost(app, seed=seed, resilience=layer, network=network)
    campaign = FaultCampaign(FaultInjector(app), network=network)
    campaign.add(ErrorBurst("backend", "2.0.0", "api", 0.8, 10.0, 25.0))
    campaign.add(LatencySpike("backend", "1.0.0", "api", 3.0, 20.0, 35.0))
    campaign.add(Partition("frontend", "auth", 30.0, 40.0))
    bifrost.install_campaign(campaign)
    execution = bifrost.submit(canary_strategy(), at=0.0)

    population = UserPopulation(150, DEFAULT_GROUPS, seed=seed + 1)
    workload = WorkloadGenerator(population, entry="frontend.home", seed=seed + 2)
    outcomes = bifrost.run(workload.poisson(12.0, 50.0), until=90.0)

    return (
        tuple(sorted(layer.counters().items())),
        tuple(
            (t.time, t.service, t.version, t.source.value, t.target.value)
            for t in layer.breaker_transitions()
        ),
        tuple(o.duration_ms for o in outcomes),
        tuple(o.error for o in outcomes),
        tuple(o.version_path for o in outcomes),
        execution.outcome.value,
        tuple(
            (t.time, t.source, t.target, t.trigger) for t in execution.transitions
        ),
        tuple((e.kind, e.time, e.service, e.version) for e in layer.events),
    )


class TestResilienceDeterminism:
    @settings(max_examples=4, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_same_seed_same_everything(self, seed):
        assert run_once(seed) == run_once(seed)

    def test_campaign_actually_exercises_resilience(self):
        fingerprint = run_once(7)
        counters = dict(fingerprint[0])
        # The burst must have produced retries, or the run is vacuous.
        assert counters.get("retry", 0) > 0
