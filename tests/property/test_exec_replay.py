"""Replay-fidelity and substrate-agreement properties (PR 9).

Two contracts of the execution layer:

1. **Record → replay is digest-equal** for arbitrary seeded topologies:
   re-driving a recording reproduces the full metric store, every
   transition, every check evaluation, and the terminal outcome —
   byte-identical under :func:`~repro.exec.recording.run_digest`.
2. **SIM and LIVE agree** on deterministic low-jitter topologies: the
   same unchanged strategy reaches the same verdict whether latencies
   are simulated or measured over real loopback sockets.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bifrost.model import Check, Phase, PhaseType, Strategy, StrategyOutcome
from repro.exec import ExecutionRouter, LiveOptions, Recording
from repro.microservices.application import Application
from repro.microservices.service import DownstreamCall, EndpointSpec, ServiceVersion
from repro.simulation.latency import ConstantLatency, LogNormalLatency
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator


def build_app(
    backend_latency: float, canary_latency: float, canary_error_rate: float
) -> Application:
    app = Application("prop")
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {
                "home": EndpointSpec(
                    "home",
                    LogNormalLatency(9.0, 0.2),
                    calls=(DownstreamCall("backend", "api"),),
                )
            },
            capacity_rps=400.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "backend",
            "1.0.0",
            {"api": EndpointSpec("api", LogNormalLatency(backend_latency, 0.25))},
            capacity_rps=400.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "backend",
            "2.0.0",
            {
                "api": EndpointSpec(
                    "api",
                    LogNormalLatency(canary_latency, 0.25),
                    error_rate=canary_error_rate,
                )
            },
            capacity_rps=400.0,
        )
    )
    return app


def canary_strategy(
    fraction: float, threshold: float, interval: float
) -> Strategy:
    return Strategy(
        "prop-canary",
        (
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="backend",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=fraction,
                duration_seconds=60.0,
                check_interval_seconds=interval,
                checks=(
                    Check(
                        name="errors",
                        service="backend",
                        version="2.0.0",
                        metric="error",
                        threshold=threshold,
                        window_seconds=20.0,
                    ),
                    Check(
                        name="stable-errors",
                        service="backend",
                        version="1.0.0",
                        metric="error",
                        threshold=0.5,
                        window_seconds=20.0,
                    ),
                ),
            ),
        ),
    )


class TestRecordReplayDigestEqual:
    @given(
        seed=st.integers(min_value=1, max_value=10_000),
        backend_latency=st.floats(min_value=5.0, max_value=40.0),
        canary_latency=st.floats(min_value=5.0, max_value=40.0),
        canary_error_rate=st.sampled_from([0.0, 0.02, 0.3]),
        fraction=st.floats(min_value=0.1, max_value=0.5),
        threshold=st.sampled_from([0.05, 0.15]),
        interval=st.sampled_from([5.0, 8.0]),
        rate=st.floats(min_value=8.0, max_value=25.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_replay_reproduces_recorded_run(
        self,
        seed,
        backend_latency,
        canary_latency,
        canary_error_rate,
        fraction,
        threshold,
        interval,
        rate,
    ):
        router = ExecutionRouter(
            lambda: build_app(backend_latency, canary_latency, canary_error_rate),
            seed=seed,
        )
        population = UserPopulation(150, DEFAULT_GROUPS, seed=seed + 1)
        generator = WorkloadGenerator(
            population, entry="frontend.home", seed=seed + 2
        )
        report = router.run(
            canary_strategy(fraction, threshold, interval),
            workload=generator.poisson(rate, 80.0),
            until=140.0,
            submit_at=1.0,
            record=True,
        )
        recording = report.recording
        loaded = Recording.from_jsonl(recording.jsonl_lines())
        replay_report = router.run(recording=loaded)
        diff = replay_report.replay
        assert diff.digest_match, diff.describe()
        assert diff.identical, diff.describe()
        assert replay_report.outcome is report.outcome

        # Digest equality is the headline; spot-check its constituents
        # directly so a digest-implementation bug can't hide a drift.
        sim_result = report.details
        replay_result = replay_report.details
        assert (
            replay_result.store.snapshot() == sim_result.middleware.store.snapshot()
        )
        sim_exec = sim_result.executions[0]
        replay_exec = replay_result.executions[0]
        assert [
            (t.time, t.source, t.target, t.trigger)
            for t in replay_exec.transitions
        ] == [
            (t.time, t.source, t.target, t.trigger) for t in sim_exec.transitions
        ]
        assert [
            (c.time, c.check.name, c.outcome, c.observed)
            for c in replay_exec.check_log
        ] == [
            (c.time, c.check.name, c.outcome, c.observed)
            for c in sim_exec.check_log
        ]


class TestSimLiveAgreement:
    def _deterministic_app(self, canary_error_rate: float) -> Application:
        # Constant latencies and (for the faulty case) a heavy error
        # rate: jitter from real sockets cannot flip the verdict.
        app = Application("agree")
        app.deploy(
            ServiceVersion(
                "frontend",
                "1.0.0",
                {
                    "home": EndpointSpec(
                        "home",
                        ConstantLatency(5.0),
                        calls=(DownstreamCall("backend", "api"),),
                    )
                },
            ),
            stable=True,
        )
        app.deploy(
            ServiceVersion(
                "backend", "1.0.0", {"api": EndpointSpec("api", ConstantLatency(8.0))}
            ),
            stable=True,
        )
        app.deploy(
            ServiceVersion(
                "backend",
                "2.0.0",
                {
                    "api": EndpointSpec(
                        "api", ConstantLatency(6.0), error_rate=canary_error_rate
                    )
                },
            )
        )
        return app

    def _verdicts(self, canary_error_rate: float):
        router = ExecutionRouter(
            lambda: self._deterministic_app(canary_error_rate),
            seed=17,
            live_options=LiveOptions(time_scale=0.01, max_wall_s=55.0),
        )
        strategy = canary_strategy(0.3, 0.15, 8.0)
        verdicts = {}
        for mode in ("sim", "live"):
            population = UserPopulation(100, DEFAULT_GROUPS, seed=18)
            generator = WorkloadGenerator(
                population, entry="frontend.home", seed=19
            )
            report = router.run(
                strategy,
                workload=generator.poisson(15.0, 80.0),
                until=140.0,
                submit_at=1.0,
                mode=mode,
            )
            verdicts[mode] = report.outcome
        return verdicts

    def test_healthy_canary_promotes_on_both_substrates(self):
        verdicts = self._verdicts(0.0)
        assert verdicts["sim"] is StrategyOutcome.COMPLETED
        assert verdicts["live"] is StrategyOutcome.COMPLETED

    def test_faulty_canary_rolls_back_on_both_substrates(self):
        verdicts = self._verdicts(0.6)
        assert verdicts["sim"] is StrategyOutcome.ROLLED_BACK
        assert verdicts["live"] is StrategyOutcome.ROLLED_BACK
