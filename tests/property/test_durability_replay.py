"""Deterministic-replay guarantee of the durability layer.

The contract of journal + recovery is exact: a seeded run whose engine
is crashed at an *arbitrary* point and recovered must produce the same
``StrategyOutcome``, the same transition log (including transition
times), and the same per-request ``version_path`` as the run that never
crashed.  Catch-up replay at original logical timestamps is what makes
this hold — telemetry survives the crash, so late evaluations see the
data the crash-free engine saw.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bifrost import Bifrost
from repro.bifrost.model import Check, Phase, PhaseType, Strategy, StrategyOutcome
from repro.microservices.application import Application
from repro.microservices.faults import EngineCrash, FaultCampaign, FaultInjector
from repro.microservices.service import EndpointSpec, ServiceVersion
from repro.simulation.latency import LogNormalLatency
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

SEED = 23


def build_app() -> Application:
    app = Application("durability")
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {"home": EndpointSpec("home", LogNormalLatency(9.0, 0.2))},
            capacity_rps=400.0,
        ),
        stable=True,
    )
    app.deploy(
        ServiceVersion(
            "frontend",
            "2.0.0",
            {"home": EndpointSpec("home", LogNormalLatency(8.0, 0.2))},
            capacity_rps=400.0,
        )
    )
    return app


def canary_strategy(error_rate_threshold: float) -> Strategy:
    return Strategy(
        "replayed-canary",
        (
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="frontend",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.25,
                duration_seconds=90.0,
                check_interval_seconds=8.0,
                deadline_seconds=400.0,
                checks=(
                    Check(
                        name="errors",
                        service="frontend",
                        version="2.0.0",
                        metric="error",
                        threshold=error_rate_threshold,
                        window_seconds=20.0,
                    ),
                ),
            ),
        ),
    )


def run_canary(crash_window, threshold):
    """One seeded run; *crash_window* of None means no crash."""
    app = build_app()
    bifrost = Bifrost(app, seed=SEED, durable=True)
    if crash_window is not None:
        campaign = FaultCampaign(FaultInjector(app))
        campaign.add(EngineCrash(*crash_window))
        bifrost.install_campaign(campaign)
    bifrost.submit(canary_strategy(threshold), at=1.0)
    population = UserPopulation(300, DEFAULT_GROUPS, seed=SEED + 1)
    workload = WorkloadGenerator(population, entry="frontend.home", seed=SEED + 2)
    outcomes = bifrost.run(workload.poisson(12.0, 130.0), until=240.0)
    execution = bifrost.engine.executions[0]
    return (
        execution.outcome,
        [
            (t.time, t.source, t.target, t.trigger, t.action)
            for t in execution.transitions
        ],
        [(r.time, r.check.name, r.outcome) for r in execution.check_log],
        [(o.request.timestamp, o.version_path) for o in outcomes],
    )


# The canary phase runs [1, 91]; windows are kept clear of the route
# tear-down at ~91 s — while the engine is dead the installed split
# keeps serving (the data plane survives), so a crash *covering* a
# route-changing transition genuinely delays it (see the test below).
@settings(max_examples=12, deadline=None)
@given(
    start=st.floats(min_value=2.0, max_value=60.0),
    duration=st.floats(min_value=1.0, max_value=25.0),
    threshold=st.sampled_from([0.05, 0.5]),
)
def test_crashed_and_recovered_run_equals_uncrashed_run(start, duration, threshold):
    baseline = run_canary(None, threshold)
    crashed = run_canary((start, start + duration), threshold)
    assert crashed[0] is baseline[0], "StrategyOutcome diverged"
    assert crashed[1] == baseline[1], "transition log diverged"
    assert crashed[2] == baseline[2], "check log diverged"
    assert crashed[3] == baseline[3], "version_path diverged"


def test_crash_spanning_phase_end_converges_outside_the_dead_window():
    # The crash window covers the phase's scheduled end.  The *decision*
    # is replayed at its original logical timestamp (identical outcome,
    # transition log, and check log), but the route tear-down is a data
    # plane action a dead engine cannot perform — requests served while
    # the engine was down may diverge, and only those.
    window = (85.0, 110.0)
    baseline = run_canary(None, 0.5)
    crashed = run_canary(window, 0.5)
    assert baseline[0] is StrategyOutcome.COMPLETED
    assert crashed[:3] == baseline[:3]
    for (ts_base, path_base), (ts_crash, path_crash) in zip(baseline[3], crashed[3]):
        assert ts_base == ts_crash
        if not window[0] <= ts_base <= window[1]:
            assert path_base == path_crash
