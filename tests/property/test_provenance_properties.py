"""Provenance-fidelity properties (PR 10).

The provenance layer's headline contract: the engine-side graph (folded
live, one event at a time, as the engine emits) and the offline graph
(folded from nothing but an exported event stream) are **equal** —
digest-equal across randomized topologies, seeds, and thresholds, across
the JSONL export → load round-trip, and across REPLAY of a SIM
recording.  A promotion's explanation survives every serialization hop.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bifrost.model import Check, Phase, PhaseType, Strategy
from repro.exec import ExecutionRouter, Recording
from repro.obs.provenance import build_provenance
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

from tests.property.test_exec_replay import build_app, canary_strategy


def multiphase_strategy(threshold: float, interval: float) -> Strategy:
    """Canary then rollout — exercises phase-stay resets in the fold."""
    checks = (
        Check(
            name="errors",
            service="backend",
            version="2.0.0",
            metric="error",
            threshold=threshold,
            window_seconds=20.0,
        ),
        Check(
            name="latency",
            service="backend",
            version="2.0.0",
            metric="response_time",
            aggregation="p95",
            threshold=400.0,
            window_seconds=20.0,
        ),
    )
    return Strategy(
        "prop-multiphase",
        (
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="backend",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.2,
                duration_seconds=45.0,
                check_interval_seconds=interval,
                checks=checks,
                on_success="rollout",
            ),
            Phase(
                name="rollout",
                type=PhaseType.CANARY,
                service="backend",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=0.6,
                duration_seconds=40.0,
                check_interval_seconds=interval,
                checks=checks,
            ),
        ),
    )


def run_recorded(
    seed: int,
    canary_error_rate: float,
    strategy: Strategy,
    rate: float = 15.0,
):
    router = ExecutionRouter(
        lambda: build_app(10.0, 12.0, canary_error_rate), seed=seed
    )
    population = UserPopulation(150, DEFAULT_GROUPS, seed=seed + 1)
    generator = WorkloadGenerator(
        population, entry="frontend.home", seed=seed + 2
    )
    return router.run(
        strategy,
        workload=generator.poisson(rate, 100.0),
        until=160.0,
        submit_at=1.0,
        record=True,
    ), router


class TestEngineGraphEqualsOfflineFold:
    @given(
        seed=st.integers(min_value=1, max_value=10_000),
        canary_error_rate=st.sampled_from([0.0, 0.05, 0.4]),
        threshold=st.sampled_from([0.05, 0.15]),
        interval=st.sampled_from([5.0, 8.0]),
        multiphase=st.booleans(),
    )
    @settings(max_examples=8, deadline=None)
    def test_offline_fold_is_digest_equal(
        self, seed, canary_error_rate, threshold, interval, multiphase
    ):
        strategy = (
            multiphase_strategy(threshold, interval)
            if multiphase
            else canary_strategy(0.3, threshold, interval)
        )
        report, _router = run_recorded(seed, canary_error_rate, strategy)
        live = report.details.provenance
        assert live is not None
        # Fold 1: straight off the recording's captured event stream.
        offline = report.recording.provenance()
        assert offline.digest() == live.digest()
        # Fold 2: after the JSONL export -> parse round-trip.
        loaded = Recording.from_jsonl(report.recording.jsonl_lines())
        assert loaded.provenance().digest() == live.digest()
        # The graph is substantive, not vacuously equal.
        record = offline.strategy(strategy.name)
        assert record.evidence
        assert any(d.terminal for d in record.decisions)
        assert all(
            seq in record.evidence
            for decision in record.decisions
            for seq in decision.evidence
        )

    @given(
        seed=st.integers(min_value=1, max_value=10_000),
        canary_error_rate=st.sampled_from([0.0, 0.4]),
    )
    @settings(max_examples=6, deadline=None)
    def test_replay_of_sim_recording_is_digest_equal(
        self, seed, canary_error_rate
    ):
        report, router = run_recorded(
            seed, canary_error_rate, canary_strategy(0.3, 0.1, 5.0)
        )
        recorded_graph = report.recording.provenance()
        replay_report = router.run(recording=report.recording)
        assert replay_report.replay.identical, replay_report.replay.describe()
        replayed_graph = replay_report.details.provenance
        assert replayed_graph is not None
        assert replayed_graph.digest() == recorded_graph.digest()
        assert replayed_graph.digest() == report.details.provenance.digest()


class TestDecisionPayloadIntegrity:
    def test_terminal_decision_explains_the_rollback(self):
        report, _router = run_recorded(
            101, 0.5, canary_strategy(0.3, 0.05, 5.0)
        )
        graph = build_provenance(report.recording.events)
        record = graph.strategy("prop-canary")
        assert record.outcome == "rolled_back"
        decision = record.terminal_decision()
        assert decision is not None
        assert decision.action == "rollback"
        evidence = graph.evidence_for(decision)
        assert any(e.failing for e in evidence)
        failing = next(e for e in evidence if e.failing)
        assert failing.metric == "error"
        assert failing.margin is not None and failing.margin < 0
        assert failing.window_end == failing.time
        assert failing.samples is not None and failing.samples > 0
