"""Property tests for the scenario layer.

Two properties anchor the whole fuzzing pipeline:

1. **Round-trip identity** — every spec any archetype can sample
   survives ``to_dict`` → JSON → ``from_dict`` unchanged.  Without this
   the regression corpus could silently drift from what the fuzzer saw.
2. **Seed determinism** — identical specs produce identical run digests.
   Without this a corpus replay mismatch would be noise, not signal.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import ScenarioFuzzer, ScenarioSpec, run_scenario
from repro.scenarios.fuzzer import ARCHETYPES

NUM_ARCHETYPES = len(ARCHETYPES)


def sampled_spec(seed: int, index: int) -> ScenarioSpec:
    return ScenarioFuzzer(seed=seed).sample(index)[1]


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    index=st.integers(min_value=0, max_value=NUM_ARCHETYPES * 3 - 1),
)
def test_every_sampled_spec_round_trips_losslessly(seed, index):
    spec = sampled_spec(seed, index)
    data = json.loads(json.dumps(spec.to_dict()))
    assert ScenarioSpec.from_dict(data) == spec


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    index=st.integers(min_value=0, max_value=NUM_ARCHETYPES * 2 - 1),
)
def test_sampling_is_deterministic_in_the_root_seed(seed, index):
    assert sampled_spec(seed, index) == sampled_spec(seed, index)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    index=st.integers(min_value=0, max_value=NUM_ARCHETYPES - 1),
)
def test_identical_specs_yield_identical_run_digests(seed, index):
    spec = sampled_spec(seed, index)
    first = run_scenario(spec)
    second = run_scenario(spec)
    assert first.digest() == second.digest()


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_round_tripped_spec_runs_identically(seed):
    spec = sampled_spec(seed, 0)  # loose_gate: cheap single-run scenarios
    clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert run_scenario(clone).digest() == run_scenario(spec).digest()
