"""Property-based tests on routing, assignment, and toggle semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.assignment import StickyAssigner
from repro.routing.rules import Variant
from repro.routing.splitter import ab_split, canary_split, rollout_split
from repro.toggles.store import FeatureToggle

_user_ids = st.from_regex(r"u[0-9a-f]{1,10}", fullmatch=True)
_salts = st.from_regex(r"[a-z]{1,8}", fullmatch=True)


class TestSplitterProperties:
    @settings(max_examples=100)
    @given(st.floats(min_value=0.001, max_value=0.999))
    def test_canary_fractions_sum_to_one(self, fraction):
        variants = canary_split("1.0", "2.0", fraction)
        assert sum(v.fraction for v in variants) == 1.0

    @settings(max_examples=100)
    @given(st.floats(min_value=0.001, max_value=0.999))
    def test_ab_fractions_sum_to_one(self, fraction):
        variants = ab_split("a", "b", fraction)
        assert sum(v.fraction for v in variants) == 1.0

    @settings(max_examples=100)
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_rollout_fractions_sum_to_one(self, fraction):
        variants = rollout_split("1.0", "2.0", fraction)
        assert sum(v.fraction for v in variants) == 1.0


class TestAssignmentProperties:
    @settings(max_examples=60, deadline=None)
    @given(_user_ids, _salts, st.floats(min_value=0.01, max_value=0.99))
    def test_assignment_deterministic(self, user, salt, fraction):
        variants = canary_split("stable", "canary", fraction)
        a = StickyAssigner(salt).assign(user, variants)
        b = StickyAssigner(salt).assign(user, variants)
        assert a == b

    @settings(max_examples=60, deadline=None)
    @given(_user_ids, _salts)
    def test_assignment_is_one_of_variants(self, user, salt):
        variants = ab_split("a", "b", 0.3)
        assert StickyAssigner(salt).assign(user, variants) in ("a", "b")

    @settings(max_examples=30, deadline=None)
    @given(_salts, st.floats(min_value=0.05, max_value=0.95))
    def test_canary_monotone_in_fraction(self, salt, fraction):
        """Users in a small canary stay in any larger canary."""
        small = canary_split("stable", "canary", fraction / 2)
        large = canary_split("stable", "canary", fraction)
        assigner = StickyAssigner(salt)
        for i in range(100):
            user = f"user{i}"
            if assigner.assign(user, small) == "canary":
                assert assigner.assign(user, large) == "canary"

    @settings(max_examples=30, deadline=None)
    @given(_salts)
    def test_degenerate_full_variant_takes_all(self, salt):
        variants = (Variant("only", 1.0),)
        assigner = StickyAssigner(salt)
        assert all(
            assigner.assign(f"u{i}", variants) == "only" for i in range(50)
        )


class TestToggleProperties:
    @settings(max_examples=60, deadline=None)
    @given(_user_ids, _salts, st.floats(min_value=0.0, max_value=1.0))
    def test_toggle_matches_rollout_semantics(self, user, name, fraction):
        """Toggle bucketing and router bucketing share the same math."""
        toggle = FeatureToggle(name, "svc", rollout_fraction=fraction)
        from repro.traffic.users import in_rollout

        assert toggle.evaluate(user) == in_rollout(user, name, fraction)

    @settings(max_examples=60, deadline=None)
    @given(_user_ids, _salts, st.floats(min_value=0.0, max_value=0.5))
    def test_toggle_monotone_in_fraction(self, user, name, fraction):
        narrow = FeatureToggle(name, "svc", rollout_fraction=fraction)
        wide = FeatureToggle(name, "svc", rollout_fraction=min(1.0, fraction * 2))
        if narrow.evaluate(user):
            assert wide.evaluate(user)
