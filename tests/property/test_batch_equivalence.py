"""Property: the batch execution kernel is bit-identical to the scalar path.

The contract of ``repro.simulation.batch`` is that running a workload
through ``Bifrost.run_batches`` produces *exactly* the state an
all-scalar ``Bifrost.run`` replay would: the same metric samples (every
timestamp and value, bit for bit), the same strategy transitions and
check evaluations, the same sticky-assignment state, the same promotion
or abort decision, the same clock.  Hypothesis drives randomized
topologies, canary fractions, arrival processes, and seeds through both
paths and diffs the full observable state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bifrost import Bifrost
from repro.bifrost.model import Check, Phase, PhaseType, Strategy
from repro.microservices.application import Application
from repro.microservices.service import (
    DownstreamCall,
    EndpointSpec,
    ServiceVersion,
)
from repro.simulation.latency import (
    ConstantLatency,
    LoadSensitiveLatency,
    LogNormalLatency,
)
from repro.traffic.batch import BatchWorkloadGenerator
from repro.traffic.profile import DEFAULT_GROUPS
from repro.traffic.users import UserPopulation
from repro.traffic.workload import WorkloadGenerator

RATE = 40.0
DURATION = 12.0
UNTIL = 20.0


def build_app(
    canary_error: float, call_probability: float, parallel: bool
) -> Application:
    app = Application()
    app.deploy(
        ServiceVersion(
            "frontend",
            "1.0.0",
            {
                "index": EndpointSpec(
                    "index",
                    LoadSensitiveLatency(LogNormalLatency(20.0, 0.3)),
                    calls=(
                        DownstreamCall("catalog", "search"),
                        DownstreamCall(
                            "inventory", "check", probability=call_probability
                        ),
                    ),
                    parallel_calls=parallel,
                )
            },
            capacity_rps=100.0,
        )
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "1.0.0",
            {
                "search": EndpointSpec(
                    "search",
                    LogNormalLatency(15.0, 0.25),
                    error_rate=0.01,
                    calls=(DownstreamCall("inventory", "check"),),
                )
            },
            capacity_rps=100.0,
        )
    )
    app.deploy(
        ServiceVersion(
            "catalog",
            "2.0.0",
            {
                "search": EndpointSpec(
                    "search",
                    LogNormalLatency(13.0, 0.25),
                    error_rate=canary_error,
                    calls=(DownstreamCall("inventory", "check"),),
                )
            },
            capacity_rps=100.0,
        )
    )
    app.deploy(
        ServiceVersion(
            "inventory",
            "1.0.0",
            {"check": EndpointSpec("check", ConstantLatency(4.0))},
            capacity_rps=200.0,
        )
    )
    return app


def build_strategy(fraction: float) -> Strategy:
    return Strategy(
        name="catalog-canary",
        description="equivalence scenario",
        phases=(
            Phase(
                name="canary",
                type=PhaseType.CANARY,
                service="catalog",
                stable_version="1.0.0",
                experimental_version="2.0.0",
                fraction=fraction,
                duration_seconds=10.0,
                check_interval_seconds=2.0,
                checks=(
                    Check(
                        name="error-rate",
                        service="catalog",
                        version="2.0.0",
                        metric="error",
                        aggregation="mean",
                        operator="<=",
                        threshold=0.05,
                        window_seconds=6.0,
                    ),
                ),
            ),
        ),
    )


def make_workload(generator, kind: str):
    if kind == "poisson":
        return generator.poisson(RATE, DURATION)
    if kind == "heavy_tail":
        return generator.heavy_tail(RATE, DURATION, alpha=1.7)
    return generator.constant(1.0 / RATE, int(RATE * DURATION))


def run_scalar(params):
    canary_error, call_probability, parallel, fraction, seed, kind = params
    bifrost = Bifrost(
        build_app(canary_error, call_probability, parallel), seed=7
    )
    execution = bifrost.submit(build_strategy(fraction), at=1.0)
    population = UserPopulation(300, DEFAULT_GROUPS, seed=1)
    generator = WorkloadGenerator(population, entry="frontend.index", seed=seed)
    bifrost.run(make_workload(generator, kind), until=UNTIL)
    return bifrost, execution


def run_batch(params, record_traces: bool = False):
    from repro.simulation.batch import BatchOptions

    canary_error, call_probability, parallel, fraction, seed, kind = params
    bifrost = Bifrost(
        build_app(canary_error, call_probability, parallel), seed=7
    )
    execution = bifrost.submit(build_strategy(fraction), at=1.0)
    population = UserPopulation(300, DEFAULT_GROUPS, seed=1)
    generator = BatchWorkloadGenerator(
        population, entry="frontend.index", seed=seed
    )
    result = bifrost.run_batches(
        make_workload(generator, kind),
        until=UNTIL,
        options=BatchOptions(record_traces=record_traces),
    )
    return bifrost, execution, result


def assert_equivalent(scalar, batch) -> None:
    scalar_bifrost, scalar_execution = scalar
    batch_bifrost, batch_execution, result = batch

    assert result.requests == scalar_bifrost.runtime.requests_executed
    assert (
        batch_bifrost.runtime.requests_executed
        == scalar_bifrost.runtime.requests_executed
    )
    assert batch_bifrost.simulation.now == scalar_bifrost.simulation.now
    # Every metric series, every sample, bit for bit.
    assert batch_bifrost.store.snapshot() == scalar_bifrost.store.snapshot()
    # Same strategy trajectory: transitions, check evaluations, outcome.
    assert list(map(repr, batch_execution.transitions)) == list(
        map(repr, scalar_execution.transitions)
    )
    # duration_s is wall-clock evaluation time — non-deterministic by
    # nature, so compare every *semantic* field of each check result.
    def check_fields(log):
        return [
            (repr(r.check), r.time, r.outcome, r.observed, r.reference)
            for r in log
        ]

    assert check_fields(batch_execution.check_log) == check_fields(
        scalar_execution.check_log
    )
    assert batch_execution.outcome == scalar_execution.outcome
    assert batch_bifrost.application.stable_version(
        "catalog"
    ) == scalar_bifrost.application.stable_version("catalog")
    # Same sticky-assignment state (distinct users per variant).
    scalar_assigner = scalar_bifrost.router.assigner("catalog-canary")
    batch_assigner = batch_bifrost.router.assigner("catalog-canary")
    assert batch_assigner._counts == scalar_assigner._counts
    assert batch_assigner._seen == scalar_assigner._seen


class TestBatchEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(
        canary_error=st.sampled_from([0.0, 0.01, 0.4]),
        call_probability=st.sampled_from([1.0, 0.6]),
        parallel=st.booleans(),
        fraction=st.sampled_from([0.05, 0.1, 0.3]),
        seed=st.integers(min_value=0, max_value=2**16),
        kind=st.sampled_from(["poisson", "heavy_tail", "constant"]),
    )
    def test_batch_matches_scalar(
        self, canary_error, call_probability, parallel, fraction, seed, kind
    ):
        params = (canary_error, call_probability, parallel, fraction, seed, kind)
        assert_equivalent(run_scalar(params), run_batch(params))

    @settings(max_examples=4, deadline=None)
    @given(
        canary_error=st.sampled_from([0.0, 0.4]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_recording_mode_reproduces_traces(self, canary_error, seed):
        """With ``record_traces=True`` the kernel also rebuilds every trace
        the scalar path would have collected — same ids, same span tree,
        same timings."""
        params = (canary_error, 1.0, False, 0.1, seed, "poisson")
        scalar_bifrost, _ = run_scalar(params)
        batch_bifrost, _, result = run_batch(params, record_traces=True)

        def dump(collector):
            # Span ids come from a process-global counter, so their
            # absolute values differ between two runs; normalize to the
            # span's allocation rank within its trace (allocation ORDER
            # is part of the contract and must match exactly).
            out = []
            for trace in collector.traces():
                rank = {
                    span.span_id: i
                    for i, span in enumerate(
                        sorted(trace.spans, key=lambda s: s.span_id)
                    )
                }
                out.append(
                    (
                        trace.trace_id,
                        [
                            (
                                rank[span.span_id],
                                rank.get(span.parent_id),
                                span.service,
                                span.version,
                                span.endpoint,
                                span.start,
                                span.duration_ms,
                                span.error,
                                dict(span.tags),
                            )
                            for span in trace.spans
                        ],
                    )
                )
            return out

        assert dump(batch_bifrost.collector) == dump(scalar_bifrost.collector)
        assert result.fast_requests > 0
        assert batch_bifrost.store.snapshot() == scalar_bifrost.store.snapshot()


class TestFaultCampaignFallback:
    def test_fallback_under_active_faults_matches_scalar(self):
        """Satellite: with a fault campaign active mid-run the driver must
        detect it, fall back to the scalar path for affected slices, and
        still produce identical outcomes (the faults *happen* either way).
        """
        from repro.microservices.faults import (
            ErrorBurst,
            FaultCampaign,
            FaultInjector,
            LatencySpike,
        )

        def campaign_for(bifrost):
            campaign = FaultCampaign(FaultInjector(bifrost.application))
            campaign.add(
                ErrorBurst("catalog", "1.0.0", "search", 0.3, start=4.0, end=8.0)
            )
            campaign.add(
                LatencySpike(
                    "inventory", "1.0.0", "check", 3.0, start=6.0, end=10.0
                )
            )
            return campaign

        params = (0.0, 1.0, False, 0.1, 99, "poisson")

        scalar_bifrost = Bifrost(build_app(0.0, 1.0, False), seed=7)
        scalar_execution = scalar_bifrost.submit(build_strategy(0.1), at=1.0)
        scalar_bifrost.install_campaign(campaign_for(scalar_bifrost))
        population = UserPopulation(300, DEFAULT_GROUPS, seed=1)
        generator = WorkloadGenerator(
            population, entry="frontend.index", seed=99
        )
        scalar_bifrost.run(generator.poisson(RATE, DURATION), until=UNTIL)

        batch_bifrost = Bifrost(build_app(0.0, 1.0, False), seed=7)
        batch_execution = batch_bifrost.submit(build_strategy(0.1), at=1.0)
        batch_bifrost.install_campaign(campaign_for(batch_bifrost))
        batch_population = UserPopulation(300, DEFAULT_GROUPS, seed=1)
        batch_generator = BatchWorkloadGenerator(
            batch_population, entry="frontend.index", seed=99
        )
        result = batch_bifrost.run_batches(
            batch_generator.poisson(RATE, DURATION), until=UNTIL
        )

        # The campaign window forced scalar fallback, but traffic outside
        # the window still took the fast path.
        assert result.fallback_requests > 0
        assert result.fast_requests > 0
        assert result.fallback_reasons["fault-campaign"] > 0
        assert_equivalent(
            (scalar_bifrost, scalar_execution),
            (batch_bifrost, batch_execution, result),
        )
