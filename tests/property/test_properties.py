"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fenrir.fitness import evaluate
from repro.fenrir.model import ExperimentSpec, SchedulingProblem
from repro.fenrir.operators import pack_repair, random_schedule, repair_gene
from repro.fenrir.schedule import Gene
from repro.simulation.executor import SimulatedExecutor
from repro.simulation.rng import SeededRng
from repro.stats.descriptive import mean, median, moving_average, percentile, stddev
from repro.stats.ranking import dcg, idcg, ndcg
from repro.stats.timeseries import TimeSeries
from repro.traffic.profile import TrafficProfile, UserGroup
from repro.traffic.users import bucket_user, in_rollout

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
samples = st.lists(finite_floats, min_size=1, max_size=60)
positive_samples = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=60
)


class TestDescriptiveProperties:
    @given(samples)
    def test_mean_between_min_and_max(self, xs):
        assert min(xs) - 1e-9 <= mean(xs) <= max(xs) + 1e-9

    @given(samples)
    def test_median_between_min_and_max(self, xs):
        assert min(xs) <= median(xs) <= max(xs)

    @given(samples)
    def test_stddev_nonnegative(self, xs):
        assert stddev(xs) >= 0.0

    @given(samples, st.floats(min_value=0, max_value=100))
    def test_percentile_monotone_in_q(self, xs, q):
        lower = percentile(xs, max(0.0, q - 10))
        upper = percentile(xs, min(100.0, q + 10))
        assert lower <= upper + 1e-9

    @given(samples)
    def test_shift_invariance_of_stddev(self, xs):
        shifted = [x + 100.0 for x in xs]
        assert stddev(shifted) == pytest_approx(stddev(xs))

    @given(samples, st.integers(min_value=1, max_value=10))
    def test_moving_average_preserves_length_and_bounds(self, xs, window):
        out = moving_average(xs, window)
        assert len(out) == len(xs)
        assert all(min(xs) - 1e-9 <= v <= max(xs) + 1e-9 for v in out)


def pytest_approx(value, rel=1e-6, absolute=1e-6):
    import pytest

    return pytest.approx(value, rel=rel, abs=absolute)


class TestNdcgProperties:
    grades = st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=20,
    )

    @given(grades)
    def test_ndcg_bounded(self, relevances):
        assert 0.0 <= ndcg(relevances) <= 1.0 + 1e-12

    @given(grades)
    def test_ideal_order_scores_one(self, relevances):
        ordered = sorted(relevances, reverse=True)
        assert ndcg(ordered) == pytest_approx(1.0)

    @given(grades)
    def test_dcg_never_exceeds_idcg(self, relevances):
        assert dcg(relevances) <= idcg(relevances) + 1e-9

    @given(grades, st.integers(min_value=1, max_value=25))
    def test_truncation_monotone(self, relevances, k):
        assert dcg(relevances, k) <= dcg(relevances) + 1e-9


class TestBucketingProperties:
    user_ids = st.text(min_size=1, max_size=20)

    @given(user_ids, st.text(min_size=1, max_size=10))
    def test_bucket_stable(self, user, salt):
        assert bucket_user(user, salt) == bucket_user(user, salt)

    @given(user_ids, st.text(min_size=1, max_size=10), st.integers(1, 1000))
    def test_bucket_in_range(self, user, salt, buckets):
        assert 0 <= bucket_user(user, salt, buckets) < buckets

    @given(
        user_ids,
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_rollout_monotone_in_fraction(self, user, f1, f2):
        low, high = min(f1, f2), max(f1, f2)
        if in_rollout(user, "exp", low):
            assert in_rollout(user, "exp", high)


class TestTimeSeriesProperties:
    points = st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e4, allow_nan=False),
            finite_floats,
        ),
        min_size=1,
        max_size=50,
    )

    @given(points)
    def test_always_sorted(self, pts):
        series = TimeSeries()
        series.extend(pts)
        times = series.timestamps
        assert times == sorted(times)

    @given(points)
    def test_window_subset_of_values(self, pts):
        series = TimeSeries()
        series.extend(pts)
        window = series.window(100.0, 500.0)
        all_values = series.values
        for value in window:
            assert value in all_values

    @given(points)
    def test_full_window_returns_everything(self, pts):
        series = TimeSeries()
        series.extend(pts)
        assert len(series.window(-1.0, 1e9)) == len(pts)


class TestExecutorProperties:
    tasks = st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=5, allow_nan=False),
        ),
        min_size=1,
        max_size=40,
    )

    @given(tasks)
    def test_fifo_no_overlap_and_nonnegative_delay(self, arrivals):
        executor = SimulatedExecutor()
        previous_finish = 0.0
        for arrival, cost in sorted(arrivals, key=lambda p: p[0]):
            record = executor.submit(arrival, cost)
            assert record.delay >= 0.0
            assert record.start >= previous_finish - 1e-12
            previous_finish = record.finish

    @given(tasks)
    def test_busy_time_equals_total_cost(self, arrivals):
        executor = SimulatedExecutor()
        total = 0.0
        for arrival, cost in sorted(arrivals, key=lambda p: p[0]):
            executor.submit(arrival, cost)
            total += cost
        assert executor.busy_time == pytest_approx(total)


@st.composite
def scheduling_problems(draw):
    """Random small scheduling problems with matching traffic."""
    n_groups = draw(st.integers(min_value=1, max_value=3))
    shares = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=1.0),
            min_size=n_groups,
            max_size=n_groups,
        )
    )
    total = sum(shares)
    groups = [
        UserGroup(f"g{i}", share / total) for i, share in enumerate(shares)
    ]
    horizon = draw(st.integers(min_value=8, max_value=24))
    volume = draw(st.floats(min_value=100, max_value=5000))
    profile = TrafficProfile([volume] * horizon, groups)
    n_specs = draw(st.integers(min_value=1, max_value=4))
    specs = []
    for i in range(n_specs):
        specs.append(
            ExperimentSpec(
                name=f"e{i}",
                required_samples=draw(
                    st.floats(min_value=1.0, max_value=volume * horizon * 0.05)
                ),
                min_duration_slots=draw(st.integers(1, 2)),
                max_duration_slots=draw(st.integers(4, horizon)),
                min_traffic_fraction=0.01,
                max_traffic_fraction=draw(st.floats(0.3, 0.9)),
                earliest_start=draw(st.integers(0, horizon // 2)),
            )
        )
    return SchedulingProblem(profile, specs)


class TestFenrirProperties:
    @settings(max_examples=30, deadline=None)
    @given(scheduling_problems(), st.integers(0, 1000))
    def test_repair_gene_always_in_bounds(self, problem, seed):
        rng = SeededRng(seed)
        for spec in problem.experiments:
            wild = Gene(
                rng.randint(0, problem.horizon * 2),
                rng.randint(1, problem.horizon * 2),
                rng.uniform(1e-6, 1.0),
                frozenset({problem.profile.group_names[0]}),
            )
            repaired = repair_gene(problem, spec, wild)
            assert repaired.end <= problem.horizon
            assert repaired.duration >= spec.min_duration_slots
            assert (
                spec.min_traffic_fraction
                <= repaired.fraction
                <= spec.max_traffic_fraction
            )

    @settings(max_examples=30, deadline=None)
    @given(scheduling_problems(), st.integers(0, 1000))
    def test_pack_repair_never_oversubscribes_placed_genes(self, problem, seed):
        rng = SeededRng(seed)
        schedule = random_schedule(problem, rng, packed=False)
        packed = pack_repair(schedule, rng)
        evaluation = evaluate(packed)
        # pack_repair may fail to place genes (penalized), but whenever it
        # claims validity the schedule truly satisfies every constraint.
        if evaluation.valid:
            usage = packed.group_usage()
            assert all(v <= 1.0 + 1e-9 for v in usage.values())

    @settings(max_examples=30, deadline=None)
    @given(scheduling_problems(), st.integers(0, 1000))
    def test_evaluation_consistency(self, problem, seed):
        rng = SeededRng(seed)
        schedule = random_schedule(problem, rng)
        evaluation = evaluate(schedule)
        assert evaluation.valid == (len(evaluation.violations) == 0)
        assert 0.0 <= evaluation.fitness <= 1.0
        assert not math.isnan(evaluation.penalized)
        if evaluation.valid:
            # Strict fitness equals the weighted objective score.
            total_weight = sum(s.weight for s in problem.experiments)
            raw = sum(evaluation.per_experiment) / total_weight
            assert evaluation.fitness == pytest_approx(raw)
