"""Property-based tests: DSL round-trip and strategy model invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bifrost.dsl import parse_strategy, strategy_to_dsl
from repro.bifrost.model import (
    Check,
    Phase,
    PhaseType,
    Strategy,
)
from repro.bifrost.state_machine import StateMachine

_names = st.from_regex(r"[a-z][a-z0-9\-]{0,14}", fullmatch=True)
_versions = st.from_regex(r"[0-9]\.[0-9]\.[0-9]", fullmatch=True)
_metrics = st.sampled_from(["response_time", "error", "throughput"])
_aggregations = st.sampled_from(["mean", "median", "p95", "p99", "max"])
_operators = st.sampled_from(["<", "<=", ">", ">="])


@st.composite
def checks(draw, service: str, version: str):
    relative = draw(st.booleans())
    return Check(
        name=draw(_names),
        service=service,
        version=version,
        metric=draw(_metrics),
        aggregation=draw(_aggregations),
        operator=draw(_operators),
        threshold=None if relative else draw(
            st.floats(min_value=0.001, max_value=1e4, allow_nan=False)
        ),
        baseline_version=draw(_versions) if relative else None,
        tolerance=draw(st.floats(min_value=0.1, max_value=3.0, allow_nan=False)),
        window_seconds=draw(st.floats(min_value=1.0, max_value=600.0)),
        interval_seconds=draw(
            st.one_of(st.none(), st.floats(min_value=0.5, max_value=120.0))
        ),
    )


@st.composite
def strategies(draw):
    n_phases = draw(st.integers(min_value=1, max_value=4))
    phase_names = draw(
        st.lists(_names, min_size=n_phases, max_size=n_phases, unique=True)
    )
    service = draw(_names)
    stable = draw(_versions)
    experimental = draw(_versions)
    phases = []
    for index, name in enumerate(phase_names):
        phase_type = draw(st.sampled_from(list(PhaseType)))
        is_last = index == n_phases - 1
        on_success = "complete" if is_last else phase_names[index + 1]
        check_list = draw(
            st.lists(checks(service, experimental), max_size=3)
        )
        # Unique check names within the phase.
        seen = set()
        unique_checks = []
        for check in check_list:
            if check.name not in seen:
                seen.add(check.name)
                unique_checks.append(check)
        phases.append(
            Phase(
                name=name,
                type=phase_type,
                service=service,
                stable_version=stable,
                experimental_version=experimental,
                second_version=(
                    draw(_versions) if phase_type is PhaseType.AB_TEST else None
                ),
                fraction=draw(st.floats(min_value=0.01, max_value=0.99)),
                steps=(
                    tuple(
                        sorted(
                            draw(
                                st.lists(
                                    st.floats(min_value=0.0, max_value=1.0),
                                    min_size=1,
                                    max_size=4,
                                )
                            )
                        )
                    )
                    if phase_type is PhaseType.GRADUAL_ROLLOUT
                    else ()
                ),
                audience_groups=frozenset(
                    draw(st.lists(_names, max_size=2))
                ),
                duration_seconds=draw(st.floats(min_value=1.0, max_value=1e5)),
                check_interval_seconds=draw(st.floats(min_value=0.5, max_value=60.0)),
                checks=tuple(unique_checks),
                min_samples=draw(st.integers(min_value=0, max_value=10_000)),
                on_success=on_success,
                max_repeats=draw(st.integers(min_value=0, max_value=3)),
            )
        )
    return Strategy(name=draw(_names), phases=tuple(phases))


class TestDslRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(strategies())
    def test_round_trip_is_identity(self, strategy):
        text = strategy_to_dsl(strategy)
        again = parse_strategy(text)
        assert again == strategy

    @settings(max_examples=30, deadline=None)
    @given(strategies())
    def test_serialization_is_stable(self, strategy):
        once = strategy_to_dsl(strategy)
        twice = strategy_to_dsl(parse_strategy(once))
        assert once == twice


class TestStateMachineProperties:
    @settings(max_examples=60, deadline=None)
    @given(strategies())
    def test_every_phase_reaches_a_terminal(self, strategy):
        machine = StateMachine(strategy)
        terminals = {"complete", "rollback", "abort"}
        for phase in strategy.phases:
            # Follow success transitions; they must terminate.
            seen = set()
            current = phase.name
            while current not in terminals:
                assert current not in seen, "success path cycles"
                seen.add(current)
                current = machine.next_state(current, "success")

    @settings(max_examples=60, deadline=None)
    @given(strategies())
    def test_transitions_total(self, strategy):
        machine = StateMachine(strategy)
        for phase in strategy.phases:
            for trigger in ("success", "failure", "inconclusive"):
                target = machine.next_state(phase.name, trigger)
                assert machine.state(target) is not None
