"""Bifrost: automated enactment of multi-phase live testing (Chapter 4).

Bifrost is a middleware that executes *live testing strategies* —
experiments composed of multiple conditionally chained phases (e.g. a
canary release, then a dark launch, then an A/B test, then a gradual
rollout).  Strategies are written in a domain-specific language
("experimentation-as-code"), compiled to a state machine whose states
configure traffic routing and whose transitions are driven by periodic
health *checks* over runtime metrics; fallback transitions trigger
automated rollbacks when irregularities are spotted.

The durability layer (:mod:`repro.bifrost.journal`,
:mod:`repro.bifrost.recovery`) makes the engine itself crash-safe: every
durable decision is written ahead to a journal, folded into periodic
snapshots, and a supervisor recovers a killed engine so running
experiments survive their infrastructure.
"""

from repro.bifrost.model import (
    Action,
    Check,
    CheckOutcome,
    Phase,
    PhaseType,
    Strategy,
    StrategyOutcome,
)
from repro.bifrost.dsl import (
    parse_file,
    parse_strategies,
    parse_strategy,
    strategy_to_dsl,
)
from repro.bifrost.state_machine import StateMachine, StrategyState
from repro.bifrost.checks import CheckEvaluator
from repro.bifrost.engine import BifrostEngine, StrategyExecution
from repro.bifrost.journal import (
    FileJournalStorage,
    Journal,
    MemoryJournalStorage,
    Snapshot,
    SnapshotPolicy,
    SnapshotStore,
)
from repro.bifrost.middleware import Bifrost
from repro.bifrost.preview import LivePreview, MetricDelta
from repro.bifrost.recovery import (
    EngineSupervisor,
    RecoveryManager,
    RecoveryReport,
    RestartPolicy,
)

__all__ = [
    "Action",
    "Check",
    "CheckOutcome",
    "Phase",
    "PhaseType",
    "Strategy",
    "StrategyOutcome",
    "parse_file",
    "parse_strategies",
    "parse_strategy",
    "strategy_to_dsl",
    "StateMachine",
    "StrategyState",
    "CheckEvaluator",
    "BifrostEngine",
    "StrategyExecution",
    "FileJournalStorage",
    "Journal",
    "MemoryJournalStorage",
    "Snapshot",
    "SnapshotPolicy",
    "SnapshotStore",
    "Bifrost",
    "LivePreview",
    "MetricDelta",
    "EngineSupervisor",
    "RecoveryManager",
    "RecoveryReport",
    "RestartPolicy",
]
