"""The Bifrost middleware facade (Fig 4.4).

Wires together everything an experiment execution needs — the simulated
application, the traffic-routing proxy layer, telemetry, the simulation
kernel, and the engine — behind one object.  Callers deploy versions,
submit strategies (as objects or DSL text), and replay a workload; the
facade interleaves request execution with engine events on the shared
simulated clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.errors import ConfigurationError
from repro.bifrost.dsl import parse_strategy
from repro.bifrost.engine import BifrostEngine, EngineCosts, StrategyExecution
from repro.bifrost.journal import Journal, SnapshotPolicy, SnapshotStore
from repro.bifrost.model import EXECUTION_MODES, Strategy, StrategyOutcome
from repro.bifrost.recovery import EngineSupervisor, RestartPolicy
from repro.microservices.application import Application
from repro.microservices.faults import (
    EngineCrash,
    FaultCampaign,
    NetworkState,
    describe_fault,
)
from repro.microservices.resilience import ResilienceLayer
from repro.microservices.runtime import RequestOutcome, Runtime
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.routing.proxy import VersionRouter
from repro.simulation.clock import SimulationClock
from repro.simulation.engine import SimulationEngine
from repro.toggles.store import ToggleStore
from repro.traffic.workload import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.alerts import AlertEngine, AlertRule
    from repro.topology.graph import InteractionGraph
    from repro.topology.streaming import (
        HealthScorer,
        LiveHealthMonitor,
        StreamingGraphBuilder,
    )


class Bifrost:
    """One-stop middleware for executing live testing strategies."""

    def __init__(
        self,
        application: Application,
        seed: int = 42,
        proxy_overhead_ms: float = 2.0,
        costs: EngineCosts | None = None,
        resilience: ResilienceLayer | None = None,
        network: NetworkState | None = None,
        durable: bool = False,
        journal: Journal | None = None,
        snapshot_policy: SnapshotPolicy | None = None,
        restart_policy: RestartPolicy | None = None,
        toggles: ToggleStore | None = None,
        observer: Observer | None = None,
        mode: str = "sim",
    ) -> None:
        # The middleware *is* the SIM substrate; `mode` declares which
        # substrate this instance stands in for, so strategies that pin
        # a different execution mode in their DSL are rejected at submit
        # time instead of silently running simulated.  The other modes
        # live behind repro.exec.ExecutionRouter.
        if mode not in EXECUTION_MODES:
            raise ConfigurationError(
                f"unknown execution mode {mode!r} "
                f"(expected one of {sorted(EXECUTION_MODES)})"
            )
        self.mode = mode
        self.application = application
        self.observer = observer or NULL_OBSERVER
        self.clock = SimulationClock()
        self.simulation = SimulationEngine(self.clock)
        self.router = VersionRouter()
        self.network = network
        self.toggles = toggles
        self.runtime = Runtime(
            application,
            router=self.router,
            clock=self.clock,
            seed=seed,
            proxy_overhead_ms=proxy_overhead_ms,
            resilience=resilience,
            network=network,
        )
        durable = durable or journal is not None
        self.alert_engine: "AlertEngine | None" = None
        self.journal: Journal | None = None
        self.snapshots: SnapshotStore | None = None
        self.supervisor: EngineSupervisor | None = None
        if durable:
            self.journal = journal or Journal(observer=self.observer)
            if journal is not None and journal.obs is NULL_OBSERVER:
                journal.obs = self.observer
            self.snapshots = SnapshotStore(snapshot_policy)

            def factory() -> BifrostEngine:
                # Every (re)started engine shares the durable journal,
                # snapshot store, and surviving data plane, but gets a
                # fresh executor: a crashed engine's queued work is lost.
                engine = BifrostEngine(
                    simulation=self.simulation,
                    application=application,
                    router=self.router,
                    store=self.runtime.monitor.store,
                    costs=costs,
                    journal=self.journal,
                    snapshots=self.snapshots,
                    toggles=toggles,
                    observer=self.observer,
                )
                # The alert engine and fault campaigns survive a crash
                # (they live on the middleware, not the engine), so a
                # restarted engine's decisions keep their annotations.
                engine.alerts = self.alert_engine
                engine.active_faults_of = self._active_faults
                return engine

            self.supervisor = EngineSupervisor(
                factory,
                self.journal,
                self.snapshots,
                monitor=self.runtime.monitor,
                policy=restart_policy,
                observer=self.observer,
            )
            self._engine = None
        else:
            self._engine = BifrostEngine(
                simulation=self.simulation,
                application=application,
                router=self.router,
                store=self.runtime.monitor.store,
                costs=costs,
                toggles=toggles,
                observer=self.observer,
            )
            self._engine.active_faults_of = self._active_faults
        self.outcomes: list[RequestOutcome] = []
        self.campaigns: list[FaultCampaign] = []
        self.live_health: "LiveHealthMonitor | None" = None
        self.streaming_builder: "StreamingGraphBuilder | None" = None

    @property
    def engine(self) -> BifrostEngine:
        """The *current* engine (the supervisor's, when durable)."""
        if self.supervisor is not None:
            return self.supervisor.engine
        assert self._engine is not None
        return self._engine

    @property
    def collector(self):
        """The trace collector fed by the runtime."""
        return self.runtime.collector

    @property
    def store(self):
        """The shared metric store checks evaluate against."""
        return self.runtime.monitor.store

    @property
    def resilience(self) -> ResilienceLayer:
        """The resilience layer the runtime consults on every hop."""
        return self.runtime.resilience

    def install_campaign(self, campaign: FaultCampaign) -> int:
        """Schedule a fault campaign on the shared simulated clock.

        When the middleware runs durably, the engine supervisor is wired
        into the campaign so :class:`EngineCrash` faults have a target.
        """
        if campaign.engine is None and self.supervisor is not None:
            campaign.engine = self.supervisor
        if (
            any(isinstance(f, EngineCrash) for f in campaign.faults)
            and campaign.engine is None
        ):
            raise ConfigurationError(
                "EngineCrash faults need a durable middleware "
                "(Bifrost(durable=True)) or an explicit crash target"
            )
        self.campaigns.append(campaign)
        return campaign.install(self.simulation)

    def enable_live_health(
        self,
        baseline: "InteractionGraph | None" = None,
        window_seconds: float | None = 60.0,
        window_capacity: int = 8,
        publish_interval: float = 5.0,
        include_shadow: bool = True,
        scorer: "HealthScorer | None" = None,
    ) -> "LiveHealthMonitor":
        """Attach the streaming topology pipeline to this middleware.

        A :class:`~repro.topology.streaming.StreamingGraphBuilder`
        subscribes to the runtime's trace collector, a
        :class:`~repro.topology.streaming.LiveHealthMonitor` publishes
        ``health.score`` metrics into the shared store — which is where
        ``kind health`` checks of submitted strategies read them, closing
        the Ch. 4 ↔ Ch. 5 loop.

        Without an explicit *baseline* graph, the traces collected so
        far (e.g. a pre-experiment warmup run) are batch-built into one.
        Call before submitting strategies that carry health checks.
        """
        from repro.topology.builder import build_interaction_graph
        from repro.topology.streaming import (
            LiveHealthMonitor,
            StreamingGraphBuilder,
        )

        if baseline is None:
            baseline = build_interaction_graph(
                self.collector.traces(), name="baseline"
            )
        builder = StreamingGraphBuilder(
            include_shadow=include_shadow,
            window_seconds=window_seconds,
            window_capacity=window_capacity,
            observer=self.observer,
        ).attach(self.collector)
        monitor = LiveHealthMonitor(
            builder,
            baseline,
            self.store,
            publish_interval=publish_interval,
            scorer=scorer,
        )
        self.streaming_builder = builder
        self.live_health = monitor
        return monitor

    def _active_faults(self, now: float) -> tuple[str, ...]:
        """Labels of every installed transient fault active at *now*.

        The engine records this answer on each decision node, so a
        rollback provenance report names the fault that caused it.
        """
        labels = {
            describe_fault(fault)
            for campaign in self.campaigns
            for fault in campaign.active_at(now)
        }
        return tuple(sorted(labels))

    def enable_alerts(
        self, rules: "Iterable[AlertRule]", interval: float = 5.0
    ) -> "AlertEngine":
        """Attach a multi-window burn-rate alert engine to this middleware.

        The engine evaluates *rules* every *interval* logical seconds
        over the shared metric store, publishes each rule's burn-rate
        gate under the ``alerts`` pseudo-version — which is where
        ``kind slo`` checks of submitted strategies read it — and emits
        ``alert.fired`` / ``alert.resolved`` events into the glass box.
        Firing rules annotate every engine decision node; on a durable
        middleware, restarted engines re-wire themselves to the same
        alert engine.  Call before submitting strategies with slo checks.
        """
        from repro.obs.alerts import AlertEngine

        if self.alert_engine is not None:
            raise ConfigurationError("alerts already enabled on this middleware")
        engine = AlertEngine(
            self.store, rules, observer=self.observer, interval=interval
        )
        engine.attach(self.simulation)
        self.alert_engine = engine
        self.engine.alerts = engine
        return engine

    def submit(self, strategy: Strategy | str, at: float | None = None) -> StrategyExecution:
        """Submit a strategy object or DSL text for execution.

        A strategy that pins a different execution mode in its DSL
        (``mode live`` on a plain simulated middleware, say) is rejected
        — running it here would silently substitute the simulator for
        the substrate the author asked for.  Strategies with the default
        ``mode sim`` run on any substrate; route mode-pinned strategies
        through :class:`repro.exec.ExecutionRouter`.
        """
        if isinstance(strategy, str):
            strategy = parse_strategy(strategy)
        if strategy.execution_mode not in ("sim", self.mode):
            raise ConfigurationError(
                f"strategy {strategy.name!r} pins execution mode "
                f"{strategy.execution_mode!r} but this middleware is the "
                f"{self.mode!r} substrate; run it via "
                "repro.exec.ExecutionRouter"
            )
        return self.engine.submit(strategy, at=at)

    def run(self, workload: Iterable[Request], until: float | None = None) -> list[RequestOutcome]:
        """Replay *workload*, interleaving engine events by timestamp.

        Returns the request outcomes of this run (also appended to
        :attr:`outcomes`).  With *until*, the engine keeps running after
        the workload drains — e.g. to let strategies finish.
        """
        produced: list[RequestOutcome] = []
        for request in workload:
            self.simulation.run_until(max(request.timestamp, self.simulation.now))
            outcome = self.runtime.execute(request)
            produced.append(outcome)
        if until is not None:
            self.simulation.run_until(until)
        self.outcomes.extend(produced)
        return produced

    def run_batches(
        self,
        batches: "Iterable",
        until: float | None = None,
        options=None,
    ):
        """Replay columnar request batches through the batch kernel.

        The high-throughput sibling of :meth:`run`: takes
        :class:`~repro.traffic.batch.RequestBatch` chunks (from a
        :class:`~repro.traffic.batch.BatchWorkloadGenerator`) and returns
        a :class:`~repro.simulation.batch.BatchRunResult`.  Engine events
        interleave with requests exactly as in :meth:`run`; slices the
        fast path cannot reproduce bit-identically (active fault
        campaigns, resilience policies, shadow routes, ...) fall back to
        the scalar path automatically.  Unlike :meth:`run`, per-request
        outcomes are not retained — see ``docs/PERF_KERNEL.md``.
        """
        from repro.simulation.batch import run_batches

        return run_batches(
            self.simulation,
            self.runtime,
            batches,
            until=until,
            campaigns=tuple(self.campaigns),
            options=options,
        )

    def run_until_settled(
        self,
        workload_factory,
        chunk_seconds: float = 60.0,
        max_seconds: float = 86_400.0,
    ) -> list[RequestOutcome]:
        """Drive chunks of workload until every strategy finished.

        *workload_factory(start, duration)* must return an iterable of
        requests covering ``[start, start + duration)``.
        """
        produced: list[RequestOutcome] = []
        while self.engine.running_count() and self.simulation.now < max_seconds:
            start = self.simulation.now
            chunk = workload_factory(start, chunk_seconds)
            # run() already records the outcomes on self.outcomes.
            produced.extend(self.run(chunk, until=start + chunk_seconds))
        return produced

    def outcome_of(self, strategy_name: str) -> StrategyOutcome:
        """Terminal (or running) status of a submitted strategy."""
        for execution in self.engine.executions:
            if execution.strategy.name == strategy_name:
                return execution.outcome
        raise KeyError(f"no strategy named {strategy_name!r} submitted")
