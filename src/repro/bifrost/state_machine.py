"""Compiling strategies to explicit state machines (Section 4.3.2).

Every phase becomes a state; the built-in terminals (``complete``,
``rollback``, ``abort``) are always present.  Transitions are labelled by
the triggering check outcome.  The compiled machine powers both the
engine's dispatch and the Fig 4.2-style visualization via :meth:`to_dot`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import DSLError
from repro.bifrost.model import (
    REPEAT,
    TERMINAL_STATES,
    Strategy,
)


@dataclass(frozen=True)
class StrategyState:
    """One state of the compiled machine."""

    name: str
    terminal: bool
    phase_name: str | None = None


@dataclass(frozen=True)
class Transition:
    """A labelled edge of the machine."""

    source: str
    target: str
    trigger: str  # "success" | "failure" | "inconclusive"


class StateMachine:
    """The compiled transition structure of one strategy."""

    def __init__(self, strategy: Strategy) -> None:
        self.strategy = strategy
        self._states: dict[str, StrategyState] = {}
        self._transitions: list[Transition] = []
        for terminal in sorted(TERMINAL_STATES):
            self._states[terminal] = StrategyState(terminal, terminal=True)
        for phase in strategy.phases:
            self._states[phase.name] = StrategyState(
                phase.name, terminal=False, phase_name=phase.name
            )
        for phase in strategy.phases:
            for trigger, target in (
                ("success", phase.on_success),
                ("failure", phase.on_failure),
                ("inconclusive", phase.on_inconclusive),
            ):
                resolved = phase.name if target == REPEAT else target
                self._transitions.append(Transition(phase.name, resolved, trigger))
        unreachable = self._unreachable_phases()
        if unreachable:
            raise DSLError(
                f"strategy {strategy.name!r}: phases unreachable from entry: "
                f"{sorted(unreachable)}"
            )

    def _unreachable_phases(self) -> set[str]:
        reachable = {self.strategy.entry.name}
        frontier = [self.strategy.entry.name]
        outgoing: dict[str, list[str]] = {}
        for transition in self._transitions:
            outgoing.setdefault(transition.source, []).append(transition.target)
        while frontier:
            state = frontier.pop()
            for target in outgoing.get(state, []):
                if target not in reachable:
                    reachable.add(target)
                    frontier.append(target)
        return {p.name for p in self.strategy.phases} - reachable

    @property
    def states(self) -> list[StrategyState]:
        """All states (phases + terminals)."""
        return list(self._states.values())

    @property
    def transitions(self) -> list[Transition]:
        """All labelled transitions."""
        return list(self._transitions)

    def has_state(self, name: str) -> bool:
        """Whether *name* is a known phase or terminal state.

        Recovery uses this to validate state names read back from
        snapshots and journals before trusting them.
        """
        return name in self._states

    def state(self, name: str) -> StrategyState:
        """Look up a state by name."""
        try:
            return self._states[name]
        except KeyError:
            raise DSLError(
                f"strategy {self.strategy.name!r} has no state {name!r}"
            ) from None

    def next_state(self, phase_name: str, trigger: str) -> str:
        """Target of the *trigger* transition out of *phase_name*."""
        for transition in self._transitions:
            if transition.source == phase_name and transition.trigger == trigger:
                return transition.target
        raise DSLError(
            f"no {trigger!r} transition out of {phase_name!r} in "
            f"{self.strategy.name!r}"
        )

    def to_dot(
        self, taken: "Iterable[tuple[str, str, str]] | None" = None
    ) -> str:
        """Graphviz rendering of the machine (cf. Fig 4.2).

        Phases gated by a topology-health check are badged with a ♥ so
        the closed execution↔analysis loop is visible in the diagram.

        *taken* is an optional iterable of ``(source, target, trigger)``
        triples — e.g. derived from an execution's transition log or a
        glass-box timeline — whose edges are rendered bold so a run's
        actual path through the machine stands out from the possible one.
        """
        health_gated = {
            phase.name
            for phase in self.strategy.phases
            if any(check.kind == "health" for check in phase.checks)
        }
        traversed = set(taken) if taken is not None else set()
        lines = [f'digraph "{self.strategy.name}" {{']
        for state in self._states.values():
            shape = "doublecircle" if state.terminal else "box"
            if state.name in health_gated:
                lines.append(
                    f'  "{state.name}" [shape={shape}, '
                    f'label="{state.name}\\n[health-gated]"];'
                )
                continue
            lines.append(f'  "{state.name}" [shape={shape}];')
        for transition in self._transitions:
            key = (transition.source, transition.target, transition.trigger)
            style = ', penwidth=2.5, style=bold, color="#1f6feb"' if key in traversed else ""
            lines.append(
                f'  "{transition.source}" -> "{transition.target}" '
                f'[label="{transition.trigger}"{style}];'
            )
        lines.append("}")
        return "\n".join(lines)
