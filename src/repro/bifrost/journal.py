"""The write-ahead journal and snapshot layer of the Bifrost engine.

A live experiment is a long-running state machine; losing the engine
process must not lose the experiment.  The engine therefore appends one
JSON record per durable decision — strategy submissions, phase entries,
check-evaluation rounds, transitions, route installations, finalizations
— to an append-only :class:`Journal` *before* acting on it, and
periodically folds the accumulated records into a compact
:class:`Snapshot` (engine executions, metric/toggle store contents,
installed routes).  Recovery (:mod:`repro.bifrost.recovery`) restores the
latest snapshot and replays the journal suffix.

Records carry a schema version so old journals stay readable; loading
tolerates a truncated or corrupt tail (the signature of a crash mid
write) by dropping everything from the first undecodable line on rather
than failing the whole recovery.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Mapping, Protocol

from repro.bifrost.engine import StrategyExecution, TransitionRecord
from repro.bifrost.checks import CheckResult
from repro.bifrost.model import (
    Action,
    CheckOutcome,
    StrategyOutcome,
    check_from_dict,
    check_to_dict,
    strategy_from_dict,
    strategy_to_dict,
)
from repro.bifrost.state_machine import StateMachine
from repro.errors import ValidationError
from repro.obs.events import JOURNAL_APPEND, JOURNAL_COMPACT, JOURNAL_SNAPSHOT
from repro.obs.observer import NULL_OBSERVER, Observer

#: Version of the journal/snapshot record schema.  Bump on incompatible
#: layout changes; loaders reject records from *newer* schemas only.
SCHEMA_VERSION = 1

# Record kinds the engine emits (the durable vocabulary of Section 4.4's
# execution engine).
SUBMITTED = "submitted"
PHASE_ENTERED = "phase_entered"
TICK = "tick"
ROLLOUT = "rollout"
WINNER = "winner"
TRANSITION = "transition"
ROUTE = "route"
FINALIZED = "finalized"
RECOVERED = "recovered"


@dataclass(frozen=True)
class JournalRecord:
    """One durable engine decision.

    Attributes:
        lsn: log sequence number, strictly increasing per journal.
        kind: record kind (one of the module-level constants).
        time: simulated time the decision was taken at.
        data: kind-specific JSON-compatible payload.
    """

    lsn: int
    kind: str
    time: float
    data: dict


class JournalStorage(Protocol):
    """Durable medium a journal appends lines to.

    The storage outlives the engine — that is the whole point: an
    in-simulation engine crash discards the engine object but keeps its
    storage (and a process crash keeps a file-backed storage).
    """

    def append_line(self, line: str) -> None:
        """Durably append one encoded record line."""
        ...  # pragma: no cover - protocol

    def read_lines(self) -> list[str]:
        """All stored lines in append order."""
        ...  # pragma: no cover - protocol

    def rewrite(self, lines: list[str]) -> None:
        """Atomically replace the stored lines (compaction)."""
        ...  # pragma: no cover - protocol


class MemoryJournalStorage:
    """In-memory storage — the default for simulated crash/recovery.

    ``lines`` is deliberately public so fault-injection tests can
    truncate or corrupt the tail the way a real torn write would.
    """

    def __init__(self) -> None:
        self.lines: list[str] = []

    def append_line(self, line: str) -> None:
        """Append one line."""
        self.lines.append(line)

    def read_lines(self) -> list[str]:
        """All lines in append order."""
        return list(self.lines)

    def rewrite(self, lines: list[str]) -> None:
        """Replace the stored lines."""
        self.lines = list(lines)


class FileJournalStorage:
    """Newline-delimited JSON file storage (flushed per append)."""

    def __init__(self, path: str) -> None:
        self.path = path

    def append_line(self, line: str) -> None:
        """Append one line and flush it to the OS."""
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def read_lines(self) -> list[str]:
        """All lines currently in the file."""
        if not os.path.exists(self.path):
            return []
        with open(self.path, "r", encoding="utf-8") as handle:
            return [line for line in handle.read().splitlines() if line]

    def rewrite(self, lines: list[str]) -> None:
        """Rewrite the file via a temp file + rename (crash-safe)."""
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + ("\n" if lines else ""))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)


def encode_record(record: JournalRecord) -> str:
    """Encode one record as a single JSON line."""
    return json.dumps(
        {
            "v": SCHEMA_VERSION,
            "lsn": record.lsn,
            "kind": record.kind,
            "time": record.time,
            "data": record.data,
        },
        separators=(",", ":"),
        sort_keys=True,
    )


def decode_record(line: str) -> JournalRecord:
    """Decode one JSON line; raises :class:`ValidationError` when torn."""
    try:
        doc = json.loads(line)
        version = doc["v"]
        if not isinstance(version, int) or version > SCHEMA_VERSION:
            raise ValidationError(
                f"journal record schema {version!r} is newer than "
                f"supported {SCHEMA_VERSION}"
            )
        return JournalRecord(
            lsn=int(doc["lsn"]),
            kind=str(doc["kind"]),
            time=float(doc["time"]),
            data=dict(doc["data"]),
        )
    except ValidationError:
        raise
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise ValidationError(f"undecodable journal record: {exc}") from exc


class Journal:
    """Append-only write-ahead log of engine decisions."""

    def __init__(
        self,
        storage: JournalStorage | None = None,
        observer: "Observer | None" = None,
    ) -> None:
        self.storage = storage or MemoryJournalStorage()
        self.obs = observer or NULL_OBSERVER
        records, _ = self.load()
        self._next_lsn = (records[-1].lsn + 1) if records else 1

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record (0 when empty)."""
        return self._next_lsn - 1

    def append(self, kind: str, time: float, data: dict) -> JournalRecord:
        """Durably append one record and return it."""
        record = JournalRecord(self._next_lsn, kind, time, data)
        self.storage.append_line(encode_record(record))
        self._next_lsn += 1
        if self.obs.enabled:
            self.obs.emit(JOURNAL_APPEND, time, record=kind, lsn=record.lsn)
            self.obs.metrics.counter(
                "journal_appends_total", kind=kind
            ).increment()
        return record

    def load(self) -> tuple[list[JournalRecord], int]:
        """Decode the journal, tolerating a corrupt or truncated tail.

        Returns ``(records, dropped)``: a crash mid-append leaves a torn
        last line; anything from the first undecodable line on is
        dropped (a WAL cannot trust records past a gap), and recovery
        resumes from the last good record.
        """
        lines = self.storage.read_lines()
        records: list[JournalRecord] = []
        for index, line in enumerate(lines):
            try:
                record = decode_record(line)
            except ValidationError:
                return records, len(lines) - index
            if records and record.lsn <= records[-1].lsn:
                # Out-of-order LSNs mean the tail was rewritten or
                # interleaved — treat like corruption from here on.
                return records, len(lines) - index
            records.append(record)
        return records, 0

    def records(self) -> list[JournalRecord]:
        """All decodable records (corrupt tail silently dropped)."""
        return self.load()[0]

    def records_after(self, lsn: int) -> tuple[list[JournalRecord], int]:
        """Records with ``record.lsn > lsn`` plus the dropped-tail count."""
        records, dropped = self.load()
        return [r for r in records if r.lsn > lsn], dropped

    def truncate_corrupt_tail(self) -> int:
        """Physically drop the undecodable tail, if any.

        Recovery must do this before appending: a torn line left in the
        storage would make every record written after it unreachable on
        the next load.  Returns how many lines were removed.
        """
        records, dropped = self.load()
        if dropped:
            self.storage.rewrite([encode_record(r) for r in records])
            self._next_lsn = (records[-1].lsn + 1) if records else 1
        return dropped

    def compact(self, upto_lsn: int) -> int:
        """Drop records with ``lsn <= upto_lsn`` (folded into a snapshot).

        Returns how many records were removed.  The journal keeps its LSN
        counter, so post-compaction appends stay monotonic.
        """
        records, _ = self.load()
        keep = [r for r in records if r.lsn > upto_lsn]
        removed = len(records) - len(keep)
        if removed:
            self.storage.rewrite([encode_record(r) for r in keep])
            if self.obs.enabled:
                self.obs.emit(
                    JOURNAL_COMPACT,
                    records[-1].time if records else 0.0,
                    upto_lsn=upto_lsn,
                    removed=removed,
                    kept=len(keep),
                )
        return removed


# -- snapshots --------------------------------------------------------------


@dataclass(frozen=True)
class SnapshotPolicy:
    """When the engine folds the journal into a snapshot.

    Attributes:
        every_records: take a snapshot after this many journal appends
            (0 disables periodic snapshots).
        compact: whether to drop journal records a snapshot covers.
    """

    every_records: int = 25
    compact: bool = False


@dataclass(frozen=True)
class Snapshot:
    """A compact checkpoint of the whole engine state.

    Attributes:
        schema_version: layout version (see :data:`SCHEMA_VERSION`).
        time: simulated time the snapshot was taken at.
        last_lsn: last journal record folded into this snapshot.
        executions: serialized :class:`StrategyExecution` states.
        metrics: :meth:`MetricStore.snapshot` contents.
        toggles: :meth:`ToggleStore.snapshot` contents (None when the
            engine has no toggle store wired).
        routes: installed experiment routes, for audit and for full
            process recovery.
    """

    schema_version: int
    time: float
    last_lsn: int
    executions: tuple[dict, ...]
    metrics: dict | None
    toggles: dict | None
    routes: tuple[dict, ...]


def snapshot_to_dict(snapshot: Snapshot) -> dict:
    """Serialize a snapshot to JSON-compatible primitives."""
    return {
        "schema_version": snapshot.schema_version,
        "time": snapshot.time,
        "last_lsn": snapshot.last_lsn,
        "executions": list(snapshot.executions),
        "metrics": snapshot.metrics,
        "toggles": snapshot.toggles,
        "routes": list(snapshot.routes),
    }


def snapshot_from_dict(data: Mapping) -> Snapshot:
    """Rebuild a snapshot, rejecting newer-schema documents."""
    try:
        version = data["schema_version"]
        if not isinstance(version, int) or version > SCHEMA_VERSION:
            raise ValidationError(
                f"snapshot schema {version!r} is newer than supported "
                f"{SCHEMA_VERSION}"
            )
        return Snapshot(
            schema_version=version,
            time=float(data["time"]),
            last_lsn=int(data["last_lsn"]),
            executions=tuple(data["executions"]),
            metrics=data["metrics"],
            toggles=data["toggles"],
            routes=tuple(data["routes"]),
        )
    except ValidationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(f"malformed snapshot document: {exc}") from exc


class SnapshotStore:
    """Holds the latest snapshot and decides when the next one is due."""

    def __init__(self, policy: SnapshotPolicy | None = None) -> None:
        self.policy = policy or SnapshotPolicy()
        self.latest: Snapshot | None = None
        self.taken = 0
        self._appends_since = 0

    def note_append(self) -> bool:
        """Count one journal append; True when a snapshot is now due."""
        if self.policy.every_records <= 0:
            return False
        self._appends_since += 1
        return self._appends_since >= self.policy.every_records

    def save(self, snapshot: Snapshot) -> None:
        """Install *snapshot* as the latest checkpoint."""
        self.latest = snapshot
        self.taken += 1
        self._appends_since = 0


# -- execution (de)serialization -------------------------------------------


def _check_result_to_dict(result: CheckResult) -> dict:
    return {
        "check": check_to_dict(result.check),
        "time": result.time,
        "outcome": result.outcome.value,
        "observed": result.observed,
        "reference": result.reference,
    }


def _check_result_from_dict(data: Mapping) -> CheckResult:
    return CheckResult(
        check=check_from_dict(data["check"]),
        time=data["time"],
        outcome=CheckOutcome(data["outcome"]),
        observed=data["observed"],
        reference=data["reference"],
    )


def _transition_to_dict(record: TransitionRecord) -> dict:
    return {
        "time": record.time,
        "source": record.source,
        "target": record.target,
        "trigger": record.trigger,
        "action": record.action.value,
    }


def _transition_from_dict(data: Mapping) -> TransitionRecord:
    return TransitionRecord(
        time=data["time"],
        source=data["source"],
        target=data["target"],
        trigger=data["trigger"],
        action=Action(data["action"]),
    )


def execution_to_dict(execution: StrategyExecution) -> dict:
    """Serialize the full mutable state of one strategy execution."""
    return {
        "strategy": strategy_to_dict(execution.strategy),
        "state": execution.state,
        "started_at": execution.started_at,
        "phase_started_at": execution.phase_started_at,
        "outcome": execution.outcome.value,
        "repeats": dict(execution.repeats),
        "transitions": [_transition_to_dict(t) for t in execution.transitions],
        "check_log": [_check_result_to_dict(r) for r in execution.check_log],
        "winner": execution.winner,
        "rollout_step": execution.rollout_step,
        "finished_at": execution.finished_at,
        "check_next_due": dict(execution.check_next_due),
        "check_last": {
            name: outcome.value for name, outcome in execution.check_last.items()
        },
        "phase_first_entered": dict(execution.phase_first_entered),
        "evaluation_errors": execution.evaluation_errors,
        "deadline_exceeded": execution.deadline_exceeded,
        "last_tick_at": execution.last_tick_at,
        "phase_entries": execution.phase_entries,
    }


def execution_from_dict(data: Mapping) -> StrategyExecution:
    """Rebuild a strategy execution from :func:`execution_to_dict` output.

    The state machine is recompiled from the strategy, and the restored
    state name is validated against it — a corrupt snapshot must surface
    as :class:`ValidationError`, not as an engine crash later.
    """
    try:
        strategy = strategy_from_dict(data["strategy"])
        machine = StateMachine(strategy)
        state = data["state"]
        if not machine.has_state(state):
            raise ValidationError(
                f"snapshot of {strategy.name!r} references unknown state "
                f"{state!r}"
            )
        return StrategyExecution(
            strategy=strategy,
            machine=machine,
            state=state,
            started_at=data["started_at"],
            phase_started_at=data["phase_started_at"],
            outcome=StrategyOutcome(data["outcome"]),
            repeats=dict(data["repeats"]),
            transitions=[_transition_from_dict(t) for t in data["transitions"]],
            check_log=[_check_result_from_dict(r) for r in data["check_log"]],
            winner=data["winner"],
            rollout_step=data["rollout_step"],
            finished_at=data["finished_at"],
            check_next_due=dict(data["check_next_due"]),
            check_last={
                name: CheckOutcome(value)
                for name, value in data["check_last"].items()
            },
            phase_first_entered=dict(data["phase_first_entered"]),
            evaluation_errors=data["evaluation_errors"],
            deadline_exceeded=data["deadline_exceeded"],
            last_tick_at=data["last_tick_at"],
            phase_entries=data["phase_entries"],
        )
    except ValidationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(f"malformed execution document: {exc}") from exc
