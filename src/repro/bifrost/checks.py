"""Evaluating checks against the metric store.

Checks read a trailing window of telemetry ending at the evaluation time.
A window without data yields :data:`CheckOutcome.INCONCLUSIVE` — the
engine then re-executes phases instead of deciding on no evidence
(Section 4.3.2's time-based check execution, Fig 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter

from repro.bifrost.model import Check, CheckOutcome
from repro.telemetry.store import MetricStore, aggregate_values


@dataclass(frozen=True)
class CheckResult:
    """One evaluation of one check.

    ``duration_s`` is the real (wall-clock) evaluation cost and
    ``samples`` the number of window samples the observation aggregated;
    both are captured for the glass-box layer (evidence records) and
    excluded from equality so results rebuilt from the journal compare
    equal to the originals.
    """

    check: Check
    time: float
    outcome: CheckOutcome
    observed: float | None
    reference: float | None
    duration_s: float | None = field(default=None, compare=False)
    samples: int | None = field(default=None, compare=False)

    def describe(self) -> str:
        """Human-readable one-liner for execution logs."""
        observed = "n/a" if self.observed is None else f"{self.observed:.3f}"
        reference = "n/a" if self.reference is None else f"{self.reference:.3f}"
        return (
            f"[{self.time:9.1f}s] {self.check.name}: {self.outcome.value} "
            f"(observed={observed} {self.check.operator} reference={reference})"
        )


class CheckEvaluator:
    """Evaluates checks on a shared :class:`MetricStore`."""

    def __init__(self, store: MetricStore) -> None:
        self.store = store

    def evaluate(self, check: Check, now: float) -> CheckResult:
        """Evaluate *check* on the half-open window ``[now - window, now)``.

        Health checks (``kind="health"``) need no special handling here:
        construction normalized them to threshold checks over the
        ``health.score`` stream the live topology pipeline publishes
        (:class:`~repro.topology.streaming.LiveHealthMonitor`), so they
        share the windowing, inconclusive, and comparison semantics of
        plain metric checks.

        The returned result carries the real evaluation duration in
        :attr:`CheckResult.duration_s`.
        """
        t0 = perf_counter()
        result = self._evaluate(check, now)
        return replace(result, duration_s=perf_counter() - t0)

    def _evaluate(self, check: Check, now: float) -> CheckResult:
        start = now - check.window_seconds
        values = self.store.values_in_window(
            check.service, check.version, check.metric, start, now
        )
        samples = len(values)
        observed = aggregate_values(check.aggregation, values)
        if observed is None:
            return CheckResult(
                check, now, CheckOutcome.INCONCLUSIVE, None, None, samples=samples
            )
        if check.is_relative:
            baseline = self.store.aggregate(
                check.service,
                check.baseline_version or "",
                check.metric,
                check.aggregation,
                start,
                now,
            )
            if baseline is None:
                return CheckResult(
                    check,
                    now,
                    CheckOutcome.INCONCLUSIVE,
                    observed,
                    None,
                    samples=samples,
                )
            reference = baseline * check.tolerance
        else:
            assert check.threshold is not None
            reference = check.threshold * check.tolerance
        outcome = (
            CheckOutcome.PASS
            if check.compare(observed, reference)
            else CheckOutcome.FAIL
        )
        return CheckResult(check, now, outcome, observed, reference, samples=samples)

    def evaluate_all(self, checks: tuple[Check, ...], now: float) -> list[CheckResult]:
        """Evaluate every check at time *now*."""
        return [self.evaluate(check, now) for check in checks]
