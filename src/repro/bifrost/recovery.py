"""Rebuilding a Bifrost engine from snapshot + journal replay.

Recovery is split in two: the :class:`RecoveryManager` performs *pure*
state reconstruction — restore the latest snapshot, then fold every
journal record after it back into :class:`StrategyExecution` objects,
with no side effects — and then hands the rebuilt executions to
:meth:`BifrostEngine.adopt`, which resumes them live (re-installing
routes exactly once, re-arming deadlines from first-entry times, and
replaying decision points missed during the outage at their original
logical timestamps).

The :class:`EngineSupervisor` sits above both: it owns the current
engine object, kills it when an :class:`~repro.microservices.faults.EngineCrash`
fault fires, and — within a bounded :class:`RestartPolicy` — builds a
fresh engine and recovers it.  Every crash, restart, and refusal is
surfaced as a ``durability.*`` metric through the telemetry monitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.bifrost.checks import CheckResult
from repro.bifrost.engine import BifrostEngine, StrategyExecution, TransitionRecord
from repro.bifrost.journal import (
    FINALIZED,
    PHASE_ENTERED,
    RECOVERED,
    ROLLOUT,
    SUBMITTED,
    TICK,
    TRANSITION,
    WINNER,
    Journal,
    JournalRecord,
    SnapshotStore,
    execution_from_dict,
)
from repro.bifrost.model import (
    TERMINAL_STATES,
    Action,
    CheckOutcome,
    StrategyOutcome,
    check_from_dict,
    strategy_from_dict,
)
from repro.bifrost.state_machine import StateMachine
from repro.errors import ValidationError
from repro.obs.events import (
    RECOVERY_CRASH,
    RECOVERY_REFUSED,
    RECOVERY_REPLAYED,
    RECOVERY_RESTART,
    RECOVERY_RESTART_FAILED,
)
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.telemetry.monitor import Monitor

_OUTCOME_FOR_ACTION = {
    Action.PROMOTE: StrategyOutcome.COMPLETED,
    Action.ROLLBACK: StrategyOutcome.ROLLED_BACK,
    Action.ABORT: StrategyOutcome.ABORTED,
}


@dataclass(frozen=True)
class RecoveryReport:
    """What one recovery pass found and did.

    Attributes:
        snapshot_restored: whether a snapshot seeded the reconstruction.
        snapshot_time: simulated time of that snapshot (None without one).
        records_replayed: journal records folded in after the snapshot.
        records_dropped: corrupt/truncated tail lines that were discarded.
        executions_recovered: executions handed back to the engine.
        inflight: strategies whose phase outcome was in flight at crash
            time (degraded to inconclusive and re-executed).
    """

    snapshot_restored: bool
    snapshot_time: float | None
    records_replayed: int
    records_dropped: int
    executions_recovered: int
    inflight: tuple[str, ...]


class RecoveryManager:
    """Rebuilds engine state from durable storage and resumes it."""

    def __init__(
        self,
        journal: Journal,
        snapshots: SnapshotStore | None = None,
        monitor: Monitor | None = None,
        observer: Observer | None = None,
    ) -> None:
        self.journal = journal
        self.snapshots = snapshots
        self.monitor = monitor
        self.obs = observer or NULL_OBSERVER

    def recover(
        self, engine: BifrostEngine, restore_stores: bool = False
    ) -> RecoveryReport:
        """Reconstruct executions into *engine* and resume them.

        With ``restore_stores`` the snapshot's metric/toggle contents are
        loaded back into the engine's stores — needed for full process
        recovery, redundant (and off by default) for an in-simulation
        crash where the data plane survived.
        """
        snapshot = self.snapshots.latest if self.snapshots is not None else None
        executions: dict[str, StrategyExecution] = {}
        base_lsn = 0
        if snapshot is not None:
            base_lsn = snapshot.last_lsn
            for doc in snapshot.executions:
                execution = execution_from_dict(doc)
                executions[execution.strategy.name] = execution
            if restore_stores:
                if snapshot.metrics is not None:
                    engine.store.restore(snapshot.metrics)
                if snapshot.toggles is not None and engine.toggles is not None:
                    engine.toggles.restore(snapshot.toggles)
        records, dropped = self.journal.records_after(base_lsn)
        if dropped:
            # Repair the file: a torn line left in place would make every
            # record appended after it unreachable on the next load.
            self.journal.truncate_corrupt_tail()
        pending: dict[str, tuple[str, float]] = {}
        for record in records:
            self._apply(record, executions, pending)
        for name, (target, time) in pending.items():
            # A transition made it to the journal but the phase entry it
            # must have caused did not (torn tail): enter the phase now
            # so the resumed execution does not re-run the old one.
            self._enter(executions[name], target, time)
        now = engine.simulation.now
        self.journal.append(
            RECOVERED,
            now,
            {
                "snapshot_lsn": base_lsn,
                "records_replayed": len(records),
                "records_dropped": dropped,
                "executions": sorted(executions),
            },
        )
        inflight = engine.adopt(list(executions.values()))
        if self.obs.enabled:
            self.obs.emit(
                RECOVERY_REPLAYED,
                now,
                snapshot_restored=snapshot is not None,
                records_replayed=len(records),
                records_dropped=dropped,
                executions=len(executions),
                inflight=sorted(inflight),
            )
            self.obs.metrics.counter("recovery_records_replayed_total").increment(
                len(records)
            )
        if self.monitor is not None:
            self.monitor.observe_durability("recovered", now)
            self.monitor.observe_durability(
                "records_replayed", now, float(len(records))
            )
            if dropped:
                self.monitor.observe_durability(
                    "records_dropped", now, float(dropped)
                )
            if inflight:
                self.monitor.observe_durability(
                    "inflight_inconclusive", now, float(len(inflight))
                )
        return RecoveryReport(
            snapshot_restored=snapshot is not None,
            snapshot_time=snapshot.time if snapshot is not None else None,
            records_replayed=len(records),
            records_dropped=dropped,
            executions_recovered=len(executions),
            inflight=tuple(inflight),
        )

    # -- pure journal folding ----------------------------------------------

    def _apply(
        self,
        record: JournalRecord,
        executions: dict[str, StrategyExecution],
        pending: dict[str, tuple[str, float]],
    ) -> None:
        """Fold one journal record into the reconstructed state."""
        kind, data = record.kind, record.data
        if kind == SUBMITTED:
            strategy = strategy_from_dict(data["strategy"])
            start = float(data["start"])
            executions[strategy.name] = StrategyExecution(
                strategy=strategy,
                machine=StateMachine(strategy),
                state=strategy.entry.name,
                started_at=start,
                phase_started_at=start,
            )
            return
        if kind == RECOVERED:
            return
        name = data.get("strategy")
        execution = executions.get(name) if name is not None else None
        if execution is None:
            raise ValidationError(
                f"journal record {record.lsn} ({kind}) references unknown "
                f"strategy {name!r}"
            )
        if kind == PHASE_ENTERED:
            pending.pop(name, None)
            self._enter(execution, data["phase"], record.time)
        elif kind == TICK:
            execution.last_tick_at = record.time
            execution.evaluation_errors += int(data["errors"])
            for entry in data["checks"]:
                check = check_from_dict(entry["check"])
                outcome = CheckOutcome(entry["outcome"])
                execution.check_log.append(
                    CheckResult(
                        check,
                        record.time,
                        outcome,
                        entry["observed"],
                        entry["reference"],
                    )
                )
                execution.check_last[check.name] = outcome
                execution.check_next_due[check.name] = float(entry["next_due"])
        elif kind == ROLLOUT:
            execution.rollout_step = int(data["step"])
        elif kind == WINNER:
            execution.winner = data["version"]
        elif kind == TRANSITION:
            source = data["source"]
            target = data["target"]
            trigger = data["trigger"]
            action = Action(data["action"])
            execution.transitions.append(
                TransitionRecord(record.time, source, target, trigger, action)
            )
            if action is Action.REPEAT:
                execution.repeats[source] = execution.repeats.get(source, 0) + 1
            if trigger == "deadline":
                execution.deadline_exceeded = source
            if target in TERMINAL_STATES:
                execution.state = target
                execution.finished_at = record.time
                execution.outcome = _OUTCOME_FOR_ACTION.get(
                    action, StrategyOutcome.ABORTED
                )
            else:
                # The matching phase_entered record normally follows
                # immediately; track it so a torn tail can be repaired.
                pending[name] = (target, record.time)
        elif kind == FINALIZED:
            pending.pop(name, None)
            execution.state = data["terminal"]
            execution.outcome = StrategyOutcome(data["outcome"])
            execution.finished_at = record.time
        # ROUTE records carry no execution state: routes live in the data
        # plane, which survives an engine crash; adopt() re-installs them
        # for resumed phases regardless.

    @staticmethod
    def _enter(execution: StrategyExecution, phase_name: str, time: float) -> None:
        """Apply the state effects of entering a phase (replay-side twin
        of the engine's ``_enter_phase``, without any side effects)."""
        execution.state = phase_name
        execution.phase_started_at = time
        execution.rollout_step = -1
        execution.check_next_due = {}
        execution.check_last = {}
        execution.last_tick_at = None
        execution.phase_entries += 1
        execution.phase_first_entered.setdefault(phase_name, time)


@dataclass(frozen=True)
class RestartPolicy:
    """Bounded restart budget for the engine supervisor.

    Attributes:
        max_restarts: how many recoveries the supervisor performs before
            refusing further ones (the classic supervised-restart bound —
            a crash-looping engine should page a human, not spin).
        window_seconds: when set, the budget slides: only restarts within
            the trailing ``window_seconds`` of simulated time count
            against ``max_restarts``, so a long-lived engine that crashes
            rarely is never starved by ancient history.  ``None`` keeps
            the lifetime budget.
    """

    max_restarts: int = 3
    window_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValidationError("max_restarts must be >= 0")
        if self.window_seconds is not None and self.window_seconds <= 0:
            raise ValidationError("window_seconds must be positive")

    def charged(self, restart_times: Iterable[float], now: float) -> int:
        """How many past restarts count against the budget at *now*."""
        times = list(restart_times)
        if self.window_seconds is None:
            return len(times)
        cutoff = now - self.window_seconds
        return sum(1 for t in times if t > cutoff)

    def allows(self, restart_times: Iterable[float], now: float) -> bool:
        """Whether one more restart fits the budget at *now*."""
        return self.charged(restart_times, now) < self.max_restarts


class EngineSupervisor:
    """Owns the current engine; kills and recovers it within a budget.

    Satisfies the ``CrashTarget`` protocol of
    :mod:`repro.microservices.faults`, so an ``EngineCrash`` fault in a
    campaign drives :meth:`crash` / :meth:`restart` on the simulated
    clock.
    """

    def __init__(
        self,
        factory: Callable[[], BifrostEngine],
        journal: Journal,
        snapshots: SnapshotStore | None = None,
        monitor: Monitor | None = None,
        policy: RestartPolicy | None = None,
        observer: Observer | None = None,
    ) -> None:
        self.factory = factory
        self.journal = journal
        self.snapshots = snapshots
        self.monitor = monitor
        self.policy = policy or RestartPolicy()
        self.obs = observer or NULL_OBSERVER
        self.engine = factory()
        self.restarts = 0
        self.restart_times: list[float] = []
        self.restart_failures = 0
        self.gave_up = False
        self.reports: list[RecoveryReport] = []

    def budget_remaining(self, now: float) -> int:
        """Restarts still allowed at *now* under the policy window."""
        charged = self.policy.charged(self.restart_times, now)
        return max(0, self.policy.max_restarts - charged)

    def restore_counters(self, restarts: int, times: Iterable[float]) -> None:
        """Reload restart accounting after a supervisor-process restart.

        A recovered orchestrator rebuilds its supervisors from journals;
        without this, every recovery would silently refill the restart
        budget of a crash-looping engine.
        """
        self.restarts = int(restarts)
        self.restart_times = [float(t) for t in times]

    def crash(self, now: float) -> None:
        """Kill the current engine (no-op when already down)."""
        if not self.engine.alive:
            return
        self.engine.kill()
        if self.obs.enabled:
            self.obs.emit(RECOVERY_CRASH, now)
            self.obs.metrics.counter("engine_crashes_total").increment()
        if self.monitor is not None:
            self.monitor.observe_durability("crash", now)

    def restart(self, now: float) -> None:
        """Build a fresh engine and recover it, if the budget allows.

        A crash *during* recovery (a factory or replay failure) consumes
        the attempt and leaves the engine dead: the supervisor absorbs
        the exception, surfaces it through obs/telemetry, and a later
        restart may retry within whatever budget remains.
        """
        if self.engine.alive:
            return
        if not self.policy.allows(self.restart_times, now):
            self.gave_up = True
            if self.obs.enabled:
                self.obs.emit(
                    RECOVERY_REFUSED,
                    now,
                    restarts=self.restarts,
                    charged=self.policy.charged(self.restart_times, now),
                )
                self.obs.metrics.counter("engine_restarts_refused_total").increment()
            if self.monitor is not None:
                self.monitor.observe_durability("restart_refused", now)
            return
        self.restarts += 1
        self.restart_times.append(now)
        try:
            self.engine = self.factory()
            manager = RecoveryManager(
                self.journal, self.snapshots, self.monitor, observer=self.obs
            )
            report = manager.recover(self.engine)
        except Exception as exc:
            self.restart_failures += 1
            self.engine.kill()
            if self.obs.enabled:
                self.obs.emit(
                    RECOVERY_RESTART_FAILED,
                    now,
                    restarts=self.restarts,
                    error=f"{type(exc).__name__}: {exc}",
                )
                self.obs.metrics.counter("engine_restart_failures_total").increment()
            if self.monitor is not None:
                self.monitor.observe_durability("restart_failed", now)
            return
        self.reports.append(report)
        if self.obs.enabled:
            self.obs.emit(
                RECOVERY_RESTART,
                now,
                restarts=self.restarts,
                budget_remaining=self.budget_remaining(now),
                records_replayed=report.records_replayed,
                inflight=list(report.inflight),
            )
            self.obs.metrics.counter("engine_restarts_total").increment()
            self.obs.metrics.gauge("engine_restart_budget_remaining").set(
                float(self.budget_remaining(now))
            )
        if self.monitor is not None:
            self.monitor.observe_durability("restart", now)
