"""Live previews of runtime changes (Section 1.6.3, implemented).

The dissertation envisions injecting code changes into "a separate, but
identical version of the current application running in parallel", with
every production request duplicated to it so developers "immediately see
the effects of code changes ... before affected code changes are even
committed".  A dark launch gives exactly that mechanism:
:class:`LivePreview` deploys the candidate version, shadows production
traffic onto it, and reports side-by-side metric deltas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.microservices.application import Application
from repro.microservices.service import ServiceVersion
from repro.routing.proxy import VersionRouter
from repro.routing.rules import ExperimentRoute
from repro.routing.splitter import dark_launch_split
from repro.telemetry.store import MetricStore


@dataclass(frozen=True)
class MetricDelta:
    """Side-by-side comparison of one metric between the two versions."""

    metric: str
    aggregation: str
    stable: float | None
    candidate: float | None

    @property
    def delta(self) -> float | None:
        """candidate - stable (None while either side lacks data)."""
        if self.stable is None or self.candidate is None:
            return None
        return self.candidate - self.stable

    @property
    def relative(self) -> float | None:
        """Relative change (None when undefined)."""
        if self.delta is None or not self.stable:
            return None
        return self.delta / self.stable

    def describe(self) -> str:
        """One IDE-panel line."""
        if self.delta is None:
            return f"{self.aggregation}({self.metric}): collecting…"
        sign = "+" if self.delta >= 0 else ""
        rel = f" ({sign}{self.relative:.1%})" if self.relative is not None else ""
        return (
            f"{self.aggregation}({self.metric}): {self.stable:.2f} -> "
            f"{self.candidate:.2f} [{sign}{self.delta:.2f}{rel}]"
        )


class LivePreview:
    """Shadows production traffic onto a candidate version.

    The candidate is deployed alongside the stable version and receives
    duplicated requests; its work never reaches users.  Call
    :meth:`deltas` at any time for the current comparison and
    :meth:`stop` to tear the preview down (and optionally undeploy).
    """

    def __init__(
        self,
        application: Application,
        router: VersionRouter,
        store: MetricStore,
        service: str,
    ) -> None:
        self.application = application
        self.router = router
        self.store = store
        self.service = service
        self._candidate: str | None = None
        self._started_at: float | None = None

    @property
    def active(self) -> bool:
        """Whether a preview is currently shadowing traffic."""
        return self._candidate is not None

    def start(self, candidate: ServiceVersion, at: float) -> None:
        """Deploy *candidate* and begin duplicating traffic onto it."""
        if self.active:
            raise ConfigurationError(
                f"a preview of {self.service!r} is already running"
            )
        if candidate.service != self.service:
            raise ConfigurationError(
                f"candidate belongs to {candidate.service!r}, preview targets "
                f"{self.service!r}"
            )
        self.application.deploy(candidate)
        stable = self.application.stable_version(self.service)
        if candidate.version == stable:
            raise ConfigurationError(
                "candidate version must differ from the stable version"
            )
        self.router.install(
            ExperimentRoute(
                experiment=f"preview-{self.service}",
                service=self.service,
                variants=dark_launch_split(stable),
                shadow_versions=(candidate.version,),
            )
        )
        self._candidate = candidate.version
        self._started_at = at

    def deltas(
        self,
        now: float,
        metrics: tuple[tuple[str, str], ...] = (
            ("response_time", "mean"),
            ("response_time", "p95"),
            ("error", "mean"),
        ),
    ) -> list[MetricDelta]:
        """Current stable-vs-candidate comparison since the preview began."""
        if not self.active or self._started_at is None:
            raise ConfigurationError("preview is not running")
        stable = self.application.stable_version(self.service)
        out = []
        for metric, aggregation in metrics:
            out.append(
                MetricDelta(
                    metric=metric,
                    aggregation=aggregation,
                    stable=self.store.aggregate(
                        self.service, stable, metric, aggregation,
                        self._started_at, now,
                    ),
                    candidate=self.store.aggregate(
                        self.service, self._candidate or "", metric, aggregation,
                        self._started_at, now,
                    ),
                )
            )
        return out

    def stop(self, undeploy: bool = True) -> None:
        """Stop shadowing; optionally remove the candidate deployment."""
        if not self.active:
            return
        self.router.uninstall(self.service)
        if undeploy and self._candidate is not None:
            self.application.service(self.service).undeploy(self._candidate)
        self._candidate = None
        self._started_at = None
