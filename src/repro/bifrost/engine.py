"""The Bifrost execution engine (Section 4.4).

The engine owns strategy executions: it installs routing configurations
when a phase starts, periodically evaluates the phase's checks, and
enacts the conditional chaining — advancing to the next phase on success,
rolling back on failure, and re-executing on inconclusive data.

Engine work (check evaluations, route updates) is charged to a
:class:`~repro.simulation.executor.SimulatedExecutor`, which yields the
CPU-utilization and check-delay measurements of Figs 4.7–4.10.

When wired with a write-ahead journal (:mod:`repro.bifrost.journal`),
every durable decision — submissions, phase entries, check rounds,
transitions, route installs, finalizations — is appended to the log
before the engine acts on it, and snapshots are taken on the journal's
cadence.  A killed engine (:meth:`BifrostEngine.kill`) stops processing
events; :meth:`BifrostEngine.adopt` lets a recovered successor resume
executions, replaying decision points missed during the outage at their
*original* simulated timestamps so the recovered timeline matches the
crash-free one.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

from repro.errors import ExecutionError
from repro.bifrost.checks import CheckEvaluator, CheckResult
from repro.bifrost.model import (
    Check,
    HEALTH_CHECK_KIND,
    REPEAT,
    TERMINAL_ABORT,
    TERMINAL_COMPLETE,
    TERMINAL_ROLLBACK,
    TERMINAL_STATES,
    Action,
    CheckOutcome,
    Phase,
    PhaseType,
    Strategy,
    StrategyOutcome,
    check_to_dict,
    strategy_to_dict,
)
from repro.bifrost.state_machine import StateMachine
from repro.microservices.application import Application
from repro.obs.events import (
    DECISION_RECORDED,
    ENGINE_CHECK,
    ENGINE_FINALIZED,
    ENGINE_PHASE_ENTERED,
    ENGINE_ROLLOUT,
    ENGINE_ROUTE,
    ENGINE_SUBMITTED,
    ENGINE_TRANSITION,
    ENGINE_WINNER,
    JOURNAL_SNAPSHOT,
)
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.provenance import evidence_margin
from repro.routing.proxy import VersionRouter
from repro.routing.rules import AudienceFilter, ExperimentRoute
from repro.routing.splitter import (
    ab_split,
    canary_split,
    dark_launch_split,
    rollout_split,
)
from repro.simulation.engine import SimulationEngine
from repro.simulation.executor import SimulatedExecutor
from repro.telemetry.store import MetricStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bifrost.journal import Journal, SnapshotStore
    from repro.obs.alerts import AlertEngine
    from repro.obs.events import Event
    from repro.toggles.store import ToggleStore


@dataclass(frozen=True)
class EngineCosts:
    """Simulated processing costs of engine operations, in seconds.

    Calibrated so that a handful of strategies is effectively free while
    hundreds of strategies with many checks approach saturation of the
    single-threaded engine — the regime the paper probes.
    """

    tick_base: float = 0.0010
    per_check: float = 0.0004
    route_update: float = 0.0020


@dataclass
class TransitionRecord:
    """One state change of a strategy execution."""

    time: float
    source: str
    target: str
    trigger: str
    action: Action


@dataclass
class StrategyExecution:
    """Mutable runtime state of one submitted strategy."""

    strategy: Strategy
    machine: StateMachine
    state: str
    started_at: float
    phase_started_at: float
    outcome: StrategyOutcome = StrategyOutcome.RUNNING
    repeats: dict[str, int] = field(default_factory=dict)
    transitions: list[TransitionRecord] = field(default_factory=list)
    check_log: list[CheckResult] = field(default_factory=list)
    winner: str | None = None
    rollout_step: int = -1
    finished_at: float | None = None
    check_next_due: dict[str, float] = field(default_factory=dict)
    check_last: dict[str, CheckOutcome] = field(default_factory=dict)
    phase_first_entered: dict[str, float] = field(default_factory=dict)
    evaluation_errors: int = 0
    deadline_exceeded: str | None = None
    last_tick_at: float | None = None
    phase_entries: int = 0

    @property
    def running(self) -> bool:
        """Whether the execution is still in a phase state."""
        return self.outcome is StrategyOutcome.RUNNING

    @property
    def current_phase(self) -> Phase:
        """The phase the execution currently runs."""
        return self.strategy.phase(self.state)


class _CatchupQueue:
    """Decision points missed during an outage, replayed in time order.

    During recovery the engine drains this queue instead of the
    simulation: each entry runs with the engine's logical clock pinned to
    the entry's original timestamp, so check evaluations and transitions
    land exactly where the crash-free run would have put them.
    """

    def __init__(self, horizon: float) -> None:
        self.horizon = horizon
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[[], None]) -> None:
        """Queue *callback* for logical time *time*."""
        heapq.heappush(self._heap, (time, next(self._seq), callback))

    def pop(self) -> tuple[float, Callable[[], None]]:
        """Remove and return the earliest ``(time, callback)``."""
        time, _, callback = heapq.heappop(self._heap)
        return time, callback


class BifrostEngine:
    """Schedules and drives strategy executions on simulated time."""

    def __init__(
        self,
        simulation: SimulationEngine,
        application: Application,
        router: VersionRouter,
        store: MetricStore,
        costs: EngineCosts | None = None,
        executor: SimulatedExecutor | None = None,
        journal: "Journal | None" = None,
        snapshots: "SnapshotStore | None" = None,
        toggles: "ToggleStore | None" = None,
        observer: Observer | None = None,
    ) -> None:
        self.simulation = simulation
        self.application = application
        self.router = router
        self.store = store
        self.costs = costs or EngineCosts()
        self.executor = executor or SimulatedExecutor()
        self.evaluator = CheckEvaluator(store)
        self.executions: list[StrategyExecution] = []
        self.journal = journal
        self.snapshots = snapshots
        self.toggles = toggles
        self.obs = observer or NULL_OBSERVER
        #: Optional burn-rate alert engine whose firing rules annotate
        #: decision nodes (wired by middleware ``enable_alerts``).
        self.alerts: "AlertEngine | None" = None
        #: Optional provider of active-fault labels at a logical time
        #: (wired by middleware from its fault campaigns); decisions
        #: record its answer so a rollback names the fault that caused it.
        self.active_faults_of: Callable[[float], tuple[str, ...]] | None = None
        self._counter = itertools.count(1)
        self._alive = True
        self._catchup: _CatchupQueue | None = None
        self._now_override: float | None = None

    def _emit(self, kind: str, time: float, **data: object) -> "Event | None":
        """Emit one event and feed it to the live provenance fold."""
        event = self.obs.emit(kind, time, **data)
        tracker = self.obs.provenance
        if event is not None and tracker is not None:
            tracker.record(event)
        return event

    # -- liveness and durability plumbing ----------------------------------

    @property
    def alive(self) -> bool:
        """Whether the engine still processes events."""
        return self._alive

    def kill(self) -> None:
        """Simulate an engine crash: drop all future event processing.

        Every event the engine has scheduled is guarded by its liveness,
        so pending ticks, deadlines, and starts become no-ops.  In-memory
        execution state is considered lost; only the journal, snapshots,
        and the surviving data plane (router, stores) remain.
        """
        self._alive = False

    @property
    def _now(self) -> float:
        """The engine's logical clock (pinned during catch-up replay)."""
        if self._now_override is not None:
            return self._now_override
        return self.simulation.now

    def _schedule_at(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> None:
        """Schedule engine work, guarded by liveness.

        During recovery, work due at or before the catch-up horizon is
        replayed from the catch-up queue at its original logical time
        instead of being scheduled on the (already later) simulation.
        """
        if not self._alive:
            return
        if self._catchup is not None and time <= self._catchup.horizon + 1e-9:
            self._catchup.push(time, callback)
            return

        def guarded() -> None:
            if self._alive:
                callback()

        self.simulation.schedule_at(
            max(time, self.simulation.now), guarded, label=label
        )

    def _journal_append(self, kind: str, data: dict) -> None:
        """Append a journal record (no-op without a journal) and maybe
        fold the log into a snapshot per the snapshot policy."""
        if self.journal is None:
            return
        self.journal.append(kind, self._now, data)
        if self.snapshots is not None and self.snapshots.note_append():
            self.take_snapshot()

    def take_snapshot(self) -> None:
        """Fold current engine state into a snapshot checkpoint."""
        if self.journal is None or self.snapshots is None:
            return
        from repro.bifrost.journal import (
            SCHEMA_VERSION,
            Snapshot,
            execution_to_dict,
        )

        routes = []
        for service in sorted(self.router.routed_services):
            route = self.router.active_route(service)
            if route is None:
                continue
            routes.append(
                {
                    "experiment": route.experiment,
                    "service": route.service,
                    "variants": [
                        {"version": v.version, "fraction": v.fraction}
                        for v in route.variants
                    ],
                    "audience_groups": sorted(route.audience.groups),
                    "shadow_versions": list(route.shadow_versions),
                }
            )
        snapshot = Snapshot(
            schema_version=SCHEMA_VERSION,
            time=self._now,
            last_lsn=self.journal.last_lsn,
            executions=tuple(execution_to_dict(e) for e in self.executions),
            metrics=self.store.snapshot(),
            toggles=self.toggles.snapshot() if self.toggles is not None else None,
            routes=tuple(routes),
        )
        self.snapshots.save(snapshot)
        if self.obs.enabled:
            self._emit(
                JOURNAL_SNAPSHOT,
                self._now,
                last_lsn=snapshot.last_lsn,
                executions=len(snapshot.executions),
            )
            self.obs.metrics.counter("journal_snapshots_total").increment()
        if self.snapshots.policy.compact:
            self.journal.compact(snapshot.last_lsn)

    def submit(self, strategy: Strategy, at: float | None = None) -> StrategyExecution:
        """Register *strategy* to start at time *at* (default: now).

        Fails fast when a phase references a service or version that is
        not deployed — a misconfigured experiment must never take down
        the engine mid-simulation.
        """
        if not self._alive:
            raise ExecutionError(
                "engine is down; wait for the supervisor to restart it"
            )
        start = self.simulation.now if at is None else at
        if start < self.simulation.now:
            raise ExecutionError(
                f"cannot start strategy in the past ({start} < {self.simulation.now})"
            )
        for phase in strategy.phases:
            if not self.application.has_service(phase.service):
                raise ExecutionError(
                    f"strategy {strategy.name!r}, phase {phase.name!r}: "
                    f"service {phase.service!r} is not deployed"
                )
            service = self.application.service(phase.service)
            needed = {phase.stable_version, phase.experimental_version}
            if phase.second_version:
                needed.add(phase.second_version)
            for version in sorted(needed):
                if not service.has_version(version):
                    raise ExecutionError(
                        f"strategy {strategy.name!r}, phase {phase.name!r}: "
                        f"{phase.service}@{version} is not deployed"
                    )
        execution = StrategyExecution(
            strategy=strategy,
            machine=StateMachine(strategy),
            state=strategy.entry.name,
            started_at=start,
            phase_started_at=start,
        )
        self._journal_append(
            "submitted", {"strategy": strategy_to_dict(strategy), "start": start}
        )
        if self.obs.enabled:
            self._emit(
                ENGINE_SUBMITTED,
                self._now,
                strategy=strategy.name,
                start=start,
                entry=strategy.entry.name,
                phases=[phase.name for phase in strategy.phases],
            )
            self.obs.metrics.counter("bifrost_submissions_total").increment()
        self.executions.append(execution)
        self._schedule_at(
            start,
            lambda: self._enter_phase(execution, strategy.entry.name),
            label=f"start:{strategy.name}",
        )
        return execution

    # -- phase lifecycle ---------------------------------------------------

    def _enter_phase(self, execution: StrategyExecution, phase_name: str) -> None:
        if not execution.running:
            return
        now = self._now
        execution.state = phase_name
        execution.phase_started_at = now
        execution.rollout_step = -1
        execution.check_next_due = {}
        execution.check_last = {}
        execution.last_tick_at = None
        execution.phase_entries += 1
        phase = execution.current_phase
        self._journal_append(
            "phase_entered",
            {"strategy": execution.strategy.name, "phase": phase_name},
        )
        if self.obs.enabled:
            self._emit(
                ENGINE_PHASE_ENTERED,
                now,
                strategy=execution.strategy.name,
                phase=phase_name,
                type=phase.type.value,
            )
            self.obs.metrics.counter(
                "bifrost_phase_entries_total", phase=phase_name
            ).increment()
        if phase.deadline_seconds is not None:
            # The watchdog is measured from the phase *name*'s first
            # entry: repeats share the same time budget instead of
            # resetting it, so an endlessly inconclusive phase cannot
            # stall the strategy.  Re-arming on every entry keeps the
            # watchdog alive across engine restarts; duplicate firings
            # are no-ops once the first one transitioned.
            first = execution.phase_first_entered.setdefault(phase_name, now)
            self._schedule_at(
                first + phase.deadline_seconds,
                lambda: self._deadline_expired(execution, phase_name),
                label=f"deadline:{execution.strategy.name}:{phase_name}",
            )
        self._install_route(execution, phase)
        self.executor.submit(
            now, self.costs.route_update,
            label=f"{execution.strategy.name}:route",
        )
        self._schedule_tick(execution, phase)

    def _deadline_expired(self, execution: StrategyExecution, phase_name: str) -> None:
        """Watchdog: force a rollback when a phase blew its time budget."""
        if not execution.running or execution.state != phase_name:
            return
        execution.deadline_exceeded = phase_name
        self._journal_append(
            "transition",
            {
                "strategy": execution.strategy.name,
                "source": phase_name,
                "target": TERMINAL_ROLLBACK,
                "trigger": "deadline",
                "action": Action.ROLLBACK.value,
            },
        )
        execution.transitions.append(
            TransitionRecord(
                self._now,
                phase_name,
                TERMINAL_ROLLBACK,
                "deadline",
                Action.ROLLBACK,
            )
        )
        self._emit_transition(
            execution, phase_name, TERMINAL_ROLLBACK, "deadline", Action.ROLLBACK
        )
        self._finalize(execution, TERMINAL_ROLLBACK)

    def _schedule_tick(self, execution: StrategyExecution, phase: Phase) -> None:
        self._schedule_at(
            self._now + phase.check_interval_seconds,
            lambda: self._tick(execution),
            label=f"tick:{execution.strategy.name}:{phase.name}",
        )

    def _tick(self, execution: StrategyExecution) -> None:
        if not execution.running:
            return
        now = self._now
        phase = execution.current_phase
        execution.last_tick_at = now
        # Fig 4.3's time-based execution: every check carries its own
        # evaluation interval (defaulting to the phase's), so only the
        # checks that are *due* run this tick.
        effective = self._effective_checks(execution, phase)
        due = tuple(
            check
            for check in effective
            if now + 1e-9 >= execution.check_next_due.get(check.name, 0.0)
        )
        # Charge the engine for this evaluation round.
        cost = self.costs.tick_base + self.costs.per_check * len(due)
        self.executor.submit(
            now, cost, label=f"{execution.strategy.name}:{phase.name}"
        )
        # A check whose evaluation blows up (bad aggregation, store
        # trouble) must not take the engine down mid-simulation: it
        # counts as inconclusive and is retried on the next due tick.
        results = []
        errors = 0
        for check in due:
            try:
                results.append(self.evaluator.evaluate(check, now))
            except ExecutionError:
                errors += 1
                results.append(
                    CheckResult(check, now, CheckOutcome.INCONCLUSIVE, None, None)
                )
        execution.evaluation_errors += errors
        execution.check_log.extend(results)
        observing = self.obs.enabled
        journal_checks = []
        for check, result in zip(due, results):
            execution.check_last[check.name] = result.outcome
            interval = check.interval_seconds or phase.check_interval_seconds
            execution.check_next_due[check.name] = now + interval
            journal_checks.append(
                {
                    "check": check_to_dict(check),
                    "outcome": result.outcome.value,
                    "observed": result.observed,
                    "reference": result.reference,
                    "next_due": now + interval,
                }
            )
            if observing:
                # The payload is a complete Evidence record (see
                # repro.obs.provenance): window bounds, sample count and
                # margin travel with the event so an exported stream
                # reconstructs the decision DAG without the store.
                self._emit(
                    ENGINE_CHECK,
                    now,
                    strategy=execution.strategy.name,
                    phase=phase.name,
                    check=check.name,
                    service=check.service,
                    version=check.version,
                    metric=check.metric,
                    aggregation=check.aggregation,
                    operator=check.operator,
                    window_start=now - check.window_seconds,
                    samples=result.samples,
                    outcome=result.outcome.value,
                    observed=result.observed,
                    reference=result.reference,
                    margin=evidence_margin(
                        check.operator, result.observed, result.reference
                    ),
                    duration_s=result.duration_s,
                )
                self.obs.metrics.counter(
                    "bifrost_checks_total", outcome=result.outcome.value
                ).increment()
                if result.duration_s is not None:
                    self.obs.metrics.histogram("bifrost_check_seconds").observe(
                        result.duration_s
                    )
        if observing and errors:
            self.obs.metrics.counter("bifrost_check_errors_total").increment(errors)
        # The check round is journaled before the transition it may
        # trigger: a crash (or torn write) between the two leaves a
        # decisive round without a recorded decision — recovery detects
        # exactly that and degrades the round to inconclusive.
        self._journal_append(
            "tick",
            {
                "strategy": execution.strategy.name,
                "phase": phase.name,
                "checks": journal_checks,
                "errors": errors,
            },
        )

        if any(result.outcome is CheckOutcome.FAIL for result in results):
            self._transition(execution, phase, "failure")
            return

        phase_elapsed = now - execution.phase_started_at
        if phase.type is PhaseType.GRADUAL_ROLLOUT:
            self._maybe_advance_rollout(execution, phase, phase_elapsed)

        if phase_elapsed + 1e-9 >= phase.duration_seconds:
            # Decide on each check's *latest* outcome; a check that never
            # produced data counts as inconclusive.
            last_outcomes = {
                execution.check_last.get(check.name, CheckOutcome.INCONCLUSIVE)
                for check in effective
            }
            if (
                CheckOutcome.INCONCLUSIVE in last_outcomes
                or not self._enough_samples(execution, phase)
            ):
                self._transition(execution, phase, "inconclusive")
                return
            if phase.type is PhaseType.AB_TEST:
                execution.winner = self._pick_winner(execution, phase)
                self._journal_append(
                    "winner",
                    {
                        "strategy": execution.strategy.name,
                        "version": execution.winner,
                    },
                )
                if self.obs.enabled:
                    self._emit(
                        ENGINE_WINNER,
                        now,
                        strategy=execution.strategy.name,
                        version=execution.winner,
                        phase=phase.name,
                    )
            self._transition(execution, phase, "success")
            return
        self._schedule_tick(execution, phase)

    def _effective_checks(
        self, execution: StrategyExecution, phase: Phase
    ) -> tuple[Check, ...]:
        """Checks with the version under test substituted.

        When an earlier A/B phase picked a winner, later phases route the
        winner — checks written against the phase's declared experimental
        version must follow it or they would evaluate a version that no
        longer serves traffic.  Health checks are exempt: they read the
        topology pipeline's ``live`` pseudo-version, which describes the
        whole serving mixture rather than one deployment.
        """
        effective = self._experimental_version(execution, phase)
        if effective == phase.experimental_version:
            return phase.checks
        return tuple(
            replace(check, version=effective)
            if check.kind != HEALTH_CHECK_KIND
            and check.version == phase.experimental_version
            else check
            for check in phase.checks
        )

    def _enough_samples(self, execution: StrategyExecution, phase: Phase) -> bool:
        if phase.min_samples <= 0:
            return True
        served = self.store.aggregate(
            phase.service,
            self._experimental_version(execution, phase),
            "throughput",
            "count",
            execution.phase_started_at,
            self._now,
        )
        return (served or 0.0) >= phase.min_samples

    def _pick_winner(self, execution: StrategyExecution, phase: Phase) -> str:
        """Compare the two A/B variants on the phase's winner metric."""
        assert phase.second_version is not None
        start = execution.phase_started_at
        now = self._now
        values = {}
        for version in (phase.experimental_version, phase.second_version):
            values[version] = self.store.aggregate(
                phase.service,
                version,
                phase.winner_metric,
                phase.winner_aggregation,
                start,
                now,
            )
        a = values[phase.experimental_version]
        b = values[phase.second_version]
        if a is None and b is None:
            return phase.experimental_version
        if a is None:
            return phase.second_version
        if b is None:
            return phase.experimental_version
        if phase.winner_lower_is_better:
            return (
                phase.experimental_version if a <= b else phase.second_version
            )
        return phase.experimental_version if a >= b else phase.second_version

    def _maybe_advance_rollout(
        self, execution: StrategyExecution, phase: Phase, elapsed: float
    ) -> None:
        step_duration = phase.duration_seconds / len(phase.steps)
        step = min(int(elapsed / step_duration), len(phase.steps) - 1)
        if step != execution.rollout_step:
            execution.rollout_step = step
            self._journal_append(
                "rollout",
                {
                    "strategy": execution.strategy.name,
                    "phase": phase.name,
                    "step": step,
                },
            )
            if self.obs.enabled:
                self._emit(
                    ENGINE_ROLLOUT,
                    self._now,
                    strategy=execution.strategy.name,
                    phase=phase.name,
                    step=step,
                    fraction=phase.steps[step],
                )
            self._install_route(execution, phase)
            self.executor.submit(
                self._now,
                self.costs.route_update,
                label=f"{execution.strategy.name}:rollout-step",
            )

    # -- transitions and actions -------------------------------------------

    def _emit_transition(
        self,
        execution: StrategyExecution,
        source: str,
        target: str,
        trigger: str,
        action: Action,
    ) -> None:
        """Emit the glass-box transition event plus its decision node.

        The decision event is the provenance layer's unit of record: it
        links the evidence seqs of the deciding phase stay, the alert
        rules firing and the transient faults active at decision time to
        the transition it annotates, so `build_provenance` over the
        exported stream reconstructs the exact causal DAG the engine saw.
        """
        if not self.obs.enabled:
            return
        now = self._now
        strategy = execution.strategy.name
        transition = self._emit(
            ENGINE_TRANSITION,
            now,
            strategy=strategy,
            source=source,
            target=target,
            trigger=trigger,
            action=action.value,
        )
        self.obs.metrics.counter(
            "bifrost_transitions_total", trigger=trigger
        ).increment()
        tracker = self.obs.provenance
        evidence = (
            list(tracker.stay_evidence(strategy)) if tracker is not None else []
        )
        alerts = list(self.alerts.active()) if self.alerts is not None else []
        faults = (
            list(self.active_faults_of(now))
            if self.active_faults_of is not None
            else []
        )
        terminal = target in TERMINAL_STATES
        self._emit(
            DECISION_RECORDED,
            now,
            strategy=strategy,
            source=source,
            target=target,
            trigger=trigger,
            action=action.value,
            transition_seq=None if transition is None else transition.seq,
            evidence=evidence,
            alerts=alerts,
            faults=faults,
            terminal=terminal,
        )
        self.obs.metrics.counter(
            "bifrost_decisions_total", terminal=str(terminal).lower()
        ).increment()

    def _transition(
        self, execution: StrategyExecution, phase: Phase, trigger: str
    ) -> None:
        target = execution.machine.next_state(phase.name, trigger)
        if trigger == "inconclusive" and (
            target == phase.name or phase.on_inconclusive == REPEAT
        ):
            used = execution.repeats.get(phase.name, 0)
            if used >= phase.max_repeats:
                # Out of repeats: inconclusive data is treated as failure.
                target = execution.machine.next_state(phase.name, "failure")
                trigger = "failure"
            else:
                execution.repeats[phase.name] = used + 1
                self._journal_append(
                    "transition",
                    {
                        "strategy": execution.strategy.name,
                        "source": phase.name,
                        "target": phase.name,
                        "trigger": "inconclusive",
                        "action": Action.REPEAT.value,
                    },
                )
                execution.transitions.append(
                    TransitionRecord(
                        self._now, phase.name, phase.name,
                        "inconclusive", Action.REPEAT,
                    )
                )
                self._emit_transition(
                    execution, phase.name, phase.name, "inconclusive", Action.REPEAT
                )
                self._enter_phase(execution, phase.name)
                return
        action = self._action_for(target, trigger)
        self._journal_append(
            "transition",
            {
                "strategy": execution.strategy.name,
                "source": phase.name,
                "target": target,
                "trigger": trigger,
                "action": action.value,
            },
        )
        execution.transitions.append(
            TransitionRecord(self._now, phase.name, target, trigger, action)
        )
        self._emit_transition(execution, phase.name, target, trigger, action)
        if target in TERMINAL_STATES:
            self._finalize(execution, target)
        else:
            self._enter_phase(execution, target)

    def _action_for(self, target: str, trigger: str) -> Action:
        if target == TERMINAL_COMPLETE:
            return Action.PROMOTE
        if target == TERMINAL_ROLLBACK:
            return Action.ROLLBACK
        if target == TERMINAL_ABORT:
            return Action.ABORT
        return Action.CONTINUE

    def _finalize(self, execution: StrategyExecution, terminal: str) -> None:
        execution.state = terminal
        execution.finished_at = self._now
        for service in execution.strategy.services:
            self.router.uninstall(service)
        self.executor.submit(
            self._now,
            self.costs.route_update,
            label=f"{execution.strategy.name}:teardown",
        )
        promoted: str | None = None
        if terminal == TERMINAL_COMPLETE:
            execution.outcome = StrategyOutcome.COMPLETED
            final_phase = execution.strategy.phases[-1]
            winner = execution.winner or self._experimental_version(
                execution, final_phase
            )
            service = self.application.service(final_phase.service)
            if service.has_version(winner):
                service.promote(winner)
                promoted = winner
        elif terminal == TERMINAL_ROLLBACK:
            execution.outcome = StrategyOutcome.ROLLED_BACK
        else:
            execution.outcome = StrategyOutcome.ABORTED
        self._journal_append(
            "finalized",
            {
                "strategy": execution.strategy.name,
                "terminal": terminal,
                "outcome": execution.outcome.value,
                "promoted": promoted,
            },
        )
        if self.obs.enabled:
            self._emit(
                ENGINE_FINALIZED,
                self._now,
                strategy=execution.strategy.name,
                terminal=terminal,
                outcome=execution.outcome.value,
                promoted=promoted,
            )
            self.obs.metrics.counter(
                "bifrost_finalized_total", outcome=execution.outcome.value
            ).increment()

    # -- routing -----------------------------------------------------------

    def _experimental_version(
        self, execution: StrategyExecution, phase: Phase
    ) -> str:
        """The variant under test, honoring an earlier A/B winner."""
        if execution.winner is not None and phase.type in (
            PhaseType.GRADUAL_ROLLOUT,
            PhaseType.CANARY,
        ):
            return execution.winner
        return phase.experimental_version

    def _install_route(self, execution: StrategyExecution, phase: Phase) -> None:
        audience = AudienceFilter(groups=frozenset(phase.audience_groups))
        experimental = self._experimental_version(execution, phase)
        shadow: tuple[str, ...] = ()
        if phase.type is PhaseType.CANARY:
            variants = canary_split(
                phase.stable_version, experimental, phase.fraction
            )
        elif phase.type is PhaseType.DARK_LAUNCH:
            variants = dark_launch_split(phase.stable_version)
            shadow = (experimental,)
        elif phase.type is PhaseType.AB_TEST:
            assert phase.second_version is not None
            variants = ab_split(
                phase.experimental_version, phase.second_version, phase.fraction
            )
        else:  # GRADUAL_ROLLOUT
            step = max(execution.rollout_step, 0)
            variants = rollout_split(
                phase.stable_version, experimental, phase.steps[step]
            )
        route = ExperimentRoute(
            experiment=execution.strategy.name,
            service=phase.service,
            variants=variants,
            audience=audience,
            shadow_versions=shadow,
        )
        self.router.install(route)
        self._journal_append(
            "route",
            {
                "strategy": execution.strategy.name,
                "service": phase.service,
                "phase": phase.name,
                "step": execution.rollout_step,
            },
        )
        if self.obs.enabled:
            self._emit(
                ENGINE_ROUTE,
                self._now,
                strategy=execution.strategy.name,
                service=phase.service,
                phase=phase.name,
                step=execution.rollout_step,
                variants={v.version: v.fraction for v in variants},
            )
            self.obs.metrics.counter("bifrost_route_updates_total").increment()

    # -- recovery ----------------------------------------------------------

    def adopt(self, executions: list[StrategyExecution]) -> list[str]:
        """Attach recovered *executions* and resume the running ones.

        Decision points that fell into the outage window (missed check
        ticks, expired deadlines, pending phase starts) are replayed in
        time order with the logical clock pinned to their original
        timestamps — telemetry kept flowing while the engine was down,
        so late evaluations see exactly the data the crash-free run saw,
        and the recovered transition log lines up with it.

        Routes of running phases are re-installed exactly once (guarded
        against phases that finish during catch-up).  A strategy whose
        journal shows a decisive check round without the transition it
        must have triggered had its phase outcome in flight when the
        engine died; that round is degraded to *inconclusive* and the
        phase re-executed per the conditional chaining.  Returns the
        names of those in-flight strategies.
        """
        inflight: list[str] = []
        queue = _CatchupQueue(self.simulation.now)
        self._catchup = queue
        try:
            for execution in executions:
                self.executions.append(execution)
                if not execution.running:
                    continue
                name = execution.strategy.name
                if execution.phase_entries == 0:
                    # Submitted, never started: (re)schedule the start.
                    entry = execution.strategy.entry.name
                    self._schedule_at(
                        execution.started_at,
                        lambda e=execution, p=entry: self._enter_phase(e, p),
                        label=f"start:{name}",
                    )
                    continue
                phase = execution.current_phase
                decisive_fail = CheckOutcome.FAIL in execution.check_last.values()
                decisive_done = (
                    execution.last_tick_at is not None
                    and execution.last_tick_at - execution.phase_started_at + 1e-9
                    >= phase.duration_seconds
                )
                if decisive_fail or decisive_done:
                    inflight.append(name)
                    at = (
                        execution.last_tick_at
                        if execution.last_tick_at is not None
                        else self.simulation.now
                    )
                    self._schedule_at(
                        at,
                        lambda e=execution, p=phase: self._transition(
                            e, p, "inconclusive"
                        ),
                        label=f"inflight:{name}",
                    )
                    continue
                self._schedule_at(
                    queue.horizon,
                    lambda e=execution, p=phase.name, n=execution.phase_entries: (
                        self._reinstall_route(e, p, n)
                    ),
                    label=f"recover-route:{name}",
                )
                if (
                    phase.deadline_seconds is not None
                    and phase.name in execution.phase_first_entered
                ):
                    self._schedule_at(
                        execution.phase_first_entered[phase.name]
                        + phase.deadline_seconds,
                        lambda e=execution, p=phase.name: self._deadline_expired(
                            e, p
                        ),
                        label=f"deadline:{name}:{phase.name}",
                    )
                next_tick = (
                    execution.last_tick_at
                    if execution.last_tick_at is not None
                    else execution.phase_started_at
                ) + phase.check_interval_seconds
                self._schedule_at(
                    next_tick,
                    lambda e=execution: self._tick(e),
                    label=f"tick:{name}:{phase.name}",
                )
            while queue:
                time, callback = queue.pop()
                self._now_override = time
                callback()
                self._now_override = None
        finally:
            self._now_override = None
            self._catchup = None
        return inflight

    def _reinstall_route(
        self,
        execution: StrategyExecution,
        phase_name: str,
        entries_at_adopt: int | None = None,
    ) -> None:
        """Idempotently re-install a resumed phase's route.

        Skipped when catch-up already moved the execution out of the
        phase (or finished it) — the transition installed or tore down
        the routes itself.  Also skipped when catch-up *re-entered* a
        phase (an inconclusive round replayed with REPEAT lands back in
        the same state): the re-entry installed the route and journaled
        it already, and installing again here would journal and charge a
        route update the crash-free run never made.
        """
        if not execution.running or execution.state != phase_name:
            return
        if (
            entries_at_adopt is not None
            and execution.phase_entries != entries_at_adopt
        ):
            return
        self._install_route(execution, execution.current_phase)
        self.executor.submit(
            self._now,
            self.costs.route_update,
            label=f"{execution.strategy.name}:recover-route",
        )

    # -- operator actions ------------------------------------------------------

    def cancel(self, strategy_name: str) -> StrategyExecution:
        """Abort a running strategy: traffic reverts to stable immediately.

        Experiments "get canceled frequently" (Section 1.2.2); canceling
        is the manual counterpart of the automated rollback and frees the
        traffic Fenrir's reevaluation can then reassign.
        """
        for execution in self.executions:
            if execution.strategy.name == strategy_name:
                if execution.running:
                    self._journal_append(
                        "transition",
                        {
                            "strategy": strategy_name,
                            "source": execution.state,
                            "target": TERMINAL_ABORT,
                            "trigger": "canceled",
                            "action": Action.ABORT.value,
                        },
                    )
                    execution.transitions.append(
                        TransitionRecord(
                            self._now,
                            execution.state,
                            TERMINAL_ABORT,
                            "canceled",
                            Action.ABORT,
                        )
                    )
                    self._emit_transition(
                        execution,
                        execution.state,
                        TERMINAL_ABORT,
                        "canceled",
                        Action.ABORT,
                    )
                    self._finalize(execution, TERMINAL_ABORT)
                return execution
        raise ExecutionError(f"no strategy named {strategy_name!r} submitted")

    # -- reporting -----------------------------------------------------------

    def outcomes(self) -> dict[str, StrategyOutcome]:
        """Outcome per submitted strategy."""
        return {e.strategy.name: e.outcome for e in self.executions}

    def running_count(self) -> int:
        """Number of strategies still executing."""
        return sum(1 for e in self.executions if e.running)
