"""The Bifrost execution engine (Section 4.4).

The engine owns strategy executions: it installs routing configurations
when a phase starts, periodically evaluates the phase's checks, and
enacts the conditional chaining — advancing to the next phase on success,
rolling back on failure, and re-executing on inconclusive data.

Engine work (check evaluations, route updates) is charged to a
:class:`~repro.simulation.executor.SimulatedExecutor`, which yields the
CPU-utilization and check-delay measurements of Figs 4.7–4.10.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from repro.errors import ExecutionError
from repro.bifrost.checks import CheckEvaluator, CheckResult
from repro.bifrost.model import (
    Check,
    REPEAT,
    TERMINAL_ABORT,
    TERMINAL_COMPLETE,
    TERMINAL_ROLLBACK,
    TERMINAL_STATES,
    Action,
    CheckOutcome,
    Phase,
    PhaseType,
    Strategy,
    StrategyOutcome,
)
from repro.bifrost.state_machine import StateMachine
from repro.microservices.application import Application
from repro.routing.proxy import VersionRouter
from repro.routing.rules import AudienceFilter, ExperimentRoute
from repro.routing.splitter import (
    ab_split,
    canary_split,
    dark_launch_split,
    rollout_split,
)
from repro.simulation.engine import SimulationEngine
from repro.simulation.executor import SimulatedExecutor
from repro.telemetry.store import MetricStore


@dataclass(frozen=True)
class EngineCosts:
    """Simulated processing costs of engine operations, in seconds.

    Calibrated so that a handful of strategies is effectively free while
    hundreds of strategies with many checks approach saturation of the
    single-threaded engine — the regime the paper probes.
    """

    tick_base: float = 0.0010
    per_check: float = 0.0004
    route_update: float = 0.0020


@dataclass
class TransitionRecord:
    """One state change of a strategy execution."""

    time: float
    source: str
    target: str
    trigger: str
    action: Action


@dataclass
class StrategyExecution:
    """Mutable runtime state of one submitted strategy."""

    strategy: Strategy
    machine: StateMachine
    state: str
    started_at: float
    phase_started_at: float
    outcome: StrategyOutcome = StrategyOutcome.RUNNING
    repeats: dict[str, int] = field(default_factory=dict)
    transitions: list[TransitionRecord] = field(default_factory=list)
    check_log: list[CheckResult] = field(default_factory=list)
    winner: str | None = None
    rollout_step: int = -1
    finished_at: float | None = None
    check_next_due: dict[str, float] = field(default_factory=dict)
    check_last: dict[str, CheckOutcome] = field(default_factory=dict)
    phase_first_entered: dict[str, float] = field(default_factory=dict)
    evaluation_errors: int = 0
    deadline_exceeded: str | None = None

    @property
    def running(self) -> bool:
        """Whether the execution is still in a phase state."""
        return self.outcome is StrategyOutcome.RUNNING

    @property
    def current_phase(self) -> Phase:
        """The phase the execution currently runs."""
        return self.strategy.phase(self.state)


class BifrostEngine:
    """Schedules and drives strategy executions on simulated time."""

    def __init__(
        self,
        simulation: SimulationEngine,
        application: Application,
        router: VersionRouter,
        store: MetricStore,
        costs: EngineCosts | None = None,
        executor: SimulatedExecutor | None = None,
    ) -> None:
        self.simulation = simulation
        self.application = application
        self.router = router
        self.store = store
        self.costs = costs or EngineCosts()
        self.executor = executor or SimulatedExecutor()
        self.evaluator = CheckEvaluator(store)
        self.executions: list[StrategyExecution] = []
        self._counter = itertools.count(1)

    def submit(self, strategy: Strategy, at: float | None = None) -> StrategyExecution:
        """Register *strategy* to start at time *at* (default: now).

        Fails fast when a phase references a service or version that is
        not deployed — a misconfigured experiment must never take down
        the engine mid-simulation.
        """
        start = self.simulation.now if at is None else at
        if start < self.simulation.now:
            raise ExecutionError(
                f"cannot start strategy in the past ({start} < {self.simulation.now})"
            )
        for phase in strategy.phases:
            if not self.application.has_service(phase.service):
                raise ExecutionError(
                    f"strategy {strategy.name!r}, phase {phase.name!r}: "
                    f"service {phase.service!r} is not deployed"
                )
            service = self.application.service(phase.service)
            needed = {phase.stable_version, phase.experimental_version}
            if phase.second_version:
                needed.add(phase.second_version)
            for version in sorted(needed):
                if not service.has_version(version):
                    raise ExecutionError(
                        f"strategy {strategy.name!r}, phase {phase.name!r}: "
                        f"{phase.service}@{version} is not deployed"
                    )
        execution = StrategyExecution(
            strategy=strategy,
            machine=StateMachine(strategy),
            state=strategy.entry.name,
            started_at=start,
            phase_started_at=start,
        )
        self.executions.append(execution)
        self.simulation.schedule_at(
            start,
            lambda: self._enter_phase(execution, strategy.entry.name),
            label=f"start:{strategy.name}",
        )
        return execution

    # -- phase lifecycle ---------------------------------------------------

    def _enter_phase(self, execution: StrategyExecution, phase_name: str) -> None:
        if not execution.running:
            return
        execution.state = phase_name
        execution.phase_started_at = self.simulation.now
        execution.rollout_step = -1
        execution.check_next_due = {}
        execution.check_last = {}
        phase = execution.current_phase
        if (
            phase.deadline_seconds is not None
            and phase_name not in execution.phase_first_entered
        ):
            # The watchdog arms once per phase *name*: repeats share the
            # same time budget instead of resetting it, so an endlessly
            # inconclusive phase cannot stall the strategy.
            execution.phase_first_entered[phase_name] = self.simulation.now
            self.simulation.schedule_in(
                phase.deadline_seconds,
                lambda: self._deadline_expired(execution, phase_name),
                label=f"deadline:{execution.strategy.name}:{phase_name}",
            )
        self._install_route(execution, phase)
        self.executor.submit(
            self.simulation.now, self.costs.route_update,
            label=f"{execution.strategy.name}:route",
        )
        self._schedule_tick(execution, phase)

    def _deadline_expired(self, execution: StrategyExecution, phase_name: str) -> None:
        """Watchdog: force a rollback when a phase blew its time budget."""
        if not execution.running or execution.state != phase_name:
            return
        execution.deadline_exceeded = phase_name
        execution.transitions.append(
            TransitionRecord(
                self.simulation.now,
                phase_name,
                TERMINAL_ROLLBACK,
                "deadline",
                Action.ROLLBACK,
            )
        )
        self._finalize(execution, TERMINAL_ROLLBACK)

    def _schedule_tick(self, execution: StrategyExecution, phase: Phase) -> None:
        self.simulation.schedule_in(
            phase.check_interval_seconds,
            lambda: self._tick(execution),
            label=f"tick:{execution.strategy.name}:{phase.name}",
        )

    def _tick(self, execution: StrategyExecution) -> None:
        if not execution.running:
            return
        now = self.simulation.now
        phase = execution.current_phase
        # Fig 4.3's time-based execution: every check carries its own
        # evaluation interval (defaulting to the phase's), so only the
        # checks that are *due* run this tick.
        effective = self._effective_checks(execution, phase)
        due = tuple(
            check
            for check in effective
            if now + 1e-9 >= execution.check_next_due.get(check.name, 0.0)
        )
        # Charge the engine for this evaluation round.
        cost = self.costs.tick_base + self.costs.per_check * len(due)
        self.executor.submit(
            now, cost, label=f"{execution.strategy.name}:{phase.name}"
        )
        # A check whose evaluation blows up (bad aggregation, store
        # trouble) must not take the engine down mid-simulation: it
        # counts as inconclusive and is retried on the next due tick.
        results = []
        for check in due:
            try:
                results.append(self.evaluator.evaluate(check, now))
            except ExecutionError:
                execution.evaluation_errors += 1
                results.append(
                    CheckResult(check, now, CheckOutcome.INCONCLUSIVE, None, None)
                )
        execution.check_log.extend(results)
        for check, result in zip(due, results):
            execution.check_last[check.name] = result.outcome
            interval = check.interval_seconds or phase.check_interval_seconds
            execution.check_next_due[check.name] = now + interval

        if any(result.outcome is CheckOutcome.FAIL for result in results):
            self._transition(execution, phase, "failure")
            return

        phase_elapsed = now - execution.phase_started_at
        if phase.type is PhaseType.GRADUAL_ROLLOUT:
            self._maybe_advance_rollout(execution, phase, phase_elapsed)

        if phase_elapsed + 1e-9 >= phase.duration_seconds:
            # Decide on each check's *latest* outcome; a check that never
            # produced data counts as inconclusive.
            last_outcomes = {
                execution.check_last.get(check.name, CheckOutcome.INCONCLUSIVE)
                for check in effective
            }
            if (
                CheckOutcome.INCONCLUSIVE in last_outcomes
                or not self._enough_samples(execution, phase)
            ):
                self._transition(execution, phase, "inconclusive")
                return
            if phase.type is PhaseType.AB_TEST:
                execution.winner = self._pick_winner(execution, phase)
            self._transition(execution, phase, "success")
            return
        self._schedule_tick(execution, phase)

    def _effective_checks(
        self, execution: StrategyExecution, phase: Phase
    ) -> tuple[Check, ...]:
        """Checks with the version under test substituted.

        When an earlier A/B phase picked a winner, later phases route the
        winner — checks written against the phase's declared experimental
        version must follow it or they would evaluate a version that no
        longer serves traffic.
        """
        effective = self._experimental_version(execution, phase)
        if effective == phase.experimental_version:
            return phase.checks
        return tuple(
            replace(check, version=effective)
            if check.version == phase.experimental_version
            else check
            for check in phase.checks
        )

    def _enough_samples(self, execution: StrategyExecution, phase: Phase) -> bool:
        if phase.min_samples <= 0:
            return True
        served = self.store.aggregate(
            phase.service,
            self._experimental_version(execution, phase),
            "throughput",
            "count",
            execution.phase_started_at,
            self.simulation.now,
        )
        return (served or 0.0) >= phase.min_samples

    def _pick_winner(self, execution: StrategyExecution, phase: Phase) -> str:
        """Compare the two A/B variants on the phase's winner metric."""
        assert phase.second_version is not None
        start = execution.phase_started_at
        now = self.simulation.now
        values = {}
        for version in (phase.experimental_version, phase.second_version):
            values[version] = self.store.aggregate(
                phase.service,
                version,
                phase.winner_metric,
                phase.winner_aggregation,
                start,
                now,
            )
        a = values[phase.experimental_version]
        b = values[phase.second_version]
        if a is None and b is None:
            return phase.experimental_version
        if a is None:
            return phase.second_version
        if b is None:
            return phase.experimental_version
        if phase.winner_lower_is_better:
            return (
                phase.experimental_version if a <= b else phase.second_version
            )
        return phase.experimental_version if a >= b else phase.second_version

    def _maybe_advance_rollout(
        self, execution: StrategyExecution, phase: Phase, elapsed: float
    ) -> None:
        step_duration = phase.duration_seconds / len(phase.steps)
        step = min(int(elapsed / step_duration), len(phase.steps) - 1)
        if step != execution.rollout_step:
            execution.rollout_step = step
            self._install_route(execution, phase)
            self.executor.submit(
                self.simulation.now,
                self.costs.route_update,
                label=f"{execution.strategy.name}:rollout-step",
            )

    # -- transitions and actions -------------------------------------------

    def _transition(
        self, execution: StrategyExecution, phase: Phase, trigger: str
    ) -> None:
        target = execution.machine.next_state(phase.name, trigger)
        if trigger == "inconclusive" and (
            target == phase.name or phase.on_inconclusive == REPEAT
        ):
            used = execution.repeats.get(phase.name, 0)
            if used >= phase.max_repeats:
                # Out of repeats: inconclusive data is treated as failure.
                target = execution.machine.next_state(phase.name, "failure")
                trigger = "failure"
            else:
                execution.repeats[phase.name] = used + 1
                execution.transitions.append(
                    TransitionRecord(
                        self.simulation.now, phase.name, phase.name,
                        "inconclusive", Action.REPEAT,
                    )
                )
                self._enter_phase(execution, phase.name)
                return
        action = self._action_for(target, trigger)
        execution.transitions.append(
            TransitionRecord(self.simulation.now, phase.name, target, trigger, action)
        )
        if target in TERMINAL_STATES:
            self._finalize(execution, target)
        else:
            self._enter_phase(execution, target)

    def _action_for(self, target: str, trigger: str) -> Action:
        if target == TERMINAL_COMPLETE:
            return Action.PROMOTE
        if target == TERMINAL_ROLLBACK:
            return Action.ROLLBACK
        if target == TERMINAL_ABORT:
            return Action.ABORT
        return Action.CONTINUE

    def _finalize(self, execution: StrategyExecution, terminal: str) -> None:
        execution.state = terminal
        execution.finished_at = self.simulation.now
        for service in execution.strategy.services:
            self.router.uninstall(service)
        self.executor.submit(
            self.simulation.now,
            self.costs.route_update,
            label=f"{execution.strategy.name}:teardown",
        )
        if terminal == TERMINAL_COMPLETE:
            execution.outcome = StrategyOutcome.COMPLETED
            final_phase = execution.strategy.phases[-1]
            winner = execution.winner or self._experimental_version(
                execution, final_phase
            )
            service = self.application.service(final_phase.service)
            if service.has_version(winner):
                service.promote(winner)
        elif terminal == TERMINAL_ROLLBACK:
            execution.outcome = StrategyOutcome.ROLLED_BACK
        else:
            execution.outcome = StrategyOutcome.ABORTED

    # -- routing -----------------------------------------------------------

    def _experimental_version(
        self, execution: StrategyExecution, phase: Phase
    ) -> str:
        """The variant under test, honoring an earlier A/B winner."""
        if execution.winner is not None and phase.type in (
            PhaseType.GRADUAL_ROLLOUT,
            PhaseType.CANARY,
        ):
            return execution.winner
        return phase.experimental_version

    def _install_route(self, execution: StrategyExecution, phase: Phase) -> None:
        audience = AudienceFilter(groups=frozenset(phase.audience_groups))
        experimental = self._experimental_version(execution, phase)
        shadow: tuple[str, ...] = ()
        if phase.type is PhaseType.CANARY:
            variants = canary_split(
                phase.stable_version, experimental, phase.fraction
            )
        elif phase.type is PhaseType.DARK_LAUNCH:
            variants = dark_launch_split(phase.stable_version)
            shadow = (experimental,)
        elif phase.type is PhaseType.AB_TEST:
            assert phase.second_version is not None
            variants = ab_split(
                phase.experimental_version, phase.second_version, phase.fraction
            )
        else:  # GRADUAL_ROLLOUT
            step = max(execution.rollout_step, 0)
            variants = rollout_split(
                phase.stable_version, experimental, phase.steps[step]
            )
        route = ExperimentRoute(
            experiment=execution.strategy.name,
            service=phase.service,
            variants=variants,
            audience=audience,
            shadow_versions=shadow,
        )
        self.router.install(route)

    # -- operator actions ------------------------------------------------------

    def cancel(self, strategy_name: str) -> StrategyExecution:
        """Abort a running strategy: traffic reverts to stable immediately.

        Experiments "get canceled frequently" (Section 1.2.2); canceling
        is the manual counterpart of the automated rollback and frees the
        traffic Fenrir's reevaluation can then reassign.
        """
        for execution in self.executions:
            if execution.strategy.name == strategy_name:
                if execution.running:
                    execution.transitions.append(
                        TransitionRecord(
                            self.simulation.now,
                            execution.state,
                            TERMINAL_ABORT,
                            "canceled",
                            Action.ABORT,
                        )
                    )
                    self._finalize(execution, TERMINAL_ABORT)
                return execution
        raise ExecutionError(f"no strategy named {strategy_name!r} submitted")

    # -- reporting -----------------------------------------------------------

    def outcomes(self) -> dict[str, StrategyOutcome]:
        """Outcome per submitted strategy."""
        return {e.strategy.name: e.outcome for e in self.executions}

    def running_count(self) -> int:
        """Number of strategies still executing."""
        return sum(1 for e in self.executions if e.running)
