"""The experimentation-as-code DSL (Section 4.4).

Strategies are plain text so they can be "shared, reused, and versioned".
The format is a small indentation-based language::

    strategy recommendation-rollout
      description "AB Inc recommendation feature"
      mode sim
      phase canary-phase
        type canary
        service recommend
        stable 1.0.0
        experimental 2.0.0
        fraction 0.05
        duration 300
        interval 5
        groups beta_testers
        min_samples 100
        check errors
          metric error
          aggregation mean
          operator <=
          threshold 0.02
          window 30
        check latency
          metric response_time
          aggregation p95
          operator <=
          baseline 1.0.0
          tolerance 1.25
          window 30
        on_success ab-phase
        on_failure rollback
        on_inconclusive repeat

Indentation is two spaces per level; blank lines and ``#`` comments are
ignored.  ``mode sim|replay|live`` (optional, default ``sim``) names the
execution substrate the strategy runs against by default — see
:mod:`repro.exec` and ``docs/EXECUTION_MODES.md``.  :func:`strategy_to_dsl`
serializes a strategy back; round tripping is loss-free for every field
the DSL exposes.
"""

from __future__ import annotations

import os
from repro.errors import DSLError
from repro.bifrost.model import EXECUTION_MODES, Check, Phase, PhaseType, Strategy

_PHASE_SCALARS = {
    "type", "service", "stable", "experimental", "second", "fraction",
    "duration", "interval", "deadline", "min_samples", "on_success",
    "on_failure", "on_inconclusive", "max_repeats", "groups", "steps",
    "winner_metric", "winner_aggregation", "winner_lower_is_better",
}
_CHECK_SCALARS = {
    "metric", "aggregation", "operator", "threshold", "baseline",
    "tolerance", "window", "interval", "kind", "service", "version",
    "rule",
}


def _indent_of(line: str) -> int:
    stripped = line.lstrip(" ")
    spaces = len(line) - len(stripped)
    if spaces % 2 != 0:
        raise DSLError(f"odd indentation in line: {line!r}")
    return spaces // 2


def _split(line: str) -> tuple[str, str]:
    stripped = line.strip()
    head, _, rest = stripped.partition(" ")
    return head, rest.strip()


def _unquote(value: str) -> str:
    if len(value) >= 2 and value[0] == value[-1] == '"':
        return value[1:-1]
    return value


def parse_strategies(text: str) -> list[Strategy]:
    """Parse a DSL file containing one or more strategy definitions.

    Experimentation-as-code means strategies live in versioned files;
    teams keep several related strategies together.  Splits on top-level
    ``strategy`` headers and parses each block.
    """
    blocks: list[list[str]] = []
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#") and _indent_of(line) == 0:
            head, _ = _split(line)
            if head == "strategy":
                blocks.append([])
        if blocks:
            blocks[-1].append(line)
    if not blocks:
        raise DSLError("no strategy definitions found")
    strategies = [parse_strategy("\n".join(block)) for block in blocks]
    names = [s.name for s in strategies]
    if len(set(names)) != len(names):
        raise DSLError(f"duplicate strategy names in file: {names}")
    return strategies


def parse_file(path: str | os.PathLike) -> list[Strategy]:
    """Parse a strategy file from disk.

    The file-level entry point of experimentation-as-code: strategies
    live in versioned ``.bifrost`` files next to the service code.  All
    parse problems surface as :class:`DSLError` — including an unreadable
    path, so callers handle one error type for "bad strategy file".
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise DSLError(f"cannot read strategy file {os.fspath(path)!r}: {exc}") from exc
    return parse_strategies(text)


def parse_strategy(text: str) -> Strategy:
    """Parse one strategy definition from DSL *text*."""
    lines = [
        (index + 1, line)
        for index, line in enumerate(text.splitlines())
        if line.strip() and not line.strip().startswith("#")
    ]
    if not lines:
        raise DSLError("empty strategy definition")

    strategy_name: str | None = None
    description = ""
    execution_mode = "sim"
    phases: list[Phase] = []
    phase_fields: dict[str, str] | None = None
    phase_name: str | None = None
    checks: list[Check] = []
    check_fields: dict[str, str] | None = None
    check_name: str | None = None

    def finish_check() -> None:
        nonlocal check_fields, check_name
        if check_fields is None:
            return
        assert check_name is not None and phase_fields is not None
        threshold = check_fields.get("threshold")
        baseline = check_fields.get("baseline")
        kind = check_fields.get("kind", "metric")
        # Health checks gate on the live health score (>= threshold by
        # default) and may target another service than the phase's —
        # e.g. the "topology" pseudo-service for the overall score.
        default_operator = ">=" if kind == "health" else "<="
        default_aggregation = "mean"
        if kind == "slo":
            # SLO checks fail when the burn-rate gate value exceeds the
            # threshold anywhere in the window; "max burn <= 1.0" is the
            # natural "never burning" gate, so those are the defaults.
            default_aggregation = "max"
            if threshold is None and baseline is None:
                threshold = "1.0"
        checks.append(
            Check(
                name=check_name,
                service=check_fields.get("service")
                or phase_fields.get("service", ""),
                version=check_fields.get("version")
                or phase_fields.get("experimental", ""),
                metric=check_fields.get("metric", "response_time"),
                aggregation=check_fields.get("aggregation", default_aggregation),
                operator=check_fields.get("operator", default_operator),
                kind=kind,
                rule=check_fields.get("rule"),
                threshold=float(threshold) if threshold is not None else None,
                baseline_version=baseline,
                tolerance=float(check_fields.get("tolerance", "1.0")),
                window_seconds=float(check_fields.get("window", "30")),
                interval_seconds=(
                    float(check_fields["interval"])
                    if "interval" in check_fields
                    else None
                ),
            )
        )
        check_fields = None
        check_name = None

    def finish_phase() -> None:
        nonlocal phase_fields, phase_name, checks
        finish_check()
        if phase_fields is None:
            return
        assert phase_name is not None
        fields = phase_fields
        try:
            phase_type = PhaseType(fields.get("type", "canary"))
        except ValueError:
            raise DSLError(
                f"phase {phase_name!r}: unknown type {fields.get('type')!r}"
            ) from None
        groups = frozenset(
            g.strip() for g in fields.get("groups", "").split(",") if g.strip()
        )
        steps = tuple(
            float(s.strip()) for s in fields.get("steps", "").split(",") if s.strip()
        )
        phases.append(
            Phase(
                name=phase_name,
                type=phase_type,
                service=fields.get("service", ""),
                stable_version=fields.get("stable", ""),
                experimental_version=fields.get("experimental", ""),
                second_version=fields.get("second"),
                fraction=float(fields.get("fraction", "0.05")),
                steps=steps,
                audience_groups=groups,
                duration_seconds=float(fields.get("duration", "300")),
                check_interval_seconds=float(fields.get("interval", "5")),
                checks=tuple(checks),
                min_samples=int(fields.get("min_samples", "0")),
                deadline_seconds=(
                    float(fields["deadline"]) if "deadline" in fields else None
                ),
                on_success=fields.get("on_success", "complete"),
                on_failure=fields.get("on_failure", "rollback"),
                on_inconclusive=fields.get("on_inconclusive", "repeat"),
                max_repeats=int(fields.get("max_repeats", "1")),
                winner_metric=fields.get("winner_metric", "response_time"),
                winner_aggregation=fields.get("winner_aggregation", "mean"),
                winner_lower_is_better=(
                    fields.get("winner_lower_is_better", "true").lower() != "false"
                ),
            )
        )
        phase_fields = None
        phase_name = None
        checks = []

    for line_no, line in lines:
        level = _indent_of(line)
        keyword, value = _split(line)
        if level == 0:
            if keyword != "strategy":
                raise DSLError(f"line {line_no}: expected 'strategy', got {keyword!r}")
            if strategy_name is not None:
                raise DSLError(f"line {line_no}: multiple strategy definitions")
            strategy_name = value
        elif level == 1:
            if keyword == "description":
                description = _unquote(value)
            elif keyword == "mode":
                if value not in EXECUTION_MODES:
                    raise DSLError(
                        f"line {line_no}: unknown mode {value!r} "
                        f"(expected one of {sorted(EXECUTION_MODES)})"
                    )
                execution_mode = value
            elif keyword == "phase":
                finish_phase()
                phase_name = value
                phase_fields = {}
            else:
                raise DSLError(
                    f"line {line_no}: unexpected {keyword!r} at strategy level"
                )
        elif level == 2:
            if phase_fields is None:
                raise DSLError(f"line {line_no}: {keyword!r} outside a phase")
            if keyword == "check":
                finish_check()
                check_name = value
                check_fields = {}
            elif keyword in _PHASE_SCALARS:
                finish_check()
                phase_fields[keyword] = value
            else:
                raise DSLError(f"line {line_no}: unknown phase field {keyword!r}")
        elif level == 3:
            if check_fields is None:
                raise DSLError(f"line {line_no}: {keyword!r} outside a check")
            if keyword not in _CHECK_SCALARS:
                raise DSLError(f"line {line_no}: unknown check field {keyword!r}")
            check_fields[keyword] = value
        else:
            raise DSLError(f"line {line_no}: indentation too deep")

    finish_phase()
    if strategy_name is None:
        raise DSLError("missing 'strategy <name>' header")
    return Strategy(
        name=strategy_name,
        phases=tuple(phases),
        description=description,
        execution_mode=execution_mode,
    )


def strategy_to_dsl(strategy: Strategy) -> str:
    """Serialize *strategy* back to DSL text."""
    out: list[str] = [f"strategy {strategy.name}"]
    if strategy.description:
        out.append(f'  description "{strategy.description}"')
    if strategy.execution_mode != "sim":
        out.append(f"  mode {strategy.execution_mode}")
    for phase in strategy.phases:
        out.append(f"  phase {phase.name}")
        out.append(f"    type {phase.type.value}")
        out.append(f"    service {phase.service}")
        out.append(f"    stable {phase.stable_version}")
        out.append(f"    experimental {phase.experimental_version}")
        if phase.second_version:
            out.append(f"    second {phase.second_version}")
        out.append(f"    fraction {phase.fraction}")
        if phase.steps:
            out.append(f"    steps {', '.join(str(s) for s in phase.steps)}")
        if phase.audience_groups:
            out.append(f"    groups {', '.join(sorted(phase.audience_groups))}")
        out.append(f"    duration {phase.duration_seconds}")
        out.append(f"    interval {phase.check_interval_seconds}")
        if phase.deadline_seconds is not None:
            out.append(f"    deadline {phase.deadline_seconds}")
        if phase.min_samples:
            out.append(f"    min_samples {phase.min_samples}")
        if phase.type is PhaseType.AB_TEST:
            out.append(f"    winner_metric {phase.winner_metric}")
            out.append(f"    winner_aggregation {phase.winner_aggregation}")
            out.append(
                "    winner_lower_is_better "
                + ("true" if phase.winner_lower_is_better else "false")
            )
        for check in phase.checks:
            out.append(f"    check {check.name}")
            if check.kind != "metric":
                out.append(f"      kind {check.kind}")
            if check.rule is not None:
                out.append(f"      rule {check.rule}")
            if check.service != phase.service:
                out.append(f"      service {check.service}")
            if check.version != phase.experimental_version:
                out.append(f"      version {check.version}")
            if check.kind == "metric":
                out.append(f"      metric {check.metric}")
            out.append(f"      aggregation {check.aggregation}")
            out.append(f"      operator {check.operator}")
            if check.threshold is not None:
                out.append(f"      threshold {check.threshold}")
            if check.baseline_version is not None:
                out.append(f"      baseline {check.baseline_version}")
            out.append(f"      tolerance {check.tolerance}")
            out.append(f"      window {check.window_seconds}")
            if check.interval_seconds is not None:
                out.append(f"      interval {check.interval_seconds}")
        out.append(f"    on_success {phase.on_success}")
        out.append(f"    on_failure {phase.on_failure}")
        out.append(f"    on_inconclusive {phase.on_inconclusive}")
        out.append(f"    max_repeats {phase.max_repeats}")
    return "\n".join(out) + "\n"
