"""The live testing model (Section 4.3).

A *strategy* is an ordered collection of *phases*, each applying one
experimentation practice (canary, dark launch, A/B test, gradual rollout)
to a service.  Each phase specifies *checks* — windowed metric conditions
— and the conditional chaining: which phase (or terminal state) follows
on success, failure, or inconclusive data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError, ValidationError

#: Names of the built-in terminal states every strategy may target.
TERMINAL_COMPLETE = "complete"
TERMINAL_ROLLBACK = "rollback"
TERMINAL_ABORT = "abort"
TERMINAL_STATES = frozenset({TERMINAL_COMPLETE, TERMINAL_ROLLBACK, TERMINAL_ABORT})
#: Pseudo-target: re-execute the current phase (collect more data).
REPEAT = "repeat"


class PhaseType(enum.Enum):
    """The experimentation practices a phase can apply (Section 2.2.1)."""

    CANARY = "canary"
    DARK_LAUNCH = "dark_launch"
    AB_TEST = "ab_test"
    GRADUAL_ROLLOUT = "gradual_rollout"


class CheckOutcome(enum.Enum):
    """Result of evaluating one check at one point in time."""

    PASS = "pass"
    FAIL = "fail"
    INCONCLUSIVE = "inconclusive"


class Action(enum.Enum):
    """Automated actions the engine takes on transitions."""

    CONTINUE = "continue"
    PROMOTE = "promote"
    ROLLBACK = "rollback"
    REPEAT = "repeat"
    ABORT = "abort"


_OPERATORS = {"<", "<=", ">", ">="}

#: Check kinds: plain metric checks, topology-health checks, and
#: burn-rate SLO checks gating on an alert rule's published burn stream.
METRIC_CHECK_KIND = "metric"
HEALTH_CHECK_KIND = "health"
SLO_CHECK_KIND = "slo"
_CHECK_KINDS = frozenset({METRIC_CHECK_KIND, HEALTH_CHECK_KIND, SLO_CHECK_KIND})


@dataclass(frozen=True)
class Check:
    """A health criterion evaluated periodically during a phase.

    Three flavors exist:

    - **threshold** checks compare a windowed aggregate against an
      absolute threshold (``mean response_time of v2 <= 150 ms``),
    - **relative** checks compare the experimental version against a
      baseline version of the same service with a tolerance factor
      (``mean response_time of v2 <= 1.2 * mean response_time of v1``) —
      the "apples to apples comparison" practitioners described,
    - **health** checks (``kind="health"``) gate on the streaming
      topology pipeline's live health score
      (:mod:`repro.topology.streaming`): the service's ``health.score``
      under the ``live`` pseudo-version must satisfy the threshold.
      Version and metric are normalized to those canonical values at
      construction, so a health check is a threshold check over the
      ``health.*`` stream and evaluates through the same machinery,
    - **slo** checks (``kind="slo"``) gate on a burn-rate alert rule's
      published gate stream (:mod:`repro.obs.alerts`): the rule named by
      ``rule`` must keep its burn below the threshold.  Version and
      metric normalize to the rule's canonical store address
      ``(service, "alerts", "burn:<rule>")``, so an slo check is again
      just a threshold check over a pseudo-metric stream.

    Attributes:
        name: check identifier within the phase.
        service: service whose metrics are inspected.
        version: the (experimental) version under test.
        metric: metric name, e.g. ``response_time`` or ``error``.
        aggregation: windowed aggregation (``mean``, ``p95``, ...).
        operator: comparison operator; the check passes when
            ``observed OP reference`` holds.
        threshold: absolute reference value (threshold checks).
        baseline_version: reference version (relative checks).
        tolerance: multiplier applied to the baseline aggregate.
        window_seconds: length of the trailing data window.
        interval_seconds: per-check evaluation interval (Fig 4.3's
            time-based execution of multiple checks); None inherits the
            phase's interval.
        kind: ``"metric"`` (default), ``"health"``, or ``"slo"``.
        rule: name of the burn-rate alert rule an slo check gates on
            (slo checks only).
    """

    name: str
    service: str
    version: str
    metric: str
    aggregation: str = "mean"
    operator: str = "<="
    threshold: float | None = None
    baseline_version: str | None = None
    tolerance: float = 1.0
    window_seconds: float = 30.0
    interval_seconds: float | None = None
    kind: str = METRIC_CHECK_KIND
    rule: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in _CHECK_KINDS:
            raise ConfigurationError(
                f"check {self.name!r}: kind must be one of {sorted(_CHECK_KINDS)}"
            )
        if self.operator not in _OPERATORS:
            raise ConfigurationError(
                f"check {self.name!r}: operator must be one of {_OPERATORS}"
            )
        if self.kind == HEALTH_CHECK_KIND:
            if self.baseline_version is not None:
                raise ConfigurationError(
                    f"check {self.name!r}: health checks take a threshold, "
                    "not a baseline_version"
                )
            if self.threshold is None:
                raise ConfigurationError(
                    f"check {self.name!r}: health checks need a threshold"
                )
            # Health lives at a canonical address in the metric store:
            # (service, HEALTH_VERSION, HEALTH_METRIC).  Normalizing here
            # means DSL/journal round trips and the evaluator never have
            # to special-case where to look.
            from repro.topology.streaming import HEALTH_METRIC, HEALTH_VERSION

            object.__setattr__(self, "version", HEALTH_VERSION)
            object.__setattr__(self, "metric", HEALTH_METRIC)
        if self.kind == SLO_CHECK_KIND:
            if not self.rule:
                raise ConfigurationError(
                    f"check {self.name!r}: slo checks need a rule name"
                )
            if self.baseline_version is not None:
                raise ConfigurationError(
                    f"check {self.name!r}: slo checks take a threshold, "
                    "not a baseline_version"
                )
            if self.threshold is None:
                raise ConfigurationError(
                    f"check {self.name!r}: slo checks need a threshold"
                )
            # Like health checks, slo checks live at a canonical store
            # address: the alert engine publishes each rule's gate value
            # under (service, ALERTS_VERSION, burn:<rule>).
            from repro.obs.alerts import ALERTS_VERSION, alert_metric

            object.__setattr__(self, "version", ALERTS_VERSION)
            object.__setattr__(self, "metric", alert_metric(self.rule))
        elif self.rule is not None:
            raise ConfigurationError(
                f"check {self.name!r}: rule is only valid for slo checks"
            )
        if (self.threshold is None) == (self.baseline_version is None):
            raise ConfigurationError(
                f"check {self.name!r}: set exactly one of threshold / "
                "baseline_version"
            )
        if self.tolerance <= 0:
            raise ConfigurationError(f"check {self.name!r}: tolerance must be > 0")
        if self.window_seconds <= 0:
            raise ConfigurationError(
                f"check {self.name!r}: window_seconds must be > 0"
            )
        if self.interval_seconds is not None and self.interval_seconds <= 0:
            raise ConfigurationError(
                f"check {self.name!r}: interval_seconds must be > 0 when set"
            )

    @property
    def is_relative(self) -> bool:
        """Whether the check compares against a baseline version."""
        return self.baseline_version is not None

    def compare(self, observed: float, reference: float) -> bool:
        """Apply the operator to (observed, reference)."""
        if self.operator == "<":
            return observed < reference
        if self.operator == "<=":
            return observed <= reference
        if self.operator == ">":
            return observed > reference
        return observed >= reference


@dataclass(frozen=True)
class Phase:
    """One phase of a live testing strategy.

    Attributes:
        name: unique phase name within the strategy.
        type: which experimentation practice the phase applies.
        service: the service under experimentation.
        stable_version: the current production version.
        experimental_version: the version under test.
        second_version: the alternative variant (A/B tests only).
        fraction: traffic share for the experimental variant (canary) or
            the A/B split given to ``experimental_version``.
        steps: rollout fractions for gradual rollouts.
        audience_groups: restrict the experiment to these user groups.
        duration_seconds: how long the phase collects data.
        check_interval_seconds: how often checks are evaluated.
        checks: the phase's health criteria.
        min_samples: minimum experimental-variant requests before the
            success transition may fire.
        deadline_seconds: hard time budget for the phase measured from
            its *first* entry (repeats included); when exceeded, the
            engine's watchdog forces a rollback.  None disables the
            watchdog.
        on_success / on_failure / on_inconclusive: next phase name, a
            terminal state, or ``repeat``.
        max_repeats: how often an inconclusive phase may re-execute.
        winner_metric / winner_aggregation / winner_lower_is_better:
            how A/B phases pick the winning variant at phase end.
    """

    name: str
    type: PhaseType
    service: str
    stable_version: str
    experimental_version: str
    second_version: str | None = None
    fraction: float = 0.05
    steps: tuple[float, ...] = ()
    audience_groups: frozenset[str] = frozenset()
    duration_seconds: float = 300.0
    check_interval_seconds: float = 5.0
    checks: tuple[Check, ...] = ()
    min_samples: int = 0
    deadline_seconds: float | None = None
    on_success: str = TERMINAL_COMPLETE
    on_failure: str = TERMINAL_ROLLBACK
    on_inconclusive: str = REPEAT
    max_repeats: int = 1
    winner_metric: str = "response_time"
    winner_aggregation: str = "mean"
    winner_lower_is_better: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("phase name must be non-empty")
        if self.type is PhaseType.AB_TEST and not self.second_version:
            raise ConfigurationError(
                f"phase {self.name!r}: A/B tests need a second_version"
            )
        if self.type is PhaseType.GRADUAL_ROLLOUT and not self.steps:
            raise ConfigurationError(
                f"phase {self.name!r}: gradual rollouts need steps"
            )
        if self.steps and any(not 0.0 <= s <= 1.0 for s in self.steps):
            raise ConfigurationError(
                f"phase {self.name!r}: steps must lie in [0, 1]"
            )
        if self.type in (PhaseType.CANARY, PhaseType.AB_TEST):
            if not 0.0 < self.fraction < 1.0:
                raise ConfigurationError(
                    f"phase {self.name!r}: fraction must be in (0, 1)"
                )
        if self.duration_seconds <= 0:
            raise ConfigurationError(
                f"phase {self.name!r}: duration_seconds must be > 0"
            )
        if self.check_interval_seconds <= 0:
            raise ConfigurationError(
                f"phase {self.name!r}: check_interval_seconds must be > 0"
            )
        if self.min_samples < 0:
            raise ConfigurationError(f"phase {self.name!r}: min_samples >= 0")
        if self.max_repeats < 0:
            raise ConfigurationError(f"phase {self.name!r}: max_repeats >= 0")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError(
                f"phase {self.name!r}: deadline_seconds must be > 0 when set"
            )


class StrategyOutcome(enum.Enum):
    """Terminal (or running) status of a strategy execution."""

    RUNNING = "running"
    COMPLETED = "completed"
    ROLLED_BACK = "rolled_back"
    ABORTED = "aborted"


#: Execution substrates a strategy may request (``mode`` in the DSL).
#: The router in :mod:`repro.exec` maps them to backends; the strategy
#: definition itself is substrate-agnostic.
EXECUTION_MODES = frozenset({"sim", "replay", "live"})


@dataclass(frozen=True)
class Strategy:
    """A complete multi-phase live testing strategy.

    The first phase is the entry state; transitions reference other
    phases by name or one of the terminal states ``complete``,
    ``rollback``, ``abort`` (or ``repeat``).

    ``execution_mode`` is a *preference*, not behaviour: it names the
    substrate (``sim``, ``replay``, ``live``) the strategy should run
    against by default.  The engine ignores it; only the execution
    router in :mod:`repro.exec` consults it, and an explicit mode passed
    to the router wins.
    """

    name: str
    phases: tuple[Phase, ...]
    description: str = ""
    tags: tuple[str, ...] = field(default=())
    execution_mode: str = "sim"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("strategy name must be non-empty")
        if self.execution_mode not in EXECUTION_MODES:
            raise ConfigurationError(
                f"strategy {self.name!r}: unknown execution mode "
                f"{self.execution_mode!r} (expected one of "
                f"{sorted(EXECUTION_MODES)})"
            )
        if not self.phases:
            raise ConfigurationError(f"strategy {self.name!r} needs phases")
        names = [p.name for p in self.phases]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"strategy {self.name!r} has duplicate phase names: {names}"
            )
        valid_targets = set(names) | TERMINAL_STATES | {REPEAT}
        for phase in self.phases:
            for target in (phase.on_success, phase.on_failure, phase.on_inconclusive):
                if target not in valid_targets:
                    raise ConfigurationError(
                        f"strategy {self.name!r}, phase {phase.name!r}: "
                        f"unknown transition target {target!r}"
                    )

    @property
    def entry(self) -> Phase:
        """The first phase executed."""
        return self.phases[0]

    def phase(self, name: str) -> Phase:
        """Look up a phase by name."""
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise ConfigurationError(
            f"strategy {self.name!r} has no phase {name!r}"
        )

    @property
    def services(self) -> frozenset[str]:
        """All services the strategy touches."""
        return frozenset(p.service for p in self.phases)

    def total_checks(self) -> int:
        """Number of checks across all phases."""
        return sum(len(p.checks) for p in self.phases)


# -- lossless dict serialization -------------------------------------------
#
# The write-ahead journal (:mod:`repro.bifrost.journal`) persists whole
# strategies inside its records; unlike the DSL these converters cover
# *every* model field (tags included), so a recovered engine rebuilds an
# exact copy of what was submitted.


def check_to_dict(check: Check) -> dict:
    """Serialize a check to JSON-compatible primitives (lossless)."""
    return {
        "name": check.name,
        "service": check.service,
        "version": check.version,
        "metric": check.metric,
        "aggregation": check.aggregation,
        "operator": check.operator,
        "threshold": check.threshold,
        "baseline_version": check.baseline_version,
        "tolerance": check.tolerance,
        "window_seconds": check.window_seconds,
        "interval_seconds": check.interval_seconds,
        "kind": check.kind,
        "rule": check.rule,
    }


def check_from_dict(data: Mapping) -> Check:
    """Rebuild a check from :func:`check_to_dict` output."""
    try:
        return Check(
            name=data["name"],
            service=data["service"],
            version=data["version"],
            metric=data["metric"],
            aggregation=data["aggregation"],
            operator=data["operator"],
            threshold=data["threshold"],
            baseline_version=data["baseline_version"],
            tolerance=data["tolerance"],
            window_seconds=data["window_seconds"],
            interval_seconds=data["interval_seconds"],
            kind=data.get("kind", METRIC_CHECK_KIND),
            rule=data.get("rule"),
        )
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed check document: {exc}") from exc


def phase_to_dict(phase: Phase) -> dict:
    """Serialize a phase to JSON-compatible primitives (lossless)."""
    return {
        "name": phase.name,
        "type": phase.type.value,
        "service": phase.service,
        "stable_version": phase.stable_version,
        "experimental_version": phase.experimental_version,
        "second_version": phase.second_version,
        "fraction": phase.fraction,
        "steps": list(phase.steps),
        "audience_groups": sorted(phase.audience_groups),
        "duration_seconds": phase.duration_seconds,
        "check_interval_seconds": phase.check_interval_seconds,
        "checks": [check_to_dict(check) for check in phase.checks],
        "min_samples": phase.min_samples,
        "deadline_seconds": phase.deadline_seconds,
        "on_success": phase.on_success,
        "on_failure": phase.on_failure,
        "on_inconclusive": phase.on_inconclusive,
        "max_repeats": phase.max_repeats,
        "winner_metric": phase.winner_metric,
        "winner_aggregation": phase.winner_aggregation,
        "winner_lower_is_better": phase.winner_lower_is_better,
    }


def phase_from_dict(data: Mapping) -> Phase:
    """Rebuild a phase from :func:`phase_to_dict` output."""
    try:
        return Phase(
            name=data["name"],
            type=PhaseType(data["type"]),
            service=data["service"],
            stable_version=data["stable_version"],
            experimental_version=data["experimental_version"],
            second_version=data["second_version"],
            fraction=data["fraction"],
            steps=tuple(data["steps"]),
            audience_groups=frozenset(data["audience_groups"]),
            duration_seconds=data["duration_seconds"],
            check_interval_seconds=data["check_interval_seconds"],
            checks=tuple(check_from_dict(c) for c in data["checks"]),
            min_samples=data["min_samples"],
            deadline_seconds=data["deadline_seconds"],
            on_success=data["on_success"],
            on_failure=data["on_failure"],
            on_inconclusive=data["on_inconclusive"],
            max_repeats=data["max_repeats"],
            winner_metric=data["winner_metric"],
            winner_aggregation=data["winner_aggregation"],
            winner_lower_is_better=data["winner_lower_is_better"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(f"malformed phase document: {exc}") from exc


def strategy_to_dict(strategy: Strategy) -> dict:
    """Serialize a strategy to JSON-compatible primitives (lossless)."""
    return {
        "name": strategy.name,
        "description": strategy.description,
        "tags": list(strategy.tags),
        "execution_mode": strategy.execution_mode,
        "phases": [phase_to_dict(phase) for phase in strategy.phases],
    }


def strategy_from_dict(data: Mapping) -> Strategy:
    """Rebuild a strategy from :func:`strategy_to_dict` output."""
    try:
        return Strategy(
            name=data["name"],
            phases=tuple(phase_from_dict(p) for p in data["phases"]),
            description=data.get("description", ""),
            tags=tuple(data.get("tags", ())),
            execution_mode=data.get("execution_mode", "sim"),
        )
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed strategy document: {exc}") from exc
