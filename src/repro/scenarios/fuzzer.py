"""Adversarial scenario fuzzer: sample, check, shrink.

The fuzzer draws scenario specs from a handful of adversarial
*archetypes* (loose gates, cascading failures, heavy-tail traffic, flash
crowds, multi-region chains, mid-experiment deploys, engine crashes,
topology sweeps), runs each against the archetype's cross-layer
invariants, and greedily shrinks any counterexample before reporting it.
Everything is seeded: the same root seed replays the exact same
campaign, which is how counterexamples graduate into the regression
corpus under ``tests/regression_corpus/``.

Hypothesis drives the *property tests* over this module; the fuzzer
itself uses only :class:`~repro.simulation.rng.SeededRng` so it can run
in examples and CI smoke steps without the hypothesis machinery.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.obs.observer import NULL_OBSERVER, Observer
from repro.scenarios.invariants import Violation, check_invariant
from repro.scenarios.spec import (
    ArrivalSpec,
    ExperimentSpec,
    FaultSpec,
    FlashCrowdSpec,
    FleetSpec,
    RegionSpec,
    ResilienceSpec,
    ScenarioSpec,
    ServiceSpec,
    SloSpec,
    TopologySpec,
)
from repro.simulation.rng import SeededRng


def _chain(rng: SeededRng, depth: int, **overrides) -> tuple[ServiceSpec, ...]:
    """A linear service chain svc0 -> svc1 -> ... of *depth* services."""
    services = []
    for i in range(depth):
        depends = (f"svc{i + 1}",) if i + 1 < depth else ()
        services.append(
            ServiceSpec(
                name=f"svc{i}",
                median_ms=rng.uniform(8.0, 25.0),
                sigma=rng.uniform(0.1, 0.5),
                depends_on=depends,
                **overrides,
            )
        )
    return tuple(services)


def _experiment(rng: SeededRng, depth: int, **overrides) -> ExperimentSpec:
    defaults = dict(
        service=f"svc{rng.randint(0, depth - 1)}",
        fraction=rng.uniform(0.2, 0.5),
        duration_seconds=rng.uniform(40.0, 70.0),
        check_threshold=rng.uniform(0.05, 0.2),
        check_window_seconds=rng.uniform(15.0, 30.0),
        check_interval_seconds=rng.uniform(5.0, 12.0),
        deadline_seconds=200.0,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def _spec(name: str, seed: int, services, experiment, **kwargs) -> ScenarioSpec:
    kwargs.setdefault(
        "arrivals", ArrivalSpec(rate_per_second=8.0, duration_seconds=90.0)
    )
    kwargs.setdefault("run_until", 150.0)
    return ScenarioSpec(
        name=name, seed=seed, services=services, experiment=experiment, **kwargs
    )


def sample_loose_gate(rng: SeededRng, index: int) -> ScenarioSpec:
    """A canary whose gate threshold may be looser than its true damage.

    This archetype seeds the known-bad region of config space: when the
    sampled ``check_threshold`` exceeds ``true_error_delta`` the engine
    happily promotes a variant that regresses ground truth — the exact
    misconfiguration the ``promotion_truth`` invariant exists to catch.
    """
    depth = rng.randint(2, 3)
    services = _chain(rng, depth)
    experiment = _experiment(
        rng,
        depth,
        service="svc0",
        true_error_delta=rng.uniform(0.05, 0.35),
        check_threshold=rng.uniform(0.1, 0.6),
        min_samples=5,
    )
    return _spec(
        f"loose-gate-{index}",
        seed=rng.randint(0, 2**31 - 1),
        services=services,
        experiment=experiment,
        slo=SloSpec(error_rate=rng.uniform(0.08, 0.2)),
    )


def sample_cascade(rng: SeededRng, index: int) -> ScenarioSpec:
    """Deep-chain failures with a fallback that must cap the cascade."""
    depth = rng.randint(3, 4)
    services = _chain(rng, depth)
    source = rng.randint(1, depth - 1)
    fault_kind = rng.choice(["error_burst", "version_crash"])
    fault = FaultSpec(
        kind=fault_kind,
        service=f"svc{source}",
        version="1.0.0",
        magnitude=rng.uniform(0.6, 1.0),
        start=rng.uniform(10.0, 25.0),
        end=rng.uniform(45.0, 70.0),
    )
    fallback = f"svc{rng.randint(1, source)}"
    return _spec(
        f"cascade-{index}",
        seed=rng.randint(0, 2**31 - 1),
        services=services,
        experiment=_experiment(rng, depth, service="svc0"),
        faults=(fault,),
        resilience=ResilienceSpec(
            retries=rng.randint(0, 2), fallback_service=fallback
        ),
    )


def sample_heavy_tail(rng: SeededRng, index: int) -> ScenarioSpec:
    """Pareto arrivals and Pareto service tails: burst-then-lull load."""
    depth = rng.randint(2, 3)
    services = tuple(
        dataclasses.replace(s, tail="pareto", tail_alpha=rng.uniform(1.2, 2.2))
        for s in _chain(rng, depth)
    )
    return _spec(
        f"heavy-tail-{index}",
        seed=rng.randint(0, 2**31 - 1),
        services=services,
        experiment=_experiment(
            rng,
            depth,
            service="svc0",
            true_error_delta=rng.choice([0.0, rng.uniform(0.08, 0.3)]),
            check_threshold=rng.uniform(0.1, 0.5),
            min_samples=5,
        ),
        arrivals=ArrivalSpec(
            kind="pareto",
            rate_per_second=rng.uniform(5.0, 12.0),
            duration_seconds=90.0,
            alpha=rng.uniform(1.1, 1.6),
        ),
        slo=SloSpec(error_rate=rng.uniform(0.1, 0.25)),
    )


def sample_flash_crowd(rng: SeededRng, index: int) -> ScenarioSpec:
    """Load spikes against resource-capped services mid-experiment."""
    depth = rng.randint(2, 3)
    services = list(_chain(rng, depth))
    services[0] = dataclasses.replace(
        services[0],
        cpu_cap_rps=rng.uniform(25.0, 60.0),
        pressure=rng.uniform(0.4, 0.8),
    )
    crowds = tuple(
        FlashCrowdSpec(
            start=rng.uniform(15.0, 40.0),
            duration=rng.uniform(10.0, 25.0),
            magnitude=rng.uniform(3.0, 8.0),
        )
        for _ in range(rng.randint(1, 2))
    )
    return _spec(
        f"flash-crowd-{index}",
        seed=rng.randint(0, 2**31 - 1),
        services=tuple(services),
        experiment=_experiment(rng, depth, service="svc0"),
        flash_crowds=crowds,
    )


def sample_multi_region(rng: SeededRng, index: int) -> ScenarioSpec:
    """Cross-region chains where WAN latency inflates tail budgets."""
    depth = rng.randint(3, 4)
    regions = (
        RegionSpec("us-east", cross_latency_ms=0.0),
        RegionSpec("eu-west", cross_latency_ms=rng.uniform(30.0, 90.0)),
    )
    services = tuple(
        dataclasses.replace(s, region="us-east" if i < depth // 2 else "eu-west")
        for i, s in enumerate(_chain(rng, depth))
    )
    experiment = _experiment(
        rng,
        depth,
        service=f"svc{depth - 1}",
        check_metric="response_time",
        check_threshold=rng.uniform(150.0, 400.0),
        true_latency_factor=rng.choice([1.0, rng.uniform(1.5, 4.0)]),
    )
    return _spec(
        f"multi-region-{index}",
        seed=rng.randint(0, 2**31 - 1),
        services=services,
        experiment=experiment,
        regions=regions,
    )


def sample_deploy_mid(rng: SeededRng, index: int) -> ScenarioSpec:
    """A mid-experiment deploy landing while transient faults overlap."""
    depth = rng.randint(2, 3)
    services = _chain(rng, depth)
    target = f"svc{rng.randint(1, depth - 1)}" if depth > 1 else "svc0"
    deploy = FaultSpec(
        kind="deploy",
        service=target,
        version="3.0.0",
        magnitude=rng.uniform(0.8, 1.5),
        start=rng.uniform(25.0, 50.0),
    )
    spike = FaultSpec(
        kind="latency_spike",
        service=target,
        version="1.0.0",
        magnitude=rng.uniform(2.0, 5.0),
        start=rng.uniform(10.0, 20.0),
        end=rng.uniform(55.0, 75.0),
    )
    return _spec(
        f"deploy-mid-{index}",
        seed=rng.randint(0, 2**31 - 1),
        services=services,
        experiment=_experiment(rng, depth, service="svc0"),
        faults=(spike, deploy),
    )


def sample_crashy(rng: SeededRng, index: int) -> ScenarioSpec:
    """Engine crashes mid-flight: the durability contract under load."""
    depth = rng.randint(2, 3)
    services = _chain(rng, depth)
    faults = []
    if rng.random() < 0.5:
        faults.append(
            FaultSpec(
                kind="error_burst",
                service=f"svc{depth - 1}",
                version="1.0.0",
                magnitude=rng.uniform(0.2, 0.6),
                start=rng.uniform(10.0, 30.0),
                end=rng.uniform(50.0, 80.0),
            )
        )
    return _spec(
        f"crashy-{index}",
        seed=rng.randint(0, 2**31 - 1),
        services=services,
        experiment=_experiment(rng, depth, service="svc0"),
        faults=tuple(faults),
    )


def sample_topology(rng: SeededRng, index: int) -> ScenarioSpec:
    """Generated interaction graphs for the ranking-floor invariant."""
    depth = 2
    return _spec(
        f"topology-{index}",
        seed=rng.randint(0, 2**31 - 1),
        services=_chain(rng, depth),
        experiment=_experiment(rng, depth, service="svc0"),
        topology=TopologySpec(
            num_endpoints=rng.randint(40, 200),
            branching=rng.randint(1, 5),
            changes=rng.randint(4, 24),
            degradation_factor=rng.choice([1.0, rng.uniform(1.5, 4.0)]),
        ),
    )


def sample_fleet(rng: SeededRng, index: int) -> ScenarioSpec:
    """Whole-fleet runs: one crash-looping bulkhead among healthy peers.

    The service chain is a bystander here — the fleet block drives
    everything.  Each draw plants a crash-looper, usually a poisoned
    check, and a genuinely bad experiment, then asks ``fleet_isolation``
    to prove none of it leaked past the faulted bulkheads.
    """
    depth = 2
    experiments = rng.randint(6, 14)
    indices = list(range(experiments))
    looper = rng.choice(indices)
    poisoned = rng.choice(indices) if rng.random() < 0.7 else -1
    bad = rng.choice(indices) if rng.random() < 0.7 else -1
    return _spec(
        f"fleet-{index}",
        seed=rng.randint(0, 2**31 - 1),
        services=_chain(rng, depth),
        experiment=_experiment(rng, depth, service="svc0"),
        fleet=FleetSpec(
            experiments=experiments,
            slot_seconds=rng.uniform(20.0, 40.0),
            base_fraction=rng.uniform(0.04, 0.12),
            duration_slots=rng.randint(2, 3),
            wave=rng.randint(3, 5),
            crash_looper=looper,
            poisoned=poisoned,
            bad_experiment=bad,
            error_delta=rng.uniform(0.2, 0.4),
            restart_max=rng.randint(1, 3),
        ),
    )


@dataclass(frozen=True)
class Archetype:
    """One adversarial scenario family and the invariants it stresses."""

    name: str
    sample: Callable[[SeededRng, int], ScenarioSpec]
    invariants: tuple[str, ...]


ARCHETYPES: tuple[Archetype, ...] = (
    Archetype("loose_gate", sample_loose_gate, ("promotion_truth", "gating_before_slo")),
    Archetype("cascade", sample_cascade, ("cascade_cap",)),
    Archetype("heavy_tail", sample_heavy_tail, ("promotion_truth", "gating_before_slo")),
    Archetype("flash_crowd", sample_flash_crowd, ("gating_before_slo",)),
    Archetype("multi_region", sample_multi_region, ("promotion_truth",)),
    Archetype("deploy_mid", sample_deploy_mid, ("recovery_equivalence",)),
    Archetype("crashy", sample_crashy, ("recovery_equivalence",)),
    Archetype("topology", sample_topology, ("ranking_floor",)),
    Archetype("fleet", sample_fleet, ("fleet_isolation",)),
)

ARCHETYPES_BY_NAME = {a.name: a for a in ARCHETYPES}


# -- shrinking ---------------------------------------------------------------


def _replace(spec: ScenarioSpec, **kwargs) -> ScenarioSpec | None:
    try:
        return dataclasses.replace(spec, **kwargs)
    except Exception:
        return None


def _shrink_candidates(spec: ScenarioSpec) -> list[ScenarioSpec]:
    """Strictly-simpler variants of *spec*, most aggressive first.

    Each candidate removes or simplifies one aspect; the shrinker keeps
    a candidate only when the violation still reproduces, so order is a
    heuristic for how much a transform usually simplifies the story.
    """
    candidates: list[ScenarioSpec | None] = []
    # Drop whole fault entries, flash crowds, regions.
    for i in range(len(spec.faults)):
        faults = spec.faults[:i] + spec.faults[i + 1:]
        candidates.append(_replace(spec, faults=faults))
    for i in range(len(spec.flash_crowds)):
        crowds = spec.flash_crowds[:i] + spec.flash_crowds[i + 1:]
        candidates.append(_replace(spec, flash_crowds=crowds))
    if spec.regions:
        candidates.append(
            _replace(
                spec,
                regions=(),
                services=tuple(
                    dataclasses.replace(s, region="") for s in spec.services
                ),
            )
        )
    # Drop the deepest service (rewiring its caller's dependency away).
    if len(spec.services) > 1:
        last = spec.services[-1].name
        kept = [
            dataclasses.replace(
                s, depends_on=tuple(d for d in s.depends_on if d != last)
            )
            for s in spec.services[:-1]
        ]
        if spec.experiment.service != last and all(
            f.service != last and f.service_b != last for f in spec.faults
        ) and spec.resilience.fallback_service != last:
            candidates.append(_replace(spec, services=tuple(kept)))
    # Simplify the resilience layer.
    if spec.resilience.retries:
        candidates.append(
            _replace(
                spec,
                resilience=dataclasses.replace(spec.resilience, retries=0),
            )
        )
    # Shorten and calm the run.
    if spec.arrivals.duration_seconds > 45.0:
        candidates.append(
            _replace(
                spec,
                arrivals=dataclasses.replace(
                    spec.arrivals, duration_seconds=45.0
                ),
                run_until=max(spec.run_until / 2.0, 75.0),
            )
        )
    if spec.arrivals.rate_per_second > 4.0:
        candidates.append(
            _replace(
                spec,
                arrivals=dataclasses.replace(spec.arrivals, rate_per_second=4.0),
            )
        )
    if spec.experiment.duration_seconds > 30.0:
        candidates.append(
            _replace(
                spec,
                experiment=dataclasses.replace(
                    spec.experiment, duration_seconds=30.0
                ),
            )
        )
    # Flatten latency noise.
    if any(s.sigma > 0.0 for s in spec.services):
        candidates.append(
            _replace(
                spec,
                services=tuple(
                    dataclasses.replace(s, sigma=0.0) for s in spec.services
                ),
            )
        )
    # Smaller topology for ranking scenarios.
    if spec.topology.num_endpoints > 30:
        candidates.append(
            _replace(
                spec,
                topology=dataclasses.replace(
                    spec.topology,
                    num_endpoints=max(30, spec.topology.num_endpoints // 2),
                ),
            )
        )
    if spec.topology.changes > 4:
        candidates.append(
            _replace(
                spec,
                topology=dataclasses.replace(
                    spec.topology, changes=spec.topology.changes // 2
                ),
            )
        )
    # Smaller fleets: halve the experiment count (keeping every faulted
    # index alive by clamping it into the shrunken range), then try
    # dropping each injected fault outright.
    if spec.fleet.enabled and spec.fleet.experiments > 4:
        half = spec.fleet.experiments // 2

        def _clamp(idx: int) -> int:
            return min(idx, half - 1) if idx >= 0 else -1

        candidates.append(
            _replace(
                spec,
                fleet=dataclasses.replace(
                    spec.fleet,
                    experiments=half,
                    crash_looper=_clamp(spec.fleet.crash_looper),
                    poisoned=_clamp(spec.fleet.poisoned),
                    bad_experiment=_clamp(spec.fleet.bad_experiment),
                ),
            )
        )
    if spec.fleet.enabled:
        for label in ("crash_looper", "poisoned", "bad_experiment"):
            if getattr(spec.fleet, label) >= 0:
                candidates.append(
                    _replace(
                        spec,
                        fleet=dataclasses.replace(spec.fleet, **{label: -1}),
                    )
                )
    return [c for c in candidates if c is not None]


def shrink_violation(
    violation: Violation,
    budget: int = 48,
    observer: Observer | None = None,
) -> Violation:
    """Greedily minimize *violation*'s spec while it keeps violating.

    Classic greedy pass-until-fixpoint: try every candidate transform,
    restart from the first that still reproduces the same invariant
    violation, stop when no transform survives (a local minimum) or the
    re-check *budget* runs out.
    """
    observer = observer or NULL_OBSERVER
    current = violation
    spent = 0
    progress = True
    while progress and spent < budget:
        progress = False
        for candidate in _shrink_candidates(current.spec):
            if spent >= budget:
                break
            spent += 1
            reproduced = check_invariant(
                current.invariant, candidate, observer=observer
            )
            if reproduced is not None:
                observer.emit(
                    "scenario.shrink_step",
                    0.0,
                    invariant=current.invariant,
                    name=candidate.name,
                    checks_spent=spent,
                )
                current = reproduced
                progress = True
                break
    return current


# -- the fuzz loop -----------------------------------------------------------


@dataclass
class FuzzReport:
    """What one fuzzing campaign found."""

    seed: int
    iterations: int = 0
    checks: int = 0
    violations: list[Violation] = field(default_factory=list)

    def by_invariant(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for v in self.violations:
            counts[v.invariant] = counts.get(v.invariant, 0) + 1
        return dict(sorted(counts.items()))

    def describe(self) -> str:
        lines = [
            f"fuzz campaign seed={self.seed}: {self.iterations} scenarios, "
            f"{self.checks} invariant checks, "
            f"{len(self.violations)} violations"
        ]
        for v in self.violations:
            lines.append(f"  [{v.invariant}] {v.spec.name}: {v.detail}")
        return "\n".join(lines)


class ScenarioFuzzer:
    """Seeded fuzz campaigns over the adversarial archetypes."""

    def __init__(
        self,
        seed: int = 0,
        archetypes: Sequence[str] | None = None,
        observer: Observer | None = None,
        shrink_budget: int = 48,
    ) -> None:
        names = tuple(archetypes) if archetypes else tuple(ARCHETYPES_BY_NAME)
        unknown = [n for n in names if n not in ARCHETYPES_BY_NAME]
        if unknown:
            raise KeyError(
                f"unknown archetypes {unknown}; known: {sorted(ARCHETYPES_BY_NAME)}"
            )
        self.seed = seed
        self.archetypes = tuple(ARCHETYPES_BY_NAME[n] for n in names)
        self.observer = observer or NULL_OBSERVER
        self.shrink_budget = shrink_budget
        self._rng = SeededRng(seed)

    def sample(self, index: int) -> tuple[Archetype, ScenarioSpec]:
        """Draw scenario *index*: archetypes rotate round-robin."""
        archetype = self.archetypes[index % len(self.archetypes)]
        return archetype, archetype.sample(self._rng, index)

    def run(self, iterations: int, shrink: bool = True) -> FuzzReport:
        """Fuzz for *iterations* scenarios; shrink whatever falsifies."""
        report = FuzzReport(seed=self.seed)
        for index in range(iterations):
            archetype, spec = self.sample(index)
            report.iterations += 1
            self.observer.emit(
                "scenario.fuzz_case",
                float(index),
                archetype=archetype.name,
                name=spec.name,
                seed=spec.seed,
            )
            for invariant in archetype.invariants:
                report.checks += 1
                violation = check_invariant(
                    invariant, spec, observer=self.observer
                )
                if violation is None:
                    continue
                self.observer.emit(
                    "scenario.violation_found",
                    float(index),
                    invariant=invariant,
                    name=spec.name,
                )
                if self.observer.enabled:
                    self.observer.metrics.counter(
                        "scenario.violations", invariant=invariant
                    ).increment()
                if shrink:
                    violation = shrink_violation(
                        violation,
                        budget=self.shrink_budget,
                        observer=self.observer,
                    )
                report.violations.append(violation)
        self.observer.emit(
            "scenario.fuzz_finished",
            float(iterations),
            iterations=report.iterations,
            checks=report.checks,
            violations=len(report.violations),
        )
        return report
